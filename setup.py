"""Legacy build shim: this environment has no `wheel` package, so PEP 517
editable installs are unavailable; setuptools reads all metadata from
pyproject.toml."""
from setuptools import setup

setup()
