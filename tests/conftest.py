"""Shared fixtures for the test suite.

Key-material fixtures are module-scoped where safe: key generation is the
only genuinely expensive operation in the suite, and the objects are
immutable (KeyPair) or rebuilt per test where mutation matters
(directories are cheap to copy from keypairs).
"""

from __future__ import annotations

import random

import pytest

from repro.auth import KeyDirectory, run_key_distribution, trusted_dealer_setup
from repro.crypto import DEFAULT_SCHEME, get_scheme


@pytest.fixture(scope="session")
def scheme():
    """The default signature scheme object."""
    return get_scheme(DEFAULT_SCHEME)


@pytest.fixture(scope="session")
def keypair_factory(scheme):
    """Deterministic keypair factory: ``factory(tag)`` is stable per tag."""

    cache: dict[str, object] = {}

    def factory(tag: str = "default"):
        if tag not in cache:
            cache[tag] = scheme.generate_keypair(random.Random(f"kp-{tag}"))
        return cache[tag]

    return factory


@pytest.fixture(scope="session")
def dealer_setup_8():
    """Globally authentic keys for an 8-node network (session-cached)."""
    return trusted_dealer_setup(8, seed="dealer-8")


@pytest.fixture(scope="session")
def local_setup_8():
    """Honest local-authentication state for an 8-node network."""
    return run_key_distribution(8, seed="local-8")


def fresh_directory(owner: int, keypairs: dict) -> KeyDirectory:
    """A directory binding every node to its genuine predicate."""
    directory = KeyDirectory(owner=owner)
    for node, keypair in keypairs.items():
        directory.accept(node, keypair.predicate)
    return directory
