"""Key-distribution attacks: each produces exactly its designed corruption."""

from __future__ import annotations

import pytest

from repro.auth import run_key_distribution
from repro.crypto import sign_value
from repro.faults import (
    AdversaryCoordination,
    CrossClaimAttack,
    MixedPredicateAttack,
    SharedKeyAttack,
)

N = 7


class TestSharedKeyAttack:
    @pytest.fixture(scope="class")
    def result_and_coord(self):
        coordination = AdversaryCoordination()
        adversaries = {
            5: SharedKeyAttack(coordination),
            6: SharedKeyAttack(coordination),
        }
        return run_key_distribution(N, adversaries=adversaries, seed=10), coordination

    def test_both_nodes_bound_to_one_key(self, result_and_coord):
        result, coordination = result_and_coord
        shared = coordination.known_keypairs()["shared"].predicate
        for observer in range(5):
            directory = result.directories[observer]
            assert directory.predicates_for(5) == (shared,)
            assert directory.predicates_for(6) == (shared,)

    def test_signed_message_assigned_to_both(self, result_and_coord):
        result, coordination = result_and_coord
        secret = coordination.known_keypairs()["shared"].secret
        signed = sign_value(secret, "m")
        for observer in range(5):
            assert result.directories[observer].assign(signed) == [5, 6]

    def test_assignment_consistent_across_observers(self, result_and_coord):
        """The paper: 'still all correct recipients of the signed message
        assign it to the same node' (here: same node set)."""
        result, coordination = result_and_coord
        secret = coordination.known_keypairs()["shared"].secret
        signed = sign_value(secret, "m")
        assignments = {
            tuple(result.directories[obs].assign(signed)) for obs in range(5)
        }
        assert len(assignments) == 1


class TestCrossClaimAttack:
    @pytest.fixture(scope="class")
    def result_and_coord(self):
        coordination = AdversaryCoordination()
        group_one = {0, 1, 2}
        adversaries = {
            5: CrossClaimAttack(coordination, group_one, "x", "y"),
            6: CrossClaimAttack(coordination, group_one, "y", "x"),
        }
        return (
            run_key_distribution(N, adversaries=adversaries, seed=11),
            coordination,
            group_one,
        )

    def test_groups_assign_same_signature_to_different_nodes(self, result_and_coord):
        result, coordination, group_one = result_and_coord
        signed = sign_value(coordination.known_keypairs()["x"].secret, "m")
        for observer in group_one:
            assert result.directories[observer].assign(signed) == [5]
        for observer in {3, 4}:
            assert result.directories[observer].assign(signed) == [6]

    def test_correct_bindings_untouched(self, result_and_coord):
        result, _, _ = result_and_coord
        for observer in range(5):
            for subject in range(5):
                assert result.directories[observer].predicates_for(subject) == (
                    result.keypairs[subject].predicate,
                )


class TestMixedPredicateAttack:
    def test_assignment_classes(self):
        coordination = AdversaryCoordination()
        group_one = {0, 1}
        adversaries = {5: MixedPredicateAttack(coordination, group_one, "p", "q")}
        result = run_key_distribution(6, adversaries=adversaries, seed=12)
        signed = sign_value(coordination.known_keypairs()["p"].secret, "m")
        # Group one can assign it; the others cannot assign it at all —
        # the 'select the class of nodes which can assign' situation.
        for observer in group_one:
            assert result.directories[observer].assign(signed) == [5]
        for observer in {2, 3, 4}:
            assert result.directories[observer].assign(signed) == []

    def test_lazy_keypair_generation_is_stable(self):
        import random

        coordination = AdversaryCoordination()
        rng = random.Random(0)
        first = coordination.keypair("label", rng)
        second = coordination.keypair("label", rng)
        assert first is second
