"""The adversary plane: parsing, budget enforcement, plane-vs-manual
equivalence, picklability."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreement import make_oral_agreement_protocols
from repro.errors import ConfigurationError
from repro.faults import (
    AckLieProtocol,
    AdversarySpec,
    Behavior,
    CrashProtocol,
    EquivocatingProtocol,
    RandomNoiseProtocol,
    RushMirrorProtocol,
    SilentProtocol,
    behavior_grammar_help,
    make_adversary,
    parse_behavior,
)
from repro.faults.adversary import NOISE_POOL, DropSends, TamperPayloads
from repro.harness import run_fd_scenario
from repro.sim import Protocol, run_protocols

N, T = 7, 2


class TestParseBehavior:
    def test_parameterless_kinds(self):
        assert parse_behavior("silent") == Behavior("silent")
        assert parse_behavior("noise") == Behavior("noise")
        assert parse_behavior("rush") == Behavior("rush")

    def test_crash_with_and_without_recovery(self):
        assert parse_behavior("crash@2") == Behavior("crash", at=2)
        assert parse_behavior("crash@2-5") == Behavior("crash", at=2, recover=5)

    def test_probabilistic_kinds(self):
        assert parse_behavior("drop@0.3") == Behavior("drop", prob=0.3)
        assert parse_behavior("tamper@0.5") == Behavior("tamper", prob=0.5)

    @pytest.mark.parametrize(
        "spec",
        ["gremlin", "silent@3", "crash", "crash@x", "crash@5-2", "drop@2.0",
         "drop@x", "tamper@0"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_behavior(spec)

    def test_loss_exploiting_kinds(self):
        assert parse_behavior("ack-lie") == Behavior("ack-lie")
        assert parse_behavior("ack-lie@3") == Behavior("ack-lie", at=3)
        assert parse_behavior("equivocate@2") == Behavior("equivocate", at=2)

    def test_unknown_kind_error_lists_kinds(self):
        with pytest.raises(ConfigurationError, match="silent"):
            parse_behavior("gremlin")

    def test_unknown_kind_error_derives_from_the_parse_table(self):
        """The CLI's exit-2 message is this error verbatim, so the list
        must come from the grammar table — a behaviour added there is
        advertised everywhere without a second edit."""
        with pytest.raises(ConfigurationError, match="ack-lie"):
            parse_behavior("gremlin")
        assert "equivocate[@T]" in behavior_grammar_help()

    def test_round_trip_through_spec(self):
        for spec in ("silent", "crash@2", "crash@2-5", "drop@0.3", "rush",
                     "ack-lie@1", "equivocate"):
            assert parse_behavior(spec).spec() == spec


class TestBudgetEnforcement:
    def test_within_budget_constructs(self):
        spec = AdversarySpec(corrupt=((3, "silent"), (5, "rush")), t=2)
        assert spec.faulty == frozenset({3, 5})
        assert spec.rushing == frozenset({5})

    def test_over_budget_refused_at_construction(self):
        with pytest.raises(ConfigurationError, match="budget"):
            AdversarySpec(corrupt=((1, "silent"), (2, "silent"), (3, "silent")), t=2)

    def test_overrides_count_against_the_budget(self):
        with pytest.raises(ConfigurationError, match="budget"):
            AdversarySpec(
                corrupt=((1, "silent"),),
                overrides=((2, SilentProtocol()),),
                t=1,
            )

    def test_duplicate_nodes_refused(self):
        with pytest.raises(ConfigurationError, match="more than once"):
            AdversarySpec(corrupt=((1, "silent"), (1, "rush")), t=3)
        with pytest.raises(ConfigurationError, match="more than once"):
            AdversarySpec(
                corrupt=((1, "silent"),),
                overrides=((1, SilentProtocol()),),
                t=3,
            )

    def test_runner_enforces_budget_for_scenarios(self):
        with pytest.raises(ConfigurationError, match="budget"):
            run_fd_scenario(
                N, 1, "v", scheme="simulated-hmac",
                adversary="5=silent;6=silent",
            )


class TestMakeAdversary:
    def test_none_passes_through(self):
        assert make_adversary(None, t=2) is None

    def test_spec_instance_passes_through(self):
        spec = AdversarySpec(corrupt=((1, "silent"),), t=2)
        assert make_adversary(spec, t=5) is spec

    def test_string_grammar(self):
        spec = make_adversary("3=silent;5=crash@2-4;delivery=loss:0.2", t=2)
        assert spec.corrupt == (
            (3, Behavior("silent")),
            (5, Behavior("crash", at=2, recover=4)),
        )
        assert spec.delivery == "loss:0.2"

    def test_mapping_form(self):
        spec = make_adversary({6: "noise"}, t=2, delivery="bounded:3")
        assert spec.corrupt == ((6, Behavior("noise")),)
        assert spec.delivery == "bounded:3"

    @pytest.mark.parametrize("spec", ["5", "=silent", "5=", "x=silent"])
    def test_malformed_items_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            make_adversary(spec, t=2)

    def test_adaptive_item(self):
        spec = make_adversary("adaptive:silence-muffled", t=2)
        assert spec.strategy == "silence-muffled"
        assert spec.corrupt == ()
        assert spec.spec() == "adaptive:silence-muffled"

    def test_adaptive_item_composes_with_corruptions_and_delivery(self):
        spec = make_adversary(
            "6=silent;adaptive:gag-sender;delivery=loss:0.1", t=2
        )
        assert spec.strategy == "gag-sender"
        assert spec.faulty == frozenset({6})
        assert spec.delivery == "loss:0.1"

    def test_unknown_adaptive_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_adversary("adaptive:gremlin", t=2)


class TestPicklability:
    def test_declarative_specs_pickle(self):
        spec = make_adversary("3=silent;5=drop@0.3;delivery=loss:0.2", t=2)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_coordinate_filters_pickle_and_are_pure(self):
        drop = DropSends(0.4, 3)
        clone = pickle.loads(pickle.dumps(drop))
        decisions = [(r, to, drop(r, to, None)) for r in range(5) for to in range(5)]
        assert decisions == [(r, to, clone(r, to, None)) for r in range(5) for to in range(5)]
        assert any(not kept for _, _, kept in decisions)
        assert any(kept for _, _, kept in decisions)

    def test_tamper_substitutes_recognisable_garbage(self):
        tamper = TamperPayloads(1.0, 2)
        assert tamper(3, 1, ("real", 1)) == ("tampered", 2, 3)


BEHAVIOR_POOL = (
    "silent", "crash@1", "crash@1-3", "noise", "rush", "ack-lie",
    "equivocate@1",
)


def manual_protocols(spec_pairs, value="v"):
    """The pre-plane way: hand-built wrapper replacements."""
    protocols = make_oral_agreement_protocols(N, T, value)
    for node, kind in spec_pairs:
        if kind == "silent":
            protocols[node] = SilentProtocol()
        elif kind == "crash@1":
            protocols[node] = CrashProtocol(protocols[node], crash_round=1)
        elif kind == "crash@1-3":
            protocols[node] = CrashProtocol(
                protocols[node], crash_round=1, recover_round=3
            )
        elif kind == "noise":
            protocols[node] = RandomNoiseProtocol(NOISE_POOL, halt_after=T + 2)
        elif kind == "rush":
            protocols[node] = RushMirrorProtocol(halt_after=T + 2)
        elif kind == "ack-lie":
            protocols[node] = AckLieProtocol(protocols[node])
        elif kind == "equivocate@1":
            protocols[node] = EquivocatingProtocol(protocols[node], from_tick=1)
    return protocols


def plane_protocols(spec_pairs, value="v"):
    """The adversary-plane way: one declarative spec."""
    spec = AdversarySpec(corrupt=spec_pairs, t=T)
    return spec.protocols_for(make_oral_agreement_protocols(N, T, value))


def observables(result):
    return {
        "rounds": result.rounds_executed,
        "decisions": {k: repr(v) for k, v in result.decisions().items()},
        "messages": result.metrics.messages_total,
        "per_round": dict(result.metrics.messages_per_round),
        "per_sender": dict(result.metrics.messages_per_sender),
        "per_kind": dict(result.metrics.messages_per_kind),
        "bytes": result.metrics.bytes_total,
    }


@st.composite
def adversary_specs(draw):
    faulty = draw(st.sets(st.integers(min_value=0, max_value=N - 1), max_size=T))
    return tuple(
        (node, draw(st.sampled_from(BEHAVIOR_POOL))) for node in sorted(faulty)
    )


class TestPlaneEqualsManualWrappers:
    """The re-layering acceptance property: a synchronous run whose
    corruption is named through the adversary plane is bit-for-bit the
    run with hand-built wrapper replacements — decisions, rounds, and
    per-kind message/byte counters."""

    @given(spec=adversary_specs(), seed=st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_bit_for_bit_under_random_adversary_specs(self, spec, seed):
        manual = run_protocols(manual_protocols(spec), seed=seed)
        plane = run_protocols(plane_protocols(spec), seed=seed)
        assert observables(plane) == observables(manual), f"spec={spec}"

    def test_behavior_wrapping_preserves_inner_protocol(self):
        spec = AdversarySpec(corrupt=((2, "crash@1"),), t=T)
        protocols = spec.protocols_for(
            make_oral_agreement_protocols(N, T, "v")
        )
        assert isinstance(protocols[2], CrashProtocol)

    def test_corrupt_node_outside_network_rejected(self):
        spec = AdversarySpec(corrupt=((12, "silent"),), t=T)
        with pytest.raises(ConfigurationError, match="only"):
            spec.protocols_for(make_oral_agreement_protocols(N, T, "v"))


class TestScriptedBehavior:
    def test_scripted_requires_script(self):
        with pytest.raises(ConfigurationError, match="script"):
            Behavior("scripted")

    def test_scripted_spec_replays_its_script(self):
        received = []

        class Sink(Protocol):
            def on_round(self, ctx, inbox):
                received.extend((env.sender, env.payload) for env in inbox)
                if ctx.round >= 2:
                    ctx.halt()

        spec = AdversarySpec(
            corrupt=(
                (1, Behavior("scripted", script=((0, 0, "boo"), (1, 0, "hiss")))),
            ),
            t=1,
        )
        run_protocols(spec.protocols_for([Sink(), Sink()]))
        assert received == [(1, "boo"), (1, "hiss")]
