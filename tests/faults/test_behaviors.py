"""Generic Byzantine wrappers: crash, tamper, script, silence."""

from __future__ import annotations

from repro.faults import (
    CrashProtocol,
    ScriptedProtocol,
    SilentProtocol,
    TamperingProtocol,
)
from repro.sim import Envelope, NodeContext, Protocol, run_protocols


class Beacon(Protocol):
    """Broadcasts its round number every round for `rounds` rounds."""

    def __init__(self, rounds: int = 3) -> None:
        self.rounds = rounds

    def on_round(self, ctx: NodeContext, inbox):
        if ctx.round < self.rounds:
            ctx.broadcast(("beacon", ctx.round))
        else:
            ctx.halt()


class Sink(Protocol):
    def __init__(self) -> None:
        self.received: list[tuple[int, object]] = []

    def on_round(self, ctx: NodeContext, inbox):
        for env in inbox:
            self.received.append((env.sender, env.payload))
        if ctx.round >= 4:
            ctx.halt()


class TestSilentProtocol:
    def test_sends_nothing_and_halts(self):
        sink = Sink()
        result = run_protocols([SilentProtocol(), sink])
        assert result.metrics.messages_total == 0
        assert sink.received == []


class TestCrashProtocol:
    def test_honest_until_crash_round(self):
        sink = Sink()
        result = run_protocols([CrashProtocol(Beacon(3), crash_round=2), sink])
        rounds_seen = [payload[1] for _, payload in sink.received]
        assert rounds_seen == [0, 1]

    def test_crash_at_round_zero_is_silence(self):
        sink = Sink()
        run_protocols([CrashProtocol(Beacon(3), crash_round=0), sink])
        assert sink.received == []


class TestTamperingProtocol:
    def test_drop_filter_suppresses_selected_messages(self):
        sinks = [Sink(), Sink()]
        beacon = TamperingProtocol(
            Beacon(2), should_send=lambda rnd, to, payload: to != 1
        )
        run_protocols([beacon, *sinks])
        assert len(sinks[0].received) == 0   # node 1 was filtered out
        assert len(sinks[1].received) == 2   # node 2 got both rounds

    def test_drop_filter_by_round(self):
        sink = Sink()
        beacon = TamperingProtocol(
            Beacon(3), should_send=lambda rnd, to, payload: rnd != 1
        )
        run_protocols([beacon, sink])
        rounds = [payload[1] for _, payload in sink.received]
        assert rounds == [0, 2]

    def test_transform_rewrites_payloads(self):
        sink = Sink()
        beacon = TamperingProtocol(
            Beacon(1), transform=lambda rnd, to, payload: ("tampered", payload)
        )
        run_protocols([beacon, sink])
        assert sink.received == [(0, ("tampered", ("beacon", 0)))]

    def test_broadcast_goes_through_filter_per_recipient(self):
        sinks = [Sink(), Sink(), Sink()]
        beacon = TamperingProtocol(
            Beacon(1), should_send=lambda rnd, to, payload: to == 2
        )
        result = run_protocols([beacon, *sinks])
        assert result.metrics.messages_total == 1

    def test_inner_state_is_preserved(self):
        """The wrapper delegates rounds; the inner protocol's own state
        machine advances normally."""
        inner = Beacon(2)
        wrapped = TamperingProtocol(inner)
        sink = Sink()
        result = run_protocols([wrapped, sink])
        assert len(sink.received) == 2


class TestScriptedProtocol:
    def test_exact_script_is_played(self):
        sink = Sink()
        script = {0: [(1, "a")], 2: [(1, "b"), (1, "c")]}
        result = run_protocols([ScriptedProtocol(script), sink])
        assert sink.received == [(0, "a"), (0, "b"), (0, "c")]
        assert result.metrics.messages_per_round[0] == 1
        assert result.metrics.messages_per_round[2] == 2

    def test_halt_after_defaults_to_last_scripted_round(self):
        result = run_protocols([ScriptedProtocol({1: [(1, "x")]}), Sink()])
        assert result.metrics.messages_total == 1

    def test_empty_script_halts_immediately(self):
        result = run_protocols([ScriptedProtocol({}), SilentProtocol()])
        assert result.rounds_executed == 1
