"""FD-attack behaviours: each produces exactly its designed deviation."""

from __future__ import annotations

import pytest

from repro.auth import trusted_dealer_setup
from repro.faults import (
    DelayedRelayChainNode,
    EquivocatingSender,
    FabricatingChainNode,
    ImpersonatingChainNode,
    duplicating_chain_node,
)
from repro.fd import evaluate_fd, make_chain_fd_protocols
from repro.sim import run_protocols

N, T = 7, 2


@pytest.fixture(scope="module")
def world():
    return trusted_dealer_setup(N, seed="fdattacks")


def run_with(world, adversaries, seed=0, value="v"):
    keypairs, directories = world
    protocols = make_chain_fd_protocols(
        N, T, value, keypairs, directories, adversaries=adversaries
    )
    result = run_protocols(protocols, seed=seed, record_trace=True)
    correct = set(range(N)) - set(adversaries)
    return result, evaluate_fd(result, correct, 0, value)


class TestDelayedRelay:
    def test_late_chain_is_discovered(self, world):
        keypairs, _ = world
        result, evaluation = run_with(
            world, {1: DelayedRelayChainNode(N, T, keypairs[1])}
        )
        assert evaluation.ok and evaluation.any_discovery
        # The successor discovers at its deadline (missing message).
        assert 2 in result.discoverers()

    def test_longer_delay_also_discovered(self, world):
        keypairs, _ = world
        result, evaluation = run_with(
            world, {1: DelayedRelayChainNode(N, T, keypairs[1], delay=2)}
        )
        assert evaluation.ok and evaluation.any_discovery

    def test_the_late_message_is_itself_a_deviation(self, world):
        """Even a successor that tolerated the gap would see the late
        message as out-of-pattern: both checks catch this attack."""
        keypairs, _ = world
        result, _ = run_with(world, {1: DelayedRelayChainNode(N, T, keypairs[1])})
        reasons = [s.discovered for s in result.states if s.discovered]
        assert any("expected exactly one" in r or "unexpected" in r for r in reasons)


class TestImpersonatingChainNode:
    def test_honest_keys_with_wrong_link_name_discovered(self, world):
        """Signing correctly but *naming the wrong predecessor* violates
        the section-4 chain discipline and is discovered."""
        keypairs, _ = world
        result, evaluation = run_with(
            world,
            {1: ImpersonatingChainNode(N, T, keypairs[1], name_in_link=5)},
        )
        assert evaluation.ok and evaluation.any_discovery

    def test_foreign_key_discovered_under_consistent_directories(self, world):
        """With globally consistent directories, a chain node signing with
        another node's key fails the outer assignment immediately."""
        keypairs, _ = world
        result, evaluation = run_with(
            world, {1: ImpersonatingChainNode(N, T, keypairs[5])}
        )
        assert evaluation.ok and evaluation.any_discovery


class TestEquivocatingSender:
    def test_unlisted_recipients_discover_missing_message(self, world):
        keypairs, _ = world
        result, evaluation = run_with(
            world, {0: EquivocatingSender(keypairs[0], {})}
        )
        assert evaluation.ok
        assert 1 in result.discoverers()  # the chain never started

    def test_duplicate_leaves_to_one_node_discovered(self, world):
        keypairs, _ = world

        class DoubleSender(EquivocatingSender):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    from repro.crypto import sign_leaf
                    from repro.fd.authenticated import CHAIN_MSG

                    leaf = sign_leaf(self._keypair.secret, "v")
                    ctx.send(1, (CHAIN_MSG, leaf))
                    ctx.send(1, (CHAIN_MSG, leaf))
                ctx.halt()

        result, evaluation = run_with(world, {0: DoubleSender(keypairs[0], {})})
        assert evaluation.ok
        assert 1 in result.discoverers()


class TestFabricationVariants:
    def test_fabricated_value_never_accepted(self, world):
        keypairs, _ = world
        for seed in range(3):
            result, evaluation = run_with(
                world,
                {2: FabricatingChainNode(N, T, keypairs[2], ("evil", seed))},
                seed=seed,
            )
            assert evaluation.ok
            assert ("evil", seed) not in result.decisions().values()

    def test_duplicating_relay_discovered(self, world):
        keypairs, directories = world
        result, evaluation = run_with(
            world, {1: duplicating_chain_node(N, T, keypairs[1], directories[1])}
        )
        assert evaluation.ok and evaluation.any_discovery
