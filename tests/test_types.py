"""Model-level validation helpers in repro.types."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.types import (
    all_nodes,
    default_fault_budget,
    other_nodes,
    validate_fault_budget,
    validate_node_count,
    validate_node_id,
)


class TestNodeCount:
    @pytest.mark.parametrize("n", [2, 3, 100])
    def test_valid(self, n):
        validate_node_count(n)

    @pytest.mark.parametrize("n", [1, 0, -3])
    def test_too_small(self, n):
        with pytest.raises(ConfigurationError):
            validate_node_count(n)

    @pytest.mark.parametrize("n", ["4", 4.0, None, True])
    def test_non_int_rejected(self, n):
        with pytest.raises(ConfigurationError):
            validate_node_count(n)


class TestNodeId:
    def test_valid_range(self):
        validate_node_id(0, 4)
        validate_node_id(3, 4)

    @pytest.mark.parametrize("node", [-1, 4, 100])
    def test_out_of_range(self, node):
        with pytest.raises(ConfigurationError):
            validate_node_id(node, 4)

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_node_id(True, 4)


class TestFaultBudget:
    def test_bounds(self):
        validate_fault_budget(0, 2)
        validate_fault_budget(2, 4)

    @pytest.mark.parametrize("t,n", [(-1, 4), (3, 4), (4, 4)])
    def test_out_of_bounds(self, t, n):
        with pytest.raises(ConfigurationError):
            validate_fault_budget(t, n)

    @given(n=st.integers(min_value=2, max_value=10_000))
    def test_default_budget_always_legal(self, n):
        t = default_fault_budget(n)
        validate_fault_budget(t, n)
        assert t == (n - 1) // 3


class TestEnumeration:
    def test_all_nodes(self):
        assert list(all_nodes(3)) == [0, 1, 2]

    def test_other_nodes(self):
        assert other_nodes(1, 4) == [0, 2, 3]

    def test_other_nodes_validates(self):
        with pytest.raises(ConfigurationError):
            other_nodes(5, 4)
