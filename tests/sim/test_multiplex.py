"""Instance multiplexing: wire tags, demux, per-instance rng and metrics."""

from __future__ import annotations

import pytest

from repro.agreement.oral import OralAgreementProtocol
from repro.analysis.complexity import om_envelopes
from repro.faults import RandomNoiseProtocol
from repro.sim import (
    MUX_OUTCOMES,
    Envelope,
    InstanceMux,
    NodeContext,
    Protocol,
    collect_instances,
    instance_rng,
    merge_instance_aggregates,
    mux_unwrap,
    mux_wrap,
    payload_kind,
    run_protocols,
)
from repro.sim.compose import PhaseHost


class TestWireExtension:
    def test_wrap_unwrap_round_trip(self):
        wrapped = mux_wrap("akd", 3, ("om-value", "v"))
        assert mux_unwrap(wrapped, "akd") == (3, ("om-value", "v"))

    @pytest.mark.parametrize(
        "noise",
        [
            ("mux", "akd", 3),                    # wrong arity
            ("mux", "other", 3, "payload"),       # wrong channel
            ("mux", "akd", "3", "payload"),       # non-int instance
            ("akd", 3, "payload"),                # the old raw-tuple hack
            "garbage",
            b"raw",
            42,
        ],
    )
    def test_malformed_wrappers_parse_to_none(self, noise):
        assert mux_unwrap(noise, "akd") is None

    def test_payload_kind_attributes_to_channel(self):
        assert payload_kind(mux_wrap("akd", 0, ("om-value", "v"))) == "akd"

    def test_payload_kind_of_malformed_wrapper_is_the_raw_tag(self):
        assert payload_kind(("mux", 1, 2)) == "mux"


class _Echo(Protocol):
    """Round 0: node 0 broadcasts; round 1: everyone decides on receipt."""

    def on_round(self, ctx, inbox):
        if ctx.round == 0 and ctx.node == 0:
            ctx.broadcast(("echo", "hello"))
        if ctx.round >= 1:
            values = [env.payload for env in inbox]
            ctx.decide((ctx.node, values))
            ctx.halt()


class TestInstanceMux:
    def _run(self, n=3, ids=(0, 1, 4)):
        protocols = [
            InstanceMux({k: _Echo() for k in ids}, channel="test")
            for _ in range(n)
        ]
        return run_protocols(protocols, seed=7), protocols

    def test_streams_are_isolated_and_demuxed(self):
        run, protocols = self._run()
        for mux in protocols:
            for k, outcome in mux.outcomes.items():
                assert outcome.halted and outcome.decided
        # Each instance's receivers saw exactly their own instance's
        # traffic, unwrapped.
        _, values = protocols[1].outcomes[4].decision
        assert values == [("echo", "hello")]

    def test_outputs_published_and_node_halts(self):
        run, _ = self._run()
        for state in run.states:
            assert state.halted
            assert sorted(state.outputs[MUX_OUTCOMES]) == [0, 1, 4]

    def test_per_instance_metrics_count_inner_envelopes(self):
        run, protocols = self._run()
        outcome = protocols[0].outcomes[1]
        assert outcome.metrics.messages_total == 2      # node 0 -> 2 peers
        assert outcome.metrics.messages_per_kind == {"echo": 2}
        # Run-level accounting sees the wrapped traffic, attributed to
        # the channel, and counts every instance.
        assert run.metrics.messages_total == 6
        assert run.metrics.messages_per_kind == {"test": 6}

    def test_wrapper_overhead_is_charged_at_run_level_only(self):
        run, protocols = self._run()
        inner_bytes = sum(
            mux.outcomes[k].metrics.bytes_total
            for mux in protocols
            for k in mux.outcomes
        )
        assert run.metrics.bytes_total > inner_bytes

    def test_instance_halting_in_setup_does_not_wedge_the_mux(self):
        """Regression: an instance that halts during its setup (a
        config-validating or crashed-from-start behaviour) used to leave
        the live count permanently positive, so the mux never halted and
        the run hit the scheduler horizon."""

        class HaltsInSetup(Protocol):
            def setup(self, ctx):
                ctx.halt()

            def on_round(self, ctx, inbox):  # pragma: no cover
                raise AssertionError("stepped a setup-halted instance")

        protocols = [
            InstanceMux({0: HaltsInSetup(), 1: _Echo()}, channel="test")
            for _ in range(2)
        ]
        run = run_protocols(protocols, seed=1)
        for state in run.states:
            assert state.halted
            assert sorted(state.outputs[MUX_OUTCOMES]) == [0, 1]
        assert protocols[0].outcomes[0].halted
        assert protocols[0].outcomes[1].decided

    def test_all_instances_halting_in_setup(self):
        class HaltsInSetup(Protocol):
            def setup(self, ctx):
                ctx.halt()

            def on_round(self, ctx, inbox):  # pragma: no cover
                raise AssertionError("stepped a setup-halted instance")

        protocols = [InstanceMux({0: HaltsInSetup()}) for _ in range(2)]
        run = run_protocols(protocols, seed=1)
        assert run.rounds_executed == 1
        assert all(state.halted for state in run.states)

    def test_foreign_and_malformed_traffic_reaches_no_instance(self):
        class Noisy(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.broadcast(("mux", "test", 99, "foreign-instance"))
                    ctx.broadcast(("not-mux", "junk"))
                ctx.halt()

        protocols = [
            Noisy(),
            InstanceMux({0: _Echo()}, channel="test"),
        ]
        run = run_protocols(protocols, seed=1)
        _, values = protocols[1].outcomes[0].decision
        assert values == []  # nothing parsed into instance 0


class TestRecordingUnderMux:
    """The recording branch of the run loop under multiplexed hosts —
    previously only exercised single-instance (and now also living in
    the event kernel rather than the old runner)."""

    def _run(self, **kwargs):
        protocols = [
            InstanceMux({k: _Echo() for k in (0, 1, 4)}, channel="test")
            for _ in range(3)
        ]
        return run_protocols(protocols, seed=7, **kwargs)

    def test_record_trace_sees_wrapped_sends_and_halts(self):
        run = self._run(record_trace=True)
        sends = run.trace.of_kind("send")
        assert len(sends) == run.metrics.messages_total == 6
        # Per-kind attribution in the trace matches the metrics: the
        # channel, not the transport tag.
        assert {tag for _, tag in (e.detail for e in sends)} == {"test"}
        halts = run.trace.of_kind("halt")
        assert {e.node for e in halts} == {0, 1, 2}
        # Instance decisions are captured in outcomes, never in the node
        # state — so the trace must show no decide transitions.
        assert run.trace.of_kind("decide") == []

    def test_record_views_captures_wrapped_rounds(self):
        run = self._run(record_views=True)
        assert len(run.views) == 3
        for view in run.views:
            assert len(view.rounds) == run.rounds_executed
        # Round 1: node 1 received node 0's broadcast on every instance.
        round1 = run.views[1].rounds[1]
        assert len(round1) == 3
        assert {msg.sender for msg in round1} == {0}

    def test_recording_changes_no_outcome(self):
        plain = self._run()
        recorded = self._run(record_views=True, record_trace=True)
        assert plain.rounds_executed == recorded.rounds_executed
        assert plain.metrics.messages_total == recorded.metrics.messages_total
        assert plain.metrics.bytes_total == recorded.metrics.bytes_total
        assert collect_instances(plain) == collect_instances(recorded)


class TestMuxOnKernelDeliveryModels:
    """InstanceMux is delivery-model agnostic: it runs on the kernel's
    general event path unchanged (the mux demultiplexes whatever arrives
    at each activation)."""

    def test_mux_completes_under_bounded_delay(self):
        from repro.sim import BoundedDelay

        protocols = [
            InstanceMux({k: _Echo() for k in (0, 1)}, channel="test")
            for _ in range(3)
        ]
        run = run_protocols(protocols, seed=7, delivery=BoundedDelay(1))
        aggregates = collect_instances(run)
        baseline = collect_instances(
            run_protocols(
                [
                    InstanceMux({k: _Echo() for k in (0, 1)}, channel="test")
                    for _ in range(3)
                ],
                seed=7,
            )
        )
        assert aggregates == baseline


class TestInstanceRngNamespacing:
    def test_streams_distinct_across_instances(self):
        a = instance_rng(0, 1, 0)
        b = instance_rng(0, 1, 1)
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_streams_distinct_from_node_stream(self):
        from repro.sim import node_rng

        assert instance_rng(0, 1, 0).random() != node_rng(0, 1).random()

    def test_two_byzantine_instances_draw_distinct_streams(self):
        """Regression: all instances at one node used to share the node's
        one rng stream, so co-located Byzantine behaviours were clones."""
        pool = (("noise", "a"), ("noise", "b"), ("noise", "c"))
        mux = InstanceMux(
            {0: RandomNoiseProtocol(pool, halt_after=4, max_sends=3),
             1: RandomNoiseProtocol(pool, halt_after=4, max_sends=3)},
            channel="test",
        )
        peers = [
            InstanceMux({0: _Collector(), 1: _Collector()}, channel="test")
            for _ in range(3)
        ]
        run = run_protocols([mux] + peers, seed=42)
        sent = {0: [], 1: []}
        for state in run.states[1:]:
            for k, outcome in state.outputs[MUX_OUTCOMES].items():
                sent[k].extend(outcome.decision)
        # Both instances were noisy, and their draws differ.
        assert sent[0] and sent[1]
        assert sent[0] != sent[1]

    def test_instance_stream_independent_of_corun_instances(self):
        """The sharding precondition, at rng level: instance 0's draws do
        not depend on instance 1 existing."""
        pool = (("noise", "x"), ("noise", "y"))

        def noise_sent(ids):
            mux = InstanceMux(
                {k: RandomNoiseProtocol(pool, halt_after=3) for k in ids},
                channel="c",
            )
            peers = [
                InstanceMux({k: _Collector() for k in ids}, channel="c")
                for _ in range(2)
            ]
            run = run_protocols([mux] + peers, seed=5)
            out = []
            for state in run.states[1:]:
                outcome = state.outputs[MUX_OUTCOMES][0]
                out.append(outcome.decision)
            return out

        assert noise_sent((0,)) == noise_sent((0, 1))


class _Collector(Protocol):
    """Accumulates every received payload; decides the list at round 4."""

    def __init__(self):
        self.received = []

    def on_round(self, ctx, inbox):
        self.received.extend(env.payload for env in inbox)
        if ctx.round >= 4:
            ctx.decide(tuple(self.received))
            ctx.halt()


class _Late(Protocol):
    """Decides in its round 0 — exercises PhaseHost round-offset edges."""

    def __init__(self):
        self.seen = []

    def on_round(self, ctx, inbox):
        self.seen.append(ctx.round)
        ctx.decide(("late", ctx.node))
        ctx.halt()


class _HostedInstance(Protocol):
    """An instance that embeds a sub-protocol through PhaseHost at
    offset 1 — PhaseHost *inside* InstanceMux."""

    def __init__(self):
        self.inner = _Late()
        self.host = None

    def setup(self, ctx):
        self.host = PhaseHost(self.inner, offset=1)

    def on_round(self, ctx, inbox):
        if ctx.round >= 1:
            self.host.step(ctx, inbox)
        if self.host.outcome.halted:
            ctx.decide(("wrapped", self.host.outcome.decision))
            ctx.halt()


class TestNestedHosts:
    def test_phasehost_inside_instancemux(self):
        protocols = [
            InstanceMux({0: _HostedInstance(), 2: _HostedInstance()},
                        channel="nest")
            for _ in range(2)
        ]
        run = run_protocols(protocols, seed=3)
        # The inner protocol saw its own shifted round 0, inside the mux.
        for node, mux in enumerate(protocols):
            for k, outcome in mux.outcomes.items():
                assert outcome.decision == ("wrapped", ("late", node))
        hosted = protocols[0]._protocols[2]
        assert hosted.inner.seen == [0]
        assert run.states[0].halted

    def test_instancemux_inside_phasehost(self):
        """The embedding agreement-based key distribution uses."""

        class Outer(Protocol):
            def __init__(self):
                self.mux = InstanceMux({0: _Echo()}, channel="deep")
                self.host = None

            def setup(self, ctx):
                self.host = PhaseHost(self.mux, offset=0)

            def on_round(self, ctx, inbox):
                self.host.step(ctx, inbox)
                if self.host.outcome.halted:
                    ctx.decide(self.mux.outcomes[0].decision)
                    ctx.halt()

        protocols = [Outer(), Outer()]
        run = run_protocols(protocols, seed=2)
        assert run.states[1].decision == (1, [("echo", "hello")])


class TestAggregation:
    def test_collect_instances_matches_formula(self):
        n, t = 7, 2
        protocols = [
            InstanceMux(
                {
                    k: OralAgreementProtocol(
                        n, t, value="v" if k == node else None,
                        default=None, sender=k,
                    )
                    for k in range(n)
                },
                channel="om",
            )
            for node in range(n)
        ]
        run = run_protocols(protocols, seed=11)
        aggregates = collect_instances(run)
        assert sorted(aggregates) == list(range(n))
        for k, agg in aggregates.items():
            assert agg.messages == om_envelopes(n, t)
            assert agg.rounds == t + 1
            non_senders = {node for node in range(n) if node != k}
            assert set(agg.decisions) == set(range(n))
            assert {repr(agg.decisions[p]) for p in non_senders} == {"'v'"}
        assert (
            sum(a.messages for a in aggregates.values())
            == run.metrics.messages_total
        )

    def test_merge_rejects_overlapping_shards(self):
        run_aggs = {0: "a"}
        with pytest.raises(ValueError, match="more than one shard"):
            merge_instance_aggregates([run_aggs, {0: "b"}])

    def test_merge_sorts_by_instance(self):
        merged = merge_instance_aggregates([{3: "c"}, {1: "a"}])
        assert list(merged) == [1, 3]
