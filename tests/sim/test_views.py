"""Views: the paper's semantic failure-discovery definition, exercised.

    "If a node's view of a run differs from its views of all failure-free
    runs it discovers a failure."

These tests run a protocol once honestly to get the reference views, then
re-run with faults and check that view deviation is exactly where the
operational discovery fired.
"""

from __future__ import annotations

from repro.auth import trusted_dealer_setup
from repro.faults import SilentProtocol
from repro.fd import make_chain_fd_protocols
from repro.sim import Envelope, Protocol, run_protocols
from repro.sim.views import ReceivedMessage, View


class Chatter(Protocol):
    def __init__(self, rounds: int) -> None:
        self.rounds = rounds

    def on_round(self, ctx, inbox):
        if ctx.round < self.rounds:
            ctx.broadcast(("r", ctx.round, ctx.node))
        else:
            ctx.halt()


class TestViewRecording:
    def test_views_capture_received_sets(self):
        result = run_protocols(
            [Chatter(2), Chatter(2), Chatter(2)], record_views=True
        )
        view = result.views[0]
        assert len(view.rounds) >= 3
        assert view.rounds[0] == frozenset()           # nothing in flight yet
        assert len(view.rounds[1]) == 2                 # two peers broadcast
        senders = {m.sender for m in view.rounds[1]}
        assert senders == {1, 2}

    def test_payload_decodes_back(self):
        result = run_protocols([Chatter(1), Chatter(1)], record_views=True)
        message = next(iter(result.views[0].rounds[1]))
        assert message.payload() == ("r", 0, 1)

    def test_views_off_by_default(self):
        result = run_protocols([Chatter(1), Chatter(1)])
        assert result.views == []


class TestViewComparison:
    def test_identical_runs_have_identical_views(self):
        first = run_protocols([Chatter(2) for _ in range(3)], seed=5, record_views=True)
        second = run_protocols([Chatter(2) for _ in range(3)], seed=5, record_views=True)
        for va, vb in zip(first.views, second.views):
            assert va.differs_from(vb) is None

    def test_deviation_round_is_reported(self):
        reference = View(node=0)
        reference.record_round([])
        reference.record_round(
            [Envelope(sender=1, recipient=0, payload="x", round_sent=0)]
        )
        actual = View(node=0)
        actual.record_round([])
        actual.record_round([])  # the expected message is missing
        assert actual.differs_from(reference) == 1

    def test_length_mismatch_is_deviation(self):
        reference = View(node=0)
        reference.record_round([])
        actual = View(node=0)
        actual.record_round([])
        actual.record_round([])
        assert actual.differs_from(reference) == 1

    def test_up_to_truncates(self):
        view = View(node=0)
        for _ in range(4):
            view.record_round([])
        assert len(view.up_to(1)) == 2


class TestSemanticDiscoveryAgreement:
    """Operational discovery fires iff the view deviates from the
    failure-free reference — checked on the chain FD protocol."""

    def _chain_views(self, n, t, adversaries=None):
        keypairs, directories = trusted_dealer_setup(n, seed="views")
        protocols = make_chain_fd_protocols(
            n, t, "v", keypairs, directories, adversaries=adversaries or {}
        )
        return run_protocols(protocols, seed=1, record_views=True)

    def test_honest_run_no_deviation_no_discovery(self):
        n, t = 6, 1
        reference = self._chain_views(n, t)
        repeat = self._chain_views(n, t)
        for ref, act in zip(reference.views, repeat.views):
            assert act.differs_from(ref) is None
        assert reference.discoverers() == []

    def test_crash_deviates_views_and_triggers_discovery(self):
        n, t = 6, 1
        reference = self._chain_views(n, t)
        faulty = self._chain_views(n, t, adversaries={1: SilentProtocol()})
        deviating = {
            node
            for node in range(n)
            if node != 1
            and faulty.views[node].differs_from(reference.views[node]) is not None
        }
        discoverers = set(faulty.discoverers()) - {1}
        # Every correct discoverer deviates, and every deviating correct
        # node discovered: the operational checks implement the semantic
        # definition exactly for this protocol.
        assert discoverers
        assert discoverers == deviating
