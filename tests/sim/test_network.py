"""Delivery models: spec parsing, jitter determinism, rushing semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim import (
    AdversarialOrder,
    BoundedDelay,
    Envelope,
    Protocol,
    SynchronousRounds,
    available_deliveries,
    make_delivery,
    run_protocols,
)


class TestMakeDelivery:
    def test_none_and_sync_are_lockstep(self):
        assert make_delivery(None).lockstep
        assert isinstance(make_delivery("sync"), SynchronousRounds)

    def test_bounded_default_and_explicit(self):
        assert make_delivery("bounded").delay == 2
        assert make_delivery("bounded:5").delay == 5

    def test_rush_from_spec_and_fallback_set(self):
        assert make_delivery("rush:3,5").rushing == frozenset({3, 5})
        assert make_delivery("rush", rushing=[1, 2]).rushing == frozenset({1, 2})
        # An explicit spec list wins over the fallback.
        assert make_delivery("rush:4", rushing=[1]).rushing == frozenset({4})

    def test_instance_passes_through(self):
        model = BoundedDelay(3)
        assert make_delivery(model) is model

    @pytest.mark.parametrize(
        "spec", ["warp", "bounded:x", "rush:a", "sync:1", "bounded:"]
    )
    def test_malformed_specs_rejected(self, spec):
        if spec == "bounded:":
            # empty argument falls back to the default bound
            assert make_delivery(spec).delay == 2
            return
        with pytest.raises(ConfigurationError):
            make_delivery(spec)

    def test_available_deliveries_lists_all(self):
        assert available_deliveries() == ["bounded", "rush", "sync"]

    def test_bad_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedDelay(0)


class _Bind:
    """Minimal kernel stand-in for exercising arrival_tick directly."""

    def __init__(self, seed):
        self.seed = seed


class TestBoundedDelayJitter:
    @given(seed=st.integers(0, 2**16), delay=st.integers(1, 5),
           tick=st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_arrival_within_bound(self, seed, delay, tick):
        model = BoundedDelay(delay)
        model.bind(_Bind(seed))
        env = Envelope(0, 1, "x", tick)
        arrival = model.arrival_tick(env, tick)
        assert tick + 1 <= arrival <= tick + delay

    def test_per_link_streams_are_deterministic(self):
        def schedule(seed):
            model = BoundedDelay(4)
            model.bind(_Bind(seed))
            return [
                model.arrival_tick(Envelope(s, r, "x", t), t)
                for t in range(5)
                for s in range(3)
                for r in range(3)
                if s != r
            ]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_rebind_resets_link_streams(self):
        model = BoundedDelay(4)
        model.bind(_Bind(3))
        first = [
            model.arrival_tick(Envelope(0, 1, "x", t), t) for t in range(8)
        ]
        model.bind(_Bind(3))
        assert first == [
            model.arrival_tick(Envelope(0, 1, "x", t), t) for t in range(8)
        ]


class TestAdversarialOrder:
    def test_rushing_nodes_activate_last(self):
        model = AdversarialOrder(rushing=[1, 3])
        assert list(model.activation_order(5)) == [0, 2, 4, 1, 3]

    def test_only_honest_to_rushing_is_same_tick(self):
        model = AdversarialOrder(rushing=[2])
        assert model.arrival_tick(Envelope(0, 2, "x", 4), 4) == 4
        assert model.arrival_tick(Envelope(0, 1, "x", 4), 4) == 5
        assert model.arrival_tick(Envelope(2, 0, "x", 4), 4) == 5

    def test_rushing_node_observes_same_round_traffic_end_to_end(self):
        observed = []

        class Talker(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round < 2:
                    ctx.broadcast(("say", ctx.node, ctx.round))
                else:
                    ctx.halt()

        class Spy(Protocol):
            def on_round(self, ctx, inbox):
                observed.extend(
                    (ctx.tick, env.payload[2]) for env in inbox
                )
                if ctx.round >= 2:
                    ctx.halt()

        run_protocols(
            [Talker(), Talker(), Spy()],
            delivery=AdversarialOrder(rushing=[2]),
        )
        assert observed
        # Every observation happens in the very round it was emitted.
        assert all(tick == emitted for tick, emitted in observed)

    def test_honest_nodes_keep_lockstep_timing(self):
        arrivals = []

        class Talker(Protocol):
            def on_round(self, ctx, inbox):
                arrivals.extend(
                    (ctx.tick, env.round_sent) for env in inbox
                )
                if ctx.round < 2:
                    ctx.broadcast(("say", ctx.node, ctx.round))
                else:
                    ctx.halt()

        run_protocols(
            [Talker(), Talker(), Talker()],
            delivery=AdversarialOrder(rushing=[]),
        )
        assert arrivals and all(t == sent + 1 for t, sent in arrivals)
