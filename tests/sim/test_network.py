"""Delivery models: spec parsing, jitter determinism, rushing semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim import (
    AdversarialOrder,
    BoundedDelay,
    Envelope,
    LossyDelivery,
    PartitionedDelivery,
    Protocol,
    SynchronousRounds,
    available_deliveries,
    make_delivery,
    run_protocols,
)


class TestMakeDelivery:
    def test_none_and_sync_are_lockstep(self):
        assert make_delivery(None).lockstep
        assert isinstance(make_delivery("sync"), SynchronousRounds)

    def test_bounded_default_and_explicit(self):
        assert make_delivery("bounded").delay == 2
        assert make_delivery("bounded:5").delay == 5

    def test_rush_from_spec_and_fallback_set(self):
        assert make_delivery("rush:3,5").rushing == frozenset({3, 5})
        assert make_delivery("rush", rushing=[1, 2]).rushing == frozenset({1, 2})
        # An explicit spec list wins over the fallback.
        assert make_delivery("rush:4", rushing=[1]).rushing == frozenset({4})

    def test_instance_passes_through(self):
        model = BoundedDelay(3)
        assert make_delivery(model) is model

    @pytest.mark.parametrize(
        "spec", ["warp", "bounded:x", "rush:a", "sync:1", "bounded:"]
    )
    def test_malformed_specs_rejected(self, spec):
        if spec == "bounded:":
            # empty argument falls back to the default bound
            assert make_delivery(spec).delay == 2
            return
        with pytest.raises(ConfigurationError):
            make_delivery(spec)

    def test_available_deliveries_lists_all(self):
        assert available_deliveries() == [
            "bounded", "loss", "partition", "rush", "sync"
        ]

    def test_loss_specs(self):
        model = make_delivery("loss:0.25")
        assert model.p == 0.25 and model.delay == 1
        jittered = make_delivery("loss:0.1:3")
        assert jittered.p == 0.1 and jittered.delay == 3
        with pytest.raises(ConfigurationError):
            make_delivery("loss:1.5")
        with pytest.raises(ConfigurationError):
            make_delivery("loss:x")

    def test_partition_specs(self):
        model = make_delivery("partition:0-2|3-5@6")
        assert model.schedule == (
            (0, (frozenset({0, 1, 2}), frozenset({3, 4, 5}))),
            (6, None),
        )
        assert not model.defer
        deferred = make_delivery("partition:0-1|2-3@4/defer")
        assert deferred.defer
        with pytest.raises(ConfigurationError):
            make_delivery("partition:0-2|3-5")  # no heal tick
        with pytest.raises(ConfigurationError):
            make_delivery("partition:0-2|2-5@6")  # overlapping blocks

    def test_bad_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedDelay(0)


class _Bind:
    """Minimal kernel stand-in for exercising arrival_tick directly."""

    def __init__(self, seed):
        self.seed = seed


class TestBoundedDelayJitter:
    @given(seed=st.integers(0, 2**16), delay=st.integers(1, 5),
           tick=st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_arrival_within_bound(self, seed, delay, tick):
        model = BoundedDelay(delay)
        model.bind(_Bind(seed))
        env = Envelope(0, 1, "x", tick)
        arrival = model.arrival_tick(env, tick)
        assert tick + 1 <= arrival <= tick + delay

    def test_per_link_streams_are_deterministic(self):
        def schedule(seed):
            model = BoundedDelay(4)
            model.bind(_Bind(seed))
            return [
                model.arrival_tick(Envelope(s, r, "x", t), t)
                for t in range(5)
                for s in range(3)
                for r in range(3)
                if s != r
            ]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_rebind_resets_link_streams(self):
        model = BoundedDelay(4)
        model.bind(_Bind(3))
        first = [
            model.arrival_tick(Envelope(0, 1, "x", t), t) for t in range(8)
        ]
        model.bind(_Bind(3))
        assert first == [
            model.arrival_tick(Envelope(0, 1, "x", t), t) for t in range(8)
        ]


class TestAdversarialOrder:
    def test_rushing_nodes_activate_last(self):
        model = AdversarialOrder(rushing=[1, 3])
        assert list(model.activation_order(5)) == [0, 2, 4, 1, 3]

    def test_only_honest_to_rushing_is_same_tick(self):
        model = AdversarialOrder(rushing=[2])
        assert model.arrival_tick(Envelope(0, 2, "x", 4), 4) == 4
        assert model.arrival_tick(Envelope(0, 1, "x", 4), 4) == 5
        assert model.arrival_tick(Envelope(2, 0, "x", 4), 4) == 5

    def test_rushing_node_observes_same_round_traffic_end_to_end(self):
        observed = []

        class Talker(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round < 2:
                    ctx.broadcast(("say", ctx.node, ctx.round))
                else:
                    ctx.halt()

        class Spy(Protocol):
            def on_round(self, ctx, inbox):
                observed.extend(
                    (ctx.tick, env.payload[2]) for env in inbox
                )
                if ctx.round >= 2:
                    ctx.halt()

        run_protocols(
            [Talker(), Talker(), Spy()],
            delivery=AdversarialOrder(rushing=[2]),
        )
        assert observed
        # Every observation happens in the very round it was emitted.
        assert all(tick == emitted for tick, emitted in observed)

    def test_honest_nodes_keep_lockstep_timing(self):
        arrivals = []

        class Talker(Protocol):
            def on_round(self, ctx, inbox):
                arrivals.extend(
                    (ctx.tick, env.round_sent) for env in inbox
                )
                if ctx.round < 2:
                    ctx.broadcast(("say", ctx.node, ctx.round))
                else:
                    ctx.halt()

        run_protocols(
            [Talker(), Talker(), Talker()],
            delivery=AdversarialOrder(rushing=[]),
        )
        assert arrivals and all(t == sent + 1 for t, sent in arrivals)


class _Chatter(Protocol):
    """Broadcasts a tagged payload every round for ``rounds`` rounds and
    records what it receives — the probe protocol for the unreliable
    models."""

    def __init__(self, rounds=4, log=None):
        self._rounds = rounds
        self.log = log if log is not None else []

    def on_round(self, ctx, inbox):
        self.log.extend(
            (ctx.tick, ctx.node, env.sender, env.payload) for env in inbox
        )
        if ctx.round < self._rounds:
            ctx.broadcast(("say", ctx.node, ctx.round))
        else:
            ctx.halt()


def _chatter_run(n, delivery, seed=0, rounds=4):
    log = []
    result = run_protocols(
        [_Chatter(rounds, log) for _ in range(n)], seed=seed, delivery=delivery
    )
    return result, sorted(log)


class TestLossyDelivery:
    def test_rejects_bad_probability(self):
        for p in (-0.1, 1.0, 2.0):
            with pytest.raises(ConfigurationError):
                LossyDelivery(p)

    def test_zero_loss_delivers_everything(self):
        result, log = _chatter_run(3, LossyDelivery(0.0), seed=3)
        assert result.metrics.drops_total == 0
        assert result.metrics.loss_rate == 0.0
        # All pre-final-tick broadcasts arrive (final-tick sends are
        # never delivered — the run ends when all nodes halt).
        assert len(log) > 0

    def test_drops_are_counted_and_missing_from_inboxes(self):
        result, log = _chatter_run(4, LossyDelivery(0.4), seed=7)
        metrics = result.metrics
        assert metrics.drops_total > 0
        assert 0.0 < metrics.loss_rate < 1.0
        assert metrics.deliveries_total + metrics.drops_total <= metrics.messages_total
        assert sum(metrics.dropped_per_round.values()) == metrics.drops_total

    @given(seed=st.integers(0, 2**16), p=st.floats(0.05, 0.6))
    @settings(max_examples=30, deadline=None)
    def test_reruns_reproduce_every_arrival_and_drop(self, seed, p):
        """The determinism contract under loss: same seed -> the same
        drops, the same arrivals, bit-for-bit."""
        first_result, first_log = _chatter_run(4, LossyDelivery(p), seed=seed)
        second_result, second_log = _chatter_run(4, LossyDelivery(p), seed=seed)
        assert first_log == second_log
        assert first_result.metrics.drops_total == second_result.metrics.drops_total
        assert (
            first_result.metrics.dropped_per_round
            == second_result.metrics.dropped_per_round
        )
        assert (
            first_result.metrics.delivered_per_tick
            == second_result.metrics.delivered_per_tick
        )

    def test_seed_changes_the_drop_schedule(self):
        schedules = [
            _chatter_run(4, LossyDelivery(0.4), seed=seed)[0].metrics.dropped_per_round
            for seed in (1, 2)
        ]
        assert schedules[0] != schedules[1]


class TestPartitionedDelivery:
    def test_schedule_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionedDelivery(())
        with pytest.raises(ConfigurationError):
            PartitionedDelivery(((0, ({0, 1}, {1, 2})),))  # overlap
        with pytest.raises(ConfigurationError):
            PartitionedDelivery(((2, None),))  # first epoch must start at 0
        with pytest.raises(ConfigurationError):
            PartitionedDelivery(((0, None), (0, ({0},))))  # duplicate start

    def test_cross_block_traffic_is_dropped_until_heal(self):
        heal = 3
        model = PartitionedDelivery(((0, ({0, 1}, {2, 3})), (heal, None)))
        result, log = _chatter_run(4, model, seed=1, rounds=5)
        # Pre-heal cross-block messages were dropped and counted ...
        assert result.metrics.drops_total > 0
        same_block = {(0, 1), (1, 0), (2, 3), (3, 2)}
        for tick, receiver, sender, payload in log:
            if payload[2] < heal:
                # ... so anything delivered from the partitioned epochs
                # stayed within a block.
                assert (sender, receiver) in same_block, (sender, receiver)
        # After the heal, cross-block traffic flows again.
        assert any(
            (sender, receiver) not in same_block
            for _, receiver, sender, payload in log
            if payload[2] >= heal
        )

    def test_defer_parks_messages_until_heal(self):
        heal = 3
        model = PartitionedDelivery(
            ((0, ({0, 1}, {2, 3})), (heal, None)), defer=True
        )
        result, log = _chatter_run(4, model, seed=1, rounds=5)
        # Nothing is lost: deferred, not dropped.
        assert result.metrics.drops_total == 0
        same_block = {(0, 1), (1, 0), (2, 3), (3, 2)}
        deferred = [
            (tick, receiver, sender, payload)
            for tick, receiver, sender, payload in log
            if payload[2] < heal and (sender, receiver) not in same_block
        ]
        # Every pre-heal cross-block emission arrives exactly when the
        # partition heals (one hop after the first connected tick).
        assert deferred
        assert all(tick == heal + 1 for tick, _, _, _ in deferred)
        # In-block traffic was never delayed.
        assert all(
            tick == payload[2] + 1
            for tick, receiver, sender, payload in log
            if (sender, receiver) in same_block
        )

    def test_deferred_messages_past_run_end_are_swept_as_drops(self):
        """The defer-until-heal edge case: a heal landing at or after
        the run's end leaves deferred envelopes parked in the calendar.
        They must leave an audit trail — counted in ``drops_total`` and
        visible as ``drop`` trace events — not vanish silently."""
        heal = 100  # far beyond the chatter run's natural end
        model = PartitionedDelivery(
            ((0, ({0, 1}, {2, 3})), (heal, None)), defer=True
        )
        log = []
        result = run_protocols(
            [_Chatter(4, log) for _ in range(4)],
            seed=1,
            delivery=model,
            record_trace=True,
        )
        same_block = {(0, 1), (1, 0), (2, 3), (3, 2)}
        # Nothing cross-block was ever delivered ...
        assert all((s, r) in same_block for _, r, s, _ in log)
        # ... and every parked envelope was swept into the drop ledger.
        assert result.metrics.drops_total > 0
        drop_events = result.trace.of_kind("drop")
        assert len(drop_events) == result.metrics.drops_total
        assert all(
            (event.node, event.detail[0]) not in same_block
            for event in drop_events
        )

    def test_heal_within_the_run_still_sweeps_nothing(self):
        heal = 3
        model = PartitionedDelivery(
            ((0, ({0, 1}, {2, 3})), (heal, None)), defer=True
        )
        result, _ = _chatter_run(4, model, seed=1, rounds=5)
        assert result.metrics.drops_total == 0

    @given(seed=st.integers(0, 2**10))
    @settings(max_examples=20, deadline=None)
    def test_partition_runs_are_deterministic(self, seed):
        model = lambda: PartitionedDelivery(  # noqa: E731 - fresh each run
            ((0, ({0, 1}, {2, 3})), (4, None)), defer=True
        )
        assert _chatter_run(4, model(), seed=seed) == _chatter_run(
            4, model(), seed=seed
        )


class TestCrashRecovery:
    def test_recovered_node_resumes_with_inbox_intact(self):
        from repro.faults import CrashProtocol

        seen = []

        class Receiver(Protocol):
            def on_round(self, ctx, inbox):
                seen.extend((ctx.tick, env.sender, env.payload) for env in inbox)
                if ctx.round >= 4:
                    ctx.halt()

        crashed = CrashProtocol(Receiver(), crash_round=1, recover_round=3)
        run_protocols([_Chatter(4), _Chatter(4), crashed], seed=2)
        # Broadcasts emitted in rounds 0..2 arrive at ticks 1..3; the
        # node is down for ticks 1 and 2, so the inner protocol sees
        # those arrivals only at the recovery tick — but it *does* see
        # them: the inbox survives the outage intact.
        outage_payloads = {p for t, _, p in seen if t == 3}
        assert {("say", 0, 0), ("say", 0, 1), ("say", 0, 2)} <= outage_payloads
        # And nothing was handed over while the node was down.
        assert all(t == 0 or t >= 3 for t, _, _ in seen)

    def test_recovery_must_follow_crash(self):
        from repro.faults import CrashProtocol

        with pytest.raises(ValueError):
            CrashProtocol(_Chatter(), crash_round=3, recover_round=3)

    @given(seed=st.integers(0, 2**10), crash=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_crash_recovery_is_deterministic(self, seed, crash):
        from repro.faults import CrashProtocol

        def run_once():
            log = []
            inner = _Chatter(5, log)
            protocols = [
                _Chatter(5),
                _Chatter(5),
                CrashProtocol(inner, crash_round=crash, recover_round=crash + 2),
            ]
            result = run_protocols(protocols, seed=seed, delivery=BoundedDelay(2))
            return sorted(log), result.metrics.messages_total

        assert run_once() == run_once()
