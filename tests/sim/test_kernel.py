"""Event kernel: sync equivalence, event-level determinism, causality.

The acceptance property of the kernel refactor, in the mould of the
dense-vs-succinct engine equivalence tests: running any protocol set
under :class:`~repro.sim.network.SynchronousRounds` on the event kernel
is *bit-for-bit identical* to the pre-kernel ``Runner`` — decisions,
rounds, per-round/per-sender/per-kind message counters, byte counters,
trace events and recorded views — including under random Byzantine
behaviour.  ``tests/sim/_reference_runner.py`` keeps the old loop
verbatim as the oracle.  A second pass runs the same property through
``BoundedDelay(1)`` — semantically lock-step but on the kernel's general
calendar path — proving the event machinery itself preserves the
synchronous semantics, not just the fast path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreement import make_oral_agreement_protocols
from repro.errors import ConfigurationError, SimulationError
from repro.faults import (
    CrashProtocol,
    RandomNoiseProtocol,
    RushMirrorProtocol,
    SilentProtocol,
)
from repro.sim import (
    BoundedDelay,
    DeliveryModel,
    EventKernel,
    Protocol,
    Runner,
    SynchronousRounds,
    run_protocols,
)

from ._reference_runner import ReferenceRunner

N, T = 7, 2

BYZANTINE_KINDS = ("silent", "noise", "crash", "mirror")


def build_protocols(spec, value="v"):
    """Oral-agreement protocols with the spec's Byzantine replacements.

    Protocols are stateful, so every engine run builds a fresh set.
    """
    protocols = make_oral_agreement_protocols(N, T, value)
    for node, kind in spec:
        if kind == "silent":
            protocols[node] = SilentProtocol()
        elif kind == "noise":
            protocols[node] = RandomNoiseProtocol(
                pool=(("om-value", 0, "x"), "junk", 17), halt_after=T + 1
            )
        elif kind == "crash":
            protocols[node] = CrashProtocol(protocols[node], crash_round=1)
        elif kind == "mirror":
            protocols[node] = RushMirrorProtocol(halt_after=T + 1)
    return protocols


def observables(result, include_trace=True):
    """Everything the equivalence contract promises, as one comparable."""
    data = {
        "rounds_executed": result.rounds_executed,
        "decisions": {k: repr(v) for k, v in result.decisions().items()},
        "states": [
            (s.node, s.decided, repr(s.decision), s.discovered, s.halted)
            for s in result.states
        ],
        "messages": result.metrics.messages_total,
        "rounds": result.metrics.rounds_used,
        "per_round": dict(result.metrics.messages_per_round),
        "per_sender": dict(result.metrics.messages_per_sender),
        "per_kind": dict(result.metrics.messages_per_kind),
        "bytes": result.metrics.bytes_total,
        "bytes_per_round": dict(result.metrics.bytes_per_round),
        "views": [view.rounds for view in result.views],
    }
    if include_trace and result.trace is not None:
        # Compare the semantic event stream; the delivery-tick annotation
        # is new kernel information and excluded deliberately.
        data["trace"] = [
            (e.round, e.kind, e.node, e.detail) for e in result.trace.events
        ]
        data["trace_truncated"] = result.trace.truncated
    return data


@st.composite
def byzantine_specs(draw):
    """Up to T faulty nodes, each with a random generic behaviour."""
    faulty = draw(st.sets(st.integers(min_value=0, max_value=N - 1), max_size=T))
    return tuple(
        (node, draw(st.sampled_from(BYZANTINE_KINDS))) for node in sorted(faulty)
    )


class TestSyncKernelEqualsReferenceRunner:
    @given(spec=byzantine_specs(), seed=st.integers(0, 2**16),
           recording=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_bit_for_bit_under_random_byzantine_behaviour(
        self, spec, seed, recording
    ):
        """The headline property: kernel + SynchronousRounds == old Runner."""
        reference = ReferenceRunner(
            build_protocols(spec), seed=seed,
            record_views=recording, record_trace=recording,
        ).run()
        kernel = Runner(
            build_protocols(spec), seed=seed,
            record_views=recording, record_trace=recording,
        ).run()
        assert observables(kernel) == observables(reference), (
            f"sync kernel diverged from reference; spec={spec}"
        )

    @given(spec=byzantine_specs(), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_general_event_path_preserves_lockstep_semantics(self, spec, seed):
        """BoundedDelay(1) — lock-step timing on the calendar path — must
        reproduce the reference bit-for-bit too: the determinism contract
        re-proved at the event level, not just on the fast path."""
        reference = ReferenceRunner(build_protocols(spec), seed=seed).run()
        general = run_protocols(
            build_protocols(spec), seed=seed, delivery=BoundedDelay(1)
        )
        assert observables(general) == observables(reference)
        # The general path *does* do per-delivery accounting; lag is zero.
        # (Deliveries can trail sends: envelopes emitted in the final
        # tick are never delivered — the run ends when all nodes halt,
        # exactly as in the reference loop.)
        assert general.metrics.mean_delivery_lag == 0.0
        assert 0 < general.metrics.deliveries_total <= general.metrics.messages_total

    def test_recorded_views_match_reference(self):
        spec = ((2, "silent"), (5, "mirror"))
        reference = ReferenceRunner(
            build_protocols(spec), seed=9, record_views=True
        ).run()
        kernel = run_protocols(build_protocols(spec), seed=9, record_views=True)
        assert [v.rounds for v in kernel.views] == [
            v.rounds for v in reference.views
        ]


class TestEventLevelDeterminism:
    @given(seed=st.integers(0, 2**16), delay=st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_bounded_delay_reruns_identically(self, seed, delay):
        first = run_protocols(
            build_protocols(()), seed=seed, delivery=BoundedDelay(delay)
        )
        second = run_protocols(
            build_protocols(()), seed=seed, delivery=BoundedDelay(delay)
        )
        assert observables(first) == observables(second)
        assert first.metrics.delivered_per_tick == second.metrics.delivered_per_tick

    def test_seed_changes_bounded_delay_schedule(self):
        runs = [
            run_protocols(
                build_protocols(()), seed=seed, delivery=BoundedDelay(3)
            ).metrics.delivered_per_tick
            for seed in (1, 2)
        ]
        assert runs[0] != runs[1]


class TestHorizonDiagnostics:
    def test_overrun_names_stuck_nodes_and_protocols(self):
        class Forever(Protocol):
            def on_round(self, ctx, inbox):
                pass

        class Quitter(Protocol):
            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(SimulationError) as err:
            run_protocols([Forever(), Quitter(), Forever()], max_rounds=5)
        message = str(err.value)
        assert "max_rounds=5" in message
        assert "2 of 3 nodes" in message
        assert "0:Forever" in message and "2:Forever" in message
        assert "Quitter" not in message

    def test_long_stuck_list_is_truncated(self):
        class Forever(Protocol):
            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(SimulationError) as err:
            run_protocols([Forever() for _ in range(20)], max_rounds=2)
        assert "+4 more" in str(err.value)


class TestCausality:
    def test_delivery_into_the_past_is_rejected(self):
        class TimeMachine(DeliveryModel):
            name = "time-machine"

            def arrival_tick(self, envelope, tick):
                return tick - 1

        class Sender(Protocol):
            def on_round(self, ctx, inbox):
                ctx.send(1 - ctx.node, "x")
                ctx.halt()

        with pytest.raises(SimulationError, match="into the past"):
            run_protocols([Sender(), Sender()], delivery=TimeMachine())

    def test_same_tick_delivery_to_already_acted_node_is_rejected(self):
        class Backwards(DeliveryModel):
            name = "backwards"

            def arrival_tick(self, envelope, tick):
                return tick  # same-tick towards a lower id: already acted

            def activation_order(self, n):
                return range(n)

        class SendDown(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.node == 1:
                    ctx.send(0, "x")
                ctx.halt()

        with pytest.raises(SimulationError, match="into the past"):
            run_protocols([SendDown(), SendDown()], delivery=Backwards())

    def test_bad_activation_order_is_rejected(self):
        class Twice(DeliveryModel):
            name = "twice"

            def arrival_tick(self, envelope, tick):
                return tick + 1

            def activation_order(self, n):
                return [0] * n

        class Halter(Protocol):
            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ConfigurationError, match="not a permutation"):
            EventKernel([Halter(), Halter()], delivery=Twice()).run()


class TestActivationApi:
    def test_on_activate_default_adapts_to_on_round(self):
        calls = []

        class Rounder(Protocol):
            def on_round(self, ctx, inbox):
                calls.append(("round", ctx.tick))
                ctx.halt()

        run_protocols([Rounder(), Rounder()])
        assert calls == [("round", 0), ("round", 0)]

    def test_on_activate_override_bypasses_on_round(self):
        class TickAware(Protocol):
            def on_activate(self, ctx, inbox):
                assert ctx.tick == ctx.round
                ctx.halt()

            def on_round(self, ctx, inbox):  # pragma: no cover
                raise AssertionError("adapter must not be used")

        result = run_protocols([TickAware(), TickAware()])
        assert result.rounds_executed == 1

    def test_context_exposes_single_time_source(self):
        ticks = []

        class Reader(Protocol):
            def on_round(self, ctx, inbox):
                ticks.append((ctx.round, ctx.tick))
                if ctx.round >= 2:
                    ctx.halt()

        run_protocols([Reader(), Reader()])
        assert all(r == t for r, t in ticks)


class TestTraceTransitionsUnderSkew:
    def test_decide_discover_halt_traced_on_general_path(self):
        from repro.harness import run_fd_scenario

        outcome = run_fd_scenario(
            5, 1, "v", protocol="chain", delivery="bounded:2",
            record_trace=True, seed=1,
        )
        trace = outcome.run.trace
        halts = trace.of_kind("halt")
        assert {e.node for e in halts} == set(range(5))
        # Every traced transition matches the final node state.
        for state in outcome.run.states:
            decided = [e for e in trace.of_kind("decide") if e.node == state.node]
            assert bool(decided) == state.decided
            discovered = [
                e for e in trace.of_kind("discover") if e.node == state.node
            ]
            assert bool(discovered) == (state.discovered is not None)
        # Sends on the general path carry their delivery timestamps.
        sends = trace.of_kind("send")
        assert sends and all(e.tick is not None for e in sends)
        assert all(e.tick >= e.round + 1 for e in sends)

    def test_lockstep_trace_carries_no_timestamps(self):
        from repro.harness import run_fd_scenario

        outcome = run_fd_scenario(
            5, 1, "v", protocol="chain", record_trace=True, seed=1
        )
        assert all(
            e.tick is None for e in outcome.run.trace.of_kind("send")
        )


class TestRunnerFacade:
    def test_runner_is_an_event_kernel(self):
        class Halter(Protocol):
            def on_round(self, ctx, inbox):
                ctx.halt()

        runner = Runner([Halter(), Halter()])
        assert isinstance(runner, EventKernel)
        assert isinstance(runner.delivery, SynchronousRounds)
        result = runner.run()
        # One source of truth: the facade's round, the kernel's tick and
        # the result's rounds_executed are the same counter.
        assert runner.round == runner.tick == result.rounds_executed == 1
