"""Event tracing: order, transitions, caps, rendering."""

from __future__ import annotations

from repro.auth import trusted_dealer_setup
from repro.faults import SilentProtocol
from repro.fd import make_chain_fd_protocols
from repro.sim import Protocol, Trace, run_protocols
from repro.sim.message import Envelope


def chain_run(n=5, t=1, adversaries=None, seed=1):
    keypairs, directories = trusted_dealer_setup(n, seed="trace")
    protocols = make_chain_fd_protocols(
        n, t, "v", keypairs, directories, adversaries=adversaries or {}
    )
    return run_protocols(protocols, seed=seed, record_trace=True)


class TestRecording:
    def test_off_by_default(self):
        keypairs, directories = trusted_dealer_setup(4, seed="trace")
        result = run_protocols(
            make_chain_fd_protocols(4, 1, "v", keypairs, directories)
        )
        assert result.trace is None

    def test_send_events_match_metrics(self):
        result = chain_run()
        sends = result.trace.of_kind("send")
        assert len(sends) == result.metrics.messages_total

    def test_every_decision_traced_once(self):
        result = chain_run(n=5)
        decides = result.trace.of_kind("decide")
        assert len(decides) == 5
        assert {event.node for event in decides} == set(range(5))

    def test_every_halt_traced_once(self):
        result = chain_run(n=5)
        halts = result.trace.of_kind("halt")
        assert len(halts) == 5

    def test_discovery_traced_with_reason(self):
        result = chain_run(adversaries={1: SilentProtocol()})
        discoveries = result.trace.of_kind("discover")
        assert discoveries
        assert all(isinstance(event.detail, str) for event in discoveries)

    def test_events_are_round_ordered(self):
        result = chain_run()
        rounds = [event.round for event in result.trace.events]
        assert rounds == sorted(rounds)

    def test_for_node_filters(self):
        result = chain_run()
        own = result.trace.for_node(0)
        assert own and all(event.node == 0 for event in own)


class TestFormatting:
    def test_format_contains_arrows_and_kinds(self):
        result = chain_run()
        text = result.trace.format()
        assert "P0 -> P1" in text
        assert "decides" in text
        assert "halts" in text

    def test_max_lines_truncates_output(self):
        result = chain_run()
        text = result.trace.format(max_lines=2)
        assert "more)" in text
        assert len(text.splitlines()) == 3


class TestCap:
    def test_cap_sets_truncated_flag(self):
        trace = Trace(max_events=2)
        for i in range(5):
            trace.record_halt(0, i % 2)
        assert len(trace.events) == 2
        assert trace.truncated
        assert "truncated" in trace.format()
