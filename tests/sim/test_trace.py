"""Event tracing: order, transitions, caps, rendering — including the
arrival/drop annotations under combined delivery-model + mux runs."""

from __future__ import annotations

import pytest

from repro.auth import trusted_dealer_setup
from repro.errors import SimulationError
from repro.faults import SilentProtocol
from repro.fd import make_chain_fd_protocols
from repro.sim import (
    BoundedDelay,
    InstanceMux,
    LossyDelivery,
    PartitionedDelivery,
    Protocol,
    Trace,
    run_protocols,
)
from repro.sim.message import Envelope


def chain_run(n=5, t=1, adversaries=None, seed=1):
    keypairs, directories = trusted_dealer_setup(n, seed="trace")
    protocols = make_chain_fd_protocols(
        n, t, "v", keypairs, directories, adversaries=adversaries or {}
    )
    return run_protocols(protocols, seed=seed, record_trace=True)


class TestRecording:
    def test_off_by_default(self):
        keypairs, directories = trusted_dealer_setup(4, seed="trace")
        result = run_protocols(
            make_chain_fd_protocols(4, 1, "v", keypairs, directories)
        )
        assert result.trace is None

    def test_send_events_match_metrics(self):
        result = chain_run()
        sends = result.trace.of_kind("send")
        assert len(sends) == result.metrics.messages_total

    def test_every_decision_traced_once(self):
        result = chain_run(n=5)
        decides = result.trace.of_kind("decide")
        assert len(decides) == 5
        assert {event.node for event in decides} == set(range(5))

    def test_every_halt_traced_once(self):
        result = chain_run(n=5)
        halts = result.trace.of_kind("halt")
        assert len(halts) == 5

    def test_discovery_traced_with_reason(self):
        result = chain_run(adversaries={1: SilentProtocol()})
        discoveries = result.trace.of_kind("discover")
        assert discoveries
        assert all(isinstance(event.detail, str) for event in discoveries)

    def test_events_are_round_ordered(self):
        result = chain_run()
        rounds = [event.round for event in result.trace.events]
        assert rounds == sorted(rounds)

    def test_for_node_filters(self):
        result = chain_run()
        own = result.trace.for_node(0)
        assert own and all(event.node == 0 for event in own)


class TestFormatting:
    def test_format_contains_arrows_and_kinds(self):
        result = chain_run()
        text = result.trace.format()
        assert "P0 -> P1" in text
        assert "decides" in text
        assert "halts" in text

    def test_max_lines_truncates_output(self):
        result = chain_run()
        text = result.trace.format(max_lines=2)
        assert "more)" in text
        assert len(text.splitlines()) == 3


class TestCap:
    def test_cap_sets_truncated_flag(self):
        trace = Trace(max_events=2)
        for i in range(5):
            trace.record_halt(0, i % 2)
        assert len(trace.events) == 2
        assert trace.truncated
        assert "truncated" in trace.format()


class _MuxTalker(Protocol):
    """Broadcasts one tagged payload per round inside a mux instance."""

    def __init__(self, rounds=3):
        self._rounds = rounds

    def on_round(self, ctx, inbox):
        if ctx.round < self._rounds:
            ctx.broadcast(("mux-say", ctx.node, ctx.round))
        else:
            ctx.halt()


def mux_run(n=4, delivery=None, seed=3, instances=2):
    protocols = [
        InstanceMux(
            {k: _MuxTalker() for k in range(instances)}, channel="tchan"
        )
        for _ in range(n)
    ]
    return run_protocols(
        protocols, seed=seed, delivery=delivery, record_trace=True
    )


class TestRecordingUnderDeliveryModels:
    """The recording branch under a skewed model *and* an instance mux
    combined — each was only pinned per-model before."""

    def test_bounded_delay_plus_mux_sends_carry_arrival_ticks(self):
        result = mux_run(delivery=BoundedDelay(3))
        sends = result.trace.of_kind("send")
        assert sends
        # Every send is annotated with its arrival tick, within the bound.
        assert all(e.tick is not None for e in sends)
        assert all(e.round + 1 <= e.tick <= e.round + 3 for e in sends)
        # Per-kind attribution still names the mux channel, not the
        # transport tag — the trace and the metrics agree.
        assert all(e.detail[1] == "tchan" for e in sends)
        assert set(result.metrics.messages_per_kind) == {"tchan"}
        assert "@t" in result.trace.format()

    def test_lockstep_mux_sends_carry_no_arrival_ticks(self):
        result = mux_run(delivery=None)
        sends = result.trace.of_kind("send")
        assert sends and all(e.tick is None for e in sends)

    def test_lossy_mux_run_records_drops_with_channel_attribution(self):
        result = mux_run(delivery=LossyDelivery(0.4), seed=5)
        drops = result.trace.of_kind("drop")
        sends = result.trace.of_kind("send")
        assert drops
        assert len(drops) == result.metrics.drops_total
        # A dropped envelope is a drop event instead of a send event.
        assert len(sends) + len(drops) == result.metrics.messages_total
        assert all(e.detail[1] == "tchan" for e in drops)
        assert "DROPPED" in result.trace.format()

    def test_partition_drops_are_traced(self):
        result = mux_run(
            delivery=PartitionedDelivery(((0, ({0, 1}, {2, 3})), (2, None)))
        )
        drops = result.trace.of_kind("drop")
        assert drops
        same_block = {(0, 1), (1, 0), (2, 3), (3, 2)}
        assert all(
            (e.node, e.detail[0]) not in same_block for e in drops
        )


class _WaitsForever(Protocol):
    """Halts only on hearing from node 0 — stuck if the message is lost."""

    def on_round(self, ctx, inbox):
        if ctx.node == 0:
            if ctx.round == 0:
                ctx.broadcast(("go",))
            ctx.halt()
            return
        if any(env.sender == 0 for env in inbox):
            ctx.halt()


class TestHorizonUnderNewModels:
    def test_loss_starved_run_names_stuck_nodes(self):
        """A protocol whose one trigger message the network ate must die
        at the horizon with the stuck nodes named — same diagnostics as
        the lock-step path."""
        with pytest.raises(SimulationError) as err:
            run_protocols(
                [_WaitsForever() for _ in range(3)],
                seed=1,
                max_rounds=6,
                delivery=LossyDelivery(0.999),
            )
        message = str(err.value)
        assert "max_rounds=6" in message
        assert "_WaitsForever" in message
        assert "2 of 3 nodes" in message

    def test_partitioned_run_names_stuck_nodes(self):
        with pytest.raises(SimulationError) as err:
            run_protocols(
                [_WaitsForever() for _ in range(4)],
                seed=1,
                max_rounds=5,
                delivery=PartitionedDelivery(((0, ({0, 1}, {2, 3})),)),
            )
        message = str(err.value)
        assert "max_rounds=5" in message
        # Nodes 2 and 3 never hear from node 0 across the partition.
        assert "2:_WaitsForever" in message and "3:_WaitsForever" in message
