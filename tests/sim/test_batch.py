"""Columnar batch execution vs the per-envelope object oracle.

The mux's ``engine`` knob is an execution strategy, not a semantics
change: every observable — decisions, per-instance outcomes, message /
byte / drop counters, round counts — must be bit-for-bit identical
between ``engine="columnar"`` (the batch plane of
:mod:`repro.sim.batch`) and ``engine="object"`` (the reference
per-envelope path).  The property tests here pin that equivalence under
random Byzantine behaviour, lossy delivery, adaptive (``adaptive:NAME``)
adversaries, mixed-engine populations and the recording fallback, plus
the wire-extension round-trip the demux rests on.
"""

from __future__ import annotations

import random

import pytest

from repro.agreement.oral import DENSE, SUCCINCT, OralAgreementProtocol
from repro.auth.agreement_based import run_agreement_key_distribution
from repro.errors import ConfigurationError
from repro.faults import AdversarySpec
from repro.sim import (
    COLUMNAR_ENGINE,
    MUX_ENGINE_ENV,
    OBJECT_ENGINE,
    Envelope,
    InstanceMux,
    Protocol,
    collect_instances,
    default_mux_engine,
    make_delivery,
    mux_unwrap,
    mux_wrap,
    run_protocols,
)

ENGINES = (OBJECT_ENGINE, COLUMNAR_ENGINE)


def om_mux_protocols(n, t, engine, oral_engine=SUCCINCT):
    """One n-instance OM(t) mux per node — the AKD traffic shape."""
    return [
        InstanceMux(
            {
                k: OralAgreementProtocol(
                    n,
                    t,
                    value=f"v{k}" if k == node else None,
                    default=None,
                    sender=k,
                    engine=oral_engine,
                )
                for k in range(n)
            },
            channel="om",
            engine=engine,
        )
        for node in range(n)
    ]


def observables(run):
    """Every engine-invariant observable of a run, as one value."""
    metrics = run.metrics
    return {
        "rounds": run.rounds_executed,
        "messages": metrics.messages_total,
        "bytes": metrics.bytes_total,
        "per_kind": dict(metrics.messages_per_kind),
        "per_sender": dict(metrics.messages_per_sender),
        "per_round": dict(metrics.messages_per_round),
        "drops": metrics.drops_total,
        "deliveries": metrics.deliveries_total,
        "decisions": {s.node: repr(s.decision) for s in run.states},
        "halted": [s.halted for s in run.states],
        "instances": collect_instances(run),
    }


class TestEngineKnob:
    def test_unknown_engine_refused(self):
        with pytest.raises(ConfigurationError, match="unknown mux engine"):
            InstanceMux({0: Protocol()}, engine="vectorised")

    def test_engine_property(self):
        assert InstanceMux({0: Protocol()}).engine == COLUMNAR_ENGINE
        assert (
            InstanceMux({0: Protocol()}, engine=OBJECT_ENGINE).engine
            == OBJECT_ENGINE
        )


class TestWireRoundTripProperty:
    def test_wrap_unwrap_round_trip(self):
        """Random (channel, instance, payload) triples survive the wire
        extension unchanged, and never parse on another channel."""
        rng = random.Random(0xC0FFEE)
        channels = ("akd", "om", "x-y", "c0")
        for _ in range(300):
            channel = rng.choice(channels)
            instance = rng.randrange(1 << 16)
            payload = rng.choice(
                (
                    ("om-value", rng.randrange(99)),
                    ("om-report", (rng.randrange(9), rng.randrange(9))),
                    rng.randrange(1 << 30),
                    "s" * rng.randrange(4),
                    None,
                    (("nested", rng.randrange(7)), "tail"),
                )
            )
            wrapped = mux_wrap(channel, instance, payload)
            assert mux_unwrap(wrapped, channel) == (instance, payload)
            assert mux_unwrap(wrapped, channel + "!") is None

    @pytest.mark.parametrize(
        "forged",
        [
            ("mux", "om", 7),                 # wrong arity
            ("mux", "om", "7", "payload"),    # non-int instance
            ("mux", "om", 7, "pay", "load"),  # over-long
        ],
    )
    def test_malformed_wrappers_fall_to_plain_path(self, forged):
        """A columnar mux treats unparseable wrappers exactly like the
        object engine: plain traffic belonging to no instance."""

        class Forger(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.broadcast(forged)
                ctx.halt()

        class Recorder(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round >= 2:
                    ctx.decide(tuple(env.payload for env in inbox))
                    ctx.halt()

        runs = {}
        for engine in ENGINES:
            protocols = [Forger()] + [
                InstanceMux({7: Recorder()}, channel="om", engine=engine)
                for _ in range(2)
            ]
            run = run_protocols(protocols, seed=3)
            # The forged wrapper reached no instance on either engine.
            assert protocols[1].outcomes[7].decision == ()
            runs[engine] = observables(run)
        assert runs[COLUMNAR_ENGINE] == runs[OBJECT_ENGINE]


class TestColumnarObjectEquivalence:
    @pytest.mark.parametrize("oral_engine", [SUCCINCT, DENSE])
    def test_honest_om_grid(self, oral_engine):
        """n=7, t=2 reaches the RLE report levels (rounds >= 2) that the
        batched succinct ingest specialises; the dense oracle engine
        takes the per-envelope materialisation path instead."""
        runs = {
            engine: observables(
                run_protocols(
                    om_mux_protocols(7, 2, engine, oral_engine), seed=11
                )
            )
            for engine in ENGINES
        }
        assert runs[COLUMNAR_ENGINE] == runs[OBJECT_ENGINE]
        decided = runs[COLUMNAR_ENGINE]["instances"]
        assert sorted(decided) == list(range(7))

    def test_random_byzantine_behaviours(self):
        """Seed-indexed random corrupt sets drawn from the full
        declarative vocabulary, including the wrapping kinds (crash /
        drop / tamper) whose lenses must intercept batch sends."""
        kinds = ("silent", "noise", "rush", "crash@1", "drop@0.5", "tamper@0.5")
        n, t = 7, 2
        for seed in range(5):
            rng = random.Random(seed)
            corrupt = tuple(
                (node, rng.choice(kinds))
                for node in sorted(rng.sample(range(n), rng.randint(1, t)))
            )
            spec = AdversarySpec(corrupt=corrupt, t=t)
            runs = {}
            for engine in ENGINES:
                protocols = spec.protocols_for(om_mux_protocols(n, t, engine))
                runs[engine] = observables(run_protocols(protocols, seed=seed))
            assert runs[COLUMNAR_ENGINE] == runs[OBJECT_ENGINE], (
                f"seed={seed} corrupt={corrupt}"
            )

    def test_akd_random_byzantine(self):
        """The full key-distribution facade, engine-parametrised."""
        for seed, byzantine in [(0, ((3, "noise"),)), (1, ((2, "silent"), (5, "noise"))), (2, ())]:
            results = {
                engine: run_agreement_key_distribution(
                    7, 2, seed=seed, byzantine=byzantine, engine=engine
                )
                for engine in ENGINES
            }
            col, obj = results[COLUMNAR_ENGINE], results[OBJECT_ENGINE]
            assert col.per_instance == obj.per_instance, f"seed={seed}"
            assert observables(col.run) == observables(obj.run), f"seed={seed}"
            assert sorted(col.directories) == sorted(obj.directories)

    def test_lossy_delivery(self):
        """``loss:p`` at the jitter-free bound is batch-capable: the
        columnar drop schedule must replay the object path's per-link
        draws bit-for-bit (drop totals included)."""
        for seed, p, byzantine in [(1, 0.25, ()), (2, 0.5, ((3, "noise"),)), (3, 0.1, ((1, "silent"),))]:
            results = {
                engine: run_agreement_key_distribution(
                    7,
                    2,
                    seed=seed,
                    byzantine=byzantine,
                    delivery=f"loss:{p}",
                    engine=engine,
                )
                for engine in ENGINES
            }
            col, obj = results[COLUMNAR_ENGINE], results[OBJECT_ENGINE]
            assert col.per_instance == obj.per_instance, f"seed={seed} p={p}"
            assert observables(col.run) == observables(obj.run), (
                f"seed={seed} p={p}"
            )
            assert col.run.metrics.drops_total > 0

    @pytest.mark.parametrize("strategy", ["silence-muffled", "gag-sender"])
    def test_adaptive_adversary(self, strategy):
        """``adaptive:STRATEGY`` corruption commits online off metrics
        snapshots — identical commitments and observables either way."""
        committed = {}
        runs = {}
        for engine in ENGINES:
            spec = AdversarySpec(corrupt=(), t=2, strategy=strategy)
            protocols, coordinator = spec.adaptive_protocols_for(
                om_mux_protocols(7, 2, engine)
            )
            runs[engine] = observables(run_protocols(protocols, seed=13))
            committed[engine] = {
                node: behavior.kind
                for node, behavior in coordinator.committed.items()
            }
        assert committed[COLUMNAR_ENGINE] == committed[OBJECT_ENGINE]
        assert committed[COLUMNAR_ENGINE]  # the strategy did strike
        assert runs[COLUMNAR_ENGINE] == runs[OBJECT_ENGINE]

    def test_mixed_engine_population(self):
        """Engines interoperate per node: object muxes are plane
        outsiders fed materialised envelopes, and any mixture matches
        the all-object run."""
        n, t = 7, 2
        baseline = observables(
            run_protocols(om_mux_protocols(n, t, OBJECT_ENGINE), seed=21)
        )
        for seed in range(3):
            rng = random.Random(seed)
            protocols = [
                InstanceMux(
                    {
                        k: OralAgreementProtocol(
                            n,
                            t,
                            value=f"v{k}" if k == node else None,
                            default=None,
                            sender=k,
                        )
                        for k in range(n)
                    },
                    channel="om",
                    engine=rng.choice(ENGINES),
                )
                for node in range(n)
            ]
            assert observables(run_protocols(protocols, seed=21)) == baseline

    def test_recording_forces_identical_fallback(self):
        """With a trace or views on there is no batch plane; a columnar
        mux silently runs the object path with unchanged observables."""
        plain = {
            engine: observables(
                run_protocols(om_mux_protocols(5, 1, engine), seed=9)
            )
            for engine in ENGINES
        }
        recorded = observables(
            run_protocols(
                om_mux_protocols(5, 1, COLUMNAR_ENGINE),
                seed=9,
                record_trace=True,
            )
        )
        assert plain[COLUMNAR_ENGINE] == plain[OBJECT_ENGINE] == recorded


class TestDegradedCalendarEquivalence:
    """Arrival-columned plane: the columnar engine must replay the object
    path bit-for-bit under jittered, lossy and partitioned calendars —
    counts, decisions, drop totals and per-instance outcomes alike —
    while actually running columnar (no silent fallback)."""

    def _equal_runs(self, n, t, seed, delivery, spec=None):
        runs = {}
        honest_mux = {}
        for engine in ENGINES:
            protocols = om_mux_protocols(n, t, engine)
            honest_mux[engine] = protocols[0]
            if spec is not None:
                protocols = spec.protocols_for(protocols)
            run = run_protocols(
                protocols, seed=seed, delivery=make_delivery(delivery)
            )
            runs[engine] = observables(run)
        assert honest_mux[COLUMNAR_ENGINE].engine_used == COLUMNAR_ENGINE
        assert honest_mux[COLUMNAR_ENGINE].fallback_reason is None
        assert runs[COLUMNAR_ENGINE] == runs[OBJECT_ENGINE], (
            f"seed={seed} delivery={delivery}"
        )
        return runs[COLUMNAR_ENGINE]

    @pytest.mark.parametrize("delivery", ["bounded:2", "bounded:4"])
    def test_bounded_jitter(self, delivery):
        """``bounded:d`` with d > 1: one logical batch send splits into
        per-arrival calendar buckets whose schedule must be bit-identical
        to the object path's per-envelope latency draws."""
        for seed in (1, 5):
            self._equal_runs(7, 2, seed, delivery)

    def test_lossy_with_jitter(self):
        """``loss:p`` with delay > 1 draws latency *and* drop decisions
        per recipient from the object path's per-link streams."""
        for seed, delivery in [(1, "loss:0.2:2"), (2, "loss:0.3:3")]:
            result = self._equal_runs(7, 2, seed, delivery)
            assert result["drops"] > 0

    def test_partition_heal_defer(self):
        """Defer-until-heal as an arrival rewrite: cross-block batch
        traffic parks until the heal tick and arrives there."""
        self._equal_runs(7, 2, 3, "partition:0-3|4-6@2/defer")

    def test_partition_defer_past_run_end(self):
        """A heal the run never reaches: parked batch records must be
        swept into the drop accounting at end of run exactly like the
        object path's parked envelopes."""
        result = self._equal_runs(7, 2, 4, "partition:0-3|4-6@30/defer")
        assert result["drops"] > 0

    def test_random_byzantine_under_degraded_delivery(self):
        """Random corrupt sets on top of jittered/lossy calendars: the
        behaviour lenses and the arrival columns compose."""
        kinds = ("silent", "noise", "crash@1", "drop@0.5", "tamper@0.5")
        cases = [(0, "bounded:2"), (1, "loss:0.2:2"), (2, "bounded:3")]
        for seed, delivery in cases:
            rng = random.Random(seed)
            corrupt = tuple(
                (node, rng.choice(kinds))
                # node 0 stays honest: its mux is the engine-used probe.
                for node in sorted(rng.sample(range(1, 7), rng.randint(1, 2)))
            )
            self._equal_runs(
                7, 2, seed, delivery, spec=AdversarySpec(corrupt=corrupt, t=2)
            )

    @pytest.mark.parametrize("strategy", ["silence-muffled", "gag-sender"])
    def test_adaptive_adversary_under_lossy_jitter(self, strategy):
        """Adaptive corruption reads live metrics; those snapshots (and
        hence the commitments) must not depend on the engine even when
        the calendar is lossy and jittered."""
        committed = {}
        runs = {}
        for engine in ENGINES:
            spec = AdversarySpec(corrupt=(), t=2, strategy=strategy)
            protocols, coordinator = spec.adaptive_protocols_for(
                om_mux_protocols(7, 2, engine)
            )
            runs[engine] = observables(
                run_protocols(
                    protocols, seed=13, delivery=make_delivery("loss:0.2:2")
                )
            )
            committed[engine] = {
                node: behavior.kind
                for node, behavior in coordinator.committed.items()
            }
        assert committed[COLUMNAR_ENGINE] == committed[OBJECT_ENGINE]
        assert runs[COLUMNAR_ENGINE] == runs[OBJECT_ENGINE]


class TestEngineSurfacing:
    """Silent fallback is no longer silent: the mux records why it left
    the columnar path, warns once per reason, and exposes the engine
    actually used."""

    def test_columnar_run_reports_engine_used(self):
        protocols = om_mux_protocols(5, 1, COLUMNAR_ENGINE)
        run_protocols(protocols, seed=2)
        assert all(m.engine_used == COLUMNAR_ENGINE for m in protocols)
        assert all(m.fallback_reason is None for m in protocols)

    def test_recording_fallback_reason_and_warning(self, monkeypatch):
        from repro.sim import multiplex as mux_mod

        monkeypatch.setattr(mux_mod, "_FALLBACK_WARNED", set())
        protocols = om_mux_protocols(5, 1, COLUMNAR_ENGINE)
        with pytest.warns(RuntimeWarning, match="recording"):
            run_protocols(protocols, seed=2, record_trace=True)
        assert protocols[0].engine_used == OBJECT_ENGINE
        assert "recording" in protocols[0].fallback_reason
        # One-time per reason: an identical second run stays quiet.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_protocols(
                om_mux_protocols(5, 1, COLUMNAR_ENGINE), seed=2, record_trace=True
            )

    def test_delivery_fallback_reason(self, monkeypatch):
        from repro.sim import multiplex as mux_mod

        monkeypatch.setattr(mux_mod, "_FALLBACK_WARNED", set())
        protocols = om_mux_protocols(5, 1, COLUMNAR_ENGINE)
        with pytest.warns(RuntimeWarning, match="batch-capable"):
            run_protocols(protocols, seed=2, delivery=make_delivery("rush:4"))
        assert protocols[0].engine_used == OBJECT_ENGINE
        assert "batch-capable" in protocols[0].fallback_reason

    def test_object_engine_never_reports_fallback(self):
        protocols = om_mux_protocols(5, 1, OBJECT_ENGINE)
        run_protocols(protocols, seed=2, record_trace=True)
        assert protocols[0].engine_used == OBJECT_ENGINE
        assert protocols[0].fallback_reason is None

    def test_env_knob_selects_default_engine(self, monkeypatch):
        monkeypatch.setenv(MUX_ENGINE_ENV, OBJECT_ENGINE)
        assert default_mux_engine() == OBJECT_ENGINE
        assert InstanceMux({0: Protocol()}).engine == OBJECT_ENGINE
        monkeypatch.setenv(MUX_ENGINE_ENV, "vectorised")
        with pytest.raises(ConfigurationError, match="unknown mux engine"):
            default_mux_engine()
        monkeypatch.delenv(MUX_ENGINE_ENV)
        assert default_mux_engine() == COLUMNAR_ENGINE
        # An explicit engine always beats the environment.
        monkeypatch.setenv(MUX_ENGINE_ENV, OBJECT_ENGINE)
        assert (
            InstanceMux({0: Protocol()}, engine=COLUMNAR_ENGINE).engine
            == COLUMNAR_ENGINE
        )


class TestTamperLensInterceptsBatchSends:
    def test_filtered_mux_cannot_leak_through_send_batch(self):
        """Regression: a drop lens around a *columnar* mux must suppress
        the same messages it suppresses around an object mux — batch
        sends re-materialise through the per-message filter instead of
        slipping past it via attribute delegation."""
        from repro.faults.behaviors import TamperingProtocol

        n, t = 5, 1
        runs = {}
        for engine in ENGINES:
            protocols = om_mux_protocols(n, t, engine)
            protocols[2] = TamperingProtocol(
                protocols[2], should_send=lambda round_, to, payload: to != 4
            )
            runs[engine] = observables(run_protocols(protocols, seed=17))
        assert runs[COLUMNAR_ENGINE] == runs[OBJECT_ENGINE]
        # The lens bit on both engines: node 2 sent fewer envelopes than
        # an unfiltered node of the same run.
        per_sender = runs[COLUMNAR_ENGINE]["per_sender"]
        assert per_sender[2] < per_sender[1]


class _EnvelopeShapeProbe(Protocol):
    """Asserts materialised batch envelopes match object-path envelopes
    field-for-field (sender, recipient, round_sent, inner payload)."""

    def __init__(self):
        self.seen = []

    def on_round(self, ctx, inbox):
        for env in inbox:
            assert isinstance(env, Envelope)
            assert env.recipient == ctx.node
            assert env.round_sent == ctx.round - 1
            self.seen.append((env.sender, env.payload, env.round_sent))
        if ctx.round == 0 and ctx.node == 0:
            ctx.broadcast(("probe", ctx.node))
        if ctx.round >= 2:
            ctx.decide(tuple(self.seen))
            ctx.halt()


class TestMaterializedEnvelopes:
    def test_batch_materialisation_matches_object_envelopes(self):
        """An instance protocol without ``supports_batch_inbox`` reads
        batch traffic as envelopes indistinguishable from the object
        path's."""
        decisions = {}
        for engine in ENGINES:
            protocols = [
                InstanceMux({0: _EnvelopeShapeProbe()}, channel="om", engine=engine)
                for _ in range(3)
            ]
            run_protocols(protocols, seed=5)
            decisions[engine] = [
                mux.outcomes[0].decision for mux in protocols
            ]
        assert decisions[COLUMNAR_ENGINE] == decisions[OBJECT_ENGINE]
        assert decisions[COLUMNAR_ENGINE][1] == ((0, ("probe", 0), 0),)
