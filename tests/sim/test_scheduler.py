"""Simulator semantics: N1/N2, round lock-step, determinism, termination."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolViolationError, SimulationError
from repro.sim import Envelope, NodeContext, Protocol, Runner, run_protocols


class Halter(Protocol):
    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        ctx.halt()


class PingOnce(Protocol):
    """Send one message to a fixed peer in round 0, record what arrives."""

    def __init__(self, peer: int | None = None) -> None:
        self.peer = peer
        self.received: list[tuple[int, object, int]] = []

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for env in inbox:
            self.received.append((env.sender, env.payload, ctx.round))
        if ctx.round == 0 and self.peer is not None:
            ctx.send(self.peer, ("ping", ctx.node))
        if ctx.round >= 1:
            ctx.halt()


class TestDeliverySemantics:
    def test_message_arrives_next_round_exactly_once(self):
        a, b = PingOnce(peer=1), PingOnce()
        run_protocols([a, b])
        assert b.received == [(0, ("ping", 0), 1)]

    def test_sender_identification_is_truthful(self):
        """N2: the envelope's sender is stamped by the network."""
        a, b, c = PingOnce(peer=2), PingOnce(peer=2), PingOnce()
        run_protocols([a, b, c])
        senders = sorted(sender for sender, _, _ in c.received)
        assert senders == [0, 1]

    def test_inbox_sorted_by_sender(self):
        receivers: list[list[int]] = []

        class Recorder(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round == 0 and ctx.node != 3:
                    ctx.send(3, "m")
                if ctx.round == 1 and ctx.node == 3:
                    receivers.append([env.sender for env in inbox])
                if ctx.round >= 1:
                    ctx.halt()

        run_protocols([Recorder() for _ in range(4)])
        assert receivers == [[0, 1, 2]]

    def test_no_message_loss_or_duplication(self):
        """N1: every sent message is delivered exactly once."""

        class Spammer(Protocol):
            def __init__(self):
                self.got = 0

            def on_round(self, ctx, inbox):
                self.got += len(inbox)
                if ctx.round < 3:
                    ctx.broadcast(("r", ctx.round))
                else:
                    ctx.halt()

        protocols = [Spammer() for _ in range(4)]
        result = run_protocols(protocols)
        # 3 rounds of 4 nodes broadcasting to 3 peers each.
        assert result.metrics.messages_total == 3 * 4 * 3
        assert sum(p.got for p in protocols) == 3 * 4 * 3

    def test_broadcast_excludes_self(self):
        class B(Protocol):
            def __init__(self):
                self.got_own = False

            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.broadcast("x")
                self.got_own |= any(env.sender == ctx.node for env in inbox)
                if ctx.round >= 1:
                    ctx.halt()

        protocols = [B() for _ in range(3)]
        run_protocols(protocols)
        assert not any(p.got_own for p in protocols)


class TestContracts:
    def test_self_send_rejected(self):
        class SelfSender(Protocol):
            def on_round(self, ctx, inbox):
                ctx.send(ctx.node, "oops")

        with pytest.raises(ProtocolViolationError):
            run_protocols([SelfSender(), Halter()])

    def test_out_of_range_recipient_rejected(self):
        class Wild(Protocol):
            def on_round(self, ctx, inbox):
                ctx.send(99, "oops")

        with pytest.raises(ProtocolViolationError):
            run_protocols([Wild(), Halter()])

    def test_send_after_halt_rejected(self):
        class Zombie(Protocol):
            def on_round(self, ctx, inbox):
                ctx.halt()
                ctx.send(1, "from the grave")

        with pytest.raises(ProtocolViolationError):
            run_protocols([Zombie(), Halter()])

    def test_nonhalting_protocol_trips_horizon(self):
        class Forever(Protocol):
            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(SimulationError):
            run_protocols([Forever(), Halter()], max_rounds=10)

    def test_single_node_network_rejected(self):
        with pytest.raises(ConfigurationError):
            run_protocols([Halter()])

    def test_bad_max_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Runner([Halter(), Halter()], max_rounds=0)


class TestDeterminism:
    def test_same_seed_same_rng_streams(self):
        draws: dict[int, list[int]] = {}

        class Draws(Protocol):
            def on_round(self, ctx, inbox):
                draws.setdefault(ctx.node, []).append(ctx.rng.getrandbits(32))
                if ctx.round >= 2:
                    ctx.halt()

        run_protocols([Draws(), Draws()], seed=77)
        first = {k: list(v) for k, v in draws.items()}
        draws.clear()
        run_protocols([Draws(), Draws()], seed=77)
        assert draws == first

    def test_nodes_have_independent_streams(self):
        from repro.sim import node_rng

        assert node_rng(1, 0).getrandbits(64) != node_rng(1, 1).getrandbits(64)
        assert node_rng(1, 0, "a").getrandbits(64) != node_rng(1, 0, "b").getrandbits(64)

    def test_seed_changes_streams(self):
        from repro.sim import node_rng

        assert node_rng(1, 0).getrandbits(64) != node_rng(2, 0).getrandbits(64)


class TestMetrics:
    def test_round_accounting_matches_sends(self):
        class TwoRounds(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.send((ctx.node + 1) % ctx.n, "a")
                elif ctx.round == 1:
                    ctx.send((ctx.node + 1) % ctx.n, "bb")
                else:
                    ctx.halt()

        result = run_protocols([TwoRounds() for _ in range(3)])
        metrics = result.metrics
        assert metrics.messages_total == 6
        assert metrics.rounds_used == 2
        assert metrics.messages_per_round[0] == 3
        assert metrics.messages_per_round[1] == 3
        assert metrics.messages_per_sender[0] == 2
        assert metrics.bytes_total > 0

    def test_messages_from_subset(self):
        class OneShot(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round == 0 and ctx.node == 0:
                    ctx.broadcast("x")
                if ctx.round >= 1:
                    ctx.halt()

        result = run_protocols([OneShot() for _ in range(4)])
        assert result.metrics.messages_from({0}) == 3
        assert result.metrics.messages_from({1, 2, 3}) == 0

    def test_payload_kind_breakdown(self):
        class Kinds(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round == 0 and ctx.node == 0:
                    ctx.send(1, ("alpha", 1))
                    ctx.send(1, ("beta", 2))
                    ctx.send(1, 42)
                if ctx.round >= 1:
                    ctx.halt()

        result = run_protocols([Kinds(), Kinds()])
        kinds = result.metrics.messages_per_kind
        assert kinds["alpha"] == 1
        assert kinds["beta"] == 1
        assert kinds["int"] == 1


class TestRunResult:
    def test_decisions_and_discoverers(self):
        class Decider(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.node == 0:
                    ctx.decide("yes")
                else:
                    ctx.discover_failure("saw something")
                ctx.halt()

        result = run_protocols([Decider(), Decider()])
        assert result.decisions() == {0: "yes"}
        assert result.discoverers() == [1]

    def test_first_discovery_reason_wins(self):
        class Doubter(Protocol):
            def on_round(self, ctx, inbox):
                ctx.discover_failure("first")
                ctx.discover_failure("second")
                ctx.halt()

        result = run_protocols([Doubter(), Doubter()])
        assert all(state.discovered == "first" for state in result.states)

    def test_outputs_collection(self):
        class Producer(Protocol):
            def on_round(self, ctx, inbox):
                ctx.state.outputs["thing"] = ctx.node * 10
                ctx.halt()

        result = run_protocols([Producer(), Producer()])
        assert result.outputs("thing") == {0: 0, 1: 10}
