"""Phase composition: embedded protocols see shifted rounds, effects are
captured, sends pass through."""

from __future__ import annotations

from repro.sim import Envelope, NodeContext, Protocol, run_protocols
from repro.sim.compose import PhaseHost


class Inner(Protocol):
    """Decides at its round 1; sends at its round 0."""

    def __init__(self) -> None:
        self.seen_rounds: list[int] = []

    def on_round(self, ctx: NodeContext, inbox):
        self.seen_rounds.append(ctx.round)
        if ctx.round == 0 and ctx.node == 0:
            ctx.broadcast(("inner", "hello"))
        if ctx.round >= 1:
            ctx.decide(("inner-decision", ctx.node))
            ctx.discover_failure("inner-reason")
            ctx.halt()


class Outer(Protocol):
    """Hosts Inner starting at outer round 2."""

    def __init__(self) -> None:
        self.host: PhaseHost | None = None
        self.inner = Inner()

    def setup(self, ctx):
        self.host = PhaseHost(self.inner, offset=2)

    def on_round(self, ctx, inbox):
        if ctx.round >= 2:
            self.host.step(ctx, inbox)
        if self.host.outcome.halted:
            # Outer interprets the captured outcome however it wants.
            ctx.decide(("outer-wrapped", self.host.outcome.decision))
            ctx.halt()


class TestPhaseHost:
    def test_rounds_are_shifted(self):
        protocols = [Outer(), Outer()]
        run_protocols(protocols)
        assert protocols[0].inner.seen_rounds == [0, 1]

    def test_sends_pass_through_and_are_received(self):
        protocols = [Outer(), Outer()]
        result = run_protocols(protocols)
        assert result.metrics.messages_total == 1
        # Sent at outer round 2 (inner round 0).
        assert result.metrics.messages_per_round[2] == 1

    def test_terminal_effects_are_captured_not_applied(self):
        protocols = [Outer(), Outer()]
        result = run_protocols(protocols)
        # The inner decide/discover landed in the outcome, not directly in
        # node state; the outer protocol re-decided with its own wrapper.
        assert result.states[0].decision == ("outer-wrapped", ("inner-decision", 0))
        assert result.states[0].discovered is None
        assert protocols[0].host.outcome.discovered == "inner-reason"

    def test_step_after_halt_is_noop(self):
        protocols = [Outer(), Outer()]
        run_protocols(protocols)
        host = protocols[0].host
        rounds_before = list(protocols[0].inner.seen_rounds)
        host.step(None, [])  # ctx unused when halted
        assert protocols[0].inner.seen_rounds == rounds_before
