"""Phase composition: embedded protocols see shifted rounds, effects are
captured, sends pass through."""

from __future__ import annotations

from repro.sim import Envelope, NodeContext, Protocol, run_protocols
from repro.sim.compose import PhaseHost


class Inner(Protocol):
    """Decides at its round 1; sends at its round 0."""

    def __init__(self) -> None:
        self.seen_rounds: list[int] = []

    def on_round(self, ctx: NodeContext, inbox):
        self.seen_rounds.append(ctx.round)
        if ctx.round == 0 and ctx.node == 0:
            ctx.broadcast(("inner", "hello"))
        if ctx.round >= 1:
            ctx.decide(("inner-decision", ctx.node))
            ctx.discover_failure("inner-reason")
            ctx.halt()


class Outer(Protocol):
    """Hosts Inner starting at outer round 2."""

    def __init__(self) -> None:
        self.host: PhaseHost | None = None
        self.inner = Inner()

    def setup(self, ctx):
        self.host = PhaseHost(self.inner, offset=2)

    def on_round(self, ctx, inbox):
        if ctx.round >= 2:
            self.host.step(ctx, inbox)
        if self.host.outcome.halted:
            # Outer interprets the captured outcome however it wants.
            ctx.decide(("outer-wrapped", self.host.outcome.decision))
            ctx.halt()


class TestPhaseHost:
    def test_rounds_are_shifted(self):
        protocols = [Outer(), Outer()]
        run_protocols(protocols)
        assert protocols[0].inner.seen_rounds == [0, 1]

    def test_sends_pass_through_and_are_received(self):
        protocols = [Outer(), Outer()]
        result = run_protocols(protocols)
        assert result.metrics.messages_total == 1
        # Sent at outer round 2 (inner round 0).
        assert result.metrics.messages_per_round[2] == 1

    def test_terminal_effects_are_captured_not_applied(self):
        protocols = [Outer(), Outer()]
        result = run_protocols(protocols)
        # The inner decide/discover landed in the outcome, not directly in
        # node state; the outer protocol re-decided with its own wrapper.
        assert result.states[0].decision == ("outer-wrapped", ("inner-decision", 0))
        assert result.states[0].discovered is None
        assert protocols[0].host.outcome.discovered == "inner-reason"

    def test_step_after_halt_is_noop(self):
        protocols = [Outer(), Outer()]
        run_protocols(protocols)
        host = protocols[0].host
        rounds_before = list(protocols[0].inner.seen_rounds)
        host.step(None, [])  # ctx unused when halted
        assert protocols[0].inner.seen_rounds == rounds_before


class _ImmediateInner(Protocol):
    """Decides and halts in its own round 0 — the earliest possible."""

    def __init__(self):
        self.seen_rounds = []

    def on_round(self, ctx, inbox):
        self.seen_rounds.append(ctx.round)
        ctx.decide(("instant", ctx.round))
        ctx.halt()


class TestRoundOffsetEdges:
    """Window edges: deciding at inner round 0, halting mid-window."""

    def test_inner_decides_in_its_round_zero_at_nonzero_offset(self):
        class Outer(Protocol):
            def __init__(self):
                self.inner = _ImmediateInner()
                self.host = None
                self.decided_at = None

            def setup(self, ctx):
                self.host = PhaseHost(self.inner, offset=3)

            def on_round(self, ctx, inbox):
                if ctx.round >= 3:
                    self.host.step(ctx, inbox)
                if self.host.outcome.halted:
                    self.decided_at = ctx.round
                    ctx.decide(self.host.outcome.decision)
                    ctx.halt()

        protocols = [Outer(), Outer()]
        result = run_protocols(protocols)
        # Inner round 0 fell at outer round 3, and its decision was
        # captured the same outer round it was made.
        assert protocols[0].inner.seen_rounds == [0]
        assert protocols[0].decided_at == 3
        assert result.states[0].decision == ("instant", 0)

    def test_inner_halting_inside_window_freezes_outcome(self):
        """A window longer than the inner protocol: once the inner halts
        mid-window, later steps are no-ops and the captured outcome does
        not drift."""

        class Outer(Protocol):
            def __init__(self):
                self.inner = _ImmediateInner()
                self.host = None
                self.snapshots = []

            def setup(self, ctx):
                self.host = PhaseHost(self.inner, offset=1)

            def on_round(self, ctx, inbox):
                if 1 <= ctx.round <= 4:  # window of 4 outer rounds
                    self.host.step(ctx, inbox)
                    self.snapshots.append(
                        (self.host.outcome.halted, self.host.outcome.decision)
                    )
                if ctx.round >= 4:
                    ctx.halt()

        protocols = [Outer(), Outer()]
        run_protocols(protocols)
        outer = protocols[0]
        assert outer.inner.seen_rounds == [0]  # stepped exactly once
        assert outer.snapshots == [(True, ("instant", 0))] * 4

    def test_kind_filter_hands_inner_only_its_traffic(self):
        class Chatter(Protocol):
            def on_round(self, ctx, inbox):
                if ctx.round == 0 and ctx.node == 0:
                    ctx.broadcast(("wanted", 1))
                    ctx.broadcast(("unwanted", 2))
                ctx.halt()

        class Listener(Protocol):
            def __init__(self):
                self.inner_inboxes = []
                self.host = None

            def setup(self, ctx):
                inner = self

                class Inner(Protocol):
                    def on_round(self, ictx, inbox):
                        inner.inner_inboxes.append(
                            [env.payload for env in inbox]
                        )
                        if ictx.round >= 1:
                            ictx.halt()

                self.host = PhaseHost(Inner(), offset=0, kinds=("wanted",))

            def on_round(self, ctx, inbox):
                self.host.step(ctx, inbox)
                if self.host.outcome.halted:
                    ctx.halt()

        protocols = [Chatter(), Listener()]
        run_protocols(protocols)
        assert protocols[1].inner_inboxes == [[], [("wanted", 1)]]
