"""The pre-kernel synchronous runner, kept verbatim as a reference oracle.

This is the lock-step scheduler loop exactly as it stood before the
event-kernel refactor (PR 4) — the same role the dense EIG engine plays
for the succinct one: a slow-to-evolve reference implementation the
property tests compare the production path against bit-for-bit
(``tests/sim/test_kernel.py``).  It must not be "improved"; its value is
that it is the old semantics, frozen.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.sim.kernel import RunResult
from repro.sim.message import Envelope
from repro.sim.metrics import Metrics
from repro.sim.node import NodeContext, NodeState, Protocol
from repro.sim.rng import node_rng
from repro.sim.trace import Trace
from repro.sim.views import View
from repro.types import NodeId, validate_node_count


class ReferenceRunner:
    """The pre-kernel ``Runner``: hard-coded synchronous rounds."""

    def __init__(
        self,
        protocols: Sequence[Protocol],
        seed: int | str = 0,
        max_rounds: int = 10_000,
        record_views: bool = False,
        record_trace: bool = False,
    ) -> None:
        validate_node_count(len(protocols))
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.n = len(protocols)
        self.seed = seed
        self.round = 0
        self._protocols = list(protocols)
        self._max_rounds = max_rounds
        self._record_views = record_views
        self._trace = Trace() if record_trace else None
        self._metrics = Metrics()
        self._pending: list[Envelope] = []
        self._contexts = [
            NodeContext(self, node, node_rng(seed, node))  # type: ignore[arg-type]
            for node in range(self.n)
        ]
        self._views = [View(node=node) for node in range(self.n)]

    @property
    def tick(self) -> int:
        # The one concession to the post-kernel NodeContext, which reads
        # simulated time through ``_runner.tick``: expose the old round
        # counter under the new name (same value, same semantics).
        return self.round

    def enqueue(self, envelope: Envelope) -> None:
        self._metrics.record(envelope)
        if self._trace is not None:
            self._trace.record_send(envelope)
        self._pending.append(envelope)

    def run(self) -> RunResult:
        for ctx, protocol in zip(self._contexts, self._protocols):
            protocol.setup(ctx)

        contexts = self._contexts
        protocols = self._protocols
        n = self.n
        recording = self._record_views or self._trace is not None
        halted = sum(1 for ctx in contexts if ctx.state.halted)

        rounds_executed = 0
        while halted < n:
            if rounds_executed >= self._max_rounds:
                raise SimulationError(
                    f"run exceeded max_rounds={self._max_rounds}; "
                    "a protocol failed to halt"
                )
            inboxes: list[list[Envelope]] = [[] for _ in range(n)]
            for envelope in self._pending:
                inboxes[envelope.recipient].append(envelope)
            self._pending = []

            if not recording:
                for node in range(n):
                    ctx = contexts[node]
                    state = ctx.state
                    if state.halted:
                        continue
                    protocols[node].on_round(ctx, inboxes[node])
                    if state.halted:
                        halted += 1
            else:
                for node in range(n):
                    ctx = contexts[node]
                    if self._record_views and not ctx.state.halted:
                        self._views[node].record_round(inboxes[node])
                    if ctx.state.halted:
                        continue
                    before = (ctx.state.decided, ctx.state.discovered, ctx.state.halted)
                    protocols[node].on_round(ctx, inboxes[node])
                    if self._trace is not None:
                        self._record_transitions(node, before, ctx.state)
                    if ctx.state.halted:
                        halted += 1

            self.round += 1
            rounds_executed += 1

        return RunResult(
            n=self.n,
            rounds_executed=rounds_executed,
            metrics=self._metrics,
            states=[ctx.state for ctx in self._contexts],
            views=self._views if self._record_views else [],
            seed=self.seed,
            trace=self._trace,
        )

    def _record_transitions(
        self,
        node: NodeId,
        before: tuple[bool, str | None, bool],
        state: NodeState,
    ) -> None:
        was_decided, was_discovered, was_halted = before
        if state.decided and not was_decided:
            self._trace.record_decide(self.round, node, state.decision)
        if state.discovered is not None and was_discovered is None:
            self._trace.record_discover(self.round, node, state.discovered)
        if state.halted and not was_halted:
            self._trace.record_halt(self.round, node)
