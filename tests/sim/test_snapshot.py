"""Kernel checkpoint/resume: resume-equals-straight-run, bit for bit.

The contract under test (:mod:`repro.sim.snapshot`): a run checkpointed
at a tick boundary and resumed — in this process or another — produces
*exactly* the straight run's observables: counts, decisions, drop and
delivery totals, trace timestamps.  The property is exercised across
all four delivery families (sync / bounded / loss / partition), random
Byzantine and adaptive adversaries, and both mux execution engines,
plus the warm-started fork path (`retune` of tunable parameters).
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.auth import trusted_dealer_setup
from repro.crypto import simulated
from repro.errors import ConfigurationError, ProtocolViolationError
from repro.fd.timeout import TimeoutFDProtocol
from repro.harness import (
    run_fd_scenario,
    sweep,
    sweep_prefix_shared,
)
from repro.sim import (
    COLUMNAR_ENGINE,
    OBJECT_ENGINE,
    EventKernel,
    KernelSnapshot,
    Protocol,
    Runner,
    capture_kernel,
    clear_checkpoint_policy,
    load_snapshot,
    make_delivery,
    restore_kernel,
    retune_protocols,
    save_snapshot,
    set_checkpoint_policy,
)

from .test_batch import observables, om_mux_protocols


def outcome_observables(outcome):
    """Every observable of a ScenarioOutcome, as one comparable value."""
    run = outcome.run
    metrics = run.metrics
    return {
        "rounds": run.rounds_executed,
        "rounds_used": metrics.rounds_used,
        "messages": metrics.messages_total,
        "bytes": metrics.bytes_total,
        "per_round": dict(metrics.messages_per_round),
        "drops": metrics.drops_total,
        "deliveries": metrics.deliveries_total,
        "decisions": {node: repr(v) for node, v in run.decisions().items()},
        "discoverers": run.discoverers(),
        "halted": [s.halted for s in run.states],
        "correct": sorted(outcome.correct),
        "committed": outcome.committed,
        "fd_ok": None if outcome.fd is None else outcome.fd.ok,
    }


# One scenario per delivery family, plus adversary variety: the
# resume-equals-straight property must hold for every calendar shape
# (lock-step, jittered, lossy, partitioned) and every corruption mode.
SCENARIOS = [
    pytest.param(
        dict(protocol="timeout", delivery=None, adversary="14=silent"),
        5,
        id="sync-silent",
    ),
    pytest.param(
        dict(protocol="timeout", delivery="bounded:3", adversary="13=silent;14=silent"),
        6,
        id="bounded-silent",
    ),
    pytest.param(
        dict(protocol="timeout", delivery="loss:0.2:3", adversary="14=silent;15=silent"),
        7,
        id="loss-silent",
    ),
    pytest.param(
        dict(
            protocol="timeout",
            delivery="bounded:3",
            adversary="13=tamper@0.4;14=drop@0.3",
        ),
        5,
        id="bounded-random-byzantine",
    ),
    pytest.param(
        dict(protocol="timeout", delivery="partition:0-7|8-15@6"),
        4,
        id="partition-drop-straddling-heal",
    ),
    pytest.param(
        dict(protocol="timeout", delivery="partition:0-7|8-15@6/defer"),
        4,
        id="partition-defer",
    ),
    pytest.param(
        dict(
            protocol="adaptive",
            delivery="bounded:4",
            adversary="adaptive:gag-sender",
        ),
        6,
        id="adaptive-adversary",
    ),
    pytest.param(
        dict(
            protocol="adaptive",
            delivery="loss:0.15:2",
            adversary="adaptive:silence-muffled",
        ),
        5,
        id="adaptive-silence-muffled",
    ),
]


class TestResumeEqualsStraightRun:
    @pytest.mark.parametrize("scenario, tick", SCENARIOS)
    def test_resume_matches(self, scenario, tick):
        base = dict(n=16, t=2, seed=11, **scenario)
        straight = run_fd_scenario(16, 2, "v", **{k: v for k, v in base.items() if k not in ("n", "t")})
        snap = run_fd_scenario(
            16, 2, "v",
            **{k: v for k, v in base.items() if k not in ("n", "t")},
            checkpoint_at=tick,
        )
        assert isinstance(snap, KernelSnapshot)
        assert snap.tick == tick
        resumed = run_fd_scenario(
            16, 2, "v",
            **{k: v for k, v in base.items() if k not in ("n", "t")},
            resume_from=snap,
        )
        assert outcome_observables(resumed) == outcome_observables(straight)

    @pytest.mark.parametrize("scenario, tick", SCENARIOS)
    def test_resume_matches_after_pickle_round_trip(self, scenario, tick, tmp_path):
        """The on-disk form (and the process-pool form) resumes identically
        — including the simulated scheme's trust base, which must travel
        with the pickled secrets rather than stay process-local."""
        base = dict(seed=11, **scenario)
        straight = run_fd_scenario(16, 2, "v", **base)
        snap = run_fd_scenario(16, 2, "v", **base, checkpoint_at=tick)
        path = save_snapshot(snap, tmp_path / "point.ckpt")
        # Clearing the registry makes this process as cold as a fresh
        # worker: without re-registration on unpickle, every signature
        # verification would flip to reject and the run would diverge.
        saved_registry = dict(simulated._SECRET_REGISTRY)
        simulated._SECRET_REGISTRY.clear()
        try:
            resumed = run_fd_scenario(
                16, 2, "v", **base, resume_from=load_snapshot(path)
            )
        finally:
            simulated._SECRET_REGISTRY.update(saved_registry)
        assert outcome_observables(resumed) == outcome_observables(straight)

    def test_one_snapshot_forks_independent_runs(self):
        base = dict(protocol="timeout", delivery="loss:0.2:3", adversary="15=silent", seed=3)
        snap = run_fd_scenario(16, 2, "v", **base, checkpoint_at=5)
        first = run_fd_scenario(16, 2, "v", **base, resume_from=snap)
        second = run_fd_scenario(16, 2, "v", **base, resume_from=snap)
        assert outcome_observables(first) == outcome_observables(second)

    def test_checkpoint_past_run_end_is_an_error(self):
        with pytest.raises(ConfigurationError, match="before the checkpoint tick"):
            run_fd_scenario(
                8, 1, "v", protocol="chain", checkpoint_at=500
            )

    def test_resume_rejects_mismatched_scenario(self):
        base = dict(protocol="timeout", delivery="bounded:3", seed=4)
        snap = run_fd_scenario(16, 2, "v", **base, checkpoint_at=4)
        with pytest.raises(ConfigurationError, match="resume mismatch"):
            run_fd_scenario(16, 2, "v", protocol="timeout", delivery="bounded:3", seed=99, resume_from=snap)
        with pytest.raises(ConfigurationError, match="resume mismatch"):
            run_fd_scenario(12, 2, "v", **base, resume_from=snap)

    def test_checkpoint_and_resume_are_mutually_exclusive(self):
        base = dict(protocol="timeout", delivery="bounded:3", seed=4)
        snap = run_fd_scenario(16, 2, "v", **base, checkpoint_at=4)
        with pytest.raises(ConfigurationError, match="checkpoint_at"):
            run_fd_scenario(16, 2, "v", **base, checkpoint_at=4, resume_from=snap)


class TestEngineCoverage:
    """Snapshot/resume under both mux execution engines."""

    @pytest.mark.parametrize("engine", [COLUMNAR_ENGINE, OBJECT_ENGINE])
    def test_mux_run_resumes_bit_for_bit(self, engine):
        def build():
            return Runner(
                om_mux_protocols(5, 1, engine),
                seed="snap-mux",
                delivery=make_delivery("loss:0.2:2"),
            )

        straight = build().run()
        runner = build()
        assert runner.run(until_tick=2) is None
        snap = capture_kernel(runner)
        resumed = restore_kernel(snap).run()
        assert observables(resumed) == observables(straight)


class TestTraceContinuity:
    """Satellite: the spliced checkpoint+resume log equals the straight
    run's log, drop events and delivery timestamps included."""

    CASES = [
        pytest.param(dict(delivery="loss:0.25:3", adversary="15=silent"), 5, id="loss"),
        # Partition (drop mode) healing at tick 6, snapshot at 4: the
        # cross-partition DROPPED events straddle the snapshot tick.
        pytest.param(dict(delivery="partition:0-7|8-15@6"), 4, id="partition-drop"),
        pytest.param(dict(delivery="partition:0-7|8-15@6/defer"), 4, id="partition-defer"),
    ]

    @pytest.mark.parametrize("scenario, tick", CASES)
    def test_spliced_log_equals_straight_log(self, scenario, tick):
        base = dict(protocol="timeout", seed=17, record_trace=True, **scenario)
        straight = run_fd_scenario(16, 2, "v", **base)
        snap = run_fd_scenario(16, 2, "v", **base, checkpoint_at=tick)
        resumed = run_fd_scenario(16, 2, "v", **base, resume_from=snap)

        straight_events = straight.run.trace.events
        resumed_events = resumed.run.trace.events
        assert resumed_events == straight_events
        assert resumed.run.trace.format() == straight.run.trace.format()

        # The snapshot carries exactly the prefix of the log...
        prefix = restore_kernel(snap)._trace.events
        assert prefix == straight_events[: len(prefix)]
        assert all(e.round < tick for e in prefix)
        # ...and the straight log has suffix events, so the splice is real.
        assert any(e.round >= tick for e in straight_events)

    @pytest.mark.parametrize("scenario, tick", CASES)
    def test_timestamps_monotonic_across_resume(self, scenario, tick):
        base = dict(protocol="timeout", seed=17, record_trace=True, **scenario)
        snap = run_fd_scenario(16, 2, "v", **base, checkpoint_at=tick)
        resumed = run_fd_scenario(16, 2, "v", **base, resume_from=snap)
        events = resumed.run.trace.events
        rounds = [e.round for e in events]
        assert rounds == sorted(rounds)
        for event in events:
            if event.kind == "send" and event.tick is not None:
                assert event.tick > event.round

    def test_partition_drop_events_straddle_snapshot(self):
        base = dict(
            protocol="timeout",
            delivery="partition:0-7|8-15@6",
            seed=17,
            record_trace=True,
        )
        snap = run_fd_scenario(16, 2, "v", **base, checkpoint_at=4)
        resumed = run_fd_scenario(16, 2, "v", **base, resume_from=snap)
        drop_rounds = {
            e.round for e in resumed.run.trace.events if e.kind == "drop"
        }
        assert any(r < 4 for r in drop_rounds), "drops before the snapshot"
        assert any(r >= 4 for r in drop_rounds), "drops after the resume"


class TestWarmStartedSweeps:
    """sweep_prefix_shared: fork results equal the straight sweep's."""

    E13_BASE = dict(
        n=16, t=2, protocol="timeout", delivery="loss:0.2:3", faulty=2, seed=5
    )

    def test_e13_timeout_axis(self):
        points = [dict(self.E13_BASE, timeout=v) for v in (12, 16, 20)]
        warm = sweep_prefix_shared(
            points,
            "e13-timeout-fd",
            prefix=dict(self.E13_BASE, timeout=64),
            prefix_ticks=8,
        )
        straight = sweep(points, "e13-timeout-fd")
        assert [p.params for p in warm] == [p.params for p in straight]
        assert [p.result for p in warm] == [p.result for p in straight]

    def test_e14_max_timeout_axis(self):
        base = dict(
            n=12, t=2, protocol="adaptive", delivery="bounded:4",
            attack="adaptive:gag-sender", seed=7,
        )
        points = [dict(base, max_timeout=v) for v in (10, 14)]
        warm = sweep_prefix_shared(
            points, "e14-adaptive", prefix=dict(base, max_timeout=80), prefix_ticks=6
        )
        straight = sweep(points, "e14-adaptive")
        assert [p.result for p in warm] == [p.result for p in straight]

    def test_e13_partition_timeout_axis(self):
        base = dict(n=16, t=2, heal=6, defer=False, protocol="timeout", seed=2)
        points = [dict(base, timeout=v) for v in (10, 14)]
        warm = sweep_prefix_shared(
            points, "e13-partition", prefix=dict(base, timeout=64), prefix_ticks=4
        )
        straight = sweep(points, "e13-partition")
        assert [p.result for p in warm] == [p.result for p in straight]

    def test_stripped_resume_param(self):
        points = [dict(self.E13_BASE, timeout=12)]
        warm = sweep_prefix_shared(
            points,
            "e13-timeout-fd",
            prefix=dict(self.E13_BASE, timeout=64),
            prefix_ticks=8,
        )
        assert "resume_from" not in warm[0].params

    def test_rejects_non_positive_prefix_ticks(self):
        with pytest.raises(ConfigurationError, match="positive tick count"):
            sweep_prefix_shared(
                [], "e13-timeout-fd", prefix=dict(self.E13_BASE), prefix_ticks=0
            )

    def test_rejects_workload_without_resume_support(self):
        with pytest.raises(ConfigurationError, match="checkpoint_at"):
            sweep_prefix_shared(
                [], "e12-fd", prefix=dict(n=8, t=1), prefix_ticks=4
            )


def _timeout_protocols(n=4, t=1, timeout=8):
    keypairs, directories = trusted_dealer_setup(n, seed="retune", scheme="simulated-hmac")
    return [
        TimeoutFDProtocol(n, t, keypairs[i], directories[i], timeout=timeout)
        for i in range(n)
    ]


class TestRetune:
    def test_base_protocol_rejects_retune(self):
        assert Protocol.tunable == frozenset()
        with pytest.raises(ProtocolViolationError):
            Protocol().retune(timeout=4)

    def test_unmatched_param_is_an_error(self):
        with pytest.raises(ConfigurationError, match="no protocol"):
            retune_protocols(_timeout_protocols(), warp=3)

    def test_retune_counts_matches(self):
        protocols = _timeout_protocols()
        assert retune_protocols(protocols, timeout=12) == {"timeout": 4}
        assert all(p._timeout == 12 for p in protocols)

    def test_retune_validates_values(self):
        protocol = _timeout_protocols(n=4)[0]
        with pytest.raises(ConfigurationError, match="positive"):
            protocol.retune(timeout=0)


class _HookedCounter(Protocol):
    """Protocol with an unpicklable attr, captured via the hook pair."""

    def __init__(self) -> None:
        self.count = 0
        self.unpicklable = lambda: None

    def on_round(self, ctx, inbox) -> None:
        self.count += 1
        if self.count >= 3:
            ctx.halt()

    def snapshot_state(self):
        return self.count

    def restore_state(self, state) -> None:
        self.count = state
        self.unpicklable = lambda: None


class _StuckProtocol(Protocol):
    """Unpicklable protocol without hooks: capture must fail fast."""

    def __init__(self) -> None:
        self.unpicklable = lambda: None

    def on_round(self, ctx, inbox) -> None:
        ctx.halt()


class TestSnapshotMachinery:
    def test_until_tick_stops_before_processing(self):
        runner = Runner([_HookedCounter() for _ in range(3)], seed=0)
        assert runner.run(until_tick=2) is None
        assert runner.tick == 2
        assert all(p.count == 2 for p in runner._protocols)

    def test_until_tick_already_reached_returns_immediately(self):
        runner = Runner([_HookedCounter() for _ in range(3)], seed=0)
        runner.run(until_tick=2)
        assert runner.run(until_tick=1) is None
        assert runner.tick == 2

    def test_hooked_protocols_round_trip(self):
        runner = Runner([_HookedCounter() for _ in range(3)], seed=0)
        runner.run(until_tick=2)
        snap = runner.snapshot()
        # The live kernel keeps its real protocols after capture.
        assert all(isinstance(p, _HookedCounter) for p in runner.protocols)
        resumed = EventKernel.resume(snap)
        assert all(isinstance(p, _HookedCounter) for p in resumed.protocols)
        assert all(p.count == 2 for p in resumed.protocols)
        result = resumed.run()
        assert result.rounds_executed == runner.run().rounds_executed

    def test_unpicklable_protocol_fails_fast(self):
        runner = Runner([_StuckProtocol() for _ in range(2)], seed=0)
        with pytest.raises(ConfigurationError, match="snapshot_state"):
            runner.run(until_tick=0)
            capture_kernel(runner)

    def test_version_mismatch_refused(self):
        runner = Runner([_HookedCounter() for _ in range(2)], seed=0)
        runner.run(until_tick=1)
        snap = dataclasses.replace(runner.snapshot(), version=999)
        with pytest.raises(ConfigurationError, match="version"):
            restore_kernel(snap)

    def test_restore_rejects_non_snapshot(self):
        with pytest.raises(ConfigurationError, match="KernelSnapshot"):
            restore_kernel({"tick": 3})

    def test_size_bytes(self):
        runner = Runner([_HookedCounter() for _ in range(2)], seed=0)
        runner.run(until_tick=1)
        snap = runner.snapshot()
        assert snap.size_bytes == len(snap.payload) > 0


class TestSnapshotFiles:
    def test_round_trip(self, tmp_path):
        runner = Runner([_HookedCounter() for _ in range(2)], seed=0)
        runner.run(until_tick=1)
        path = save_snapshot(runner.snapshot(), tmp_path / "deep" / "a.ckpt")
        loaded = load_snapshot(path)
        assert loaded.tick == 1
        assert EventKernel.resume(loaded).run().rounds_executed == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read checkpoint"):
            load_snapshot(tmp_path / "nope.ckpt")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a pickle")
        with pytest.raises(ConfigurationError, match="corrupt"):
            load_snapshot(path)

    def test_wrong_payload_type(self, tmp_path):
        path = tmp_path / "other.ckpt"
        path.write_bytes(pickle.dumps({"hello": 1}))
        with pytest.raises(ConfigurationError, match="does not contain"):
            load_snapshot(path)

    def test_version_mismatch(self, tmp_path):
        runner = Runner([_HookedCounter() for _ in range(2)], seed=0)
        runner.run(until_tick=1)
        stale = dataclasses.replace(runner.snapshot(), version=0)
        path = tmp_path / "stale.ckpt"
        path.write_bytes(pickle.dumps(stale))
        with pytest.raises(ConfigurationError, match="version"):
            load_snapshot(path)


class TestCheckpointPolicy:
    def test_periodic_files_resume(self, tmp_path):
        base = dict(protocol="timeout", delivery="bounded:3", adversary="15=silent", seed=9)
        straight = run_fd_scenario(16, 2, "v", **base)
        policy = set_checkpoint_policy(3, tmp_path)
        try:
            run_fd_scenario(16, 2, "v", **base)
        finally:
            clear_checkpoint_policy()
        assert policy.written, "no checkpoints written"
        for path in policy.written:
            snap = load_snapshot(path)
            assert snap.tick % 3 == 0
            resumed = restore_kernel(snap).run()
            assert resumed.metrics.messages_total == straight.run.metrics.messages_total
            assert resumed.metrics.drops_total == straight.run.metrics.drops_total

    def test_non_positive_interval_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="positive"):
            set_checkpoint_policy(0, tmp_path)

    def test_clear_stops_writing(self, tmp_path):
        policy = set_checkpoint_policy(2, tmp_path)
        clear_checkpoint_policy()
        run_fd_scenario(8, 1, "v", protocol="timeout", seed=1)
        assert policy.written == []
