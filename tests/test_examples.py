"""Every example script must run to completion (they self-assert).

The examples double as end-to-end integration tests: each one exercises
the public API over a realistic scenario and asserts the paper-predicted
outcome internally, so "runs without error" is a meaningful check.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    # Every example narrates; an empty stdout would mean it silently
    # skipped its body.
    assert len(out.splitlines()) > 5


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "key_mixing_attack",
        "amortized_replication",
        "byzantine_agreement",
        "local_auth_limits",
    } <= names
