"""Documentation coverage: every public item carries a docstring.

The deliverable contract says "doc comments on every public item"; this
meta-test makes that contract executable, so a future contributor cannot
silently regress it.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(member):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in public_members(module):
        if inspect.isclass(member) or inspect.isfunction(member):
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented {undocumented}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for cls_name, cls in public_members(module):
        if not inspect.isclass(cls):
            continue
        for name, member in vars(cls).items():
            if name.startswith("_") or not inspect.isfunction(member):
                continue
            if not (member.__doc__ and member.__doc__.strip()):
                # Inherited-contract overrides (same name in a base with a
                # docstring) are acceptable.
                base_doc = any(
                    getattr(base, name, None) is not None
                    and getattr(base, name).__doc__
                    for base in cls.__mro__[1:]
                )
                if not base_doc:
                    undocumented.append(f"{cls_name}.{name}")
    assert not undocumented, f"{module_name}: undocumented {undocumented}"
