"""Assignment properties G1-G3 (paper Theorem 2 and section 3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth import (
    check_g1,
    check_g2,
    check_g3,
    run_key_distribution,
    trusted_dealer_setup,
)
from repro.faults import (
    AdversaryCoordination,
    CrossClaimAttack,
    MixedPredicateAttack,
    SharedKeyAttack,
    SilentProtocol,
)


def genuine_of(result, correct):
    return {node: result.keypairs[node].predicate for node in correct}


class TestGlobalAuthentication:
    def test_dealer_satisfies_all_properties(self):
        n = 6
        keypairs, directories = trusted_dealer_setup(n, seed=1)
        correct = set(range(n))
        genuine = {node: keypairs[node].predicate for node in range(n)}
        assert check_g1(directories, genuine, correct) == []
        assert check_g2(directories, genuine, correct) == []
        report = check_g3(directories, correct)
        assert report.holds and not report.partial


class TestTheorem2:
    """After the key distribution protocol, G1 and G2 hold — under every
    adversary this library can express."""

    def test_honest_run(self):
        result = run_key_distribution(6, seed=2)
        correct = set(range(6))
        genuine = genuine_of(result, correct)
        assert check_g1(result.directories, genuine, correct) == []
        assert check_g2(result.directories, genuine, correct) == []
        assert check_g3(result.directories, correct).holds

    @pytest.mark.parametrize(
        "attack_name", ["shared", "cross", "mixed", "silent"]
    )
    def test_g1_g2_survive_attacks(self, attack_name):
        n = 7
        coordination = AdversaryCoordination()
        group = {0, 1}
        attacks = {
            "shared": {
                5: SharedKeyAttack(coordination),
                6: SharedKeyAttack(coordination),
            },
            "cross": {
                5: CrossClaimAttack(coordination, group, "x", "y"),
                6: CrossClaimAttack(coordination, group, "y", "x"),
            },
            "mixed": {5: MixedPredicateAttack(coordination, group, "p", "q")},
            "silent": {5: SilentProtocol(), 6: SilentProtocol()},
        }
        adversaries = attacks[attack_name]
        result = run_key_distribution(n, adversaries=adversaries, seed=3)
        correct = set(range(n)) - set(adversaries)
        genuine = genuine_of(result, correct)
        assert check_g1(result.directories, genuine, correct) == []
        assert check_g2(result.directories, genuine, correct) == []

    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=10, deadline=None)
    def test_g1_g2_random_seeds(self, seed):
        coordination = AdversaryCoordination()
        adversaries = {
            4: CrossClaimAttack(coordination, {0, 1}, "x", "y"),
            5: CrossClaimAttack(coordination, {0, 1}, "y", "x"),
        }
        result = run_key_distribution(6, adversaries=adversaries, seed=seed)
        correct = {0, 1, 2, 3}
        genuine = genuine_of(result, correct)
        assert check_g1(result.directories, genuine, correct) == []
        assert check_g2(result.directories, genuine, correct) == []


class TestG3Violations:
    """G3 'unfortunately does not hold for local authentication' — the
    attacks of section 3.2, detected by the checker."""

    def test_cross_claim_produces_conflicting_assignment(self):
        n = 7
        coordination = AdversaryCoordination()
        group = {0, 1, 2}
        adversaries = {
            5: CrossClaimAttack(coordination, group, "x", "y"),
            6: CrossClaimAttack(coordination, group, "y", "x"),
        }
        result = run_key_distribution(n, adversaries=adversaries, seed=4)
        report = check_g3(result.directories, set(range(5)))
        assert not report.holds
        # Both shared keys end up cross-assigned.
        assert len(report.conflicting) == 2

    def test_mixed_predicates_produce_assignment_classes(self):
        """'This leads to classes of nodes such that the faulty node can
        select the class of nodes which can assign the message at all.'"""
        n = 6
        coordination = AdversaryCoordination()
        group = {0, 2}
        adversaries = {5: MixedPredicateAttack(coordination, group, "p", "q")}
        result = run_key_distribution(n, adversaries=adversaries, seed=5)
        report = check_g3(result.directories, set(range(5)))
        assert report.holds          # no *conflicting* assignment...
        assert report.partial        # ...but assignment classes exist

    def test_shared_key_is_consistent_multi_assignment(self):
        """Key sharing does not violate G3: 'still all correct recipients
        of the signed message assign it to the same node'."""
        n = 6
        coordination = AdversaryCoordination()
        adversaries = {
            4: SharedKeyAttack(coordination),
            5: SharedKeyAttack(coordination),
        }
        result = run_key_distribution(n, adversaries=adversaries, seed=6)
        report = check_g3(result.directories, set(range(4)))
        assert report.holds
        assert not report.partial

    def test_g3_checker_ignores_faulty_observers(self):
        n = 6
        coordination = AdversaryCoordination()
        adversaries = {
            4: CrossClaimAttack(coordination, {0, 1}, "x", "y"),
            5: CrossClaimAttack(coordination, {0, 1}, "y", "x"),
        }
        result = run_key_distribution(n, adversaries=adversaries, seed=7)
        # Restricting the observer set to one class removes the conflict.
        report = check_g3(result.directories, {0, 1})
        assert report.holds
