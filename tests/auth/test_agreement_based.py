"""Agreement-based key distribution: the paper's rejected alternative."""

from __future__ import annotations

import pytest

from repro.analysis import keydist_messages
from repro.auth import (
    agreement_keydist_envelopes,
    check_g1,
    check_g2,
    check_g3,
    run_agreement_key_distribution,
)
from repro.errors import ConfigurationError
from repro.faults import SilentProtocol


class TestHonestRuns:
    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
    def test_all_directories_genuine_and_identical(self, n, t):
        result = run_agreement_key_distribution(n, t, seed=n)
        for observer in range(n):
            for subject in range(n):
                assert result.directories[observer].predicates_for(subject) == (
                    result.keypairs[subject].predicate,
                )

    def test_g1_g2_g3_all_hold(self):
        """Unlike local authentication, this method gives full G3 — at a
        price."""
        n, t = 7, 2
        result = run_agreement_key_distribution(n, t, seed=1)
        correct = set(range(n))
        genuine = {node: result.keypairs[node].predicate for node in correct}
        assert check_g1(result.directories, genuine, correct) == []
        assert check_g2(result.directories, genuine, correct) == []
        report = check_g3(result.directories, correct)
        assert report.holds and not report.partial

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
    def test_envelope_count_matches_formula(self, n, t):
        result = run_agreement_key_distribution(n, t, seed=n)
        assert result.messages == agreement_keydist_envelopes(n, t)

    @pytest.mark.parametrize("n,t", [(7, 2), (10, 3)])
    def test_more_expensive_than_local_authentication(self, n, t):
        """The paper's cost argument, as an inequality."""
        assert agreement_keydist_envelopes(n, t) > keydist_messages(n)


class TestFeasibilityBoundary:
    """'may not work because of too many faulty nodes' — measured."""

    @pytest.mark.parametrize("n,t", [(3, 1), (6, 2), (9, 3)])
    def test_n_at_most_3t_rejected(self, n, t):
        with pytest.raises(ConfigurationError):
            run_agreement_key_distribution(n, t)

    def test_local_authentication_has_no_such_boundary(self):
        """Contrast: the paper's protocol runs fine at the same (n, t) —
        indeed with a faulty *majority*."""
        from repro.auth import run_key_distribution

        n = 6  # would need t <= 1 for the oral bound; local auth doesn't care
        adversaries = {node: SilentProtocol() for node in (2, 3, 4, 5)}
        result = run_key_distribution(n, adversaries=adversaries, seed=1)
        assert result.directories[0].predicates_for(1) == (
            result.keypairs[1].predicate,
        )


class TestFaultTolerance:
    def test_silent_node_within_budget(self):
        n, t = 7, 2
        result = run_agreement_key_distribution(
            n, t, adversaries={5: SilentProtocol()}, seed=2
        )
        correct = set(range(n)) - {5}
        # Correct nodes still agree on each other's genuine predicates.
        for observer in correct:
            for subject in correct:
                assert result.directories[observer].predicates_for(subject) == (
                    result.keypairs[subject].predicate,
                )
        # And they agree on what (if anything) node 5 distributed.
        bindings = {
            tuple(
                p.fingerprint()
                for p in result.directories[observer].predicates_for(5)
            )
            for observer in correct
        }
        assert len(bindings) == 1
