"""Agreement-based key distribution: the paper's rejected alternative."""

from __future__ import annotations

import pytest

from repro.analysis import keydist_messages
from repro.analysis.complexity import akd_instance_envelopes
from repro.auth import (
    agreement_keydist_envelopes,
    check_g1,
    check_g2,
    check_g3,
    run_agreement_key_distribution,
)
from repro.auth.agreement_based import akd_byzantine_protocol, validate_akd_instances
from repro.errors import ConfigurationError
from repro.faults import SilentProtocol


class TestHonestRuns:
    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
    def test_all_directories_genuine_and_identical(self, n, t):
        result = run_agreement_key_distribution(n, t, seed=n)
        for observer in range(n):
            for subject in range(n):
                assert result.directories[observer].predicates_for(subject) == (
                    result.keypairs[subject].predicate,
                )

    def test_g1_g2_g3_all_hold(self):
        """Unlike local authentication, this method gives full G3 — at a
        price."""
        n, t = 7, 2
        result = run_agreement_key_distribution(n, t, seed=1)
        correct = set(range(n))
        genuine = {node: result.keypairs[node].predicate for node in correct}
        assert check_g1(result.directories, genuine, correct) == []
        assert check_g2(result.directories, genuine, correct) == []
        report = check_g3(result.directories, correct)
        assert report.holds and not report.partial

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
    def test_envelope_count_matches_formula(self, n, t):
        result = run_agreement_key_distribution(n, t, seed=n)
        assert result.messages == agreement_keydist_envelopes(n, t)

    @pytest.mark.parametrize("n,t", [(7, 2), (10, 3)])
    def test_more_expensive_than_local_authentication(self, n, t):
        """The paper's cost argument, as an inequality."""
        assert agreement_keydist_envelopes(n, t) > keydist_messages(n)

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
    def test_per_instance_attribution_matches_closed_form(self, n, t):
        """Every one of the n multiplexed OM(t) instances costs exactly
        (n-1) + t(n-1)^2 envelopes, and the per-instance meters sum to
        the run total (no traffic escapes attribution)."""
        result = run_agreement_key_distribution(n, t, seed=n)
        assert sorted(result.per_instance) == list(range(n))
        for instance, agg in result.per_instance.items():
            assert agg.messages == akd_instance_envelopes(n, t)
            assert agg.rounds == t + 1
            assert set(agg.decisions) == set(range(n))
        assert (
            sum(a.messages for a in result.per_instance.values())
            == result.messages
        )
        assert (
            sum(a.bytes for a in result.per_instance.values())
            < result.run.metrics.bytes_total
        )  # run level additionally charges the mux wrappers


class TestFeasibilityBoundary:
    """'may not work because of too many faulty nodes' — measured."""

    @pytest.mark.parametrize("n,t", [(3, 1), (6, 2), (9, 3)])
    def test_n_at_most_3t_rejected(self, n, t):
        with pytest.raises(ConfigurationError):
            run_agreement_key_distribution(n, t)

    def test_local_authentication_has_no_such_boundary(self):
        """Contrast: the paper's protocol runs fine at the same (n, t) —
        indeed with a faulty *majority*."""
        from repro.auth import run_key_distribution

        n = 6  # would need t <= 1 for the oral bound; local auth doesn't care
        adversaries = {node: SilentProtocol() for node in (2, 3, 4, 5)}
        result = run_key_distribution(n, adversaries=adversaries, seed=1)
        assert result.directories[0].predicates_for(1) == (
            result.keypairs[1].predicate,
        )


class TestInstanceSubsets:
    def test_rejects_empty_and_out_of_range_subsets(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            validate_akd_instances(7, ())
        with pytest.raises(ConfigurationError, match="must lie in"):
            validate_akd_instances(7, (0, 7))

    def test_subset_normalised_sorted_deduplicated(self):
        assert validate_akd_instances(7, (5, 1, 5, 3)) == (1, 3, 5)

    def test_default_is_all_instances(self):
        assert validate_akd_instances(4, None) == (0, 1, 2, 3)


class TestByzantineSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown byzantine kind"):
            akd_byzantine_protocol("gremlin", 7, 2, range(7))

    def test_noise_spec_within_budget_preserves_agreement(self):
        n, t = 7, 2
        result = run_agreement_key_distribution(
            n, t, seed=3, byzantine={6: "noise"}
        )
        correct = set(range(n)) - {6}
        for observer in correct:
            for subject in correct:
                assert result.directories[observer].predicates_for(subject) == (
                    result.keypairs[subject].predicate,
                )

    def test_explicit_adversaries_override_spec(self):
        n, t = 7, 2
        result = run_agreement_key_distribution(
            n,
            t,
            seed=3,
            byzantine={5: "noise"},
            adversaries={5: SilentProtocol()},
        )
        # A silent node sends nothing: no envelope carries sender 5.
        assert result.run.metrics.messages_per_sender[5] == 0


class TestFaultTolerance:
    def test_silent_node_within_budget(self):
        n, t = 7, 2
        result = run_agreement_key_distribution(
            n, t, adversaries={5: SilentProtocol()}, seed=2
        )
        correct = set(range(n)) - {5}
        # Correct nodes still agree on each other's genuine predicates.
        for observer in correct:
            for subject in correct:
                assert result.directories[observer].predicates_for(subject) == (
                    result.keypairs[subject].predicate,
                )
        # And they agree on what (if anything) node 5 distributed.
        bindings = {
            tuple(
                p.fingerprint()
                for p in result.directories[observer].predicates_for(5)
            )
            for observer in correct
        }
        assert len(bindings) == 1
