"""The key distribution protocol (paper Fig. 1): cost, outputs, robustness."""

from __future__ import annotations

import pytest

from repro.analysis import keydist_messages, keydist_rounds
from repro.auth import run_key_distribution
from repro.auth.local import CHALLENGE, KEY_DISTRIBUTION_ROUNDS, OUTPUT_ANOMALIES
from repro.errors import ConfigurationError
from repro.faults import (
    ClaimForeignPredicateAttack,
    ScriptedProtocol,
    SilentProtocol,
)
from repro.sim import node_rng
from repro.crypto import DEFAULT_SCHEME, get_scheme


class TestHonestRuns:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13])
    def test_exact_message_count(self, n):
        """Paper 3.1: 'The message complexity of the protocol is 3·n·(n−1)'."""
        result = run_key_distribution(n, seed=n)
        assert result.messages == keydist_messages(n) == 3 * n * (n - 1)

    @pytest.mark.parametrize("n", [2, 5, 8])
    def test_exact_round_count(self, n):
        """Paper 3.1: 'It takes 3 rounds of communication'."""
        result = run_key_distribution(n, seed=n)
        assert result.rounds == keydist_rounds() == KEY_DISTRIBUTION_ROUNDS

    def test_every_node_accepts_every_genuine_predicate(self):
        n = 6
        result = run_key_distribution(n, seed=1)
        genuine = result.genuine_predicates()
        for observer in range(n):
            directory = result.directories[observer]
            for subject in range(n):
                assert directory.predicates_for(subject) == (genuine[subject],)

    def test_directories_include_own_predicate(self):
        result = run_key_distribution(4, seed=2)
        for node in range(4):
            assert result.directories[node].predicate_for(node) == (
                result.keypairs[node].predicate
            )

    def test_no_anomalies_in_honest_run(self):
        result = run_key_distribution(5, seed=3)
        for state in result.run.states:
            assert state.outputs[OUTPUT_ANOMALIES] == ()

    def test_deterministic_per_seed(self):
        a = run_key_distribution(4, seed="same")
        b = run_key_distribution(4, seed="same")
        assert a.genuine_predicates() == b.genuine_predicates()

    def test_distinct_keys_across_nodes(self):
        result = run_key_distribution(6, seed=4)
        predicates = list(result.genuine_predicates().values())
        assert len({p.fingerprint() for p in predicates}) == 6

    @pytest.mark.parametrize("scheme", ["rsa-512", "schnorr-512", "simulated-hmac"])
    def test_all_schemes_work(self, scheme):
        result = run_key_distribution(3, scheme=scheme, seed=5)
        assert result.messages == keydist_messages(3)
        assert len(result.directories) == 3

    def test_rejects_tiny_network(self):
        with pytest.raises(ConfigurationError):
            run_key_distribution(1)


class TestArbitraryFaultTolerance:
    """The paper's headline: local authentication works with an arbitrary
    number of arbitrarily faulty nodes.  Whatever the faulty nodes do,
    every pair of correct nodes authenticates each other."""

    def _correct_pairs_authentic(self, result, correct):
        genuine = {
            node: result.keypairs[node].predicate
            for node in correct
        }
        for observer in correct:
            directory = result.directories[observer]
            for subject in correct:
                assert genuine[subject] in directory.predicates_for(subject)

    def test_majority_faulty_silent(self):
        n = 7
        faulty = {2, 3, 4, 5, 6}
        adversaries = {node: SilentProtocol() for node in faulty}
        result = run_key_distribution(n, adversaries=adversaries, seed=6)
        self._correct_pairs_authentic(result, {0, 1})

    def test_faulty_flooding_garbage(self):
        n = 5
        garbage = {
            r: [(peer, ("junk", r, peer)) for peer in range(4)] for r in range(3)
        }
        adversaries = {4: ScriptedProtocol(garbage)}
        result = run_key_distribution(n, adversaries=adversaries, seed=7)
        self._correct_pairs_authentic(result, {0, 1, 2, 3})
        # And the garbage is visible as anomalies, not silently swallowed.
        assert any(
            result.run.states[node].outputs[OUTPUT_ANOMALIES]
            for node in range(4)
        )

    def test_faulty_sending_misnamed_challenges(self):
        """A challenge naming the wrong nodes must not be signed; correct
        nodes treat it as an anomaly and lose nothing."""
        n = 4
        bad_challenge = (CHALLENGE, 2, 1, 12345)   # claims challenger 2, sent by 3
        adversaries = {
            3: ScriptedProtocol({1: [(1, bad_challenge)]}, halt_after=3)
        }
        result = run_key_distribution(n, adversaries=adversaries, seed=8)
        self._correct_pairs_authentic(result, {0, 1, 2})
        anomalies = result.run.states[1].outputs[OUTPUT_ANOMALIES]
        assert any("misnamed" in a for a in anomalies)


class TestForeignClaimDefence:
    """Theorem 2 (G1): no faulty node can claim a correct node's key."""

    def _victim_predicate(self, n, seed, victim=0):
        # The honest protocol generates its key as the first rng use; the
        # attacker 'observed' it (public information after any prior run).
        scheme = get_scheme(DEFAULT_SCHEME)
        return scheme.generate_keypair(node_rng(seed, victim)).predicate

    @pytest.mark.parametrize("garbage", [False, True])
    def test_claim_is_never_accepted(self, garbage):
        n, seed = 5, "foreign"
        predicate = self._victim_predicate(n, seed)
        adversaries = {
            3: ClaimForeignPredicateAttack(predicate, garbage_responses=garbage)
        }
        result = run_key_distribution(n, adversaries=adversaries, seed=seed)
        # The attacker's claim is rejected by every correct node...
        for observer in (0, 1, 2, 4):
            assert result.directories[observer].predicates_for(3) == ()
        # ...while the genuine owner keeps its binding.
        for observer in (0, 1, 2, 4):
            assert result.directories[observer].predicates_for(0) == (predicate,)

    def test_signed_message_assigned_only_to_owner(self):
        from repro.crypto import sign_value

        n, seed = 5, "foreign2"
        predicate = self._victim_predicate(n, seed)
        adversaries = {3: ClaimForeignPredicateAttack(predicate)}
        result = run_key_distribution(n, adversaries=adversaries, seed=seed)
        signed = sign_value(result.keypairs[0].secret, "message")
        for observer in (1, 2, 4):
            assert result.directories[observer].assign(signed) == [0]
