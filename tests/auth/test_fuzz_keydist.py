"""Randomised fuzzing of the key distribution protocol (Theorem 2).

The theorem is universally quantified over faulty behaviour *and* over
the number of faulty nodes — local authentication must deliver G1 and G2
among the correct nodes even with a Byzantine majority.  These tests
sample that space with random faulty subsets of any size and random
hostile behaviours.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth import check_g1, check_g2, run_key_distribution
from repro.auth.local import CHALLENGE, PREDICATE, RESPONSE
from repro.faults import (
    AdversaryCoordination,
    CrossClaimAttack,
    MixedPredicateAttack,
    ScriptedProtocol,
    SharedKeyAttack,
    SilentProtocol,
)

N = 6

NOISE = [
    ("junk",),
    (PREDICATE, "not-a-predicate"),
    (CHALLENGE, 0, 0, 0),
    (CHALLENGE, "a", "b", "c"),
    (RESPONSE, b"not-signed"),
    99,
]


@st.composite
def keydist_adversaries(draw):
    """Random faulty subset of ANY size < n-1 (leaving >= 2 correct nodes,
    so the G-properties quantify over something), with random behaviours."""
    faulty = draw(
        st.sets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=N - 2)
    )
    coordination = AdversaryCoordination(scheme="simulated-hmac")
    adversaries = {}
    remaining = sorted(faulty)
    for node in remaining:
        kind = draw(
            st.sampled_from(["silent", "script", "shared", "cross", "mixed"])
        )
        if kind == "silent":
            adversaries[node] = SilentProtocol()
        elif kind == "script":
            script = {}
            for rnd in draw(st.lists(st.integers(0, 3), max_size=3)):
                recipient = draw(
                    st.integers(min_value=0, max_value=N - 1).filter(
                        lambda v: v != node
                    )
                )
                script.setdefault(rnd, []).append(
                    (recipient, draw(st.sampled_from(NOISE)))
                )
            adversaries[node] = ScriptedProtocol(script, halt_after=3)
        elif kind == "shared":
            adversaries[node] = SharedKeyAttack(coordination)
        elif kind == "cross":
            group = draw(
                st.sets(st.integers(min_value=0, max_value=N - 1), max_size=N)
            )
            adversaries[node] = CrossClaimAttack(coordination, group, "x", "y")
        else:
            group = draw(
                st.sets(st.integers(min_value=0, max_value=N - 1), max_size=N)
            )
            adversaries[node] = MixedPredicateAttack(coordination, group, "p", "q")
    return adversaries


class TestTheorem2Fuzz:
    @given(adversaries=keydist_adversaries(), seed=st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_g1_g2_hold_under_any_adversary(self, adversaries, seed):
        result = run_key_distribution(
            N, scheme="simulated-hmac", adversaries=adversaries, seed=seed
        )
        correct = set(range(N)) - set(adversaries)
        genuine = {node: result.keypairs[node].predicate for node in correct}
        assert check_g1(result.directories, genuine, correct) == [], sorted(
            adversaries
        )
        assert check_g2(result.directories, genuine, correct) == [], sorted(
            adversaries
        )

    @given(adversaries=keydist_adversaries(), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_correct_pair_authentication_is_unstoppable(self, adversaries, seed):
        """Any two correct nodes end up mutually authenticated, whatever
        everyone else does — the paper's 'arbitrary number of arbitrary
        faults' headline."""
        result = run_key_distribution(
            N, scheme="simulated-hmac", adversaries=adversaries, seed=seed
        )
        correct = sorted(set(range(N)) - set(adversaries))
        for a in correct:
            for b in correct:
                assert result.keypairs[b].predicate in result.directories[
                    a
                ].predicates_for(b)
