"""KeyDirectory: the assignment relation of paper Definition 1."""

from __future__ import annotations

import random

import pytest

from repro.auth import KeyDirectory
from repro.crypto import get_scheme, sign_value


@pytest.fixture(scope="module")
def keypairs():
    scheme = get_scheme("schnorr-512")
    return {i: scheme.generate_keypair(random.Random(f"dir-{i}")) for i in range(4)}


class TestAcceptance:
    def test_accept_and_lookup(self, keypairs):
        directory = KeyDirectory(owner=0)
        directory.accept(1, keypairs[1].predicate)
        assert directory.predicate_for(1) == keypairs[1].predicate
        assert directory.predicates_for(1) == (keypairs[1].predicate,)

    def test_unknown_node_has_no_predicates(self):
        directory = KeyDirectory(owner=0)
        assert directory.predicate_for(9) is None
        assert directory.predicates_for(9) == ()

    def test_accept_is_idempotent_per_pair(self, keypairs):
        directory = KeyDirectory(owner=0)
        directory.accept(1, keypairs[1].predicate)
        directory.accept(1, keypairs[1].predicate)
        assert len(directory.predicates_for(1)) == 1

    def test_multiple_predicates_accumulate(self, keypairs):
        directory = KeyDirectory(owner=0)
        directory.accept(1, keypairs[1].predicate)
        directory.accept(1, keypairs[2].predicate)
        assert len(directory.predicates_for(1)) == 2

    def test_nodes_listing(self, keypairs):
        directory = KeyDirectory(owner=0)
        directory.accept(2, keypairs[2].predicate)
        directory.accept(0, keypairs[0].predicate)
        assert directory.nodes() == [0, 2]


class TestAssignment:
    def test_assign_finds_the_signer(self, keypairs):
        directory = KeyDirectory(owner=0)
        for node, kp in keypairs.items():
            directory.accept(node, kp.predicate)
        signed = sign_value(keypairs[2].secret, "m")
        assert directory.assign(signed) == [2]

    def test_assign_unknown_key_is_empty(self, keypairs):
        directory = KeyDirectory(owner=0)
        directory.accept(0, keypairs[0].predicate)
        signed = sign_value(keypairs[3].secret, "m")
        assert directory.assign(signed) == []

    def test_shared_key_multi_assignment(self, keypairs):
        """Definition 1 permits multiple assignees when faulty nodes share
        a key — the G1 case the paper describes."""
        directory = KeyDirectory(owner=0)
        directory.accept(1, keypairs[1].predicate)
        directory.accept(2, keypairs[1].predicate)  # key sharing
        signed = sign_value(keypairs[1].secret, "m")
        assert directory.assign(signed) == [1, 2]

    def test_verifies_is_per_node(self, keypairs):
        directory = KeyDirectory(owner=0)
        directory.accept(1, keypairs[1].predicate)
        signed = sign_value(keypairs[1].secret, "m")
        assert directory.verifies(1, signed)
        assert not directory.verifies(2, signed)

    def test_verifies_tries_all_accepted_predicates(self, keypairs):
        directory = KeyDirectory(owner=0)
        directory.accept(1, keypairs[2].predicate)
        directory.accept(1, keypairs[1].predicate)
        signed = sign_value(keypairs[1].secret, "m")
        assert directory.verifies(1, signed)


class TestComparison:
    def test_agreement_per_node(self, keypairs):
        a = KeyDirectory(owner=0)
        b = KeyDirectory(owner=1)
        a.accept(2, keypairs[2].predicate)
        b.accept(2, keypairs[2].predicate)
        assert a.agrees_with(b, 2)
        b.accept(2, keypairs[3].predicate)
        assert not a.agrees_with(b, 2)

    def test_binding_fingerprints_shape(self, keypairs):
        directory = KeyDirectory(owner=0)
        directory.accept(1, keypairs[1].predicate)
        bindings = directory.binding_fingerprints()
        assert set(bindings) == {1}
        assert bindings[1] == (keypairs[1].predicate.fingerprint(),)
