"""OM(t)/EIG: the oral-messages classic and its n > 3t boundary."""

from __future__ import annotations

import pytest

from repro.agreement import evaluate_ba, make_oral_agreement_protocols
from repro.agreement.oral import OM_VALUE, OralAgreementProtocol
from repro.analysis import om_envelopes, om_reports
from repro.errors import ConfigurationError
from repro.faults import ScriptedProtocol, SilentProtocol
from repro.sim import run_protocols


def run_om(n, t, value="v", adversaries=None, seed=0):
    protocols = make_oral_agreement_protocols(
        n, t, value, adversaries=adversaries or {}
    )
    result = run_protocols(protocols, seed=seed)
    correct = set(range(n)) - set(adversaries or {})
    return result, evaluate_ba(result, correct, 0, value)


class TestHonestRuns:
    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
    def test_agreement_and_validity(self, n, t):
        result, evaluation = run_om(n, t)
        assert evaluation.ok, evaluation.detail

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
    def test_envelope_count_matches_formula(self, n, t):
        result, _ = run_om(n, t)
        assert result.metrics.messages_total == om_envelopes(n, t)

    def test_report_count_grows_superquadratically(self):
        assert om_reports(10, 1) < om_reports(10, 2) < om_reports(10, 3)
        # t=3, n=10: 9*(1*9 + 9*8 + 9*8*7) reports-ish; sanity lower bound
        assert om_reports(10, 3) > 10 * om_reports(10, 1)

    def test_bytes_grow_with_t(self):
        sizes = {}
        for t in (1, 2, 3):
            result, _ = run_om(10, t)
            sizes[t] = result.metrics.bytes_total
        assert sizes[1] < sizes[2] < sizes[3]


class TestFaultTolerance:
    def test_silent_relay_within_budget(self):
        result, evaluation = run_om(7, 2, adversaries={3: SilentProtocol()})
        assert evaluation.ok

    def test_two_silent_relays_at_budget(self):
        result, evaluation = run_om(
            7, 2, adversaries={3: SilentProtocol(), 4: SilentProtocol()}
        )
        assert evaluation.ok

    def test_equivocating_sender_agreement(self):
        n, t = 7, 2
        script = {
            0: [(peer, (OM_VALUE, "a" if peer <= 3 else "b")) for peer in range(1, n)]
        }
        result, evaluation = run_om(
            n, t, adversaries={0: ScriptedProtocol(script, halt_after=3)}
        )
        assert evaluation.agreement
        # Validity is vacuous (sender faulty) but termination must hold.
        assert evaluation.termination

    def test_lying_relay_cannot_break_validity(self):
        n, t = 7, 2
        # Relay 1 reports a wrong value for every path it relays.
        lie = {
            r: [
                (peer, ("om-report", (((0,), "lie"),)))
                for peer in range(n)
                if peer != 1
            ]
            for r in (1, 2)
        }
        result, evaluation = run_om(
            n, t, adversaries={1: ScriptedProtocol(lie, halt_after=3)}
        )
        assert evaluation.ok, evaluation.detail


class TestBoundary:
    def test_n_equals_3t_rejected(self):
        """The oral impossibility bound, enforced at construction — this is
        why 'using an agreement protocol for each public key ... may not
        be feasible' (paper section 3)."""
        with pytest.raises(ConfigurationError):
            OralAgreementProtocol(6, 2)

    def test_minimum_legal_network(self):
        result, evaluation = run_om(4, 1)
        assert evaluation.ok

    def test_t_zero_trusts_the_sender(self):
        result, evaluation = run_om(3, 0)
        assert evaluation.ok
        assert result.metrics.messages_total == 2
