"""The extension's alarm sub-protocol: Dolev-Strong edge cases.

The all-or-none property of the alarm window is what keeps the extension
safe; these tests poke at its corners: false alarms from healthy-looking
runs, alarms with too few signatures for their arrival slot, garbage
alarms, and last-slot deliveries.
"""

from __future__ import annotations

import pytest

from repro.agreement import OUTPUT_PATH, evaluate_ba, make_extended_protocols
from repro.agreement.extension import ALARM_BODY, ALARM_MSG
from repro.auth import trusted_dealer_setup
from repro.crypto import extend_chain, sign_leaf, sign_value
from repro.faults import ScriptedProtocol
from repro.sim import run_protocols

N, T = 7, 2
ALARM_START = T + 2          # round where discoverers broadcast
ALARM_END = ALARM_START + T + 1


@pytest.fixture(scope="module")
def world():
    return trusted_dealer_setup(N, seed="alarms")


def run_ext(world, adversaries, seed=0, value="v"):
    keypairs, directories = world
    protocols = make_extended_protocols(
        N, T, value, keypairs, directories, adversaries=adversaries
    )
    result = run_protocols(protocols, seed=seed)
    correct = set(range(N)) - set(adversaries)
    return result, evaluate_ba(result, correct, 0, value), correct


class TestFalseAlarms:
    def test_false_alarm_forces_fallback_but_ba_holds(self, world):
        """A faulty node raises a valid (signed) alarm in an otherwise
        clean run: everyone falls back together and still agrees on the
        sender's value."""
        keypairs, _ = world
        liar = 6
        alarm = sign_leaf(keypairs[liar].secret, ALARM_BODY)
        script = {
            ALARM_START: [
                (peer, (ALARM_MSG, alarm)) for peer in range(N) if peer != liar
            ]
        }
        adversaries = {liar: ScriptedProtocol(script, halt_after=ALARM_END)}
        result, evaluation, correct = run_ext(world, adversaries)
        assert evaluation.ok, evaluation.detail
        paths = {
            s.outputs[OUTPUT_PATH] for s in result.states if s.node in correct
        }
        assert paths == {"fallback"}
        decisions = {s.decision for s in result.states if s.node in correct}
        assert decisions == {"v"}

    def test_false_alarm_to_single_node_still_all_or_none(self, world):
        """An alarm whispered to one correct node early in the window is
        relayed, so every correct node falls back — no path split."""
        keypairs, _ = world
        liar = 6
        alarm = sign_leaf(keypairs[liar].secret, ALARM_BODY)
        script = {ALARM_START: [(1, (ALARM_MSG, alarm))]}
        adversaries = {liar: ScriptedProtocol(script, halt_after=ALARM_END)}
        result, evaluation, correct = run_ext(world, adversaries)
        assert evaluation.ok
        paths = {
            s.outputs[OUTPUT_PATH] for s in result.states if s.node in correct
        }
        assert len(paths) == 1


class TestAlarmValidation:
    def test_undersigned_late_alarm_is_ignored(self, world):
        """An alarm with one signature arriving at slot 2 fails the
        depth >= slot rule: nobody falls back."""
        keypairs, _ = world
        liar = 6
        alarm = sign_leaf(keypairs[liar].secret, ALARM_BODY)
        # Sent one round later than an honest discoverer would.
        script = {
            ALARM_START + 1: [
                (peer, (ALARM_MSG, alarm)) for peer in range(N) if peer != liar
            ]
        }
        adversaries = {liar: ScriptedProtocol(script, halt_after=ALARM_END)}
        result, evaluation, correct = run_ext(world, adversaries)
        assert evaluation.ok
        paths = {
            s.outputs[OUTPUT_PATH] for s in result.states if s.node in correct
        }
        assert paths == {"fd"}

    def test_garbage_alarm_payload_is_ignored(self, world):
        liar = 6
        script = {
            ALARM_START: [(peer, (ALARM_MSG, b"noise")) for peer in range(N - 1)]
        }
        adversaries = {liar: ScriptedProtocol(script, halt_after=ALARM_END)}
        result, evaluation, correct = run_ext(world, adversaries)
        assert evaluation.ok
        paths = {
            s.outputs[OUTPUT_PATH] for s in result.states if s.node in correct
        }
        assert paths == {"fd"}

    def test_wrong_body_alarm_is_ignored(self, world):
        keypairs, _ = world
        liar = 6
        not_alarm = sign_leaf(keypairs[liar].secret, "NOT-AN-ALARM")
        script = {
            ALARM_START: [
                (peer, (ALARM_MSG, not_alarm)) for peer in range(N) if peer != liar
            ]
        }
        adversaries = {liar: ScriptedProtocol(script, halt_after=ALARM_END)}
        result, evaluation, correct = run_ext(world, adversaries)
        assert evaluation.ok
        paths = {
            s.outputs[OUTPUT_PATH] for s in result.states if s.node in correct
        }
        assert paths == {"fd"}

    def test_unsigned_alarm_from_unknown_key_ignored(self, world):
        """An alarm signed with a key no directory binds verifies for
        nobody."""
        import random

        from repro.crypto import get_scheme

        foreign = get_scheme("schnorr-512").generate_keypair(random.Random("f"))
        liar = 6
        alarm = sign_leaf(foreign.secret, ALARM_BODY)
        script = {
            ALARM_START: [
                (peer, (ALARM_MSG, alarm)) for peer in range(N) if peer != liar
            ]
        }
        adversaries = {liar: ScriptedProtocol(script, halt_after=ALARM_END)}
        result, evaluation, correct = run_ext(world, adversaries)
        assert evaluation.ok
        paths = {
            s.outputs[OUTPUT_PATH] for s in result.states if s.node in correct
        }
        assert paths == {"fd"}


class TestLastSlotDelivery:
    def test_fully_signed_alarm_at_last_slot_needs_correct_signer(self, world):
        """A chain of T+1 *faulty-and-colluding* signatures cannot exist
        within the budget (only 1 faulty node here), so a last-slot alarm
        built from one faulty signature is rejected — and the budget
        argument is exactly why the all-or-none property holds."""
        keypairs, _ = world
        liar = 6
        alarm = sign_leaf(keypairs[liar].secret, ALARM_BODY)
        # Deliver at the very last slot (needs T+1 = 3 signatures; has 1).
        script = {
            ALARM_END - 1: [(1, (ALARM_MSG, alarm))]
        }
        adversaries = {liar: ScriptedProtocol(script, halt_after=ALARM_END)}
        result, evaluation, correct = run_ext(world, adversaries)
        assert evaluation.ok
        paths = {
            s.outputs[OUTPUT_PATH] for s in result.states if s.node in correct
        }
        assert paths == {"fd"}
