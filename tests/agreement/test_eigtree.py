"""Succinct EIG engine: wire-form round-trips and engine equivalence.

The contract under test is the one PERFORMANCE.md and the benchmarks rely
on: the succinct engine is *observably identical* to the dense reference —
decisions, round counts, envelope counts, per-kind tallies and byte
counters all match bit-for-bit, for honest runs and under arbitrary
(engine-agnostic) Byzantine behaviour.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreement import make_oral_agreement_protocols
from repro.agreement._paths import paths_of_length
from repro.agreement.eigtree import (
    OM_REPORT_RLE,
    RleReport,
    SuccinctEigStore,
    encode_report,
    ingest_rle,
)
from repro.agreement.oral import OM_REPORT, OM_VALUE, OralAgreementProtocol
from repro.crypto.encoding import byte_size, encode
from repro.errors import ConfigurationError
from repro.faults import ScriptedProtocol, SilentProtocol
from repro.sim import run_protocols
from repro.sim.message import payload_kind, wire_byte_size

N, T = 7, 2


def run_engine(engine, adversaries=None, seed=0, n=N, t=T, value="v"):
    protocols = make_oral_agreement_protocols(
        n, t, value, adversaries=adversaries or {}, engine=engine
    )
    return run_protocols(protocols, seed=seed)


def observables(result):
    """Everything the equivalence contract promises, as one comparable."""
    return {
        "decisions": {k: repr(v) for k, v in result.decisions().items()},
        "rounds": result.metrics.rounds_used,
        "messages": result.metrics.messages_total,
        "per_round": dict(result.metrics.messages_per_round),
        "per_sender": dict(result.metrics.messages_per_sender),
        "per_kind": dict(result.metrics.messages_per_kind),
        "bytes": result.metrics.bytes_total,
        "bytes_per_round": dict(result.metrics.bytes_per_round),
    }


# -- wire-form unit tests ----------------------------------------------------


class TestRleRoundTrip:
    @given(
        values=st.lists(
            st.sampled_from(["a", "b", "c", 0, 1, None]), min_size=1, max_size=40
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_runs_reproduce_value_sequence(self, values):
        """Grouping into runs and expanding back is the identity."""
        runs = []
        for value in values:
            if runs and repr(runs[-1][1]) == repr(value):
                runs[-1] = (runs[-1][0] + 1, runs[-1][1])
            else:
                runs.append((1, value))
        report = RleReport(40, 0, 2, 1, tuple(runs))
        assert [repr(v) for v in report.values()] == [repr(v) for v in values]
        assert report.item_count == len(values)

    def test_wire_tuple_encodes_and_is_stable(self):
        report = RleReport(7, 0, 2, 3, ((30, "v"),))
        wire = report.wire_tuple()
        assert wire[0] == OM_REPORT_RLE
        assert report.compressed_byte_size() == len(encode(wire))

    def test_rejects_malformed_runs(self):
        with pytest.raises(ValueError):
            RleReport(7, 0, 2, 1, ((0, "v"),))
        with pytest.raises(ValueError):
            RleReport(7, 0, 2, 1, ((True, "v"),))  # bool is not a count
        with pytest.raises(ValueError):
            RleReport(7, 0, 0, 1, ((1, "v"),))

    def test_encode_then_ingest_matches_direct_transfer(self):
        """A report encoded from one store and ingested by another files
        exactly the values a dense transfer would."""
        n, t = 7, 2
        src = SuccinctEigStore(n, t, 0, "d")
        src.set_root("v")
        # Make level 2 non-uniform so the report has multiple runs.
        for q in range(1, n):
            src.file_uniform(2, q, "v" if q % 2 else "w")
        me_src, me_dst = 3, 5
        report = encode_report(src, me_src, 2)
        assert report is not None and len(report.runs) > 1
        dst = SuccinctEigStore(n, t, 0, "d")
        ingest_rle(dst, report, relayer=me_src, me=me_dst, round_=3)
        for path in paths_of_length(n, 0, 2):
            if me_src in path or me_dst in path:
                continue
            assert repr(dst.get(path + (me_src,))) == repr(src.get(path))

    def test_uniform_report_is_single_run(self):
        n, t = 7, 2
        store = SuccinctEigStore(n, t, 0, "d")
        store.set_root("v")
        for q in range(1, n):
            store.file_uniform(2, q, "v")
        report = encode_report(store, 3, 2)
        assert len(report.runs) == 1

    def test_sender_has_nothing_to_report(self):
        store = SuccinctEigStore(7, 2, 0, "d")
        assert encode_report(store, 0, 1) is None

    def test_malformed_rle_is_dropped_whole(self):
        n, t = 7, 2
        store = SuccinctEigStore(n, t, 0, "d")
        # Wrong item count for the claimed (level, relayer).
        bad = RleReport(n, 0, 1, 2, ((5, "x"),))
        ingest_rle(store, bad, relayer=2, me=1, round_=2)
        assert store.stored_entries() == 0
        # Wrong level for the round.
        bad = RleReport(n, 0, 2, 2, ((20, "x"),))
        ingest_rle(store, bad, relayer=2, me=1, round_=2)
        assert store.stored_entries() == 0
        # Mismatched shape fields (crafted n).
        bad = RleReport(n + 1, 0, 1, 2, ((1, "x"),))
        ingest_rle(store, bad, relayer=2, me=1, round_=2)
        assert store.stored_entries() == 0


class TestDenseByteEquivalence:
    @given(
        n=st.integers(4, 10),
        me=st.integers(1, 3),
        level=st.integers(1, 3),
        uniform=st.booleans(),
        seed=st.integers(0, 99),
    )
    @settings(max_examples=60, deadline=None)
    def test_dense_byte_size_is_exact(self, n, me, level, uniform, seed):
        """``dense_byte_size`` equals the canonical size of the dense
        payload the report stands for, materialized the hard way."""
        import random

        rng = random.Random(seed)
        store = SuccinctEigStore(n, 3, 0, "d")
        store.set_root("v")
        values = ["v"] if uniform else ["v", "w", None, 1]
        for lvl in range(2, min(level, 3) + 1):
            for q in range(1, n):
                store.file_uniform(lvl, q, rng.choice(values))
        report = encode_report(store, me, level)
        if report is None:
            return
        dense_items = tuple(
            (path, store.get(path))
            for path in paths_of_length(n, 0, level)
            if me not in path
        )
        assert report.dense_byte_size() == byte_size((OM_REPORT, dense_items))

    def test_wire_byte_size_handles_nesting(self):
        """A compressed report wrapped in a composition tag is charged at
        the dense-equivalent size of the whole wrapper."""
        dense_items = tuple(
            (path, "v") for path in paths_of_length(7, 0, 2) if 3 not in path
        )
        report = RleReport(7, 0, 2, 3, ((len(dense_items), "v"),))
        wrapped_dense = ("akd", 4, (OM_REPORT, dense_items))
        assert wire_byte_size(("akd", 4, report)) == byte_size(wrapped_dense)

    def test_payload_kind_matches_dense(self):
        report = RleReport(7, 0, 2, 3, ((30, "v"),))
        assert payload_kind(report) == OM_REPORT
        assert payload_kind((OM_REPORT, ())) == OM_REPORT


# -- engine equivalence: honest and Byzantine --------------------------------


class TestEngineEquivalenceHonest:
    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3), (3, 0)])
    def test_identical_observables(self, n, t):
        dense = run_engine("dense", n=n, t=t, seed=n)
        succinct = run_engine("succinct", n=n, t=t, seed=n)
        assert observables(dense) == observables(succinct)

    def test_store_stays_small_on_honest_runs(self):
        """The collapse claim, asserted: a failure-free run stores O(n·t)
        entries per node, not one per path."""
        n, t = 16, 4
        protocols = make_oral_agreement_protocols(n, t, "v", engine="succinct")
        run_protocols(protocols, seed=1)
        dense_paths = sum(
            len(paths_of_length(n, 0, length)) for length in range(2, t + 2)
        )
        for protocol in protocols[1:]:
            entries = protocol._store.stored_entries()
            assert entries <= (n - 1) * t + 1
            assert entries < dense_paths / 500


def om_noise():
    """Engine-agnostic Byzantine payload pool (both engines must treat
    every element identically; run-length payloads are deliberately
    excluded — engines are homogeneous per run, and a crafted RleReport
    would only be understood by the succinct side)."""
    return st.sampled_from(
        [
            (OM_VALUE, "forged"),
            (OM_VALUE, None),
            (OM_REPORT, (((0,), "lie"),)),
            (OM_REPORT, (((0, 3), "z"), ((0, 2), "z"), ((0, 2), "zz"))),
            (OM_REPORT, (((0, 1, 2), "deep"),)),
            (OM_REPORT, (((0,), True), ((0,), 1))),
            (OM_REPORT, "garbage"),
            (OM_REPORT, ((("bad",), "v"), (([],), "v"))),
            (OM_REPORT, (((9, 9), "v"),)),
            ("unrelated", 7),
            b"raw-bytes",
        ]
    )


@st.composite
def om_adversary_specs(draw):
    """Up to T faulty nodes; each either silent or scripted noise.

    Returns a plain spec (no protocol objects) so each engine run builds
    its *own* adversary instances from identical data.
    """
    faulty = draw(
        st.sets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=T)
    )
    specs = {}
    for node in sorted(faulty):
        kind = draw(st.sampled_from(["silent", "script"]))
        if kind == "silent":
            specs[node] = None
        else:
            script = {}
            for rnd in draw(st.lists(st.integers(0, T + 2), max_size=4)):
                recipients = draw(
                    st.lists(
                        st.integers(min_value=0, max_value=N - 1).filter(
                            lambda v: v != node
                        ),
                        min_size=1,
                        max_size=3,
                    )
                )
                payload = draw(om_noise())
                script.setdefault(rnd, []).extend(
                    (recipient, payload) for recipient in recipients
                )
            specs[node] = script
    return specs


def build_adversaries(specs):
    return {
        node: SilentProtocol()
        if script is None
        else ScriptedProtocol(script, halt_after=T + 2)
        for node, script in specs.items()
    }


class TestEngineEquivalenceByzantine:
    @given(specs=om_adversary_specs(), seed=st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_engines_identical_under_random_byzantine_behaviour(self, specs, seed):
        dense = run_engine("dense", adversaries=build_adversaries(specs), seed=seed)
        succinct = run_engine(
            "succinct", adversaries=build_adversaries(specs), seed=seed
        )
        assert observables(dense) == observables(succinct), (
            f"engines diverged; adversaries at {sorted(specs)}"
        )

    @given(seed=st.integers(0, 2**16), lying=st.integers(1, N - 1))
    @settings(max_examples=30, deadline=None)
    def test_engines_identical_under_flooded_reports(self, seed, lying):
        """A relayer that floods full valid-looking (but false) report
        tables exercises the multi-run and override paths of both engines."""
        table2 = tuple(
            (path, "fake") for path in paths_of_length(N, 0, 2) if lying not in path
        )
        script = {
            1: [(p, (OM_REPORT, (((0,), "fake"),))) for p in range(N) if p != lying],
            2: [(p, (OM_REPORT, table2)) for p in range(N) if p != lying],
        }
        adversaries = lambda: {lying: ScriptedProtocol(script, halt_after=T + 2)}
        dense = run_engine("dense", adversaries=adversaries(), seed=seed)
        succinct = run_engine("succinct", adversaries=adversaries(), seed=seed)
        assert observables(dense) == observables(succinct)


class TestEngineConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            OralAgreementProtocol(7, 2, engine="sparse")

    def test_dense_engine_ignores_rle_payloads(self):
        """Homogeneity contract: the dense ingest treats a run-length
        report as unknown noise (it is not a tagged tuple)."""
        protocol = OralAgreementProtocol(4, 1, value=None, engine="dense")
        report = RleReport(4, 0, 1, 2, ((1, "x"),))

        class _Ctx:
            node = 1

        from repro.sim import Envelope

        protocol._ingest(
            _Ctx(), [Envelope(sender=2, recipient=1, payload=report, round_sent=1)], 2
        )
        assert protocol._tree == {}

    def test_succinct_ingest_drops_unhashable_noise(self):
        """The succinct dense-items ingest mirrors the dense engine's
        tolerance for unhashable Byzantine path elements."""
        protocol = OralAgreementProtocol(4, 1, value=None, engine="succinct")

        class _Ctx:
            node = 1

        from repro.sim import Envelope

        payload = (OM_REPORT, ((([],), "x"), (([0, []]), "y")))
        protocol._ingest(
            _Ctx(), [Envelope(sender=2, recipient=1, payload=payload, round_sent=1)], 2
        )
        assert protocol._store.stored_entries() == 0
