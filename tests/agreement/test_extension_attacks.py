"""The FD→BA extension against the full attack catalogue.

The extension's guarantee is *Byzantine Agreement* — stronger than F1-F3:
whatever the catalogue throws at the chain phase, all correct nodes must
end up with one common decision, and with the sender's value when the
sender is correct.  These runs exercise the alarm flood and SM fallback
under every scenario, under global authentication (the setting in which
the Hadzilacos-Halpern extension is stated).
"""

from __future__ import annotations

import pytest

from repro.agreement import OUTPUT_PATH, evaluate_ba, make_extended_protocols
from repro.auth import trusted_dealer_setup
from repro.harness import attack_catalogue
from repro.sim import run_protocols

N, T = 8, 2

# Scenarios whose kd phase corrupts directories need local auth and are
# not part of the extension's stated setting; keep the FD-phase-only ones.
FD_ONLY = [s for s in attack_catalogue(N, T) if not s.kd_adversaries()]


@pytest.fixture(scope="module")
def world():
    return trusted_dealer_setup(N, seed="ext-attacks")


@pytest.mark.parametrize("scenario", FD_ONLY, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", [0, 7])
def test_extension_reaches_ba_under_attack(world, scenario, seed):
    keypairs, directories = world
    adversaries = scenario.fd_adversary_factory(N, T, keypairs, directories)
    protocols = make_extended_protocols(
        N, T, "the-value", keypairs, directories, adversaries=adversaries
    )
    result = run_protocols(protocols, seed=seed)
    correct = set(range(N)) - scenario.faulty
    evaluation = evaluate_ba(result, correct, 0, "the-value")
    assert evaluation.ok, f"{scenario.name}: {evaluation.detail}"


@pytest.mark.parametrize("scenario", FD_ONLY, ids=lambda s: s.name)
def test_correct_nodes_never_split_paths(world, scenario):
    """The Dolev-Strong all-or-none property under every attack."""
    keypairs, directories = world
    adversaries = scenario.fd_adversary_factory(N, T, keypairs, directories)
    protocols = make_extended_protocols(
        N, T, "v", keypairs, directories, adversaries=adversaries
    )
    result = run_protocols(protocols, seed=3)
    paths = {
        state.outputs[OUTPUT_PATH]
        for state in result.states
        if state.node not in scenario.faulty and OUTPUT_PATH in state.outputs
    }
    assert len(paths) == 1, f"{scenario.name}: mixed paths {paths}"


@pytest.mark.parametrize("scenario", FD_ONLY, ids=lambda s: s.name)
def test_discovering_scenarios_fall_back(world, scenario):
    """Whenever the chain phase would discover, the extension must route
    everyone into the fallback (discoveries become alarms, not ends)."""
    if not scenario.expects_discovery:
        pytest.skip("scenario completes cleanly; fd path expected")
    keypairs, directories = world
    adversaries = scenario.fd_adversary_factory(N, T, keypairs, directories)
    protocols = make_extended_protocols(
        N, T, "v", keypairs, directories, adversaries=adversaries
    )
    result = run_protocols(protocols, seed=5)
    paths = {
        state.outputs[OUTPUT_PATH]
        for state in result.states
        if state.node not in scenario.faulty and OUTPUT_PATH in state.outputs
    }
    assert paths == {"fallback"}, scenario.name
