"""The FD→BA extension: BA at FD cost in failure-free runs."""

from __future__ import annotations

import pytest

from repro.agreement import (
    DEFAULT_VALUE,
    OUTPUT_PATH,
    evaluate_ba,
    make_extended_protocols,
)
from repro.analysis import extension_messages, sm_messages
from repro.auth import trusted_dealer_setup
from repro.faults import (
    EquivocatingSender,
    FabricatingChainNode,
    SilentProtocol,
    garbling_chain_node,
    withholding_chain_node,
)
from repro.harness import LOCAL, run_ba_scenario
from repro.sim import run_protocols


@pytest.fixture(scope="module")
def world():
    n = 8
    keypairs, directories = trusted_dealer_setup(n, seed="ext")
    return n, keypairs, directories


def run_ext(world, t, value="v", adversaries=None, seed=0):
    n, keypairs, directories = world
    protocols = make_extended_protocols(
        n, t, value, keypairs, directories, adversaries=adversaries or {}
    )
    result = run_protocols(protocols, seed=seed)
    correct = set(range(n)) - set(adversaries or {})
    return result, evaluate_ba(result, correct, 0, value)


class TestFailureFreeRuns:
    @pytest.mark.parametrize("t", [0, 1, 2, 3])
    def test_cost_equals_fd_cost(self, world, t):
        """The Hadzilacos-Halpern property: 'the extended protocol
        requires in its failure-free runs the same number of messages as
        the underlying Failure Discovery protocol.'"""
        n = world[0]
        result, evaluation = run_ext(world, t)
        assert evaluation.ok, evaluation.detail
        assert result.metrics.messages_total == extension_messages(n) == n - 1

    def test_cheaper_than_direct_sm(self, world):
        n = world[0]
        result, _ = run_ext(world, 2)
        assert result.metrics.messages_total < sm_messages(n, 2)

    def test_everyone_takes_the_fd_path(self, world):
        result, _ = run_ext(world, 2)
        assert {s.outputs[OUTPUT_PATH] for s in result.states} == {"fd"}

    def test_decisions_match_sender(self, world):
        n = world[0]
        result, _ = run_ext(world, 2, value=("x", 1))
        assert result.decisions() == {i: ("x", 1) for i in range(n)}


class TestFallbackPath:
    @pytest.mark.parametrize(
        "attack",
        ["silent-chain", "withhold", "garble", "fabricate"],
    )
    def test_ba_holds_under_chain_attacks(self, world, attack):
        n, keypairs, directories = world
        t = 2
        adversaries = {
            "silent-chain": {1: SilentProtocol()},
            "withhold": {
                1: withholding_chain_node(
                    n, t, keypairs[1], directories[1], withhold_from={2}
                )
            },
            "garble": {1: garbling_chain_node(n, t, keypairs[1], directories[1])},
            "fabricate": {1: FabricatingChainNode(n, t, keypairs[1], "evil")},
        }[attack]
        result, evaluation = run_ext(world, t, adversaries=adversaries)
        assert evaluation.ok, f"{attack}: {evaluation.detail}"

    def test_all_correct_nodes_take_the_same_path(self, world):
        """The Dolev-Strong all-or-none property: never a mix of 'fd' and
        'fallback' among correct nodes."""
        n, keypairs, directories = world
        t = 2
        adversaries = {1: SilentProtocol()}
        result, _ = run_ext(world, t, adversaries=adversaries)
        paths = {
            s.outputs[OUTPUT_PATH]
            for s in result.states
            if s.node != 1 and OUTPUT_PATH in s.outputs
        }
        assert paths == {"fallback"}

    def test_fallback_preserves_validity(self, world):
        """Correct sender + fallback: the fallback SM run must still land
        on the sender's value."""
        n, keypairs, directories = world
        t = 2
        adversaries = {2: SilentProtocol()}  # chain node crash forces fallback
        result, evaluation = run_ext(world, t, value="keep-me", adversaries=adversaries)
        assert evaluation.ok
        decisions = {
            s.decision for s in result.states if s.node != 2 and s.decided
        }
        assert decisions == {"keep-me"}

    def test_equivocating_sender_ends_in_common_decision(self, world):
        n, keypairs, directories = world
        t = 2
        adversaries = {0: EquivocatingSender(keypairs[0], {1: "a", 5: "b"})}
        result, evaluation = run_ext(world, t, adversaries=adversaries, seed=4)
        assert evaluation.agreement and evaluation.termination

    @pytest.mark.parametrize("seed", range(4))
    def test_fallback_deterministic_across_seeds(self, world, seed):
        n, keypairs, directories = world
        adversaries = {1: SilentProtocol()}
        result, evaluation = run_ext(world, 2, adversaries=adversaries, seed=seed)
        assert evaluation.ok


class TestUnderLocalAuthentication:
    def test_extension_works_with_honest_local_auth(self):
        outcome = run_ba_scenario(
            8, 2, "v", protocol="extension", auth=LOCAL, seed=9
        )
        assert outcome.ba.ok
        assert outcome.run.metrics.messages_total == 7
        assert outcome.kd.messages == 3 * 8 * 7
