"""Degradable agreement, and degradation of authentication itself.

The second test class is the library's demonstration of the paper's
closing caveat: local authentication is proven safe for Failure Discovery
(the discovery escape hatch catches inconsistent assignment), but *not*
for general agreement — SM-style protocols silently ignore unverifiable
chains instead of discovering, and corrupted key distribution can then
split correct nodes.  This is why the paper leaves "the use of local
authentication with other agreement protocols" as further research.
"""

from __future__ import annotations

import pytest

from repro.agreement import (
    DEFAULT_VALUE,
    OUTPUT_DEGRADED,
    evaluate_ba,
    make_degradable_protocols,
    make_signed_agreement_protocols,
)
from repro.auth import run_key_distribution, trusted_dealer_setup
from repro.errors import ConfigurationError
from repro.faults import (
    AdversaryCoordination,
    MixedPredicateAttack,
    ScriptedProtocol,
    SilentProtocol,
)
from repro.fd import evaluate_fd, make_chain_fd_protocols
from repro.sim import run_protocols
from repro.crypto import sign_leaf


@pytest.fixture(scope="module")
def world():
    n = 7
    keypairs, directories = trusted_dealer_setup(n, seed="deg")
    return n, keypairs, directories


def run_degradable(world, t, u, value="v", adversaries=None, seed=0):
    n, keypairs, directories = world
    protocols = make_degradable_protocols(
        n, t, u, value, keypairs, directories, adversaries=adversaries or {}
    )
    result = run_protocols(protocols, seed=seed)
    correct = set(range(n)) - set(adversaries or {})
    return result, evaluate_ba(result, correct, 0, value)


class TestBudgets:
    def test_honest_run_not_degraded(self, world):
        result, evaluation = run_degradable(world, 1, 3)
        assert evaluation.ok
        assert all(not s.outputs[OUTPUT_DEGRADED] for s in result.states)

    def test_faults_beyond_t_within_u_still_agree(self, world):
        """Authenticated degradable agreement holds full BA through u."""
        adversaries = {
            3: SilentProtocol(),
            4: SilentProtocol(),
            5: SilentProtocol(),
        }
        result, evaluation = run_degradable(world, 1, 3, adversaries=adversaries)
        assert evaluation.ok, evaluation.detail

    def test_equivocating_sender_flags_degradation(self, world):
        n, keypairs, directories = world
        from repro.agreement.signed import SM_MSG

        leaf_a = sign_leaf(keypairs[0].secret, "a")
        leaf_b = sign_leaf(keypairs[0].secret, "b")
        script = {
            0: [(p, (SM_MSG, leaf_a if p <= 3 else leaf_b)) for p in range(1, n)]
        }
        adversaries = {0: ScriptedProtocol(script, halt_after=5)}
        result, evaluation = run_degradable(world, 1, 3, adversaries=adversaries)
        assert evaluation.agreement
        degraded = [
            s.outputs[OUTPUT_DEGRADED] for s in result.states if s.node != 0
        ]
        assert all(degraded)
        assert set(result.decisions().values()) == {DEFAULT_VALUE}

    def test_u_below_t_rejected(self, world):
        n, keypairs, directories = world
        with pytest.raises(ConfigurationError):
            make_degradable_protocols(n, 3, 1, "v", keypairs, directories)


class TestAuthenticationDegradation:
    """SM-style agreement under *attacked* local authentication silently
    splits; chain FD discovers.  The contrast the paper's future-work
    paragraph is about."""

    N, T = 7, 2

    def _attacked_keydist(self, seed=21):
        coordination = AdversaryCoordination()
        group_one = {1, 2, 3}  # these nodes receive predicate 'p' for node 0
        adversaries = {
            0: MixedPredicateAttack(coordination, group_one, "p", "q")
        }
        kd = run_key_distribution(self.N, adversaries=adversaries, seed=seed)
        return kd, coordination, group_one

    def test_sm_under_attacked_local_auth_splits_silently(self):
        """The faulty sender signs with key 'p': the group bound to 'p'
        decides the value, everyone else decides the default — agreement
        broken, nothing discovered."""
        from repro.agreement.signed import SM_MSG

        kd, coordination, group_one = self._attacked_keydist()
        key_p = coordination.known_keypairs()["p"]
        leaf = sign_leaf(key_p.secret, "split")
        script = {0: [(p, (SM_MSG, leaf)) for p in range(1, self.N)]}
        adversaries = {0: ScriptedProtocol(script, halt_after=4)}
        protocols = make_signed_agreement_protocols(
            self.N, self.T, None, kd.keypairs, kd.directories, adversaries=adversaries
        )
        result = run_protocols(protocols, seed=1)
        evaluation = evaluate_ba(result, set(range(1, self.N)), 0, None)
        assert not evaluation.agreement          # the split happened
        decisions = result.decisions()
        assert decisions[1] == "split"           # the bound group
        assert decisions[4] == DEFAULT_VALUE     # the unbound group

    def test_chain_fd_discovers_the_same_corruption(self):
        """Same corrupted directories, same signing key, but the FD chain
        protocol turns the inconsistency into a discovery (Theorem 4) —
        the reason FD is the right problem for local authentication."""
        from repro.faults.fdattacks import EquivocatingSender

        kd, coordination, group_one = self._attacked_keydist()
        key_p = coordination.known_keypairs()["p"]
        adversaries = {
            0: EquivocatingSender(key_p, {1: "split"})
        }
        protocols = make_chain_fd_protocols(
            self.N, self.T, None, kd.keypairs, kd.directories, adversaries=adversaries
        )
        result = run_protocols(protocols, seed=1)
        evaluation = evaluate_fd(result, set(range(1, self.N)), 0, None)
        assert evaluation.ok
        assert evaluation.any_discovery
