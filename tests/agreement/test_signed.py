"""SM(t): agreement/validity under the budget, cost, adversaries."""

from __future__ import annotations

import pytest

from repro.agreement import DEFAULT_VALUE, evaluate_ba, make_signed_agreement_protocols
from repro.agreement.signed import SM_MSG
from repro.analysis import sm_messages
from repro.auth import trusted_dealer_setup
from repro.crypto import extend_chain, sign_leaf
from repro.faults import ScriptedProtocol, SilentProtocol
from repro.sim import run_protocols


@pytest.fixture(scope="module")
def world():
    n = 7
    keypairs, directories = trusted_dealer_setup(n, seed="sm")
    return n, keypairs, directories


def run_sm(world, t, value="v", adversaries=None, seed=0):
    n, keypairs, directories = world
    protocols = make_signed_agreement_protocols(
        n, t, value, keypairs, directories, adversaries=adversaries or {}
    )
    result = run_protocols(protocols, seed=seed)
    correct = set(range(n)) - set(adversaries or {})
    return result, evaluate_ba(result, correct, 0, value)


class TestHonestRuns:
    @pytest.mark.parametrize("t", [0, 1, 2, 3])
    def test_agreement_and_validity(self, world, t):
        result, evaluation = run_sm(world, t)
        assert evaluation.ok, evaluation.detail
        assert set(result.decisions().values()) == {"v"}

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_failure_free_message_count(self, world, t):
        """(n-1) + (n-1)(n-2): the Θ(n²) the extension avoids."""
        n = world[0]
        result, _ = run_sm(world, t)
        assert result.metrics.messages_total == sm_messages(n, t)

    def test_t_zero_is_one_broadcast(self, world):
        n = world[0]
        result, _ = run_sm(world, 0)
        assert result.metrics.messages_total == n - 1

    def test_rounds_are_t_plus_1(self, world):
        result, _ = run_sm(world, 2)
        assert result.metrics.rounds_used == 2  # round 0 send + round 1 relays

    def test_arbitrary_values(self, world):
        result, evaluation = run_sm(world, 2, value=("composite", b"\x00", 3))
        assert evaluation.ok


class TestByzantineSender:
    def _equivocate(self, world, t, seed=0, extra=None):
        n, keypairs, directories = world
        leaf_a = sign_leaf(keypairs[0].secret, "a")
        leaf_b = sign_leaf(keypairs[0].secret, "b")
        script = {
            0: [
                (peer, (SM_MSG, leaf_a if peer <= 3 else leaf_b))
                for peer in range(1, n)
            ]
        }
        adversaries = {0: ScriptedProtocol(script, halt_after=t + 2)}
        if extra:
            adversaries.update(extra)
        return run_sm(world, t, adversaries=adversaries, seed=seed)

    def test_equivocation_forces_common_default(self, world):
        result, evaluation = self._equivocate(world, t=2)
        assert evaluation.agreement and evaluation.termination
        assert set(result.decisions().values()) == {DEFAULT_VALUE}

    def test_equivocation_with_silent_accomplice(self, world):
        result, evaluation = self._equivocate(
            world, t=2, extra={6: SilentProtocol()}
        )
        assert evaluation.agreement

    def test_silent_sender_yields_default(self, world):
        result, evaluation = run_sm(world, 2, adversaries={0: SilentProtocol()})
        assert evaluation.agreement
        assert set(result.decisions().values()) == {DEFAULT_VALUE}


class TestChainDiscipline:
    def test_forged_chain_without_sender_leaf_ignored(self, world):
        """A relay chain whose innermost signer is not the sender carries
        no weight."""
        n, keypairs, directories = world
        forged = sign_leaf(keypairs[3].secret, "evil")
        forged = extend_chain(keypairs[4].secret, 3, forged)
        script = {1: [(peer, (SM_MSG, forged)) for peer in range(n) if peer != 4]}
        adversaries = {4: ScriptedProtocol(script, halt_after=4)}
        result, evaluation = run_sm(world, 2, adversaries=adversaries)
        assert evaluation.ok
        assert set(result.decisions().values()) == {"v"}

    def test_replayed_depth_mismatch_ignored(self, world):
        """A depth-1 leaf delivered in round 2 fails the depth==round rule."""
        n, keypairs, directories = world
        stray = sign_leaf(keypairs[0].secret, "late")
        script = {1: [(peer, (SM_MSG, stray)) for peer in range(1, n) if peer != 5]}
        adversaries = {5: ScriptedProtocol(script, halt_after=4)}
        result, evaluation = run_sm(world, 2, adversaries=adversaries)
        assert evaluation.ok
        assert set(result.decisions().values()) == {"v"}

    def test_relay_cap_bounds_messages(self, world):
        """Correct nodes relay at most two values even under a sender
        spraying many — message totals stay polynomial."""
        n, keypairs, directories = world
        leaves = [sign_leaf(keypairs[0].secret, f"v{i}") for i in range(5)]
        script = {
            0: [(peer, (SM_MSG, leaves[peer % 5])) for peer in range(1, n)]
        }
        adversaries = {0: ScriptedProtocol(script, halt_after=4)}
        result, evaluation = run_sm(world, 2, adversaries=adversaries)
        assert evaluation.agreement
        per_node_cap = 2 * (n - 2)
        for node in range(1, n):
            assert result.metrics.messages_per_sender[node] <= per_node_cap
