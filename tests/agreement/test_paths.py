"""Shared EIG path tables vs the seed per-instance enumeration."""

from __future__ import annotations

from repro.agreement._paths import (
    clear_path_tables,
    path_set,
    path_table_info,
    paths_of_length,
)


def seed_paths_of_length(n: int, sender: int, length: int) -> list[tuple[int, ...]]:
    """The seed code's per-instance enumeration, verbatim semantics."""
    paths = [(sender,)]
    for _ in range(length - 1):
        paths = [
            path + (node,)
            for path in paths
            for node in range(n)
            if node not in path
        ]
    return paths


class TestSharedTableMatchesSeed:
    def test_matches_for_standard_sizes(self):
        for n in (4, 8, 16):
            for length in range(1, 5):
                expected = seed_paths_of_length(n, 0, length)
                assert list(paths_of_length(n, 0, length)) == expected

    def test_matches_for_nonzero_sender(self):
        for sender in (1, 3):
            for length in (1, 2, 3):
                assert list(paths_of_length(4, sender, length)) == (
                    seed_paths_of_length(4, sender, length)
                )

    def test_protocol_method_delegates_to_shared_table(self):
        from repro.agreement.oral import OralAgreementProtocol

        protocol = OralAgreementProtocol(7, 2, value="v")
        for length in (1, 2, 3):
            assert protocol._paths_of_length(length) == (
                seed_paths_of_length(7, 0, length)
            )


class TestTableProperties:
    def test_memoized_instances_are_shared(self):
        assert paths_of_length(8, 0, 3) is paths_of_length(8, 0, 3)

    def test_path_set_membership(self):
        members = path_set(5, 0, 2)
        assert (0, 3) in members
        assert (0, 0) not in members  # repeated id
        assert (1, 2) not in members  # wrong root
        assert (0,) not in members  # wrong length

    def test_canonical_order_is_ascending_extension(self):
        assert list(paths_of_length(4, 0, 2)) == [(0, 1), (0, 2), (0, 3)]

    def test_clear_path_tables(self):
        clear_path_tables()
        assert path_table_info()["entries"] == 0
        paths_of_length(4, 0, 2)
        assert path_table_info()["entries"] >= 1


class TestByzantineReportNoise:
    def test_unhashable_path_elements_are_dropped_not_fatal(self):
        """A Byzantine report whose path contains unhashable elements is
        'noise, not filed' — it must never crash an honest node (the seed
        code tolerated unhashable heads; the shared-table probe must too).
        The succinct-engine analog lives in ``test_eigtree.py``."""
        from repro.agreement.oral import OM_REPORT, OralAgreementProtocol
        from repro.sim import Envelope

        protocol = OralAgreementProtocol(4, 1, value=None, engine="dense")
        inbox = [
            Envelope(
                sender=2,
                recipient=1,
                payload=(OM_REPORT, ((([],), "x"), (([0, []]), "y"))),
                round_sent=1,
            )
        ]

        class _Ctx:
            node = 1

        protocol._ingest(_Ctx(), inbox, 2)
        assert protocol._tree == {}


class TestResolutionUnchanged:
    def test_oral_agreement_decisions_match_reference_recursion(self):
        """The iterative bottom-up resolve equals the seed recursion on a
        populated tree (faulty reports included)."""
        from repro.agreement.oral import OralAgreementProtocol

        n, t = 7, 2
        protocol = OralAgreementProtocol(n, t, value=None, engine="dense")
        # Populate the tree unevenly: some paths agree, some conflict,
        # some are missing entirely (-> default).
        for index, path in enumerate(paths_of_length(n, 0, t + 1)):
            if index % 3 == 0:
                protocol._tree[path] = "a"
            elif index % 3 == 1:
                protocol._tree[path] = "b"
        for path in paths_of_length(n, 0, t):
            protocol._tree[path] = "a"
        protocol._tree[(0,)] = "a"

        for me in range(1, n):
            fast = protocol._resolve((0,), me)
            slow = protocol._resolve_recursive((0,), me)
            assert fast == slow
