"""Randomised adversary fuzzing for the agreement substrate.

Parallel to ``tests/fd/test_fuzz.py``: SM(t) and the FD→BA extension are
universally quantified over Byzantine behaviour within the budget, so we
sample the space — random faulty subsets of size <= t, each running
silence, crashes, chain-message tampering or arbitrary scripted noise —
and assert agreement and (for correct senders) validity always hold.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreement import (
    evaluate_ba,
    make_extended_protocols,
    make_signed_agreement_protocols,
)
from repro.agreement.signed import SM_MSG
from repro.auth import trusted_dealer_setup
from repro.crypto import extend_chain, sign_leaf
from repro.faults import ScriptedProtocol, SilentProtocol
from repro.sim import run_protocols

N, T = 6, 2
KEYPAIRS, DIRECTORIES = trusted_dealer_setup(N, seed="ba-fuzz")

# Pre-built signed material faulty nodes may replay/spray: genuine-looking
# leaves from each key, extended chains, and malformed payloads.
_LEAVES = {
    node: sign_leaf(KEYPAIRS[node].secret, f"forged-by-{node}")
    for node in range(N)
}
NOISE = [
    (SM_MSG, b"not-signed"),
    (SM_MSG, _LEAVES[3]),
    (SM_MSG, extend_chain(KEYPAIRS[4].secret, 3, _LEAVES[3])),
    ("ba-alarm", b"junk"),
    ("unrelated", 1),
]


@st.composite
def ba_adversaries(draw):
    """Up to T faulty nodes with random hostile behaviours."""
    faulty = draw(
        st.sets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=T)
    )
    adversaries = {}
    for node in sorted(faulty):
        kind = draw(st.sampled_from(["silent", "script"]))
        if kind == "silent":
            adversaries[node] = SilentProtocol()
        else:
            script = {}
            for rnd in draw(st.lists(st.integers(0, 2 * T + 4), max_size=4)):
                recipients = draw(
                    st.lists(
                        st.integers(min_value=0, max_value=N - 1).filter(
                            lambda v: v != node
                        ),
                        min_size=1,
                        max_size=3,
                    )
                )
                payload = draw(st.sampled_from(NOISE))
                script.setdefault(rnd, []).extend(
                    (recipient, payload) for recipient in recipients
                )
            adversaries[node] = ScriptedProtocol(script, halt_after=2 * T + 4)
    return adversaries


class TestSignedAgreementFuzz:
    @given(adversaries=ba_adversaries(), seed=st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_agreement_and_termination_always_hold(self, adversaries, seed):
        protocols = make_signed_agreement_protocols(
            N, T, "v", KEYPAIRS, DIRECTORIES, adversaries=adversaries
        )
        result = run_protocols(protocols, seed=seed)
        correct = set(range(N)) - set(adversaries)
        evaluation = evaluate_ba(result, correct, 0, "v")
        assert evaluation.agreement and evaluation.termination, (
            f"{evaluation.detail}; adversaries at {sorted(adversaries)}"
        )

    @given(adversaries=ba_adversaries(), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_validity_with_correct_sender(self, adversaries, seed):
        if 0 in adversaries:
            return
        protocols = make_signed_agreement_protocols(
            N, T, "v", KEYPAIRS, DIRECTORIES, adversaries=adversaries
        )
        result = run_protocols(protocols, seed=seed)
        correct = set(range(N)) - set(adversaries)
        evaluation = evaluate_ba(result, correct, 0, "v")
        assert evaluation.ok, evaluation.detail


class TestExtensionFuzz:
    @given(adversaries=ba_adversaries(), seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_full_ba_always_holds(self, adversaries, seed):
        protocols = make_extended_protocols(
            N, T, "v", KEYPAIRS, DIRECTORIES, adversaries=adversaries
        )
        result = run_protocols(protocols, seed=seed)
        correct = set(range(N)) - set(adversaries)
        evaluation = evaluate_ba(result, correct, 0, "v")
        assert evaluation.agreement and evaluation.termination, (
            f"{evaluation.detail}; adversaries at {sorted(adversaries)}"
        )
        if 0 not in adversaries:
            assert evaluation.validity, evaluation.detail

    @given(adversaries=ba_adversaries(), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_paths_never_split(self, adversaries, seed):
        from repro.agreement import OUTPUT_PATH

        protocols = make_extended_protocols(
            N, T, "v", KEYPAIRS, DIRECTORIES, adversaries=adversaries
        )
        result = run_protocols(protocols, seed=seed)
        paths = {
            state.outputs[OUTPUT_PATH]
            for state in result.states
            if state.node not in adversaries and OUTPUT_PATH in state.outputs
        }
        assert len(paths) <= 1, f"split paths {paths} at {sorted(adversaries)}"
