"""CLI: every subcommand runs, reports correctly, and exits meaningfully."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fd", "--scheme", "rot13"])


class TestKeydist:
    def test_prints_formula_and_measured(self, capsys):
        assert main(["keydist", "--n", "5", "--scheme", "simulated-hmac"]) == 0
        out = capsys.readouterr().out
        assert "60" in out  # 3*5*4
        assert "rounds" in out


class TestFd:
    def test_chain_global(self, capsys):
        assert main(
            ["fd", "--n", "6", "--t", "1", "--scheme", "simulated-hmac"]
        ) == 0
        out = capsys.readouterr().out
        assert "F1-F3" in out and "ok" in out

    def test_chain_local_includes_keydist(self, capsys):
        assert main(
            ["fd", "--n", "6", "--t", "1", "--auth", "local",
             "--scheme", "simulated-hmac"]
        ) == 0
        out = capsys.readouterr().out
        assert "90" in out  # 3*6*5 keydist messages

    def test_echo_protocol(self, capsys):
        assert main(
            ["fd", "--n", "6", "--t", "2", "--protocol", "echo"]
        ) == 0
        out = capsys.readouterr().out
        assert "15" in out  # (2+1)*(6-1)


class TestBa:
    def test_extension(self, capsys):
        assert main(
            ["ba", "--n", "6", "--t", "1", "--scheme", "simulated-hmac"]
        ) == 0
        out = capsys.readouterr().out
        assert "agreement/validity" in out and "ok" in out


class TestAmortize:
    def test_ledger_and_crossover(self, capsys):
        assert main(
            ["amortize", "--n", "8", "--t", "2", "--runs", "14",
             "--scheme", "simulated-hmac"]
        ) == 0
        out = capsys.readouterr().out
        assert "crossover: measured 13, closed form 13" in out


class TestAttack:
    def test_list(self, capsys):
        assert main(["attack", "--list", "--n", "8", "--t", "2"]) == 0
        out = capsys.readouterr().out
        assert "cross-claim-chain" in out
        assert "mixed-predicate-chain" in out

    def test_run_named_attack(self, capsys):
        assert main(
            ["attack", "--name", "garbling-chain-node", "--n", "8", "--t", "2",
             "--scheme", "simulated-hmac"]
        ) == 0
        out = capsys.readouterr().out
        assert "discovery" in out

    def test_unknown_attack_exits_2(self, capsys):
        assert main(
            ["attack", "--name", "no-such-attack", "--n", "8", "--t", "2"]
        ) == 2


class TestListWorkloads:
    def test_lists_names_suites_and_picklability(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for token in ("akd", "keydist", "e11-methods", "E11", "picklable", "yes"):
            assert token in out

    def test_lists_supported_delivery_models(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "deliveries" in out
        assert "sync,bounded,rush" in out  # the E12 sweeps


class TestRunWorkload:
    def test_runs_registry_entry_without_pytest(self, capsys):
        assert main(
            ["run", "--workload", "keydist", "--param", "n=5",
             "--param", "seed=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "60" in out  # 3*5*4 messages

    def test_coerces_string_params(self, capsys):
        assert main(
            ["run", "--workload", "oral", "--param", "n=7", "--param", "t=2",
             "--param", "engine=dense"]
        ) == 0
        out = capsys.readouterr().out
        assert "78" in out  # (n-1) + t(n-1)^2 envelopes

    def test_akd_mux_workload_runs(self, capsys):
        assert main(
            ["run", "--workload", "akd", "--param", "n=4", "--param", "t=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "instance_messages_min" in out

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["run", "--workload", "no-such"]) == 2

    def test_infeasible_params_exit_1_with_message(self, capsys):
        """Workload-level errors print like every other subcommand —
        message + nonzero exit, no traceback."""
        assert main(
            ["run", "--workload", "akd", "--param", "n=6", "--param", "t=2"]
        ) == 1
        err = capsys.readouterr().err
        assert "workload akd" in err and "n > 3t" in err

    def test_bad_param_name_exits_1(self, capsys):
        assert main(
            ["run", "--workload", "keydist", "--param", "bogus=1"]
        ) == 1
        assert "bogus" in capsys.readouterr().err

    def test_malformed_param_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "keydist", "--param", "n5"])

    def test_trace_dumps_structured_event_log(self, capsys):
        assert main(
            ["run", "--workload", "e12-fd", "--param", "n=5", "--param", "t=1",
             "--param", "delivery=bounded:2", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "structured event log" in out
        assert "@t" in out          # delivery timestamps
        assert "halts" in out

    def test_trace_on_traceless_workload_exits_2(self, capsys):
        assert main(
            ["run", "--workload", "keydist", "--param", "n=4", "--trace"]
        ) == 2
        assert "does not support --trace" in capsys.readouterr().err


class TestCheckpointResume:
    RUN = [
        "run", "--workload", "e13-timeout-fd", "--param", "n=8",
        "--param", "t=1", "--param", "delivery=bounded:2",
        "--param", "seed=3",
    ]

    def test_checkpoints_written_and_resumable(self, capsys, tmp_path):
        assert main(
            self.RUN + ["--checkpoint-every", "3",
                        "--checkpoint-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "checkpoint written" in out
        files = sorted(tmp_path.glob("*.ckpt"))
        assert files, "no checkpoint files on disk"
        assert main(["resume", str(files[0])]) == 0
        out = capsys.readouterr().out
        assert "resumed at tick" in out
        assert "rounds executed" in out

    def test_non_positive_every_exits_2(self, capsys, tmp_path):
        assert main(
            self.RUN + ["--checkpoint-every", "0",
                        "--checkpoint-dir", str(tmp_path)]
        ) == 2
        assert "positive tick count" in capsys.readouterr().err

    def test_every_without_dir_exits_2(self, capsys):
        assert main(self.RUN + ["--checkpoint-every", "4"]) == 2
        assert "together" in capsys.readouterr().err

    def test_dir_without_every_exits_2(self, capsys, tmp_path):
        assert main(self.RUN + ["--checkpoint-dir", str(tmp_path)]) == 2
        assert "together" in capsys.readouterr().err

    def test_resume_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["resume", str(tmp_path / "nope.ckpt")]) == 2
        assert "cannot read checkpoint" in capsys.readouterr().err

    def test_resume_corrupt_file_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"garbage")
        assert main(["resume", str(bad)]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_resume_version_mismatch_exits_2(self, capsys, tmp_path):
        import dataclasses
        import pickle

        from repro.harness import run_fd_scenario

        snap = run_fd_scenario(
            8, 1, "v", protocol="timeout", delivery="bounded:2", seed=3,
            checkpoint_at=2,
        )
        stale = tmp_path / "stale.ckpt"
        stale.write_bytes(pickle.dumps(dataclasses.replace(snap, version=0)))
        assert main(["resume", str(stale)]) == 2
        err = capsys.readouterr().err
        assert "version" in err and "re-create" in err


class TestDeliveryKnob:
    def test_fd_accepts_delivery_spec(self, capsys):
        assert main(
            ["fd", "--n", "5", "--t", "1", "--delivery", "bounded:1"]
        ) == 0
        out = capsys.readouterr().out
        assert "bounded:1" in out

    def test_ba_accepts_delivery_spec(self, capsys):
        assert main(
            ["ba", "--n", "5", "--t", "1", "--protocol", "signed",
             "--delivery", "rush"]
        ) == 0
        assert "rush" in capsys.readouterr().out

    def test_unknown_delivery_spec_errors(self, capsys):
        """A typo'd spec gets the CLI contract — message naming the
        valid specs plus exit 2 — not a traceback."""
        assert main(["fd", "--n", "5", "--t", "1", "--delivery", "warp"]) == 2
        err = capsys.readouterr().err
        assert "unknown delivery" in err
        for name in ("bounded", "loss", "partition", "rush", "sync"):
            assert name in err

    def test_keydist_accepts_delivery_spec(self, capsys):
        assert main(
            ["keydist", "--n", "5", "--scheme", "simulated-hmac",
             "--delivery", "bounded:1"]
        ) == 0
        assert "bounded:1" in capsys.readouterr().out

    def test_attack_accepts_delivery_spec(self, capsys):
        assert main(
            ["attack", "--n", "7", "--t", "2", "--name",
             "crashed-chain-node", "--scheme", "simulated-hmac",
             "--delivery", "sync"]
        ) == 0
        assert "crashed-chain-node" in capsys.readouterr().out

    def test_amortize_accepts_delivery_spec(self, capsys):
        assert main(
            ["amortize", "--n", "6", "--t", "1", "--runs", "3",
             "--scheme", "simulated-hmac", "--delivery", "sync"]
        ) == 0
        assert "amortization ledger" in capsys.readouterr().out


class TestAdversaryKnob:
    def test_fd_accepts_adversary_spec(self, capsys):
        assert main(
            ["fd", "--n", "7", "--t", "2", "--scheme", "simulated-hmac",
             "--adversary", "5=crash@1;6=silent"]
        ) == 0
        assert "5=crash@1;6=silent" in capsys.readouterr().out

    def test_fd_timeout_protocol_with_loss(self, capsys):
        assert main(
            ["fd", "--n", "7", "--t", "2", "--scheme", "simulated-hmac",
             "--protocol", "timeout", "--delivery", "loss:0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "dropped by network" in out

    def test_unknown_behaviour_errors(self, capsys):
        assert main(
            ["fd", "--n", "5", "--t", "1", "--adversary", "2=gremlin"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown behaviour" in err and "silent" in err

    def test_unknown_behaviour_error_lists_the_live_grammar(self, capsys):
        """The exit-2 message derives from the parse table, so new
        behaviours (and their argument shapes) are always advertised."""
        assert main(
            ["fd", "--n", "5", "--t", "1", "--adversary", "2=gremlin"]
        ) == 2
        err = capsys.readouterr().err
        for token in ("ack-lie[@T]", "equivocate[@T]", "crash@R[-S]"):
            assert token in err

    def test_malformed_item_error_mentions_adaptive_grammar(self, capsys):
        assert main(
            ["fd", "--n", "5", "--t", "1", "--adversary", "bogus"]
        ) == 2
        assert "adaptive:STRATEGY" in capsys.readouterr().err

    def test_unknown_adaptive_strategy_errors(self, capsys):
        assert main(
            ["fd", "--n", "5", "--t", "1", "--adversary", "adaptive:gremlin"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown adaptive strategy" in err
        assert "silence-muffled" in err

    def test_fd_adaptive_protocol_runs(self, capsys):
        assert main(
            ["fd", "--n", "7", "--t", "2", "--scheme", "simulated-hmac",
             "--protocol", "adaptive", "--delivery", "bounded:3"]
        ) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out and "ok" in out

    def test_fd_reports_adaptive_commitments(self, capsys):
        assert main(
            ["fd", "--n", "7", "--t", "2", "--scheme", "simulated-hmac",
             "--protocol", "timeout", "--seed", "5",
             "--adversary", "adaptive:silence-muffled;delivery=loss:0.3"]
        ) == 0
        out = capsys.readouterr().out
        assert "committed (adaptive)" in out
        assert "=silent" in out

    def test_over_budget_adversary_errors(self, capsys):
        assert main(
            ["fd", "--n", "5", "--t", "1", "--adversary", "2=silent;3=silent"]
        ) == 2
        assert "budget" in capsys.readouterr().err

    def test_ba_accepts_adversary_spec(self, capsys):
        assert main(
            ["ba", "--n", "7", "--t", "2", "--protocol", "signed",
             "--scheme", "simulated-hmac", "--adversary", "6=rush;delivery=rush"]
        ) == 0
        assert "6=rush" in capsys.readouterr().out


class TestFormulas:
    def test_prints_all_claims(self, capsys):
        assert main(["formulas", "--n", "16", "--t", "5"]) == 0
        out = capsys.readouterr().out
        for token in ("3n(n-1)", "n-1", "(t+1)(n-1)", "720", "15", "90", "10"):
            assert token in out

    def test_t_zero_omits_crossover(self, capsys):
        assert main(["formulas", "--n", "4", "--t", "0"]) == 0
        out = capsys.readouterr().out
        assert "crossover" not in out
