"""AmortizedSession: the paper's pay-once-run-many deployment story."""

from __future__ import annotations

import pytest

from repro.analysis import crossover_runs, keydist_messages
from repro.errors import ConfigurationError
from repro.faults import SilentProtocol
from repro.harness import GLOBAL, LOCAL, AmortizedSession


class TestSessionSetup:
    def test_local_pays_keydist_once(self):
        session = AmortizedSession(n=8, t=2, auth=LOCAL, seed=1)
        assert session.setup_messages == keydist_messages(8)

    def test_global_has_free_setup(self):
        session = AmortizedSession(n=8, t=2, auth=GLOBAL, seed=1)
        assert session.setup_messages == 0

    def test_unknown_auth_rejected(self):
        with pytest.raises(ConfigurationError):
            AmortizedSession(n=8, t=2, auth="psychic")

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            AmortizedSession(n=4, t=3)


class TestRepeatedRuns:
    def test_runs_share_key_material(self):
        session = AmortizedSession(n=6, t=1, auth=LOCAL, seed=2)
        for k in range(3):
            outcome = session.run(value=k, seed=k)
            assert outcome.fd.ok
            assert outcome.run.metrics.messages_total == 5

    def test_ledger_accumulates(self):
        session = AmortizedSession(n=6, t=1, auth=LOCAL, seed=3)
        session.run("a", seed=0)
        session.run("b", seed=1)
        assert [entry.runs for entry in session.ledger] == [1, 2]
        assert session.ledger[1].local_total == keydist_messages(6) + 2 * 5

    def test_crossover_matches_closed_form(self):
        n, t = 16, 5
        session = AmortizedSession(n=n, t=t, auth=LOCAL, seed=4)
        predicted = crossover_runs(n, t)
        for k in range(predicted + 2):
            session.run(value=k, seed=k)
        assert session.crossover_run() == predicted

    def test_no_crossover_before_enough_runs(self):
        session = AmortizedSession(n=16, t=5, auth=LOCAL, seed=5)
        session.run("only", seed=0)
        assert session.crossover_run() is None

    def test_faulty_runs_still_counted_and_evaluated(self):
        session = AmortizedSession(n=8, t=2, auth=LOCAL, seed=6)
        outcome = session.run(
            "v",
            seed=1,
            adversary_factory=lambda kp, dirs: {1: SilentProtocol()},
        )
        assert outcome.fd.ok and outcome.fd.any_discovery
        assert session.ledger[-1].runs == 1
