"""The workload registry: every benchmark sweep as a named point function."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    available_workloads,
    get_workload,
    resolve_workload,
    workload_deliveries,
    workload_suite,
)
from repro.harness.workloads import WORKLOADS

#: The registry contract the benchmark suites rely on: one name per
#: E1-E11 sweep family (E1/E2/E3 share "fd"/"keydist"; E8 is the round
#: table; the rest are experiment-specific).
EXPECTED = {
    "akd",
    "akd-shard",
    "ba",
    "e10-scheme",
    "e10-walltime",
    "e11-feasibility",
    "e11-methods",
    "e4-crossover",
    "e5-binary",
    "e5-optimistic",
    "e6-scenario",
    "e7-ba-compare",
    "e7-fallback",
    "e8-rounds",
    "e9-chain-bytes",
    "e9-compression",
    "e12-ba",
    "e12-fd",
    "e12-oral",
    "e13-loss",
    "e13-partition",
    "e13-timeout-fd",
    "e14-adaptive",
    "e14-equivocation",
    "fd",
    "keydist",
    "oral",
}


class TestRegistry:
    def test_expected_names_registered(self):
        assert set(available_workloads()) == EXPECTED

    def test_every_workload_is_picklable(self):
        """The property that makes registry sweeps parallelizable."""
        for name in available_workloads():
            fn = get_workload(name)
            assert pickle.loads(pickle.dumps(fn)) is fn

    def test_resolve_passes_callables_through(self):
        fn = get_workload("fd")
        assert resolve_workload(fn) is fn
        assert resolve_workload("fd") is fn

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match="keydist"):
            get_workload("nope")

    def test_every_workload_names_a_suite(self):
        """list-workloads shows provenance: no registration without it."""
        for name in available_workloads():
            assert workload_suite(name) != "-", name

    def test_suite_lookup_raises_for_unknown_names(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            workload_suite("nope")

    def test_delivery_metadata(self):
        """E12/E13 sweeps and the arrival-columned akd points advertise
        their delivery axes; everything else is lock-step only."""
        degraded = ("sync", "bounded", "loss", "partition")
        expected = {
            "akd": degraded,
            "akd-shard": degraded,
            "e13-loss": ("loss",),
            "e13-timeout-fd": degraded,
            "e13-partition": ("partition",),
            "e14-adaptive": degraded,
            "e14-equivocation": ("partition",),
        }
        for name in available_workloads():
            if name.startswith("e12-"):
                assert workload_deliveries(name) == ("sync", "bounded", "rush")
            else:
                assert workload_deliveries(name) == expected.get(
                    name, ("sync",)
                ), name

    def test_delivery_lookup_raises_for_unknown_names(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            workload_deliveries("nope")

    def test_duplicate_registration_rejected(self):
        from repro.harness.workloads import workload

        with pytest.raises(ConfigurationError, match="registered twice"):
            workload("fd")(lambda: None)
        assert WORKLOADS["fd"] is get_workload("fd")


class TestPointFunctions:
    """One cheap smoke run per new point family (the E-suites assert the
    full tables; here we pin the result *shapes* the suites rely on)."""

    def test_e4_crossover(self):
        result = get_workload("e4-crossover")(8, 2, seed=8)
        assert result["measured"] == result["predicted"]
        assert result["all_ok"]

    def test_e5_points(self):
        binary = get_workload("e5-binary")(4, 0, seed=4)
        assert binary["fd_ok"] and binary["messages"] == 0
        attacked = get_workload("e5-optimistic")(16, 5, 1, seed=3, withhold=True)
        assert not attacked["weak_agreement"] and not attacked["any_discovery"]

    def test_e6_scenario(self):
        result = get_workload("e6-scenario")(8, 2, "cross-claim-chain", seed=1)
        assert result["fd_ok"] and result["g12_violations"] == 0

    def test_e6_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError, match="unknown attack scenario"):
            get_workload("e6-scenario")(8, 2, "no-such-attack", seed=1)

    def test_e7_points(self):
        compare = get_workload("e7-ba-compare")(8, 2, seed=8)
        assert compare["ext_messages"] == 7 < compare["sm_messages"]
        fallback = get_workload("e7-fallback")(8, 2, seed=0, silent_node=1)
        assert fallback["ba_ok"] and fallback["messages"] > 7

    def test_e9_compression_matches_closed_forms(self):
        from repro.analysis import om_collapsed_reports, om_reports

        result = get_workload("e9-compression")(7, 2, seed=7)
        assert result["runs_total"] == om_collapsed_reports(7, 2)
        assert result["dense_items"] == om_reports(7, 2)
        assert result["wire_bytes"] < result["dense_bytes"]

    def test_e10_points(self):
        result = get_workload("e10-scheme")(6, 1, "simulated-hmac", seed=5)
        assert result["fd_ok"]

    def test_e11_points(self):
        methods = get_workload("e11-methods")(4, 1, seed=4)
        assert methods["agreement_messages"] > methods["local_messages"]
        boundary = get_workload("e11-feasibility")(6, 2, seed=6)
        assert not boundary["agreement_feasible"] and boundary["local_pair_ok"]

    def test_oral_engines_agree(self):
        oral = get_workload("oral")
        dense = oral(7, 2, seed=3, engine="dense")
        succinct = oral(7, 2, seed=3, engine="succinct")
        assert dense == succinct

    def test_e12_sync_matches_plain_oral_counts(self):
        """The delivery sweep's lock-step row measures the same run the
        E9 oral workload does (same seed, same counts)."""
        plain = get_workload("oral")(7, 2, seed=3)
        sync = get_workload("e12-oral")(7, 2, delivery="sync", seed=3)
        assert sync["messages"] == plain["messages"]
        assert sync["rounds"] == plain["rounds"]
        assert sync["agreed"] and plain["agreed"]

    def test_e12_points_reject_bad_faulty(self):
        with pytest.raises(ConfigurationError, match="faulty"):
            get_workload("e12-fd")(7, 2, faulty=7)

    def test_e12_trace_param_dumps_event_log(self):
        result = get_workload("e12-fd")(
            5, 1, delivery="bounded:2", seed=1, trace=True
        )
        assert "DISCOVERS" in result["trace"] or "halts" in result["trace"]
        assert "@t" in result["trace"]

    def test_e14_adaptive_point_shapes(self):
        point = get_workload("e14-adaptive")
        clean = point(7, 2, delivery="bounded:12", protocol="adaptive", seed=1)
        assert not clean["spurious"] and clean["decided"] == 7
        static = point(7, 2, delivery="bounded:12", protocol="timeout", seed=1)
        assert static["spurious"]
        committed = point(
            7, 2, delivery="loss:0.3", protocol="timeout",
            attack="adaptive:silence-muffled", seed=5,
        )
        assert committed["committed"] == 1 and not committed["spurious"]

    def test_e14_points_reject_bad_axes(self):
        point = get_workload("e14-adaptive")
        with pytest.raises(ConfigurationError, match="protocol"):
            point(7, 2, protocol="chain")
        with pytest.raises(ConfigurationError, match="attack"):
            point(7, 2, attack="gremlin")

    def test_e14_equivocation_point(self):
        result = get_workload("e14-equivocation")(8, 2, heal=4, seed=1)
        assert result["attack"] == "equivocate"
        assert result["heal"] == 4 and result["defer"]
        assert result["decided"] >= 7
