"""Parallel sweep executor: determinism, ordering, fallbacks, registry."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    default_workers,
    grid,
    set_default_workers,
    sweep,
    sweep_parallel,
)
from repro.harness.workloads import fd_point, keydist_point, oral_point


def _square(x, seed):
    """Module-level (picklable) point function."""
    return {"value": x * x, "seed": seed}


def _adversary_point(x, seed, adversary):
    """Module-level point function taking an adversary spec param."""
    return adversary.delivery


class TestSweepParallelContract:
    def test_identical_to_serial_for_fixed_seed_grid(self):
        points = grid(x=[1, 2, 3, 4], seed=[0, 7])
        serial = sweep(points, _square)
        parallel = sweep_parallel(points, _square, workers=3)
        assert serial == parallel

    def test_results_byte_identical_to_serial(self):
        """The determinism contract, at full strength: the canonical
        serialization of every point matches byte for byte.  (Raw pickles
        of the whole list are not compared — pickle encodes object-sharing
        topology, which a worker round-trip legitimately changes without
        changing any value.)"""
        points = grid(n=[4, 8], seed=[0, 1])
        serial = sweep(points, keydist_point)
        parallel = sweep_parallel(points, keydist_point, workers=2)
        assert serial == parallel

        def canonical(sweep_points):
            return json.dumps(
                [[p.params, p.result] for p in sweep_points], sort_keys=True
            ).encode()

        assert canonical(serial) == canonical(parallel)

    def test_scenario_points_identical(self):
        points = [
            {"n": n, "t": (n - 1) // 3, "seed": n, "protocol": "chain"}
            for n in (4, 8)
        ]
        assert sweep(points, fd_point) == sweep_parallel(points, fd_point, workers=2)

    def test_oral_points_identical(self):
        points = [{"n": 7, "t": 2, "seed": s} for s in (0, 1)]
        assert sweep(points, oral_point) == sweep_parallel(
            points, oral_point, workers=2
        )

    def test_preserves_point_order(self):
        points = [{"x": x, "seed": 0} for x in range(8)]
        results = sweep_parallel(points, _square, workers=4)
        assert [p.params["x"] for p in results] == list(range(8))
        assert [p.result["value"] for p in results] == [x * x for x in range(8)]


class TestRegistryDispatch:
    def test_sweep_by_name_matches_sweep_by_function(self):
        points = grid(n=[4, 8], seed=[0])
        assert sweep(points, "keydist") == sweep(points, keydist_point)

    def test_parallel_by_name_matches_serial(self):
        points = grid(n=[4, 8], seed=[0, 1])
        assert sweep_parallel(points, "keydist", workers=2) == sweep(
            points, keydist_point
        )

    def test_name_dispatch_never_warns_or_degrades(self):
        """A registered name is always picklable: no fallback warning."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results = sweep_parallel(
                [{"n": 4, "seed": 0}, {"n": 4, "seed": 1}], "keydist", workers=2
            )
        assert [p.result["n"] for p in results] == [4, 4]

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            sweep([{"n": 4, "seed": 0}], "no-such-workload")


class TestFallbacks:
    def test_unpicklable_fn_falls_back_to_serial(self):
        captured = []

        def closure(x, seed):  # closes over `captured`: not picklable
            captured.append(x)
            return x + seed

        with pytest.warns(RuntimeWarning, match="closure.*not picklable"):
            results = sweep_parallel(
                [{"x": 1, "seed": 2}, {"x": 2, "seed": 2}], closure, workers=4
            )
        assert results[0].result == 3
        assert captured == [1, 2]  # ran in this process

    def test_fallback_warning_names_the_workload(self):
        offender = lambda x, seed: x  # noqa: E731

        with pytest.warns(RuntimeWarning) as caught:
            sweep_parallel(
                [{"x": 1, "seed": 0}, {"x": 2, "seed": 0}], offender, workers=2
            )
        assert any("<lambda>" in str(w.message) for w in caught)

    def test_fallback_names_workload_and_matches_parallel_semantics(self):
        """The PR-2 degradation contract, end to end: the warning names
        the *specific* offending workload (qualname, not a generic
        message), and the serially-executed fallback returns exactly what
        the parallel path returns for the same (picklable) computation —
        the fallback degrades wall-clock, never values."""
        points = grid(x=[3, 5, 8], seed=[0, 2])

        def unpicklable_square(x, seed):  # closure by virtue of nesting
            return _square(x, seed)

        with pytest.warns(RuntimeWarning) as caught:
            fallback = sweep_parallel(points, unpicklable_square, workers=3)
        messages = [str(w.message) for w in caught]
        assert any("unpicklable_square" in m for m in messages)
        assert any("falling back to serial" in m for m in messages)
        parallel = sweep_parallel(points, _square, workers=3)
        assert [p.result for p in fallback] == [p.result for p in parallel]
        assert [p.params for p in fallback] == [p.params for p in parallel]

    def test_unpicklable_adversary_spec_warns_naming_the_spec(self):
        """The E13 degradation contract: a sweep whose *adversary
        parameter* (not its workload callable) cannot cross the process
        boundary falls back serially, and the warning names the
        offending spec."""
        from repro.faults import AdversarySpec, SilentProtocol

        class Unpicklable(SilentProtocol):
            def __reduce__(self):
                raise TypeError("deliberately unpicklable")

        spec = AdversarySpec(overrides=((1, Unpicklable()),), t=1)

        points = [
            {"x": 1, "seed": 0, "adversary": spec},
            {"x": 2, "seed": 0, "adversary": spec},
        ]
        with pytest.warns(RuntimeWarning) as caught:
            results = sweep_parallel(points, _adversary_point, workers=2)
        messages = [str(w.message) for w in caught]
        assert any("adversary spec" in m for m in messages)
        assert any("1=<custom>" in m for m in messages)
        assert any("falling back to serial" in m for m in messages)
        assert [p.result for p in results] == [None, None]

    def test_picklable_adversary_specs_do_not_degrade(self):
        from repro.faults import make_adversary

        spec = make_adversary("1=silent;delivery=loss:0.2", t=1)
        points = [{"x": 1, "seed": 0, "adversary": spec}]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results = sweep_parallel(points, _adversary_point, workers=2)
        assert results[0].result == spec.delivery

    def test_single_worker_is_serial(self):
        assert sweep_parallel([{"x": 2, "seed": 0}], _square, workers=1) == sweep(
            [{"x": 2, "seed": 0}], _square
        )

    def test_empty_points(self):
        assert sweep_parallel([], _square, workers=4) == []


class TestDefaultWorkers:
    def test_configurable(self):
        previous = default_workers()
        try:
            set_default_workers(2)
            assert default_workers() == 2
            points = grid(x=[1, 2], seed=[0])
            assert sweep_parallel(points, _square) == sweep(points, _square)
        finally:
            set_default_workers(previous)
