"""Sweep utilities: grids, ordering, standard sizes."""

from __future__ import annotations

from repro.harness import grid, sizes_with_budgets, standard_sizes, sweep


class TestGrid:
    def test_cartesian_product_in_order(self):
        points = grid(n=[4, 8], seed=[0, 1])
        assert points == [
            {"n": 4, "seed": 0},
            {"n": 4, "seed": 1},
            {"n": 8, "seed": 0},
            {"n": 8, "seed": 1},
        ]

    def test_single_axis(self):
        assert grid(x=[1]) == [{"x": 1}]

    def test_empty_axis_empties_grid(self):
        assert grid(x=[], y=[1, 2]) == []


class TestSweep:
    def test_applies_function_and_keeps_params(self):
        points = sweep(grid(a=[1, 2], b=[10]), lambda a, b: a + b)
        assert [(p.params, p.result) for p in points] == [
            ({"a": 1, "b": 10}, 11),
            ({"a": 2, "b": 10}, 12),
        ]


class TestStandardSizes:
    def test_small_is_prefix_of_full(self):
        small, full = standard_sizes(small=True), standard_sizes()
        assert small == full[: len(small)]

    def test_budgets(self):
        pairs = sizes_with_budgets([4, 10, 16])
        assert pairs == [(4, 1), (10, 3), (16, 5)]
