"""Harness: scenario runner wiring, auth modes, error handling."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import SilentProtocol
from repro.harness import (
    GLOBAL,
    LOCAL,
    run_ba_scenario,
    run_fd_scenario,
    setup_authentication,
)


class TestSetupAuthentication:
    def test_global_produces_consistent_directories(self):
        keypairs, directories, kd = setup_authentication(5, auth=GLOBAL, seed=1)
        assert kd is None
        for observer in range(5):
            for subject in range(5):
                assert directories[observer].predicate_for(subject) == (
                    keypairs[subject].predicate
                )

    def test_local_returns_kd_result(self):
        keypairs, directories, kd = setup_authentication(4, auth=LOCAL, seed=1)
        assert kd is not None
        assert kd.messages == 3 * 4 * 3

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            setup_authentication(4, auth="vibes")

    def test_kd_adversaries_under_global_rejected(self):
        with pytest.raises(ConfigurationError):
            setup_authentication(
                4, auth=GLOBAL, kd_adversaries={1: SilentProtocol()}
            )


class TestRunFdScenario:
    def test_chain_defaults(self):
        outcome = run_fd_scenario(6, 1, "v", seed=2)
        assert outcome.fd.ok
        assert outcome.ba is None
        assert outcome.total_messages == 5  # no keydist under global auth

    def test_total_messages_includes_keydist_under_local(self):
        outcome = run_fd_scenario(6, 1, "v", auth=LOCAL, seed=2)
        assert outcome.total_messages == 3 * 6 * 5 + 5

    def test_echo_protocol(self):
        outcome = run_fd_scenario(6, 2, "v", protocol="echo", seed=3)
        assert outcome.fd.ok
        assert outcome.run.metrics.messages_total == 3 * 5

    def test_smallrange_protocols(self):
        sound = run_fd_scenario(6, 0, 1, protocol="smallrange", seed=4)
        optimistic = run_fd_scenario(
            6, 2, 0, protocol="smallrange-optimistic", seed=4
        )
        assert sound.fd.ok and optimistic.fd.ok
        assert optimistic.run.metrics.messages_total == 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fd_scenario(6, 1, "v", protocol="pigeon")

    def test_faulty_set_inferred_from_adversaries(self):
        outcome = run_fd_scenario(
            6,
            1,
            "v",
            seed=5,
            fd_adversary_factory=lambda kp, dirs: {1: SilentProtocol()},
        )
        assert outcome.correct == {0, 2, 3, 4, 5}
        assert outcome.fd.ok and outcome.fd.any_discovery

    def test_explicit_faulty_set_wins(self):
        outcome = run_fd_scenario(6, 1, "v", seed=6, faulty={4, 5})
        assert outcome.correct == {0, 1, 2, 3}


class TestRunBaScenario:
    def test_extension_default(self):
        outcome = run_ba_scenario(6, 1, "v", seed=7)
        assert outcome.ba.ok
        assert outcome.fd is None
        assert outcome.run.metrics.messages_total == 5

    def test_signed_protocol(self):
        outcome = run_ba_scenario(6, 1, "v", protocol="signed", seed=8)
        assert outcome.ba.ok
        assert outcome.run.metrics.messages_total == 5 + 5 * 4

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            run_ba_scenario(6, 1, "v", protocol="quantum")
