"""The pipelined instance-shard executor: bit-for-bit equivalence.

The acceptance property of the mux subsystem: running the K instances of
one agreement-based key-distribution execution through
:func:`repro.harness.parallel.run_mux_shards` — any shard count, pooled
or in-process — produces *identical* per-instance decisions, rounds and
envelope/byte metrics to the single in-process
:class:`~repro.sim.multiplex.InstanceMux` run, including under random
Byzantine behaviour.  "Identical" is dataclass value equality on
:class:`~repro.sim.multiplex.InstanceAggregate`, i.e. every decision,
every counter, every byte — bit-for-bit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth import run_agreement_key_distribution
from repro.harness import run_mux_shards, shard_instances

N, T = 7, 2
SCHEME = "simulated-hmac"


def full_run(seed, byzantine=()):
    return run_agreement_key_distribution(
        N, T, scheme=SCHEME, seed=seed, byzantine=byzantine
    )


def sharded(seed, byzantine=(), workers=3, in_process=True):
    return run_mux_shards(
        "akd-shard",
        {"n": N, "t": T, "seed": seed, "scheme": SCHEME, "byzantine": byzantine},
        range(N),
        workers=workers,
        in_process=in_process,
    )


@st.composite
def byzantine_specs(draw):
    """Up to T faulty nodes, each silent or mux-noise — as picklable
    (node, kind) pairs, the form shard workers rebuild from."""
    faulty = draw(
        st.sets(st.integers(min_value=0, max_value=N - 1), max_size=T)
    )
    kinds = [
        (node, draw(st.sampled_from(["silent", "noise"])))
        for node in sorted(faulty)
    ]
    return tuple(kinds)


class TestShardInstances:
    def test_partition_is_contiguous_and_balanced(self):
        assert shard_instances(range(7), 3) == [(0, 1, 2), (3, 4), (5, 6)]

    def test_never_more_shards_than_instances(self):
        assert shard_instances([5, 9], 8) == [(5,), (9,)]

    def test_empty(self):
        assert shard_instances([], 4) == []


class TestEquivalenceProperty:
    @given(spec=byzantine_specs(), seed=st.integers(0, 2**16),
           workers=st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_sharded_equals_in_process_mux(self, spec, seed, workers):
        """The engine-equivalence property: decisions, rounds and
        per-instance envelope/byte metrics, bit-for-bit, under random
        Byzantine behaviour and any shard count."""
        full = full_run(seed, byzantine=spec)
        shards = sharded(seed, byzantine=spec, workers=workers)
        assert shards == full.per_instance, (
            f"shard divergence; byzantine={spec}, workers={workers}"
        )

    def test_process_pool_transport_is_value_preserving(self):
        """One pooled run (skipped gracefully where pools cannot start):
        crossing the process boundary changes no value."""
        spec = ((2, "noise"), (5, "silent"))
        full = full_run(31, byzantine=spec)
        pooled = sharded(31, byzantine=spec, workers=3, in_process=False)
        assert pooled == full.per_instance

    def test_every_shard_count_gives_the_same_merge(self):
        full = full_run(8)
        results = [sharded(8, workers=w) for w in (1, 2, 3, 7)]
        for result in results:
            assert result == full.per_instance


class TestMergeSafety:
    def test_foreign_instance_rejected(self):
        def liar(instances=(), **params):
            return {99: "not-yours"}

        with pytest.raises(ValueError, match="foreign instance"):
            run_mux_shards(liar, {}, range(4), workers=2, in_process=True)

    def test_unpicklable_fn_warns_and_runs_in_process(self):
        captured = []

        def closure(instances=(), n=N, t=T, seed=0):  # noqa: ARG001
            captured.append(tuple(instances))
            return {
                i: run_agreement_key_distribution(
                    n, t, scheme=SCHEME, seed=seed, instances=(i,)
                ).per_instance[i]
                for i in instances
            }

        with pytest.warns(RuntimeWarning, match="closure.*not picklable"):
            result = run_mux_shards(
                closure, {"seed": 4}, range(N), workers=3, in_process=False
            )
        assert len(captured) == 3                   # still sharded
        assert result == full_run(4).per_instance   # still equivalent


class TestDirectoriesSurvivePort:
    """The mux port must not change what AKD *means*."""

    def test_full_run_directories_complete_and_uniform(self):
        result = full_run(12)
        for observer in range(N):
            for subject in range(N):
                assert result.directories[observer].predicates_for(subject) == (
                    result.keypairs[subject].predicate,
                )

    def test_subset_run_binds_only_its_slice(self):
        result = run_agreement_key_distribution(
            N, T, scheme=SCHEME, seed=12, instances=(1, 3)
        )
        directory = result.directories[0]
        assert directory.predicates_for(1) == (result.keypairs[1].predicate,)
        assert directory.predicates_for(4) == ()
