"""Golden regression values: exact counts for fixed seeds.

These pin the deterministic observable behaviour of every protocol so an
accidental semantic change (an extra message, a shifted round, a changed
decision) fails loudly.  The values were produced by the current,
theorem-validated implementation; each is annotated with the formula it
instantiates where one exists.
"""

from __future__ import annotations

import pytest

from repro.agreement import (
    make_extended_protocols,
    make_oral_agreement_protocols,
    make_signed_agreement_protocols,
)
from repro.auth import run_key_distribution, trusted_dealer_setup
from repro.fd import make_chain_fd_protocols, make_echo_fd_protocols
from repro.sim import run_protocols

SEED = "golden-2026"


@pytest.fixture(scope="module")
def dealer():
    return trusted_dealer_setup(9, seed=SEED)


class TestGoldenCounts:
    def test_keydist_n9(self):
        result = run_key_distribution(9, scheme="simulated-hmac", seed=SEED)
        assert result.messages == 216          # 3*9*8
        assert result.rounds == 3
        assert result.run.rounds_executed == 4  # 3 send rounds + final receive

    def test_chain_fd_n9_t2(self, dealer):
        keypairs, directories = dealer
        result = run_protocols(
            make_chain_fd_protocols(9, 2, "g", keypairs, directories), seed=SEED
        )
        assert result.metrics.messages_total == 8      # n-1
        assert result.metrics.rounds_used == 3          # t+1
        assert result.metrics.messages_per_round == {0: 1, 1: 1, 2: 6}
        assert result.metrics.messages_per_sender == {0: 1, 1: 1, 2: 6}
        assert list(result.decisions().values()) == ["g"] * 9

    def test_echo_fd_n9_t2(self):
        result = run_protocols(make_echo_fd_protocols(9, 2, "g"), seed=SEED)
        assert result.metrics.messages_total == 24     # (t+1)(n-1)
        assert result.metrics.messages_per_round == {0: 8, 1: 16}
        assert result.metrics.messages_per_kind == {"fd-value": 8, "fd-echo": 16}

    def test_sm_n9_t2(self, dealer):
        keypairs, directories = dealer
        result = run_protocols(
            make_signed_agreement_protocols(9, 2, "g", keypairs, directories),
            seed=SEED,
        )
        assert result.metrics.messages_total == 64     # (n-1) + (n-1)(n-2)
        assert result.metrics.rounds_used == 2

    def test_om_n7_t2(self):
        result = run_protocols(make_oral_agreement_protocols(7, 2, "g"), seed=SEED)
        assert result.metrics.messages_total == 78     # (n-1) + t(n-1)^2
        assert result.metrics.rounds_used == 3
        assert list(result.decisions().values()) == ["g"] * 7

    def test_extension_n9_t2(self, dealer):
        keypairs, directories = dealer
        result = run_protocols(
            make_extended_protocols(9, 2, "g", keypairs, directories), seed=SEED
        )
        assert result.metrics.messages_total == 8      # n-1, same as FD
        assert result.metrics.rounds_used == 3
        # Alarm window + decision point: 2t+3 rounds pass before halting.
        assert result.rounds_executed == 2 * 2 + 3 + 1


class TestGoldenDeterminism:
    def test_identical_seeds_identical_byte_totals(self, dealer):
        keypairs, directories = dealer
        first = run_protocols(
            make_chain_fd_protocols(9, 2, "g", keypairs, directories), seed=SEED
        )
        second = run_protocols(
            make_chain_fd_protocols(9, 2, "g", keypairs, directories), seed=SEED
        )
        assert first.metrics.bytes_total == second.metrics.bytes_total

    def test_different_values_change_bytes_not_counts(self, dealer):
        keypairs, directories = dealer
        short = run_protocols(
            make_chain_fd_protocols(9, 2, "x", keypairs, directories), seed=SEED
        )
        long = run_protocols(
            make_chain_fd_protocols(9, 2, "x" * 500, keypairs, directories),
            seed=SEED,
        )
        assert short.metrics.messages_total == long.metrics.messages_total
        assert short.metrics.bytes_total < long.metrics.bytes_total
