"""The programmatic experiment regenerator (repro.analysis.experiments)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ExperimentTable,
    e1_keydist,
    e2_chain_fd,
    e3_echo_fd,
    e4_amortization,
    e5_smallrange,
    e7_extension,
    e8_rounds,
    e11_keydist_methods,
    e12_delivery_models,
    e14_adaptive_arms_race,
    run_all,
)


class TestIndividualExperiments:
    def test_e1_matches_formula(self):
        table = e1_keydist(sizes=(4, 8))
        assert table.ok
        assert table.rows[0][:3] == (4, 36, 36)

    def test_e2_matches_formula(self):
        table = e2_chain_fd(sizes=(4, 8))
        assert table.ok
        assert all(row[-1] == "OK" for row in table.rows)

    def test_e3_matches_formula(self):
        table = e3_echo_fd(sizes=(4, 8))
        assert table.ok

    def test_e4_crossover(self):
        table = e4_amortization(sizes=(8,))
        assert table.ok
        assert table.rows[0][2] == table.rows[0][3] == 13

    def test_e5_zero_cost_zero_value(self):
        table = e5_smallrange(sizes=(8,))
        assert table.ok
        zero_rows = [row for row in table.rows if row[1] == 0]
        assert all(row[3] == 0 for row in zero_rows)

    def test_e7_extension_beats_sm(self):
        table = e7_extension(sizes=(8,))
        assert table.ok
        assert table.rows[0][2] < table.rows[0][3]

    def test_e8_rounds(self):
        table = e8_rounds(sizes=(8,))
        assert table.ok
        assert table.rows[0][2:5] == (3, 3, 2)

    def test_e11_boundary_row(self):
        table = e11_keydist_methods(shapes=((4, 1),))
        assert table.ok
        assert table.rows[-1][3] == "infeasible"

    def test_e12_sync_rows_are_baseline(self):
        table = e12_delivery_models(seeds=1)
        assert table.ok
        sync_rows = [row for row in table.rows if row[1] == "sync"]
        assert sync_rows and all(row[-1] == "= sync" for row in sync_rows)

    def test_e12_skew_diverges_somewhere(self):
        table = e12_delivery_models(seeds=1)
        assert any(row[-1] == "diverges" for row in table.rows)

    def test_e14_adaptive_fd_wins_the_bounded_cells(self):
        table = e14_adaptive_arms_race(seeds=2)
        assert table.ok
        static_wolf = [
            row for row in table.rows
            if row[0] == "timeout" and row[1] == "bounded:12"
            and row[2] == "none"
        ]
        assert static_wolf and all(
            row[4] != "0/2" for row in static_wolf
        )
        adaptive_rows = [row for row in table.rows if row[0] == "adaptive"]
        assert adaptive_rows and all(
            row[4].startswith("0/") for row in adaptive_rows
        )

    def test_e14_adaptive_adversary_commits_on_the_grid(self):
        table = e14_adaptive_arms_race(seeds=2)
        committed = [
            row[-1] for row in table.rows
            if row[2] == "adaptive:silence-muffled"
        ]
        assert committed and all(count > 0 for count in committed)


class TestRunAll:
    def test_quick_run_all_green(self):
        tables = run_all(quick=True)
        assert len(tables) == 12
        assert tables[-1].experiment == "E14"
        failing = [table.experiment for table in tables if not table.ok]
        assert failing == []

    def test_tables_render(self):
        table = e1_keydist(sizes=(4,))
        text = table.render()
        assert text.startswith("E1")
        assert "36" in text

    def test_table_is_value_object(self):
        table = e1_keydist(sizes=(4,))
        assert isinstance(table, ExperimentTable)
        assert isinstance(table.rows, tuple)
        assert isinstance(table.rows[0], tuple)
