"""Complexity formulas: internal consistency and agreement with simulation.

The formula-vs-simulation tests are the real content: every closed form in
:mod:`repro.analysis.complexity` is checked against measured counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    amortized_messages_local,
    amortized_messages_nonauth,
    crossover_runs,
    extension_messages,
    fd_auth_messages,
    fd_nonauth_messages,
    keydist_messages,
    om_envelopes,
    sm_messages,
)
from repro.auth import run_key_distribution, trusted_dealer_setup
from repro.fd import make_chain_fd_protocols, make_echo_fd_protocols
from repro.agreement import make_oral_agreement_protocols, make_signed_agreement_protocols
from repro.sim import run_protocols


class TestFormulaProperties:
    @given(n=st.integers(min_value=2, max_value=200))
    def test_keydist_is_quadratic_and_even(self, n):
        messages = keydist_messages(n)
        assert messages == 3 * n * (n - 1)
        assert messages % 6 == 0  # 3 * n(n-1), n(n-1) always even

    @given(n=st.integers(min_value=3, max_value=200))
    def test_auth_beats_nonauth_whenever_t_positive(self, n):
        t = max(1, (n - 1) // 3)
        if t <= n - 2:
            assert fd_auth_messages(n) < fd_nonauth_messages(n, t)

    @given(
        n=st.integers(min_value=5, max_value=100),
        runs=st.integers(min_value=0, max_value=1000),
    )
    def test_amortized_totals_are_consistent(self, n, runs):
        t = (n - 1) // 3
        local = amortized_messages_local(n, t, runs)
        nonauth = amortized_messages_nonauth(n, t, runs)
        assert local == keydist_messages(n) + runs * (n - 1)
        assert nonauth == runs * (t + 1) * (n - 1)

    @given(n=st.integers(min_value=7, max_value=100))
    @settings(max_examples=50)
    def test_crossover_is_exact(self, n):
        """crossover_runs returns the *first* k where local wins."""
        t = (n - 1) // 3
        k = crossover_runs(n, t)
        assert amortized_messages_local(n, t, k) < amortized_messages_nonauth(n, t, k)
        assert amortized_messages_local(n, t, k - 1) >= amortized_messages_nonauth(
            n, t, k - 1
        )

    def test_crossover_requires_t_positive(self):
        with pytest.raises(ValueError):
            crossover_runs(4, 0)

    def test_extension_matches_fd(self):
        for n in (4, 9, 33):
            assert extension_messages(n) == fd_auth_messages(n)


class TestFormulasMatchSimulation:
    """Exact agreement between closed forms and measured counts — the
    strongest check the paper's analytic evaluation admits."""

    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_keydist(self, n):
        assert run_key_distribution(n, seed=n).messages == keydist_messages(n)

    @pytest.mark.parametrize("n,t", [(5, 1), (9, 2), (12, 3)])
    def test_chain_fd(self, n, t):
        keypairs, directories = trusted_dealer_setup(n, seed=n)
        result = run_protocols(
            make_chain_fd_protocols(n, t, "v", keypairs, directories), seed=n
        )
        assert result.metrics.messages_total == fd_auth_messages(n, t)

    @pytest.mark.parametrize("n,t", [(5, 1), (9, 2), (12, 3)])
    def test_echo_fd(self, n, t):
        result = run_protocols(make_echo_fd_protocols(n, t, "v"), seed=n)
        assert result.metrics.messages_total == fd_nonauth_messages(n, t)

    @pytest.mark.parametrize("n,t", [(5, 1), (7, 2)])
    def test_sm(self, n, t):
        keypairs, directories = trusted_dealer_setup(n, seed=n)
        result = run_protocols(
            make_signed_agreement_protocols(n, t, "v", keypairs, directories),
            seed=n,
        )
        assert result.metrics.messages_total == sm_messages(n, t)

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
    def test_om(self, n, t):
        result = run_protocols(make_oral_agreement_protocols(n, t, "v"), seed=n)
        assert result.metrics.messages_total == om_envelopes(n, t)
