"""Report rendering: stable, aligned, content-complete text tables."""

from __future__ import annotations

from repro.analysis import check_mark, render_series, render_table


class TestRenderTable:
    def test_contains_all_cells(self):
        text = render_table(["n", "messages"], [[4, 12], [8, 56]])
        for token in ("n", "messages", "4", "12", "8", "56"):
            assert token in text

    def test_title_and_underline(self):
        text = render_table(["a"], [[1]], title="E1 key distribution")
        lines = text.splitlines()
        assert lines[0] == "E1 key distribution"
        assert lines[1] == "=" * len(lines[0])

    def test_columns_align(self):
        text = render_table(["col", "x"], [["short", 1], ["much longer cell", 2]])
        lines = text.splitlines()
        # The second column starts right after the first column's width +
        # two spaces, in the header and in every row.
        width = len("much longer cell")
        assert lines[0][width + 2 :].startswith("x")
        assert lines[2][width + 2 :].startswith("1")
        assert lines[3][width + 2 :].startswith("2")

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestRenderSeries:
    def test_one_row_per_x(self):
        text = render_series(
            "n",
            {"auth": [3, 7], "nonauth": [6, 21]},
            x_values=[4, 8],
            title="E2",
        )
        lines = text.splitlines()
        assert len(lines) == 2 + 2 + 2  # title + underline + header + rule + rows
        assert "auth" in lines[2] and "nonauth" in lines[2]


class TestCheckMark:
    def test_values(self):
        assert check_mark(True) == "OK"
        assert check_mark(False) == "DEVIATION"
