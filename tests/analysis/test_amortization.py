"""Amortization curves and the break-even table (experiment E4's engine)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    amortization_curve,
    breakeven_table,
    crossover_runs,
)


class TestCurve:
    def test_points_are_cumulative(self):
        curve = amortization_curve(16, 5, 10)
        assert len(curve.points) == 10
        for earlier, later in zip(curve.points, curve.points[1:]):
            assert later.local_auth_total > earlier.local_auth_total
            assert later.nonauth_total > earlier.nonauth_total

    def test_crossover_matches_formula(self):
        n, t = 16, 5
        curve = amortization_curve(n, t, 50)
        assert curve.crossover() == crossover_runs(n, t)

    def test_no_crossover_within_short_range(self):
        n, t = 64, 21
        short = amortization_curve(n, t, 2)
        assert short.crossover() is None

    def test_local_always_wins_eventually(self):
        for n in (8, 16, 32):
            t = (n - 1) // 3
            curve = amortization_curve(n, t, 200)
            assert curve.crossover() is not None

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            amortization_curve(8, 2, 0)


class TestBreakevenTable:
    def test_rows_shape_and_monotonicity(self):
        rows = breakeven_table([8, 16, 32, 64])
        assert [row[0] for row in rows] == [8, 16, 32, 64]
        for n, t, crossover, saving in rows:
            assert t == (n - 1) // 3
            assert crossover >= 1
            assert saving == t * (n - 1)

    def test_small_sizes_without_budget_skipped(self):
        rows = breakeven_table([2, 3, 8])
        assert [row[0] for row in rows] == [8]

    def test_custom_budget_function(self):
        rows = breakeven_table([10, 20], budget_fn=lambda n: 2)
        assert all(row[1] == 2 for row in rows)
