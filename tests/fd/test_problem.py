"""F1-F3 checkers: the oracle itself must judge correctly."""

from __future__ import annotations

from repro.fd import (
    check_weak_agreement,
    check_weak_termination,
    check_weak_validity,
    evaluate_fd,
)
from repro.sim import NodeState, RunResult
from repro.sim.metrics import Metrics


def make_result(states: list[NodeState]) -> RunResult:
    return RunResult(
        n=len(states),
        rounds_executed=1,
        metrics=Metrics(),
        states=states,
        views=[],
        seed=0,
    )


def node(i, decision=None, decided=False, discovered=None):
    return NodeState(node=i, decision=decision, decided=decided, discovered=discovered)


class TestWeakTermination:
    def test_all_decided_passes(self):
        result = make_result([node(0, "v", True), node(1, "v", True)])
        assert check_weak_termination(result, {0, 1}) == []

    def test_discovery_counts_as_termination(self):
        result = make_result([node(0, "v", True), node(1, discovered="bad")])
        assert check_weak_termination(result, {0, 1}) == []

    def test_undecided_correct_node_flagged(self):
        result = make_result([node(0, "v", True), node(1)])
        assert check_weak_termination(result, {0, 1}) == [1]

    def test_faulty_nodes_ignored(self):
        result = make_result([node(0, "v", True), node(1)])
        assert check_weak_termination(result, {0}) == []


class TestWeakAgreement:
    def test_matching_decisions_pass(self):
        result = make_result([node(0, "v", True), node(1, "v", True)])
        assert check_weak_agreement(result, {0, 1}) is None

    def test_differing_decisions_flagged(self):
        result = make_result([node(0, "a", True), node(1, "b", True)])
        assert check_weak_agreement(result, {0, 1}) == (0, 1)

    def test_discovery_excuses_disagreement(self):
        """F2 binds only 'if no correct node discovers a failure'."""
        result = make_result(
            [node(0, "a", True), node(1, "b", True), node(2, discovered="x")]
        )
        assert check_weak_agreement(result, {0, 1, 2}) is None

    def test_faulty_discovery_does_not_excuse(self):
        result = make_result(
            [node(0, "a", True), node(1, "b", True), node(2, discovered="x")]
        )
        assert check_weak_agreement(result, {0, 1}) == (0, 1)

    def test_decision_of_none_is_a_value(self):
        """decided=True with value None differs from value 'v'."""
        result = make_result([node(0, None, True), node(1, "v", True)])
        assert check_weak_agreement(result, {0, 1}) == (0, 1)


class TestWeakValidity:
    def test_correct_sender_value_respected(self):
        result = make_result([node(0, "v", True), node(1, "v", True)])
        assert check_weak_validity(result, {0, 1}, 0, "v") is None

    def test_deviation_from_sender_flagged(self):
        result = make_result([node(0, "v", True), node(1, "w", True)])
        assert check_weak_validity(result, {0, 1}, 0, "v") == [1]

    def test_faulty_sender_is_vacuous(self):
        result = make_result([node(0, "v", True), node(1, "w", True)])
        assert check_weak_validity(result, {1}, 0, "v") is None

    def test_discovery_excuses(self):
        result = make_result([node(0, "v", True), node(1, "w", True), node(2, discovered="x")])
        assert check_weak_validity(result, {0, 1, 2}, 0, "v") is None


class TestEvaluateFd:
    def test_clean_run(self):
        result = make_result([node(0, "v", True), node(1, "v", True)])
        evaluation = evaluate_fd(result, {0, 1}, 0, "v")
        assert evaluation.ok
        assert not evaluation.any_discovery
        assert evaluation.detail is None

    def test_first_violation_reported(self):
        result = make_result([node(0, "v", True), node(1)])
        evaluation = evaluate_fd(result, {0, 1}, 0, "v")
        assert not evaluation.ok
        assert "F1" in evaluation.detail

    def test_discovery_flag(self):
        result = make_result([node(0, "v", True), node(1, discovered="bad")])
        evaluation = evaluate_fd(result, {0, 1}, 0, "v")
        assert evaluation.ok and evaluation.any_discovery
