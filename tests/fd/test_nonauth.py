"""The echo FD baseline: O(n·t) cost, F1-F3, and the t-echoer boundary."""

from __future__ import annotations

import pytest

from repro.analysis import fd_nonauth_messages, fd_nonauth_rounds
from repro.faults import ScriptedProtocol, SilentProtocol
from repro.fd import evaluate_fd, make_echo_fd_protocols
from repro.fd.nonauth import ECHO_MSG, VALUE_MSG
from repro.sim import run_protocols


def run_echo(n, t, value="v", adversaries=None, seed=0, faulty=None):
    protocols = make_echo_fd_protocols(n, t, value, adversaries=adversaries or {})
    result = run_protocols(protocols, seed=seed)
    correct = set(range(n)) - (faulty or set(adversaries or {}))
    return result, evaluate_fd(result, correct, 0, value)


class TestFailureFreeRuns:
    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3), (10, 0), (16, 5)])
    def test_exact_message_count(self, n, t):
        """Section 5: non-authenticated FD needs O(n·t) messages; the echo
        construction realises exactly (t+1)(n−1)."""
        result, evaluation = run_echo(n, t)
        assert result.metrics.messages_total == fd_nonauth_messages(n, t)
        assert evaluation.ok and not evaluation.any_discovery

    @pytest.mark.parametrize("n,t", [(4, 1), (10, 3)])
    def test_two_rounds(self, n, t):
        result, _ = run_echo(n, t)
        assert result.metrics.rounds_used == fd_nonauth_rounds() == 2

    def test_all_nodes_decide_sender_value(self):
        result, _ = run_echo(8, 2, value=1234)
        assert result.decisions() == {i: 1234 for i in range(8)}

    def test_quadratic_at_constant_fault_fraction(self):
        """'With a constant portion of the nodes being faulty this makes
        O(n²) messages.'"""
        costs = {}
        for n in (7, 13, 25):
            t = (n - 1) // 3
            result, _ = run_echo(n, t)
            costs[n] = result.metrics.messages_total
        # Doubling n should roughly quadruple the cost.
        assert costs[13] / costs[7] > 2.5
        assert costs[25] / costs[13] > 2.5


class TestByzantineSender:
    def test_equivocation_is_discovered(self):
        n, t = 7, 2
        script = {
            0: [(peer, (VALUE_MSG, "a" if peer <= 3 else "b")) for peer in range(1, n)]
        }
        result, evaluation = run_echo(
            n, t, adversaries={0: ScriptedProtocol(script, halt_after=3)}
        )
        assert evaluation.ok and evaluation.any_discovery

    def test_partial_send_is_discovered(self):
        n, t = 6, 2
        script = {0: [(peer, (VALUE_MSG, "v")) for peer in (1, 2, 3)]}
        result, evaluation = run_echo(
            n, t, adversaries={0: ScriptedProtocol(script, halt_after=3)}
        )
        assert evaluation.ok
        assert {4, 5} <= set(result.discoverers())

    def test_silent_sender_is_discovered_by_all(self):
        n, t = 6, 2
        result, evaluation = run_echo(n, t, adversaries={0: SilentProtocol()})
        assert evaluation.ok
        assert set(result.discoverers()) == set(range(1, n))


class TestByzantineEchoers:
    def test_lying_echoer_is_discovered(self):
        n, t = 7, 2
        lie = {1: [(peer, (ECHO_MSG, "lie")) for peer in range(n) if peer != 1]}
        result, evaluation = run_echo(
            n, t, adversaries={1: ScriptedProtocol(lie, halt_after=3)}
        )
        assert evaluation.ok and evaluation.any_discovery

    def test_silent_echoer_is_discovered(self):
        n, t = 7, 2
        result, evaluation = run_echo(n, t, adversaries={2: SilentProtocol()})
        assert evaluation.ok and evaluation.any_discovery

    def test_selective_echoer_is_discovered_by_victims(self):
        n, t = 7, 2
        partial = {1: [(peer, (ECHO_MSG, "v")) for peer in (2, 3)]}

        class LateEcho(ScriptedProtocol):
            pass

        result, evaluation = run_echo(
            n, t, adversaries={1: LateEcho(partial, halt_after=3)}
        )
        assert evaluation.ok
        # Nodes that expected node 1's echo and got silence must discover.
        assert {4, 5, 6} <= set(result.discoverers())

    def test_sender_and_echoer_collusion_within_budget(self):
        """Sender tells two groups different values; the one correct
        echoer's uniform broadcast exposes one of the groups."""
        n, t = 7, 2
        send_script = {
            0: [(peer, (VALUE_MSG, "a" if peer in (1, 3, 4) else "b")) for peer in range(1, n)]
        }
        echo_script = {1: [(peer, (ECHO_MSG, "a" if peer in (3, 4) else "b")) for peer in range(n) if peer != 1]}
        adversaries = {
            0: ScriptedProtocol(send_script, halt_after=3),
            1: ScriptedProtocol(echo_script, halt_after=3),
        }
        result, evaluation = run_echo(n, t, adversaries=adversaries)
        assert evaluation.ok, evaluation.detail
        assert evaluation.any_discovery


class TestEchoerCountBoundary:
    """Why t echoers are necessary: with only t−1 the construction breaks.

    This is the negative test pinning our reconstruction of the baseline:
    the complexity (t+1)(n−1) is not an accident of implementation but the
    minimum for this echo structure.
    """

    def test_fewer_echoers_admit_silent_disagreement(self):
        # Network of 7 configured as if t=1 (one echoer) but attacked by
        # 2 faults (sender + the echoer): the correct nodes split with no
        # discovery.  Under the *claimed* budget t=2 this exact adversary
        # would be within budget — demonstrating t-1 echoers are too few.
        n = 7
        understaffed_t = 1
        send_script = {
            0: [(peer, (VALUE_MSG, "a" if peer <= 3 else "b")) for peer in range(1, n)]
        }
        echo_script = {
            1: [(peer, (ECHO_MSG, "a" if peer in (2, 3) else "b")) for peer in range(n) if peer != 1]
        }
        adversaries = {
            0: ScriptedProtocol(send_script, halt_after=3),
            1: ScriptedProtocol(echo_script, halt_after=3),
        }
        result, evaluation = run_echo(n, understaffed_t, adversaries=adversaries)
        # F2 violated: correct nodes decided 'a' and 'b', nobody discovered.
        assert not evaluation.weak_agreement
        decisions = set(result.decisions().values())
        assert decisions == {"a", "b"}
