"""Small-value-range variants: savings, soundness, and the documented
negative result for optimistic silence-decoding."""

from __future__ import annotations

import pytest

from repro.analysis import smallrange_messages
from repro.auth import trusted_dealer_setup
from repro.errors import ConfigurationError
from repro.faults import SilentProtocol, withholding_chain_node
from repro.fd import evaluate_fd, make_small_range_protocols
from repro.fd.smallrange import OptimisticBinaryChainProtocol
from repro.faults.behaviors import TamperingProtocol
from repro.sim import run_protocols


@pytest.fixture(scope="module")
def world():
    n = 8
    keypairs, directories = trusted_dealer_setup(n, seed="smallrange")
    return n, keypairs, directories


def run_smallrange(world, t, value, optimistic=False, adversaries=None, seed=0):
    n, keypairs, directories = world
    protocols = make_small_range_protocols(
        n, t, value, keypairs, directories,
        adversaries=adversaries or {}, optimistic=optimistic,
    )
    result = run_protocols(protocols, seed=seed)
    correct = set(range(n)) - set(adversaries or {})
    return result, evaluate_fd(result, correct, 0, value)


class TestSilentZeroBroadcast:
    """The sound t=0 variant."""

    def test_value_one_costs_n_minus_1(self, world):
        n = world[0]
        result, evaluation = run_smallrange(world, 0, 1)
        assert result.metrics.messages_total == smallrange_messages(n, 1) == n - 1
        assert evaluation.ok
        assert set(result.decisions().values()) == {1}

    def test_value_zero_costs_nothing(self, world):
        """'Assigning values to missing messages': total silence decodes
        to 0 at zero message cost."""
        n = world[0]
        result, evaluation = run_smallrange(world, 0, 0)
        assert result.metrics.messages_total == smallrange_messages(n, 0) == 0
        assert evaluation.ok
        assert set(result.decisions().values()) == {0}

    def test_rejects_nonbinary_value(self, world):
        with pytest.raises(ConfigurationError):
            run_smallrange(world, 0, 7)

    def test_rejects_t_above_zero_without_opt_in(self, world):
        n, keypairs, directories = world
        with pytest.raises(ConfigurationError):
            make_small_range_protocols(n, 1, 1, keypairs, directories)

    def test_garbage_broadcast_is_discovered(self, world):
        n, keypairs, directories = world

        def garble(rnd, to, payload):
            from repro.crypto.signing import garble_signature

            if isinstance(payload, tuple) and len(payload) == 2:
                return (payload[0], garble_signature(payload[1]))
            return payload

        from repro.fd.smallrange import SilentZeroBroadcastProtocol

        sender = TamperingProtocol(
            SilentZeroBroadcastProtocol(n, keypairs[0], directories[0], value=1),
            transform=garble,
        )
        result, evaluation = run_smallrange(
            world, 0, 1, adversaries={0: sender}
        )
        assert evaluation.ok and evaluation.any_discovery


class TestOptimisticBinaryChain:
    """Failure-free behaviour of the general-t optimistic variant."""

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_value_one_costs_n_minus_1(self, world, t):
        n = world[0]
        result, evaluation = run_smallrange(world, t, 1, optimistic=True)
        assert result.metrics.messages_total == n - 1
        assert evaluation.ok
        assert set(result.decisions().values()) == {1}

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_value_zero_is_free(self, world, t):
        result, evaluation = run_smallrange(world, t, 0, optimistic=True)
        assert result.metrics.messages_total == 0
        assert evaluation.ok
        assert set(result.decisions().values()) == {0}

    def test_invalid_chain_still_discovered(self, world):
        """Silence decodes to 0, but *wrong* messages still discover."""
        n, keypairs, directories = world
        from repro.faults import FabricatingChainNode

        result, evaluation = run_smallrange(
            world, 2, 1, optimistic=True,
            adversaries={1: FabricatingChainNode(n, 2, keypairs[1], 1)},
        )
        assert evaluation.ok and evaluation.any_discovery


class TestOptimisticSoundnessBoundary:
    """The documented negative result: for t >= 1 a selectively
    withholding disseminator violates F2 with no discovery.  This test is
    the library's evidence for the DESIGN.md substitution note."""

    def test_selective_withholding_breaks_weak_agreement(self, world):
        n, keypairs, directories = world
        t = 2

        class WithholdingOptimistic(TamperingProtocol):
            pass

        disseminator = WithholdingOptimistic(
            OptimisticBinaryChainProtocol(n, t, keypairs[t], directories[t]),
            should_send=lambda rnd, to, payload: to not in {5, 6},
        )
        result, evaluation = run_smallrange(
            world, t, 1, optimistic=True, adversaries={t: disseminator}
        )
        # The starved receivers silently decide 0 while the chain prefix
        # decided 1 — and nobody discovered anything.
        assert not evaluation.weak_agreement
        assert not evaluation.any_discovery
        decisions = result.decisions()
        assert decisions[5] == 0 and decisions[1] == 1

    def test_same_attack_is_discovered_by_full_protocol(self, world):
        """Contrast: the paper's Fig. 2 protocol discovers this exact
        adversary, because silence is never failure-free there."""
        n, keypairs, directories = world
        t = 2
        from repro.fd import make_chain_fd_protocols

        adversaries = {
            t: withholding_chain_node(
                n, t, keypairs[t], directories[t], withhold_from={5, 6}
            )
        }
        protocols = make_chain_fd_protocols(
            n, t, 1, keypairs, directories, adversaries=adversaries
        )
        result = run_protocols(protocols, seed=1)
        evaluation = evaluate_fd(result, set(range(n)) - {t}, 0, 1)
        assert evaluation.ok and evaluation.any_discovery
