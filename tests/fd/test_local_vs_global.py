"""The paper's central theorems, as integration tests.

Lemma 3: a protocol fulfilling F1 under global authentication fulfils it
under local authentication.  Theorems 2+4: G1/G2 carry over, and G3
violations are discovered.  Net effect (the paper's headline): the chain
FD protocol behaves identically under a trusted dealer and under the key
distribution protocol — including against the full attack catalogue.
"""

from __future__ import annotations

import pytest

from repro.harness import (
    GLOBAL,
    LOCAL,
    attack_catalogue,
    run_fd_scenario,
)

N, T = 8, 2


class TestEquivalenceOnHonestRuns:
    @pytest.mark.parametrize("auth", [GLOBAL, LOCAL])
    def test_failure_free_runs_identical_cost(self, auth):
        outcome = run_fd_scenario(N, T, "v", auth=auth, seed=1)
        assert outcome.fd.ok and not outcome.fd.any_discovery
        assert outcome.run.metrics.messages_total == N - 1
        assert outcome.run.metrics.rounds_used == T + 1

    def test_local_auth_adds_only_the_one_time_keydist(self):
        outcome = run_fd_scenario(N, T, "v", auth=LOCAL, seed=1)
        assert outcome.kd.messages == 3 * N * (N - 1)
        assert outcome.total_messages == 3 * N * (N - 1) + (N - 1)

    @pytest.mark.parametrize("auth", [GLOBAL, LOCAL])
    def test_decisions_match_across_modes(self, auth):
        outcome = run_fd_scenario(N, T, ("v", 9), auth=auth, seed=2)
        assert set(outcome.run.decisions().values()) == {("v", 9)}


class TestLemma3AndTheorem4:
    """Every attack scenario: F1-F3 hold under LOCAL authentication, and
    discovery happens whenever the scenario's theorem-backed expectation
    says it must."""

    @pytest.mark.parametrize(
        "scenario", attack_catalogue(N, T), ids=lambda s: s.name
    )
    def test_conditions_hold_under_local_auth(self, scenario):
        outcome = run_fd_scenario(
            N,
            T,
            "v",
            auth=LOCAL,
            seed=42,
            kd_adversaries=scenario.kd_adversaries(),
            fd_adversary_factory=lambda kp, dirs: scenario.fd_adversary_factory(
                N, T, kp, dirs
            ),
            faulty=scenario.faulty,
        )
        assert outcome.fd.ok, f"{scenario.name}: {outcome.fd.detail}"
        assert outcome.fd.any_discovery == scenario.expects_discovery, scenario.name

    @pytest.mark.parametrize(
        "scenario",
        [s for s in attack_catalogue(N, T) if not s.kd_adversaries()],
        ids=lambda s: s.name,
    )
    def test_fd_only_attacks_match_global_auth_behaviour(self, scenario):
        """Attacks that do not touch key distribution must produce the
        same verdict under both authentication modes."""
        verdicts = {}
        for auth in (GLOBAL, LOCAL):
            outcome = run_fd_scenario(
                N,
                T,
                "v",
                auth=auth,
                seed=7,
                fd_adversary_factory=lambda kp, dirs: scenario.fd_adversary_factory(
                    N, T, kp, dirs
                ),
                faulty=scenario.faulty,
            )
            verdicts[auth] = (outcome.fd.ok, outcome.fd.any_discovery)
        assert verdicts[GLOBAL] == verdicts[LOCAL]

    @pytest.mark.parametrize("seed", range(5))
    def test_theorem4_across_seeds(self, seed):
        """The cross-claim scenario (the canonical G3 violation) is
        discovered at every seed — Theorem 4 is not probabilistic."""
        scenario = next(
            s for s in attack_catalogue(N, T) if s.name == "cross-claim-chain"
        )
        outcome = run_fd_scenario(
            N,
            T,
            "v",
            auth=LOCAL,
            seed=seed,
            kd_adversaries=scenario.kd_adversaries(),
            fd_adversary_factory=lambda kp, dirs: scenario.fd_adversary_factory(
                N, T, kp, dirs
            ),
            faulty=scenario.faulty,
        )
        assert outcome.fd.ok
        assert outcome.fd.any_discovery
