"""Timeout FD: F1-F3 in the synchronous model, robustness under the weak
delivery models, and the spurious-vs-missed contrast with chain FD."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth import trusted_dealer_setup
from repro.errors import ConfigurationError
from repro.fd import TimeoutFDProtocol, default_timeout, make_timeout_fd_protocols
from repro.harness import run_fd_scenario

N, T = 7, 2
SCHEME = "simulated-hmac"


def timeout_outcome(**kwargs):
    kwargs.setdefault("scheme", SCHEME)
    return run_fd_scenario(N, T, "v", protocol="timeout", **kwargs)


class TestSynchronousModel:
    def test_failure_free_run_satisfies_f1_f3(self):
        outcome = timeout_outcome(seed=1)
        assert outcome.fd.ok
        assert not outcome.fd.any_discovery
        assert all(s.decided for s in outcome.run.states)
        assert set(outcome.run.decisions().values()) == {"v"}

    def test_every_node_halts_at_the_deadline(self):
        outcome = timeout_outcome(seed=1)
        assert outcome.run.rounds_executed == default_timeout(T) + 1

    def test_works_under_local_authentication(self):
        outcome = timeout_outcome(seed=2, auth="local")
        assert outcome.fd.ok and not outcome.fd.any_discovery

    def test_silent_sender_discovered_by_timeout(self):
        outcome = timeout_outcome(seed=1, adversary="0=silent")
        assert outcome.fd.ok
        assert outcome.fd.any_discovery
        reasons = [
            s.discovered for s in outcome.run.states if s.discovered is not None
        ]
        assert any("no valid value" in reason for reason in reasons)

    def test_silent_receiver_discovered_by_heartbeat_absence(self):
        """The structural win over chain FD: a crashed node *off* the
        chain path has no scheduled message for the chain to miss, but
        its heartbeat silence is evidence here."""
        chain = run_fd_scenario(
            N, T, "v", protocol="chain", scheme=SCHEME, seed=1,
            adversary=f"{N - 1}=silent",
        )
        timeout = timeout_outcome(seed=1, adversary=f"{N - 1}=silent")
        assert not chain.fd.any_discovery  # structurally blind
        assert timeout.fd.any_discovery
        reasons = [
            s.discovered for s in timeout.run.states if s.discovered is not None
        ]
        assert any(str(N - 1) in reason for reason in reasons)

    def test_tampered_value_discovered_as_crypto_failure(self):
        outcome = timeout_outcome(seed=1, adversary="0=tamper@1.0")
        assert outcome.fd.any_discovery

    def test_parameter_validation(self):
        keypairs, directories = trusted_dealer_setup(N, seed="to")
        with pytest.raises(ConfigurationError):
            TimeoutFDProtocol(N, T, keypairs[0], directories[0], timeout=1)
        with pytest.raises(ConfigurationError):
            TimeoutFDProtocol(
                N, T, keypairs[0], directories[0], retransmit_every=0
            )

    def test_honest_node_needs_key_material(self):
        with pytest.raises(ConfigurationError, match="missing"):
            make_timeout_fd_protocols(N, T, "v", {}, {})


class TestWeakDeliveryModels:
    @pytest.mark.parametrize("delivery", ["bounded:2", "bounded:3", "loss:0.2"])
    def test_no_spurious_discovery_where_chain_fd_cries_wolf(self, delivery):
        """The E13 headline, pinned per cell: the same failure-free runs
        in which round-indexed chain FD discovers spurious failures pass
        cleanly through timeout FD."""
        for seed in (1, 2, 3):
            timeout = timeout_outcome(seed=seed, delivery=delivery)
            assert timeout.fd.ok
            assert not timeout.fd.any_discovery, (delivery, seed)
            assert all(s.decided for s in timeout.run.states)

    def test_chain_fd_is_spurious_on_the_same_grid(self):
        spurious = 0
        for delivery in ("bounded:2", "bounded:3", "loss:0.2"):
            for seed in (1, 2, 3):
                chain = run_fd_scenario(
                    N, T, "v", protocol="chain", scheme=SCHEME, seed=seed,
                    delivery=delivery,
                )
                spurious += chain.fd.any_discovery
        assert spurious > 0

    def test_retransmission_beats_moderate_loss(self):
        outcome = timeout_outcome(seed=5, delivery="loss:0.3")
        assert outcome.run.metrics.drops_total > 0
        assert all(s.decided for s in outcome.run.states)
        assert not outcome.fd.any_discovery

    def test_silent_node_still_caught_under_loss(self):
        for seed in (1, 2, 3):
            outcome = timeout_outcome(
                seed=seed, delivery="loss:0.2", adversary=f"{N - 1}=silent"
            )
            assert outcome.fd.any_discovery, seed

    def test_partition_heal_within_horizon_converges(self):
        outcome = timeout_outcome(
            seed=1, delivery="partition:0-2|3-6@4/defer"
        )
        assert outcome.fd.ok and not outcome.fd.any_discovery
        assert all(s.decided for s in outcome.run.states)

    def test_partition_past_horizon_times_out(self):
        outcome = timeout_outcome(
            seed=1, delivery=f"partition:0-2|3-6@{default_timeout(T) + 4}"
        )
        assert outcome.fd.any_discovery
        # The sender's block still decides; the cut-off block discovers.
        decided = [s.node for s in outcome.run.states if s.decided]
        assert 0 in decided

    @given(seed=st.integers(0, 2**12))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_under_loss(self, seed):
        first = timeout_outcome(seed=seed, delivery="loss:0.25")
        second = timeout_outcome(seed=seed, delivery="loss:0.25")
        assert first.run.metrics.drops_total == second.run.metrics.drops_total
        assert first.run.decisions() == second.run.decisions()
        assert [s.discovered for s in first.run.states] == [
            s.discovered for s in second.run.states
        ]


class TestCrashRecoveryUnderLoss:
    """Crash-with-recovery × timeout FD × lossy delivery, as a property
    over ``crash@R-S`` specs: a sender whose outage ends comfortably
    inside the deadline is retransmitted back to irrelevance (no
    discovery), while a sender silent through the whole horizon is
    discovered by every correct receiver."""

    TIMEOUT = 12

    def crash_outcome(self, crash, recover, seed, loss=0.2):
        return timeout_outcome(
            seed=seed,
            delivery=f"loss:{loss}",
            adversary=f"0=crash@{crash}-{recover}",
            protocol_params={
                "timeout": self.TIMEOUT,
                # A dense retransmit/heartbeat schedule keeps the
                # recovered branch a property, not a coin flip: >= 8
                # post-recovery copies per link at loss 0.2 puts the
                # all-dropped probability below 1e-5 per run.
                "retransmit_every": 1,
            },
        )

    @given(
        crash=st.integers(0, 3),
        recover=st.integers(1, 4),
        seed=st.integers(0, 2**10),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovery_inside_the_deadline_is_not_discovered(
        self, crash, recover, seed
    ):
        if recover <= crash:
            recover = crash + 1
        outcome = self.crash_outcome(crash, recover, seed)
        assert not outcome.fd.any_discovery, (crash, recover, seed)
        assert all(
            outcome.run.states[node].decided for node in outcome.correct
        )

    @given(
        recover=st.integers(0, 4),
        seed=st.integers(0, 2**10),
    )
    @settings(max_examples=30, deadline=None)
    def test_outage_spanning_the_deadline_is_discovered(self, recover, seed):
        outcome = self.crash_outcome(0, self.TIMEOUT + recover, seed)
        assert outcome.fd.any_discovery, (recover, seed)
        reasons = [
            outcome.run.states[node].discovered
            for node in outcome.correct
            if outcome.run.states[node].discovered is not None
        ]
        assert any("no valid value" in reason for reason in reasons)
