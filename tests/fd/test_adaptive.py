"""Adaptive-timeout FD: F1-F3, the measured-deadline win over the static
FD's guessed horizon, and behaviour against the E14 attack library."""

from __future__ import annotations

import pytest

from repro.auth import trusted_dealer_setup
from repro.errors import ConfigurationError
from repro.fd import (
    AdaptiveTimeoutFDProtocol,
    default_max_timeout,
    make_adaptive_fd_protocols,
)
from repro.harness import run_fd_scenario

N, T = 7, 2
SCHEME = "simulated-hmac"


def adaptive_outcome(**kwargs):
    kwargs.setdefault("scheme", SCHEME)
    return run_fd_scenario(N, T, "v", protocol="adaptive", **kwargs)


class TestSynchronousModel:
    def test_failure_free_run_satisfies_f1_f3(self):
        outcome = adaptive_outcome(seed=1)
        assert outcome.fd.ok
        assert not outcome.fd.any_discovery
        assert all(s.decided for s in outcome.run.states)
        assert set(outcome.run.decisions().values()) == {"v"}

    def test_halts_well_before_the_hard_cap_in_lock_step(self):
        """The adaptive dividend: a lock-step run measures a tight
        profile and leaves long before ``max_timeout``."""
        outcome = adaptive_outcome(seed=1)
        assert outcome.run.rounds_executed < default_max_timeout(T) // 2

    def test_works_under_local_authentication(self):
        outcome = adaptive_outcome(seed=2, auth="local")
        assert outcome.fd.ok and not outcome.fd.any_discovery

    def test_silent_sender_discovered(self):
        outcome = adaptive_outcome(seed=1, adversary="0=silent")
        assert outcome.fd.ok
        assert outcome.fd.any_discovery
        reasons = [
            s.discovered for s in outcome.run.states if s.discovered is not None
        ]
        assert any("no valid value" in reason for reason in reasons)

    def test_silent_receiver_discovered_by_heartbeat_absence(self):
        outcome = adaptive_outcome(seed=1, adversary=f"{N - 1}=silent")
        assert outcome.fd.any_discovery
        reasons = [
            s.discovered for s in outcome.run.states if s.discovered is not None
        ]
        assert any(str(N - 1) in reason for reason in reasons)

    def test_tampered_value_discovered_as_crypto_failure(self):
        outcome = adaptive_outcome(seed=1, adversary="0=tamper@1.0")
        assert outcome.fd.any_discovery

    def test_parameter_validation(self):
        keypairs, directories = trusted_dealer_setup(N, seed="ad")
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutFDProtocol(
                N, T, keypairs[0], directories[0], max_timeout=1
            )
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutFDProtocol(
                N, T, keypairs[0], directories[0], retransmit_every=0
            )

    def test_honest_node_needs_key_material(self):
        with pytest.raises(ConfigurationError, match="missing"):
            make_adaptive_fd_protocols(N, T, "v", {}, {})


class TestArmsRaceHeadline:
    """The E14 defence claim, pinned to the acceptance grid cell."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_spurious_free_where_static_fd_cries_wolf(self, seed):
        """Under ``bounded:12`` the static FD's horizon of 8 expires with
        the value still in flight — it must cry wolf or wait forever.
        The adaptive FD measures the lag and waits exactly long enough:
        same cell, zero discoveries, everyone decides."""
        static = run_fd_scenario(
            N, T, "v", protocol="timeout", scheme=SCHEME, seed=seed,
            delivery="bounded:12",
        )
        adaptive = adaptive_outcome(seed=seed, delivery="bounded:12")
        assert static.fd.any_discovery, seed  # the wolf-cry
        assert not adaptive.fd.any_discovery, seed
        assert adaptive.fd.ok
        assert all(s.decided for s in adaptive.run.states)

    @pytest.mark.parametrize("delivery", ["bounded:3", "loss:0.2", "loss:0.3"])
    def test_no_spurious_discovery_on_the_e13_grid(self, delivery):
        for seed in (1, 2, 3):
            outcome = adaptive_outcome(seed=seed, delivery=delivery)
            assert outcome.fd.ok
            assert not outcome.fd.any_discovery, (delivery, seed)

    def test_silent_node_still_caught_under_loss(self):
        for seed in (1, 2, 3):
            outcome = adaptive_outcome(
                seed=seed, delivery="loss:0.2", adversary=f"{N - 1}=silent"
            )
            assert outcome.fd.any_discovery, seed

    def test_hard_cap_bounds_every_run(self):
        """F1 insurance: whatever the profile estimates, no run outlives
        ``max_timeout`` by more than the conclude tick."""
        for delivery in ("sync", "bounded:12", "loss:0.3"):
            outcome = adaptive_outcome(seed=7, delivery=delivery)
            assert outcome.run.rounds_executed <= default_max_timeout(T) + 1

    def test_ack_lie_starves_retransmission(self):
        """The attack the ack channel invites: a lying *sender*-side ack
        (``0=ack-lie`` is placement-guarded, so the lie sits on a
        receiver) forges an early ack to the sender, whose selective
        retransmission then stops towards it.  The liar still hears
        heartbeats, so nothing is spuriously discovered — the lie costs
        the liar its own value, nobody else."""
        outcome = adaptive_outcome(seed=3, adversary=f"{N - 1}=ack-lie")
        honest = [s for s in outcome.run.states if s.node != N - 1]
        assert all(s.decided for s in honest)
        assert outcome.fd.ok


class TestDeterminism:
    def test_bit_for_bit_reproducible(self):
        def observe(outcome):
            m = outcome.run.metrics
            return (
                outcome.run.rounds_executed,
                m.messages_total,
                m.bytes_total,
                dict(m.messages_per_kind),
                {s.node: (s.decided, repr(s.decision), s.discovered)
                 for s in outcome.run.states},
            )

        for delivery in ("bounded:12", "loss:0.3"):
            first = observe(adaptive_outcome(seed=9, delivery=delivery))
            second = observe(adaptive_outcome(seed=9, delivery=delivery))
            assert first == second, delivery
