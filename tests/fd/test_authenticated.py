"""The chain FD protocol (paper Fig. 2): cost, conditions, adversaries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fd_auth_messages, fd_auth_rounds
from repro.auth import trusted_dealer_setup
from repro.errors import ConfigurationError
from repro.faults import (
    CrashProtocol,
    EquivocatingSender,
    FabricatingChainNode,
    ScriptedProtocol,
    SilentProtocol,
    duplicating_chain_node,
    garbling_chain_node,
    withholding_chain_node,
)
from repro.fd import ChainFDProtocol, evaluate_fd, make_chain_fd_protocols
from repro.fd.authenticated import CHAIN_MSG, expected_signers_at
from repro.sim import run_protocols


@pytest.fixture(scope="module")
def world():
    """Dealer keys for the largest network used in this module."""
    n = 10
    keypairs, directories = trusted_dealer_setup(n, seed="fd-auth")
    return n, keypairs, directories


def run_chain(world, t, value="v", adversaries=None, seed=0, faulty=None):
    n, keypairs, directories = world
    protocols = make_chain_fd_protocols(
        n, t, value, keypairs, directories, adversaries=adversaries or {}
    )
    result = run_protocols(protocols, seed=seed)
    correct = set(range(n)) - (faulty or set(adversaries or {}))
    return result, evaluate_fd(result, correct, 0, value)


class TestFailureFreeRuns:
    @pytest.mark.parametrize("t", [0, 1, 2, 3, 5, 8])
    def test_exactly_n_minus_1_messages(self, world, t):
        """Section 5: 'This protocol works with the minimal number of
        messages of n−1.'"""
        n = world[0]
        result, evaluation = run_chain(world, t)
        assert result.metrics.messages_total == fd_auth_messages(n) == n - 1
        assert evaluation.ok and not evaluation.any_discovery

    @pytest.mark.parametrize("t", [0, 1, 2, 4])
    def test_rounds_are_t_plus_1(self, world, t):
        result, _ = run_chain(world, t)
        assert result.metrics.rounds_used == fd_auth_rounds(t) == t + 1

    @pytest.mark.parametrize("t", [0, 1, 3])
    def test_everyone_decides_the_sender_value(self, world, t):
        n = world[0]
        result, _ = run_chain(world, t, value=("tuple", 42))
        assert result.decisions() == {i: ("tuple", 42) for i in range(n)}

    @given(value=st.one_of(st.integers(), st.text(max_size=16), st.binary(max_size=16)))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_value_range(self, world, value):
        """Fig. 2 is 'a simple failure discovery protocol for an arbitrary
        value range'."""
        _, evaluation = run_chain(world, 2, value=value)
        assert evaluation.ok

    def test_message_count_independent_of_t(self, world):
        counts = {
            t: run_chain(world, t)[0].metrics.messages_total for t in (0, 2, 5)
        }
        assert len(set(counts.values())) == 1


class TestConfiguration:
    def test_t_too_large_rejected(self, world):
        n, keypairs, directories = world
        with pytest.raises(ConfigurationError):
            make_chain_fd_protocols(n, n - 1, "v", keypairs, directories)

    def test_missing_keys_rejected(self, world):
        n, keypairs, directories = world
        incomplete = dict(keypairs)
        del incomplete[3]
        with pytest.raises(ConfigurationError):
            make_chain_fd_protocols(n, 2, "v", incomplete, directories)

    def test_expected_signers_helper(self):
        assert expected_signers_at(1) == (0,)
        assert expected_signers_at(3) == (2, 1, 0)


class TestByzantineChainNodes:
    """Each attack must leave F1-F3 intact — usually via discovery."""

    def test_crashed_chain_node_is_discovered(self, world):
        result, evaluation = run_chain(
            world, 2, adversaries={1: SilentProtocol()}
        )
        assert evaluation.ok and evaluation.any_discovery
        assert 2 in result.discoverers()  # the successor noticed the silence

    def test_late_crash_is_discovered(self, world):
        n, keypairs, directories = world
        inner = ChainFDProtocol(n, 2, keypairs[2], directories[2])
        result, evaluation = run_chain(
            world, 2, adversaries={2: CrashProtocol(inner, crash_round=2)}
        )
        assert evaluation.ok and evaluation.any_discovery

    def test_withholding_from_successor_is_discovered(self, world):
        result, evaluation = run_chain(
            world,
            2,
            adversaries={
                1: withholding_chain_node(
                    world[0], 2, world[1][1], world[2][1], withhold_from={2}
                )
            },
        )
        assert evaluation.ok and evaluation.any_discovery

    def test_selective_withholding_at_disseminator_is_discovered(self, world):
        """P_t sends to some receivers and not others: the starved ones
        must discover (this is the case the optimistic small-range variant
        gets wrong)."""
        n = world[0]
        result, evaluation = run_chain(
            world,
            2,
            adversaries={
                2: withholding_chain_node(
                    n, 2, world[1][2], world[2][2], withhold_from={5, 7}
                )
            },
        )
        assert evaluation.ok and evaluation.any_discovery
        assert {5, 7} <= set(result.discoverers())

    def test_garbled_signature_is_discovered(self, world):
        result, evaluation = run_chain(
            world,
            1,
            adversaries={1: garbling_chain_node(world[0], 1, world[1][1], world[2][1])},
        )
        assert evaluation.ok and evaluation.any_discovery
        reasons = [s.discovered for s in result.states if s.discovered]
        assert any("verification failed" in reason for reason in reasons)

    def test_fabricated_chain_is_discovered(self, world):
        result, evaluation = run_chain(
            world,
            2,
            adversaries={1: FabricatingChainNode(world[0], 2, world[1][1], "evil")},
        )
        assert evaluation.ok and evaluation.any_discovery
        # Nobody may have decided the fabricated value.
        assert "evil" not in result.decisions().values()

    def test_duplicated_messages_are_discovered(self, world):
        result, evaluation = run_chain(
            world,
            2,
            adversaries={1: duplicating_chain_node(world[0], 2, world[1][1], world[2][1])},
        )
        assert evaluation.ok and evaluation.any_discovery

    def test_out_of_pattern_message_is_discovered(self, world):
        """Any extra message lands outside every failure-free view."""
        n = world[0]
        adversaries = {
            9: ScriptedProtocol({0: [(4, ("noise", 1))]}, halt_after=3)
        }
        result, evaluation = run_chain(world, 2, adversaries=adversaries)
        assert evaluation.ok and evaluation.any_discovery
        assert 4 in result.discoverers()


class TestByzantineSender:
    def test_equivocating_sender_within_budget_is_discovered(self, world):
        """t=1: the sender sends a second, direct value to a receiver —
        that message is out of pattern and discovered."""
        n, keypairs, directories = world
        adversaries = {
            0: EquivocatingSender(keypairs[0], {1: "a", 5: "b"})
        }
        result, evaluation = run_chain(world, 1, adversaries=adversaries, seed=3)
        assert evaluation.ok
        assert 5 in result.discoverers()

    def test_silent_sender_is_discovered(self, world):
        result, evaluation = run_chain(world, 2, adversaries={0: SilentProtocol()})
        assert evaluation.ok and evaluation.any_discovery
        assert 1 in result.discoverers()

    def test_sender_equivocation_cannot_split_decisions_silently(self, world):
        """Within budget, no equivocation pattern yields two correct nodes
        deciding different values with no discovery (F2 through the chain
        commitment argument)."""
        n, keypairs, directories = world
        for targets in [{1: "a", 2: "b"}, {1: "a", 9: "b"}, {1: "x", 4: "y", 8: "z"}]:
            adversaries = {0: EquivocatingSender(keypairs[0], targets)}
            result, evaluation = run_chain(world, 2, adversaries=adversaries)
            assert evaluation.ok, evaluation.detail
