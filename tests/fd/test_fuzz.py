"""Randomised adversary fuzzing: the F1-F3 invariant under arbitrary faults.

The paper's correctness claims are universally quantified over Byzantine
behaviour.  These property-based tests sample that space: random faulty
subsets within the budget, each running a randomly parameterised hostile
behaviour (silence, crashes, selective withholding, garbling, fabrication,
duplication, or arbitrary scripted noise), and assert that the chain and
echo FD protocols never violate F1-F3.

A falsifying example here would be a *protocol bug or a paper bug* — which
is exactly what property-based testing is for.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth import trusted_dealer_setup
from repro.faults import (
    CrashProtocol,
    FabricatingChainNode,
    ScriptedProtocol,
    SilentProtocol,
    duplicating_chain_node,
    garbling_chain_node,
    withholding_chain_node,
)
from repro.fd import (
    ChainFDProtocol,
    EchoFDProtocol,
    evaluate_fd,
    make_chain_fd_protocols,
    make_echo_fd_protocols,
)
from repro.sim import run_protocols

N, T = 7, 2

KEYPAIRS, DIRECTORIES = trusted_dealer_setup(N, seed="fuzz")

# Payloads a scripted adversary may spray: anything wire-encodable,
# including things that *look like* protocol messages but are malformed.
NOISE_PAYLOADS = [
    ("noise", 1),
    ("fd-chain", b"not-a-signed-message"),
    ("fd-value", "fake"),
    ("fd-echo", "fake"),
    42,
    "plain string",
    (),
]


@st.composite
def chain_adversaries(draw):
    """A random Byzantine assignment for the chain protocol: up to T
    faulty nodes, each with a random hostile behaviour."""
    faulty = draw(
        st.sets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=T)
    )
    adversaries = {}
    for node in sorted(faulty):
        kind = draw(
            st.sampled_from(
                ["silent", "crash", "withhold", "garble", "fabricate",
                 "duplicate", "script"]
            )
        )
        if kind == "silent":
            adversaries[node] = SilentProtocol()
        elif kind == "crash":
            inner = ChainFDProtocol(N, T, KEYPAIRS[node], DIRECTORIES[node])
            adversaries[node] = CrashProtocol(
                inner, crash_round=draw(st.integers(min_value=0, max_value=T + 1))
            )
        elif kind == "withhold":
            victims = draw(
                st.sets(
                    st.integers(min_value=0, max_value=N - 1).filter(
                        lambda v: v != node
                    ),
                    min_size=1,
                    max_size=3,
                )
            )
            adversaries[node] = withholding_chain_node(
                N, T, KEYPAIRS[node], DIRECTORIES[node], withhold_from=victims
            )
        elif kind == "garble":
            adversaries[node] = garbling_chain_node(
                N, T, KEYPAIRS[node], DIRECTORIES[node]
            )
        elif kind == "fabricate":
            adversaries[node] = FabricatingChainNode(
                N, T, KEYPAIRS[node], draw(st.integers())
            )
        elif kind == "duplicate":
            adversaries[node] = duplicating_chain_node(
                N, T, KEYPAIRS[node], DIRECTORIES[node]
            )
        else:
            rounds = draw(
                st.lists(st.integers(min_value=0, max_value=T + 2), max_size=3)
            )
            script = {}
            for rnd in rounds:
                recipients = draw(
                    st.lists(
                        st.integers(min_value=0, max_value=N - 1).filter(
                            lambda v: v != node
                        ),
                        min_size=1,
                        max_size=3,
                    )
                )
                payload = draw(st.sampled_from(NOISE_PAYLOADS))
                script.setdefault(rnd, []).extend(
                    (recipient, payload) for recipient in recipients
                )
            adversaries[node] = ScriptedProtocol(script, halt_after=T + 2)
    return adversaries


class TestChainFuzz:
    @given(adversaries=chain_adversaries(), seed=st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_f1_f2_f3_never_violated(self, adversaries, seed):
        protocols = make_chain_fd_protocols(
            N, T, "v", KEYPAIRS, DIRECTORIES, adversaries=adversaries
        )
        result = run_protocols(protocols, seed=seed)
        correct = set(range(N)) - set(adversaries)
        evaluation = evaluate_fd(result, correct, 0, "v")
        assert evaluation.ok, (
            f"{evaluation.detail}; adversaries at {sorted(adversaries)}"
        )

    @given(adversaries=chain_adversaries(), seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_no_fabricated_value_decided_under_correct_sender(
        self, adversaries, seed
    ):
        """When the sender is correct, no correct node ever decides a
        value the sender did not sign — regardless of any discovery
        (stronger than F3, which only binds in undiscovered runs; the
        chain's unforgeability gives it unconditionally).  A *faulty*
        sender may of course commit any value, so those draws are skipped.
        """
        if 0 in adversaries:
            return
        protocols = make_chain_fd_protocols(
            N, T, "genuine", KEYPAIRS, DIRECTORIES, adversaries=adversaries
        )
        result = run_protocols(protocols, seed=seed)
        correct = set(range(N)) - set(adversaries)
        for state in result.states:
            if state.node in correct and state.decided:
                assert state.decision == "genuine"


@st.composite
def echo_adversaries(draw):
    faulty = draw(
        st.sets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=T)
    )
    adversaries = {}
    for node in sorted(faulty):
        kind = draw(st.sampled_from(["silent", "crash", "script"]))
        if kind == "silent":
            adversaries[node] = SilentProtocol()
        elif kind == "crash":
            inner = EchoFDProtocol(N, T, value="v" if node == 0 else None)
            adversaries[node] = CrashProtocol(
                inner, crash_round=draw(st.integers(min_value=0, max_value=2))
            )
        else:
            script = {}
            for rnd in draw(st.lists(st.integers(0, 2), max_size=3)):
                recipients = draw(
                    st.lists(
                        st.integers(min_value=0, max_value=N - 1).filter(
                            lambda v: v != node
                        ),
                        min_size=1,
                        max_size=4,
                    )
                )
                payload = draw(st.sampled_from(NOISE_PAYLOADS))
                script.setdefault(rnd, []).extend(
                    (recipient, payload) for recipient in recipients
                )
            adversaries[node] = ScriptedProtocol(script, halt_after=2)
    return adversaries


class TestEchoFuzz:
    @given(adversaries=echo_adversaries(), seed=st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_f1_f2_f3_never_violated(self, adversaries, seed):
        protocols = make_echo_fd_protocols(N, T, "v", adversaries=adversaries)
        result = run_protocols(protocols, seed=seed)
        correct = set(range(N)) - set(adversaries)
        evaluation = evaluate_fd(result, correct, 0, "v")
        assert evaluation.ok, (
            f"{evaluation.detail}; adversaries at {sorted(adversaries)}"
        )
