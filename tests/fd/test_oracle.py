"""The semantic discovery oracle: soundness and completeness of the
operational checks, across protocols and attacks."""

from __future__ import annotations

import pytest

from repro.auth import trusted_dealer_setup
from repro.faults import (
    DelayedRelayChainNode,
    SilentProtocol,
    garbling_chain_node,
    withholding_chain_node,
)
from repro.fd import (
    certify_protocol,
    judge_run,
    make_chain_fd_protocols,
    make_echo_fd_protocols,
    reference_views,
)
from repro.sim import run_protocols

N, T = 7, 2
KEYPAIRS, DIRECTORIES = trusted_dealer_setup(N, seed="oracle")


def chain_factory(adversaries=None):
    def factory():
        return make_chain_fd_protocols(
            N, T, "v", KEYPAIRS, DIRECTORIES, adversaries=adversaries or {}
        )

    return factory


def echo_factory(adversaries=None):
    def factory():
        return make_echo_fd_protocols(N, T, "v", adversaries=adversaries or {})

    return factory


class TestHonestRuns:
    def test_honest_chain_run_has_no_deviations(self):
        verdict = certify_protocol(
            chain_factory(), chain_factory(), set(range(N)), seed=1
        )
        assert verdict.semantic_discoverers == frozenset()
        assert verdict.operational_discoverers == frozenset()
        assert verdict.exact

    def test_honest_echo_run_has_no_deviations(self):
        verdict = certify_protocol(
            echo_factory(), echo_factory(), set(range(N)), seed=1
        )
        assert verdict.exact


ATTACKS = {
    "crash": lambda: {1: SilentProtocol()},
    "withhold": lambda: {
        1: withholding_chain_node(N, T, KEYPAIRS[1], DIRECTORIES[1], {2})
    },
    "garble": lambda: {1: garbling_chain_node(N, T, KEYPAIRS[1], DIRECTORIES[1])},
    "delay": lambda: {1: DelayedRelayChainNode(N, T, KEYPAIRS[1])},
}


class TestChainCertification:
    """The chain protocol's operational discovery *is* the semantic
    definition — sound and complete against every attack here."""

    @pytest.mark.parametrize("attack", sorted(ATTACKS), ids=str)
    def test_sound_and_complete(self, attack):
        adversaries = ATTACKS[attack]()
        correct = set(range(N)) - set(adversaries)
        verdict = certify_protocol(
            chain_factory(), chain_factory(adversaries), correct, seed=2
        )
        assert verdict.sound, (
            f"{attack}: false positive — operational "
            f"{set(verdict.operational_discoverers)} vs semantic "
            f"{set(verdict.semantic_discoverers)}"
        )
        assert verdict.complete, (
            f"{attack}: false negative — semantic deviation at "
            f"{verdict.first_deviation} undiscovered"
        )

    @pytest.mark.parametrize("attack", sorted(ATTACKS), ids=str)
    def test_deviation_rounds_reported(self, attack):
        adversaries = ATTACKS[attack]()
        correct = set(range(N)) - set(adversaries)
        verdict = certify_protocol(
            chain_factory(), chain_factory(adversaries), correct, seed=2
        )
        for node in verdict.semantic_discoverers:
            assert verdict.first_deviation[node] >= 1


class TestJudgeRunApi:
    def test_reference_and_actual_must_record_views(self):
        reference = reference_views(chain_factory(), seed=3)
        actual = run_protocols(
            list(chain_factory({1: SilentProtocol()})()),
            seed=3,
            record_views=True,
        )
        verdict = judge_run(reference, actual, set(range(N)) - {1})
        assert verdict.semantic_discoverers
        assert 2 in verdict.semantic_discoverers  # the starved successor

    def test_faulty_nodes_excluded_from_judgement(self):
        reference = reference_views(chain_factory(), seed=3)
        actual = run_protocols(
            list(chain_factory({1: SilentProtocol()})()),
            seed=3,
            record_views=True,
        )
        verdict = judge_run(reference, actual, {0})
        # Node 0 (the sender) sees nothing unusual in this attack.
        assert verdict.semantic_discoverers == frozenset()
