"""Canonical encoding: round-trip, determinism, injectivity, rejection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import encoding
from repro.errors import DecodingError, EncodingError

# A recursive strategy over every supported wire shape.  Lists become
# tuples on decode, so the strategy generates tuples directly for exact
# round-trip comparison.
wire_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.tuples(children, children)
    | st.lists(children, max_size=4).map(tuple)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=25,
)


class TestRoundTrip:
    @given(wire_values)
    @settings(max_examples=300)
    def test_decode_inverts_encode(self, value):
        assert encoding.decode(encoding.encode(value)) == value

    @given(wire_values)
    def test_encoding_is_deterministic(self, value):
        assert encoding.encode(value) == encoding.encode(value)

    def test_lists_normalise_to_tuples(self):
        assert encoding.decode(encoding.encode([1, 2, 3])) == (1, 2, 3)

    def test_dict_order_does_not_matter(self):
        forward = {"a": 1, "b": 2, "c": 3}
        backward = {"c": 3, "b": 2, "a": 1}
        assert encoding.encode(forward) == encoding.encode(backward)

    @pytest.mark.parametrize(
        "value",
        [
            0,
            -1,
            1,
            2**70,
            -(2**70),
            b"",
            "",
            (),
            {},
            None,
            True,
            False,
            {"k": (None, b"\x00", -5)},
        ],
    )
    def test_edge_values_round_trip(self, value):
        assert encoding.decode(encoding.encode(value)) == value


class TestInjectivity:
    @given(wire_values, wire_values)
    @settings(max_examples=300)
    def test_distinct_values_encode_distinctly(self, a, b):
        if a != b:
            assert encoding.encode(a) != encoding.encode(b)

    def test_bool_and_int_distinguished(self):
        # bool is an int subclass in Python; the encoding must separate them
        # or signature payloads could be confused.
        assert encoding.encode(True) != encoding.encode(1)
        assert encoding.encode(False) != encoding.encode(0)

    def test_bytes_and_str_distinguished(self):
        assert encoding.encode(b"ab") != encoding.encode("ab")

    def test_empty_containers_distinguished(self):
        assert encoding.encode(()) != encoding.encode({})


class TestRejection:
    def test_unsupported_type_raises(self):
        with pytest.raises(EncodingError):
            encoding.encode(object())

    def test_float_is_not_supported(self):
        # Floats are excluded on purpose: they are not canonical across
        # platforms and no protocol payload needs them.
        with pytest.raises(EncodingError):
            encoding.encode(1.5)

    def test_trailing_garbage_rejected(self):
        data = encoding.encode(42) + b"x"
        with pytest.raises(DecodingError):
            encoding.decode(data)

    def test_truncated_input_rejected(self):
        data = encoding.encode((1, "abc", b"xyz"))
        for cut in range(1, len(data)):
            with pytest.raises(DecodingError):
                encoding.decode(data[:cut])

    def test_empty_input_rejected(self):
        with pytest.raises(DecodingError):
            encoding.decode(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(DecodingError):
            encoding.decode(b"Z")

    def test_unknown_object_name_rejected(self):
        # Tag 'O' + name "nope" + a None payload.
        data = b"O" + bytes([4]) + b"nope" + b"N"
        with pytest.raises(DecodingError):
            encoding.decode(data)

    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_fuzzing_never_crashes_differently(self, blob):
        # Arbitrary bytes either decode to a value or raise DecodingError —
        # never any other exception (protocols feed network bytes here).
        try:
            encoding.decode(blob)
        except DecodingError:
            pass


class TestCodecRegistry:
    def test_duplicate_name_rejected(self):
        class Dummy:
            pass

        encoding.register_codec(Dummy, "test.DummyUnique", lambda d: None, lambda p: Dummy())
        class Other:
            pass

        with pytest.raises(EncodingError):
            encoding.register_codec(Other, "test.DummyUnique", lambda d: None, lambda p: Other())

    def test_reregistering_same_pair_is_idempotent(self):
        class Dummy2:
            pass

        encoding.register_codec(Dummy2, "test.Dummy2", lambda d: None, lambda p: Dummy2())
        encoding.register_codec(Dummy2, "test.Dummy2", lambda d: None, lambda p: Dummy2())

    def test_byte_size_matches_encoding_length(self):
        value = {"k": (1, 2, 3), "b": b"\x00" * 10}
        assert encoding.byte_size(value) == len(encoding.encode(value))
