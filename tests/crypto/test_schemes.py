"""Signature schemes: axioms S1-S3, cross-scheme behaviour, registry."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    available_schemes,
    encode,
    get_scheme,
    sign_value,
)
from repro.crypto.keys import TestPredicate
from repro.crypto.signing import garble_signature
from repro.crypto.simulated import SimulatedScheme, forge_signature
from repro.errors import SigningError, UnknownSchemeError

ALL_SCHEMES = ["rsa-512", "schnorr-512", "simulated-hmac"]


@pytest.fixture(scope="module")
def keypairs():
    """Two keypairs per scheme, deterministic."""
    result = {}
    for name in ALL_SCHEMES:
        scheme = get_scheme(name)
        rng = random.Random(f"test-{name}")
        result[name] = (scheme.generate_keypair(rng), scheme.generate_keypair(rng))
    return result


class TestAxiomS2:
    """T_i({m}_S) = true  <=>  S = S_i."""

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_own_signature_verifies(self, keypairs, name):
        kp, _ = keypairs[name]
        message = b"the failure discovery problem"
        sig = kp.secret.sign(message)
        assert kp.predicate(message, sig)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_foreign_signature_rejected(self, keypairs, name):
        kp_a, kp_b = keypairs[name]
        message = b"some message"
        sig = kp_a.secret.sign(message)
        assert not kp_b.predicate(message, sig)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_signature_bound_to_message(self, keypairs, name):
        kp, _ = keypairs[name]
        sig = kp.secret.sign(b"message one")
        assert not kp.predicate(b"message two", sig)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_garbled_signature_rejected(self, keypairs, name):
        kp, _ = keypairs[name]
        signed = sign_value(kp.secret, ("payload", 7))
        assert signed.check(kp.predicate)
        assert not garble_signature(signed).check(kp.predicate)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    @given(payload=st.binary(max_size=96))
    @settings(max_examples=50, deadline=None)
    def test_random_blobs_never_verify(self, keypairs, name, payload):
        kp, _ = keypairs[name]
        assert not kp.predicate(b"target message", payload)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_empty_signature_rejected(self, keypairs, name):
        kp, _ = keypairs[name]
        assert not kp.predicate(b"m", b"")


class TestPredicateRobustness:
    """Predicates may arrive from Byzantine nodes: verification must never
    raise, whatever the material looks like."""

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    @pytest.mark.parametrize(
        "material",
        [None, 0, -1, "junk", b"junk", (1,), (1, 2, 3, 4), ("a", "b")],
    )
    def test_malformed_material_verifies_false(self, name, material):
        predicate = TestPredicate(scheme=name, material=material)
        assert predicate(b"m", b"s") is False

    def test_unknown_scheme_verifies_false(self):
        predicate = TestPredicate(scheme="no-such-scheme", material=b"x")
        assert predicate(b"m", b"s") is False

    def test_fabricated_hmac_commitment_rejected(self):
        # A commitment never produced by keygen has no secret behind it.
        predicate = TestPredicate(scheme="simulated-hmac", material=b"\x00" * 32)
        assert predicate(b"m", b"\x00" * 32) is False


class TestDeterminismAndDistinctness:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_keygen_deterministic_per_seed(self, name):
        scheme = get_scheme(name)
        a = scheme.generate_keypair(random.Random(99))
        b = scheme.generate_keypair(random.Random(99))
        assert a.predicate == b.predicate

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_distinct_seeds_distinct_predicates(self, name):
        scheme = get_scheme(name)
        a = scheme.generate_keypair(random.Random(1))
        b = scheme.generate_keypair(random.Random(2))
        assert a.predicate != b.predicate
        assert a.predicate.fingerprint() != b.predicate.fingerprint()

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_predicate_survives_wire_round_trip(self, keypairs, name):
        from repro.crypto import decode

        kp, _ = keypairs[name]
        recovered = decode(encode(kp.predicate))
        assert recovered == kp.predicate
        signed = sign_value(kp.secret, "x")
        assert signed.check(recovered)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_fingerprint_stable(self, keypairs, name):
        kp, _ = keypairs[name]
        assert kp.predicate.fingerprint() == kp.predicate.fingerprint()
        assert len(kp.predicate.fingerprint()) == 16


class TestSchemeMismatch:
    def test_signing_with_wrong_scheme_raises(self, keypairs):
        rsa_kp, _ = keypairs["rsa-512"]
        schnorr = get_scheme("schnorr-512")
        with pytest.raises(SigningError):
            schnorr.sign(rsa_kp.secret, b"m")

    def test_cross_scheme_verification_is_false(self, keypairs):
        rsa_kp, _ = keypairs["rsa-512"]
        schnorr_kp, _ = keypairs["schnorr-512"]
        signed = sign_value(rsa_kp.secret, "v")
        assert not signed.check(schnorr_kp.predicate)


class TestRegistry:
    def test_all_expected_schemes_registered(self):
        for name in ALL_SCHEMES:
            assert name in available_schemes()

    def test_unknown_scheme_raises(self):
        with pytest.raises(UnknownSchemeError):
            get_scheme("md5-madness")


class TestSimulatedForgeHelper:
    def test_forge_produces_valid_signature(self):
        scheme = get_scheme(SimulatedScheme.name)
        kp = scheme.generate_keypair(random.Random(5))
        forged = forge_signature(kp.predicate, b"never signed")
        assert forged is not None
        assert kp.predicate(b"never signed", forged)

    def test_forge_unavailable_for_real_schemes(self):
        scheme = get_scheme("schnorr-512")
        kp = scheme.generate_keypair(random.Random(5))
        assert forge_signature(kp.predicate, b"m") is None
