"""Number theory: primality, prime generation, inverses, groups."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import numtheory
from repro.errors import KeyGenerationError

KNOWN_PRIMES = [
    2, 3, 5, 7, 11, 13, 101, 257, 65537,
    2_147_483_647,            # Mersenne 2^31 - 1
    1_000_000_007,
    (1 << 127) - 1,           # Mersenne 2^127 - 1
]

KNOWN_COMPOSITES = [
    1, 4, 6, 9, 100, 65536,
    561, 1105, 1729, 2465, 6601,          # Carmichael numbers
    3215031751,                            # strong pseudoprime to 2,3,5,7
    (1 << 127) - 3,
]


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes_pass(self, p):
        assert numtheory.is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites_fail(self, c):
        assert not numtheory.is_probable_prime(c)

    def test_negative_and_zero(self):
        assert not numtheory.is_probable_prime(0)
        assert not numtheory.is_probable_prime(-7)

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=200)
    def test_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert numtheory.is_probable_prime(n) == by_trial

    @given(
        st.sampled_from(KNOWN_PRIMES[4:]),
        st.sampled_from(KNOWN_PRIMES[4:]),
    )
    def test_products_of_primes_are_composite(self, p, q):
        assert not numtheory.is_probable_prime(p * q)


class TestPrimeGeneration:
    @pytest.mark.parametrize("bits", [8, 16, 64, 128, 256])
    def test_generated_primes_have_exact_bit_length(self, bits):
        prime = numtheory.generate_prime(bits, random.Random(1))
        assert prime.bit_length() == bits
        assert numtheory.is_probable_prime(prime)

    def test_generation_is_deterministic_per_seed(self):
        a = numtheory.generate_prime(64, random.Random(42))
        b = numtheory.generate_prime(64, random.Random(42))
        assert a == b

    def test_different_seeds_differ(self):
        a = numtheory.generate_prime(64, random.Random(1))
        b = numtheory.generate_prime(64, random.Random(2))
        assert a != b

    def test_tiny_bit_length_rejected(self):
        with pytest.raises(KeyGenerationError):
            numtheory.generate_prime(4, random.Random(0))


class TestModularArithmetic:
    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=200)
    def test_egcd_invariant(self, a, b):
        g, x, y = numtheory.egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=200)
    def test_modinv_against_prime_modulus(self, a):
        p = 1_000_000_007
        inv = numtheory.modinv(a, p)
        assert (a * inv) % p == 1
        assert 0 <= inv < p

    def test_modinv_nonexistent_raises(self):
        with pytest.raises(KeyGenerationError):
            numtheory.modinv(6, 9)

    def test_modinv_of_negative(self):
        p = 101
        inv = numtheory.modinv(-3, p)
        assert (-3 * inv) % p == 1


class TestSchnorrGroup:
    def test_group_structure(self):
        p, q, g = numtheory.generate_schnorr_group(128, 64, random.Random(7))
        assert p.bit_length() == 128
        assert q.bit_length() == 64
        assert numtheory.is_probable_prime(p)
        assert numtheory.is_probable_prime(q)
        assert (p - 1) % q == 0
        assert pow(g, q, p) == 1       # g has order dividing q
        assert g != 1                   # and is not trivial

    def test_generator_has_order_exactly_q(self):
        p, q, g = numtheory.generate_schnorr_group(128, 64, random.Random(8))
        # q prime: order divides q and is not 1, hence exactly q.
        assert pow(g, q, p) == 1 and g != 1

    def test_rejects_q_not_smaller_than_p(self):
        with pytest.raises(KeyGenerationError):
            numtheory.generate_schnorr_group(64, 64, random.Random(0))
