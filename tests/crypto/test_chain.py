"""Chain signatures: structure, verification discipline, Theorem 4 checks."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth import KeyDirectory
from repro.crypto import (
    chain_depth,
    extend_chain,
    get_scheme,
    is_leaf,
    is_link,
    leaf_value,
    link_parts,
    sign_leaf,
    submessages,
    verify_chain,
)
from repro.crypto.signing import SignedMessage, garble_signature
from repro.errors import ChainStructureError


@pytest.fixture(scope="module")
def world():
    """Five keypairs and a fully populated directory."""
    scheme = get_scheme("schnorr-512")
    keypairs = {
        node: scheme.generate_keypair(random.Random(f"chain-{node}"))
        for node in range(5)
    }
    directory = KeyDirectory(owner=0)
    for node, kp in keypairs.items():
        directory.accept(node, kp.predicate)
    return keypairs, directory


def build_chain(keypairs, value, signers):
    """Chain signed by ``signers`` in order (first = leaf signer)."""
    chain = sign_leaf(keypairs[signers[0]].secret, value)
    for prev, signer in zip(signers, signers[1:]):
        chain = extend_chain(keypairs[signer].secret, prev, chain)
    return chain


class TestStructure:
    def test_leaf_shape(self, world):
        keypairs, _ = world
        leaf = sign_leaf(keypairs[0].secret, "v")
        assert is_leaf(leaf)
        assert not is_link(leaf)
        assert leaf_value(leaf) == "v"
        assert chain_depth(leaf) == 1

    def test_link_shape(self, world):
        keypairs, _ = world
        chain = build_chain(keypairs, "v", [0, 1])
        assert is_link(chain)
        assert not is_leaf(chain)
        named, inner = link_parts(chain)
        assert named == 0
        assert is_leaf(inner)

    def test_submessages_outermost_first(self, world):
        keypairs, _ = world
        chain = build_chain(keypairs, "v", [0, 1, 2])
        layers = submessages(chain)
        assert len(layers) == 3
        assert layers[0] is chain
        assert is_leaf(layers[-1])

    def test_leaf_value_on_link_raises(self, world):
        keypairs, _ = world
        chain = build_chain(keypairs, "v", [0, 1])
        with pytest.raises(ChainStructureError):
            leaf_value(chain)

    def test_link_parts_on_leaf_raises(self, world):
        keypairs, _ = world
        with pytest.raises(ChainStructureError):
            link_parts(sign_leaf(keypairs[0].secret, "v"))

    def test_non_chain_signed_message_rejected(self, world):
        keypairs, _ = world
        from repro.crypto import sign_value

        alien = sign_value(keypairs[0].secret, ("something", "else"))
        with pytest.raises(ChainStructureError):
            submessages(alien)


class TestVerification:
    @pytest.mark.parametrize("signers", [[0], [0, 1], [0, 1, 2], [0, 1, 2, 3, 4]])
    def test_valid_chain_verifies(self, world, signers):
        keypairs, directory = world
        chain = build_chain(keypairs, "payload", signers)
        verdict = verify_chain(chain, outer_signer=signers[-1], directory=directory)
        assert verdict.ok, verdict.reason
        assert verdict.value == "payload"
        assert verdict.signers() == tuple(reversed(signers))

    def test_expected_depth_enforced(self, world):
        keypairs, directory = world
        chain = build_chain(keypairs, "v", [0, 1])
        ok = verify_chain(chain, 1, directory, expected_depth=2)
        short = verify_chain(chain, 1, directory, expected_depth=3)
        assert ok.ok
        assert not short.ok and "depth" in short.reason

    def test_expected_signers_enforced(self, world):
        keypairs, directory = world
        chain = build_chain(keypairs, "v", [0, 1, 2])
        good = verify_chain(chain, 2, directory, expected_signers=(2, 1, 0))
        bad = verify_chain(chain, 2, directory, expected_signers=(2, 3, 0))
        assert good.ok
        assert not bad.ok and "signers" in bad.reason

    def test_wrong_outer_signer_rejected(self, world):
        """N2 in action: if the immediate sender is not the outermost
        signer, the receiver must not assign the message to it."""
        keypairs, directory = world
        chain = build_chain(keypairs, "v", [0, 1])
        verdict = verify_chain(chain, outer_signer=2, directory=directory)
        assert not verdict.ok

    def test_garbled_outer_signature_rejected(self, world):
        keypairs, directory = world
        chain = build_chain(keypairs, "v", [0, 1, 2])
        verdict = verify_chain(garble_signature(chain), 2, directory)
        assert not verdict.ok
        assert "node 2" in verdict.reason

    def test_garbled_inner_signature_rejected(self, world):
        """Fig. 2 checks *submessages* too: corrupt the innermost layer."""
        keypairs, directory = world
        bad_leaf = garble_signature(sign_leaf(keypairs[0].secret, "v"))
        chain = extend_chain(keypairs[1].secret, 0, bad_leaf)
        chain = extend_chain(keypairs[2].secret, 1, chain)
        verdict = verify_chain(chain, 2, directory)
        assert not verdict.ok
        assert "node 0" in verdict.reason

    def test_misnamed_inner_signer_rejected(self, world):
        """The naming discipline of section 4: a link claiming the wrong
        inner signer must fail the inner assignment."""
        keypairs, directory = world
        leaf = sign_leaf(keypairs[0].secret, "v")
        lying_link = extend_chain(keypairs[1].secret, 3, leaf)  # names 3, signer is 0
        verdict = verify_chain(lying_link, 1, directory)
        assert not verdict.ok

    def test_repeated_signer_rejected(self, world):
        keypairs, directory = world
        chain = build_chain(keypairs, "v", [0, 1])
        chain = extend_chain(keypairs[0].secret, 1, chain)  # 0 signs again
        verdict = verify_chain(chain, 0, directory)
        assert not verdict.ok
        assert "twice" in verdict.reason

    def test_unknown_signer_rejected(self, world):
        """A signer with no accepted predicate (the 'class of nodes that
        cannot assign' situation) must be a verification failure."""
        keypairs, _ = world
        sparse = KeyDirectory(owner=0)
        sparse.accept(1, keypairs[1].predicate)  # 0's predicate missing
        chain = build_chain(keypairs, "v", [0, 1])
        verdict = verify_chain(chain, 1, sparse)
        assert not verdict.ok
        assert "no accepted test predicate" in verdict.reason

    def test_malformed_nesting_rejected(self, world):
        keypairs, directory = world
        from repro.crypto import sign_value

        alien = sign_value(keypairs[1].secret, ("chain-link", 0, "not-signed-msg"))
        verdict = verify_chain(alien, 1, directory)
        assert not verdict.ok
        assert "malformed" in verdict.reason

    def test_fabricated_signature_bytes_rejected(self, world):
        keypairs, directory = world
        fake = SignedMessage(body=("chain-leaf", "v"), signature=b"\x01" * 40)
        verdict = verify_chain(fake, 0, directory)
        assert not verdict.ok


class TestTheorem4Consistency:
    """All correct nodes assign a submessage to the same node, or at least
    one of them rejects (-> discovers)."""

    @given(
        value=st.integers(),
        signer_count=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_identical_directories_agree(self, world, value, signer_count):
        keypairs, directory = world
        signers = list(range(signer_count))
        chain = build_chain(keypairs, value, signers)
        verdicts = [
            verify_chain(chain, signers[-1], directory) for _ in range(3)
        ]
        assert all(v.ok for v in verdicts)
        assert len({v.signers() for v in verdicts}) == 1

    def test_divergent_directories_disagree_detectably(self, world):
        """Give two observers different bindings for one signer: the one
        with the wrong binding must reject — never silently assign to a
        different node (that is exactly what Theorem 4 guarantees)."""
        keypairs, _ = world
        scheme = get_scheme("schnorr-512")
        foreign = scheme.generate_keypair(random.Random("foreign"))

        observer_a = KeyDirectory(owner=10)
        observer_b = KeyDirectory(owner=11)
        for node, kp in keypairs.items():
            observer_a.accept(node, kp.predicate)
            observer_b.accept(node, kp.predicate if node != 1 else foreign.predicate)

        chain = build_chain(keypairs, "v", [0, 1, 2])
        verdict_a = verify_chain(chain, 2, observer_a)
        verdict_b = verify_chain(chain, 2, observer_b)
        assert verdict_a.ok
        assert not verdict_b.ok  # observer B discovers instead of misassigning
