"""Caching layers in crypto: verification memo, encodings, chain layers.

The caching invariant under test everywhere: a cached answer must be
indistinguishable from a cold one — for genuine signatures, garbled
signatures, forged predicates, and repeated checks in any order.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.crypto import encoding
from repro.crypto.chain import extend_chain, sign_leaf, submessages
from repro.crypto.keys import TestPredicate
from repro.crypto.signing import (
    SignedMessage,
    cached_verify,
    clear_verify_cache,
    garble_signature,
    sign_value,
)


@pytest.fixture
def keypair(scheme):
    return scheme.generate_keypair(random.Random("verify-cache"))


class TestCachedVerification:
    def test_matches_uncached_on_genuine_and_garbled(self, keypair):
        clear_verify_cache()
        signed = sign_value(keypair.secret, ("msg", 1))
        garbled = garble_signature(signed)
        for _ in range(3):  # repeats exercise the memo hits
            assert signed.check(keypair.predicate) is True
            assert garbled.check(keypair.predicate) is False
            # Direct (uncached) predicate evaluation must agree.
            assert keypair.predicate(signed.body_bytes(), signed.signature)
            assert not keypair.predicate(garbled.body_bytes(), garbled.signature)

    def test_garbled_copy_is_cached_independently(self, keypair):
        clear_verify_cache()
        signed = sign_value(keypair.secret, "payload")
        garbled = garble_signature(signed)
        # Same body bytes, different signatures: distinct cache entries.
        assert signed.body_bytes() == garbled.body_bytes()
        assert signed.signature != garbled.signature
        assert cached_verify(keypair.predicate, signed.body_bytes(), signed.signature)
        assert not cached_verify(
            keypair.predicate, garbled.body_bytes(), garbled.signature
        )

    def test_fabricated_predicate_rejected_cached_and_cold(self, keypair):
        clear_verify_cache()
        fake = TestPredicate(scheme=keypair.predicate.scheme, material=b"\x00" * 32)
        signed = sign_value(keypair.secret, "x")
        assert signed.check(fake) is False
        assert signed.check(fake) is False  # memo hit

    def test_distinct_predicates_do_not_collide(self, scheme):
        clear_verify_cache()
        kp_a = scheme.generate_keypair(random.Random("cache-a"))
        kp_b = scheme.generate_keypair(random.Random("cache-b"))
        signed = sign_value(kp_a.secret, "hello")
        assert signed.check(kp_a.predicate)
        assert not signed.check(kp_b.predicate)


class TestBodyBytesMemo:
    def test_matches_fresh_encoding(self, keypair):
        signed = sign_value(keypair.secret, ("a", 1, b"z"))
        assert signed.body_bytes() == encoding.encode(("a", 1, b"z"))
        # Constructed (not signed) instances compute on demand.
        rebuilt = SignedMessage(body=("a", 1, b"z"), signature=signed.signature)
        assert rebuilt.body_bytes() == signed.body_bytes()

    def test_seeded_wire_cache_matches_cold_encode(self, keypair):
        """sign_value pre-fills the object wire cache; it must equal what a
        cache-less encode produces."""
        signed = sign_value(keypair.secret, ("body", 2))
        cached = encoding.encode(signed)
        cold = encoding.encode(
            SignedMessage(body=("body", 2), signature=signed.signature)
        )
        assert cached == cold
        assert encoding.decode(cached) == signed

    def test_pickles_are_canonical(self, keypair):
        """Cache stashes never leak into serialized form."""
        signed = sign_value(keypair.secret, "m")
        signed.body_bytes()
        encoding.encode(signed)  # populate wire cache too
        fresh = SignedMessage(body="m", signature=signed.signature)
        assert pickle.dumps(signed) == pickle.dumps(fresh)
        assert pickle.loads(pickle.dumps(signed)) == signed

    def test_predicate_pickles_are_canonical(self, keypair):
        predicate = keypair.predicate
        hash(predicate)  # populate the hash memo
        encoding.encode(predicate)  # and the wire cache
        restored = pickle.loads(pickle.dumps(predicate))
        assert restored == predicate
        assert pickle.dumps(restored) == pickle.dumps(predicate)


class TestChainLayerMemo:
    def test_submessages_memo_matches_fresh_walk(self, keypair, scheme):
        other = scheme.generate_keypair(random.Random("verify-cache-2"))
        leaf = sign_leaf(keypair.secret, "v")
        chain = extend_chain(other.secret, 0, leaf)
        first = submessages(chain)
        second = submessages(chain)  # memo hit
        assert first == second
        assert second[-1] == leaf
        # The memo returns a fresh list each call (callers may mutate).
        assert first is not second
