#!/usr/bin/env python
"""Cross-process resume-equivalence gate: checkpoint here, resume there.

The in-process property tests (tests/sim/test_snapshot.py) pin
resume-equals-straight-run bit-for-bit, but a checkpoint's real life is
crossing a *process* boundary — a CLI ``resume`` days later, a sweep
worker in a process pool.  That boundary is where process-local state
can silently diverge: the simulated-hmac scheme's secret registry, for
example, is rebuilt from unpickled keys on arrival, and a regression
there makes every resumed signature verify as forged while all
in-process tests stay green.

So this gate runs three separate interpreters:

1. a straight run of one E13 point, printing its counts;
2. the same point stopped at a checkpoint tick, snapshot saved to disk;
3. a fresh process resuming that snapshot file and printing its counts.

Pass iff (1) and (3) print identical JSON.  ``scripts/check.sh`` runs
this after the bench smoke; it costs well under a second.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: One point each from the E13 and E14 grids: a lossy-delayed timeout-FD
#: run (drops + delayed arrivals straddle the checkpoint tick) and an
#: adaptive-adversary run (the muffler's coordinator state must travel).
POINTS: list[tuple[str, dict, int]] = [
    (
        "e13-timeout-fd",
        {"n": 8, "t": 1, "delivery": "loss:0.2:2", "protocol": "timeout",
         "faulty": 1, "seed": 5, "timeout": 12},
        6,
    ),
    (
        "e14-adaptive",
        {"n": 8, "t": 1, "delivery": "loss:0.3", "protocol": "timeout",
         "attack": "adaptive:silence-muffled", "seed": 3, "timeout": 12},
        6,
    ),
]

KEYS = ("messages", "drops", "rounds", "discovered", "decided", "fd_ok")

_STRAIGHT = """
import json, sys
from repro.harness.workloads import resolve_workload
workload, point, keys = json.loads(sys.argv[1])
result = resolve_workload(workload)(**point)
print(json.dumps({k: result[k] for k in keys}))
"""

_CHECKPOINT = """
import json, sys
from repro.harness.workloads import resolve_workload
from repro.sim import save_snapshot
workload, point, tick, path = json.loads(sys.argv[1])
snap = resolve_workload(workload)(**point, checkpoint_at=tick)
save_snapshot(snap, path)
"""

_RESUME = """
import json, sys
from repro.harness.workloads import resolve_workload
from repro.sim import load_snapshot
workload, point, keys, path = json.loads(sys.argv[1])
result = resolve_workload(workload)(**point, resume_from=load_snapshot(path))
print(json.dumps({k: result[k] for k in keys}))
"""


def _python(code: str, payload) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", code, json.dumps(payload)],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src")},
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"resume_gate: subprocess failed (exit {proc.returncode})")
    return proc.stdout.strip()


def main() -> int:
    status = 0
    with tempfile.TemporaryDirectory() as tmp:
        for workload, point, tick in POINTS:
            path = str(Path(tmp) / f"{workload}.ckpt")
            straight = _python(_STRAIGHT, [workload, point, KEYS])
            _python(_CHECKPOINT, [workload, point, tick, path])
            resumed = _python(_RESUME, [workload, point, KEYS, path])
            verdict = "ok" if resumed == straight else "DIVERGED"
            print(f"  {workload} @tick {tick}: straight {straight} | resumed {verdict}")
            if resumed != straight:
                print(f"    resumed: {resumed}", file=sys.stderr)
                status = 1
    if status:
        print(
            "== FAIL: cross-process resume diverged from the straight run ==",
            file=sys.stderr,
        )
    else:
        print("== cross-process resume equals straight run ==")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
