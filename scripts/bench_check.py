#!/usr/bin/env python
"""Benchmark gate: refresh ``BENCH_8.json`` and fail loudly on regressions.

Runs the trimmed (``standard_sizes(small=True)``) regression suite from
``benchmarks/regress.py``, compares it against the committed
``BENCH_8.json`` when one exists, and rewrites the file.  A fresh small
run more than ``--threshold`` (default 20%) slower than the committed
small numbers on any experiment exits non-zero — the loud failure CI
wants.

Usage::

    PYTHONPATH=src python scripts/bench_check.py                  # gate + refresh
    PYTHONPATH=src python scripts/bench_check.py --quick          # pre-PR smoke
    PYTHONPATH=src python scripts/bench_check.py --full           # also full sizes
    PYTHONPATH=src python scripts/bench_check.py --memory         # also memory gate
    PYTHONPATH=src python scripts/bench_check.py --profile akd_n64_t3
    PYTHONPATH=src python scripts/bench_check.py --compare /path/to/other/src

``--quick`` is the smoke mode ``scripts/check.sh`` runs before every PR:
the small-n suite once (``--repeats 1``), gating only the *count*
determinism contract — counts must match the committed baseline exactly —
while skipping the wall-clock threshold (single-shot timings are noise),
the memory probes and the baseline rewrite.  It answers "did I change
observable behaviour?" in a couple of seconds; the full gate stays the
pre-merge answer to "did I slow anything down?".  Alongside the counts
gate it prints the baseline-vs-fresh wall time per experiment — advisory
only (single shots), but enough to spot an accidental 10x on the spot.

``--profile EXPERIMENT`` runs one named experiment (from either suite
section) once under :mod:`cProfile` and prints the top 20 functions by
cumulative time — the first stop when a bench number moves and you want
to know *where* before reaching for heavier tooling.

``--memory`` measures tracemalloc peaks for the EIG memory probes (the
succinct engine's headline win is *memory*: the dense engine's per-node
path dicts are exponential in t) and gates them against the committed
baseline with ``--memory-threshold`` — so the succinct-tree memory
reduction is regression-guarded, not just the wall-clock.

``--compare`` measures the same workloads against another source tree
(for example a prior-PR worktree) in a subprocess and records the
per-experiment speedups under ``speedup_vs_baseline_src``.  Historical
note: ``BENCH_1.json`` (PR 1) captured the seed-vs-PR1 numbers,
``BENCH_2.json`` (PR 2) added the extended n=128 grid, ``BENCH_3.json``
(PRs 3/4) added the agreement-based key-distribution mux points and the
event-kernel delivery points, ``BENCH_4.json`` (PR 5) added the E13
unreliable-delivery points (timeout FD under loss, partition-heal
convergence — drop counts gated alongside message counts),
``BENCH_5.json`` (PR 6) added the E14 arms-race points (adaptive FD on
the cells where the static horizon is wrong, the adaptive adversary
driving the static FD, partition equivocation); ``BENCH_6.json`` (PR 7)
recorded the columnar mux engine's wall-clock on an unchanged
experiment set — the akd grid points dropped ~10x and ``akd_n128_t3``
left ``HEAVY_EXPERIMENTS``; this PR's gate file is ``BENCH_7.json``,
which adds the arrival-columned grid: mux points under lossy-jittered
and bounded-jitter calendars (small and n=64/128), with n=128
columnar-vs-``*_object`` engine pairs whose wall-clock ratio the
``--full`` gate enforces (``--min-engine-ratio``, default 3x) and
whose counts must agree bit-for-bit, plus E13/E14 grid cells promoted
past their historical n=32 pin; this PR's gate file is
``BENCH_8.json``, which adds the warm-started sweep twins: timeout-axis
sweeps run prefix-shared via kernel checkpoint/resume
(``repro.harness.sweep_prefix_shared``) next to ``*_straight``
cold-re-run twins, with the straight/warm wall-clock ratio enforced by
the ``--full`` gate (``--min-warm-ratio``, default 2x) and the twins'
counts required to agree bit-for-bit.  Experiment names are stable
across files, so shared counts are directly comparable (every BENCH_6
count was verified bit-identical when BENCH_7 was established, and
every BENCH_7 count when BENCH_8 was).

Wall-clock baselines are machine-relative: after moving to new hardware,
regenerate the baseline before trusting the gate.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import subprocess
import sys
import tempfile
import tracemalloc
from pathlib import Path
from typing import Any, Callable

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

import regress  # noqa: E402  (benchmarks/regress.py)


def compare_runs(
    baseline: dict, fresh: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Per-experiment deltas.  Returns (report lines, regression lines)."""
    lines: list[str] = []
    regressions: list[str] = []
    base_experiments = baseline.get("experiments", {})
    for name, entry in fresh.get("experiments", {}).items():
        base = base_experiments.get(name)
        if base is None:
            lines.append(f"  {name}: new experiment (no baseline)")
            continue
        old, new = base["seconds"], entry["seconds"]
        delta = (new - old) / old if old > 0 else 0.0
        line = f"  {name}: {old:.5f}s -> {new:.5f}s ({delta:+.1%})"
        if base.get("counts") != entry.get("counts"):
            regressions.append(
                f"  {name}: COUNTS CHANGED {base.get('counts')} -> "
                f"{entry.get('counts')} (determinism contract broken?)"
            )
        if delta > threshold:
            regressions.append(line + "  REGRESSION")
        lines.append(line)
    return lines, regressions


def engine_ratios(report: dict) -> dict[str, float]:
    """Object-twin seconds / columnar seconds, per engine pair.

    An experiment named ``X_object`` forces the object (reference) mux
    engine on the same workload as its columnar twin ``X``; the ratio
    is the columnar engine's measured speedup on that point.  Counts of
    the two are gated for equality separately — this only reads time.
    """
    experiments = report.get("experiments", {})
    suffix = "_object"
    ratios: dict[str, float] = {}
    for name, entry in experiments.items():
        if not name.endswith(suffix):
            continue
        twin = experiments.get(name[: -len(suffix)])
        if twin and twin["seconds"] > 0:
            ratios[name[: -len(suffix)]] = round(
                entry["seconds"] / twin["seconds"], 2
            )
    return ratios


def warm_ratios(report: dict) -> dict[str, float]:
    """Straight-twin seconds / warm seconds, per warm-sweep pair.

    An experiment named ``X_straight`` re-runs the same parameter sweep
    as its warm-started twin ``X`` from tick zero; the ratio is the
    prefix-shared executor's measured speedup on that sweep.  As with
    the engine pairs, the twins' counts are gated for equality
    separately — this only reads time.
    """
    experiments = report.get("experiments", {})
    suffix = "_straight"
    ratios: dict[str, float] = {}
    for name, entry in experiments.items():
        if not name.endswith(suffix):
            continue
        twin = experiments.get(name[: -len(suffix)])
        if twin and twin["seconds"] > 0:
            ratios[name[: -len(suffix)]] = round(
                entry["seconds"] / twin["seconds"], 2
            )
    return ratios


def memory_probes() -> dict[str, Callable[[], Any]]:
    """The tracemalloc-gated workloads.

    The oral probes are the point of the gate: succinct-engine peaks must
    stay flat as the grid grows.  The dense probe documents the engine
    gap at a size the dense engine can still afford (its n=32/t=3 peak is
    already ~two orders of magnitude above the succinct engine's;
    PERFORMANCE.md tabulates the comparison).
    """
    from repro.harness.workloads import oral_point

    return {
        "oral_succinct_n32_t3": lambda: oral_point(32, 3, seed=1),
        "oral_succinct_n64_t3": lambda: oral_point(64, 3, seed=1),
        "oral_succinct_n128_t3": lambda: oral_point(128, 3, seed=1),
        "oral_dense_n16_t4": lambda: oral_point(16, 4, seed=1, engine="dense"),
    }


def measure_memory() -> dict[str, int]:
    """Peak tracemalloc KiB per probe, caches cleared for reproducibility."""
    from repro.agreement._paths import clear_path_tables

    peaks: dict[str, int] = {}
    for name, fn in memory_probes().items():
        clear_path_tables()
        gc.collect()
        tracemalloc.start()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[name] = round(peak / 1024)
    clear_path_tables()
    return peaks


def compare_memory(
    baseline: dict[str, int], fresh: dict[str, int], threshold: float
) -> tuple[list[str], list[str]]:
    """Per-probe peak deltas.  Returns (report lines, regression lines)."""
    lines: list[str] = []
    regressions: list[str] = []
    for name, peak in fresh.items():
        base = baseline.get(name)
        if base is None:
            lines.append(f"  {name}: {peak} KiB (new probe, no baseline)")
            continue
        delta = (peak - base) / base if base > 0 else 0.0
        line = f"  {name}: {base} KiB -> {peak} KiB ({delta:+.1%})"
        if delta > threshold:
            regressions.append(line + "  MEMORY REGRESSION")
        lines.append(line)
    return lines, regressions


def profile_experiment(name: str) -> int:
    """Run one named experiment under cProfile; print top-20 cumulative.

    Searches the small section first, then the full one (names are
    unique within each; grid points live in full).  Returns an exit
    status: 2 when the name is unknown, listing what exists.
    """
    import cProfile
    import pstats

    for small in (True, False):
        for exp_name, fn in regress.experiments(small):
            if exp_name == name:
                section = "small" if small else "full"
                print(f"== cProfile: {name} ({section} suite, one run) ==")
                profiler = cProfile.Profile()
                profiler.enable()
                counts = fn()
                profiler.disable()
                pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
                print(f"counts: {counts}")
                return 0
    known = sorted(
        {exp_name for small in (True, False) for exp_name, _ in regress.experiments(small)}
    )
    print(f"unknown experiment {name!r}; known: {', '.join(known)}", file=sys.stderr)
    return 2


def measure_other_src(src_path: str, small: bool, repeats: int) -> dict:
    """Run the same suite against another source tree, out of process."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = handle.name
    env = dict(os.environ)
    env["PYTHONPATH"] = src_path
    cmd = [
        sys.executable,
        str(REPO_ROOT / "benchmarks" / "regress.py"),
        "--out",
        out_path,
        "--repeats",
        str(repeats),
    ]
    if small:
        cmd.append("--small")
    subprocess.run(cmd, check=True, env=env, cwd=str(REPO_ROOT))
    try:
        return json.loads(Path(out_path).read_text())
    finally:
        os.unlink(out_path)


def speedups(baseline: dict, current: dict) -> dict[str, float]:
    """baseline seconds / current seconds, per shared experiment."""
    result: dict[str, float] = {}
    for name, entry in current.get("experiments", {}).items():
        base = baseline.get("experiments", {}).get(name)
        if base and entry["seconds"] > 0:
            result[name] = round(base["seconds"] / entry["seconds"], 2)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_8.json"), help="report path"
    )
    parser.add_argument("--threshold", type=float, default=0.20)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="pre-PR smoke: small suite once, gate counts only, no "
        "memory probes, no baseline rewrite",
    )
    parser.add_argument(
        "--quick-out",
        default=str(REPO_ROOT / "bench_quick_fresh.json"),
        metavar="PATH",
        help="where --quick writes the freshly measured small suite "
        "(pass/fail alike) so CI can attach it as an artifact when the "
        "counts gate trips; the committed baseline is never touched",
    )
    parser.add_argument(
        "--full", action="store_true", help="also refresh the full-size section"
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="also gate tracemalloc peaks for the EIG memory probes",
    )
    parser.add_argument(
        "--min-engine-ratio",
        type=float,
        default=3.0,
        metavar="X",
        help="--full gate: minimum object/columnar wall-clock ratio on "
        "each *_object engine pair (the columnar engine must stay at "
        "least this much faster than the reference path)",
    )
    parser.add_argument(
        "--min-warm-ratio",
        type=float,
        default=2.0,
        metavar="X",
        help="--full gate: minimum straight/warm wall-clock ratio on "
        "each *_straight warm-sweep pair (the prefix-shared executor "
        "must stay at least this much faster than cold re-runs)",
    )
    parser.add_argument(
        "--memory-threshold",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed fractional peak-memory growth before failing",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="SRC",
        help="source tree to measure as the speedup baseline (subprocess)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="EXPERIMENT",
        help="cProfile one named experiment (top 20 by cumulative time) "
        "and exit; no gating, no baseline touch",
    )
    args = parser.parse_args(argv)

    if args.profile:
        return profile_experiment(args.profile)

    out_path = Path(args.out)
    committed = json.loads(out_path.read_text()) if out_path.exists() else {}

    if args.quick:
        print("== bench_check --quick: small-n smoke (counts gate only) ==")
        fresh_small = regress.run_suite(small=True, repeats=1)
        for name, entry in fresh_small["experiments"].items():
            engine = f"  [{entry['engine']}]" if "engine" in entry else ""
            snap = (
                f"  [snapshot {entry['snapshot_bytes']}B]"
                if "snapshot_bytes" in entry
                else ""
            )
            print(
                f"  {name}: {entry['seconds']:.5f}s  "
                f"{entry['counts']}{engine}{snap}"
            )
        quick_out = Path(args.quick_out)
        quick_out.write_text(
            json.dumps({"small": fresh_small}, indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote fresh measurements to {quick_out}")
        status = 0
        if committed.get("small"):
            # Infinite threshold: only the counts-changed branch can fire.
            # The timing lines are advisory (single-shot runs are noise)
            # but put baseline-vs-fresh seconds side by side so a gross
            # slowdown is visible right in the smoke output.
            lines, regressions = compare_runs(
                committed["small"], fresh_small, float("inf")
            )
            print("== wall time vs committed baseline (advisory, 1 run) ==")
            print("\n".join(lines))
            if regressions:
                print("== FAIL: counts diverged from baseline ==", file=sys.stderr)
                print("\n".join(regressions), file=sys.stderr)
                status = 1
            else:
                print("== counts match committed baseline ==")
        else:
            print("== no committed baseline; smoke ran clean ==")
        return status

    print("== bench_check: trimmed (small=True) suite ==")
    fresh_small = regress.run_suite(small=True, repeats=args.repeats)
    for name, entry in fresh_small["experiments"].items():
        print(f"  {name}: {entry['seconds']:.5f}s")

    status = 0
    if committed.get("small"):
        lines, regressions = compare_runs(
            committed["small"], fresh_small, args.threshold
        )
        print(f"== comparison against committed {out_path.name} (small) ==")
        print("\n".join(lines))
        if regressions:
            print(
                f"== FAIL: regression beyond {args.threshold:.0%} threshold ==",
                file=sys.stderr,
            )
            print("\n".join(regressions), file=sys.stderr)
            status = 1
    else:
        print("== no committed small baseline; establishing one ==")

    merged = dict(committed)
    merged["small"] = fresh_small

    if args.full:
        print("== full-size suite ==")
        merged["full"] = regress.run_suite(small=False, repeats=args.repeats)
        for name, entry in merged["full"]["experiments"].items():
            engine = f"  [{entry['engine']}]" if "engine" in entry else ""
            snap = (
                f"  [snapshot {entry['snapshot_bytes']}B]"
                if "snapshot_bytes" in entry
                else ""
            )
            print(f"  {name}: {entry['seconds']:.5f}s{engine}{snap}")
        ratios = engine_ratios(merged["full"])
        if ratios:
            print("== columnar-vs-object engine pairs ==")
            failed_pairs = []
            for name, ratio in sorted(ratios.items()):
                print(f"  {name}: columnar {ratio:.2f}x faster than object")
                if ratio < args.min_engine_ratio:
                    failed_pairs.append(f"  {name}: {ratio:.2f}x")
            if failed_pairs:
                print(
                    f"== FAIL: engine pair(s) below the "
                    f"{args.min_engine_ratio:.1f}x columnar floor ==",
                    file=sys.stderr,
                )
                print("\n".join(failed_pairs), file=sys.stderr)
                status = 1
        warm = warm_ratios(merged["full"])
        if warm:
            print("== warm-vs-straight sweep pairs ==")
            failed_warm = []
            for name, ratio in sorted(warm.items()):
                print(f"  {name}: warm-started {ratio:.2f}x faster than straight")
                if ratio < args.min_warm_ratio:
                    failed_warm.append(f"  {name}: {ratio:.2f}x")
            if failed_warm:
                print(
                    f"== FAIL: warm-sweep pair(s) below the "
                    f"{args.min_warm_ratio:.1f}x prefix-sharing floor ==",
                    file=sys.stderr,
                )
                print("\n".join(failed_warm), file=sys.stderr)
                status = 1

    if args.memory:
        print("== memory probes (tracemalloc peaks) ==")
        fresh_memory = measure_memory()
        for name, peak in fresh_memory.items():
            print(f"  {name}: {peak} KiB")
        if committed.get("memory"):
            lines, regressions = compare_memory(
                committed["memory"], fresh_memory, args.memory_threshold
            )
            print(f"== memory comparison against committed {out_path.name} ==")
            print("\n".join(lines))
            if regressions:
                print(
                    f"== FAIL: memory regression beyond "
                    f"{args.memory_threshold:.0%} threshold ==",
                    file=sys.stderr,
                )
                print("\n".join(regressions), file=sys.stderr)
                status = 1
        else:
            print("== no committed memory baseline; establishing one ==")
        merged["memory"] = fresh_memory

    if args.compare:
        print(f"== measuring baseline source tree: {args.compare} ==")
        merged["baseline_src_small"] = measure_other_src(
            args.compare, small=True, repeats=args.repeats
        )
        merged["speedup_vs_baseline_src"] = {
            "small": speedups(merged["baseline_src_small"], fresh_small)
        }
        if args.full:
            merged["baseline_src_full"] = measure_other_src(
                args.compare, small=False, repeats=args.repeats
            )
            merged["speedup_vs_baseline_src"]["full"] = speedups(
                merged["baseline_src_full"], merged["full"]
            )
        print(json.dumps(merged["speedup_vs_baseline_src"], indent=1))

    if status == 0 or not out_path.exists():
        out_path.write_text(json.dumps(merged, indent=1, sort_keys=True) + "\n")
        print(f"wrote {out_path}")
    else:
        print(f"not rewriting {out_path} on regression", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
