#!/usr/bin/env python
"""Benchmark gate: refresh ``BENCH_1.json`` and fail loudly on regressions.

Runs the trimmed (``standard_sizes(small=True)``) regression suite from
``benchmarks/regress.py``, compares it against the committed
``BENCH_1.json`` when one exists, and rewrites the file.  A fresh small
run more than ``--threshold`` (default 20%) slower than the committed
small numbers on any experiment exits non-zero — the loud failure CI
wants.

Usage::

    PYTHONPATH=src python scripts/bench_check.py                  # gate + refresh
    PYTHONPATH=src python scripts/bench_check.py --full           # also full sizes
    PYTHONPATH=src python scripts/bench_check.py --compare /path/to/other/src

``--compare`` measures the same workloads against another source tree
(for example a seed-commit worktree) in a subprocess and records the
per-experiment speedups under ``speedup_vs_baseline_src`` — that is how
the seed-vs-now numbers in the committed ``BENCH_1.json`` were produced.

Wall-clock baselines are machine-relative: after moving to new hardware,
regenerate the baseline before trusting the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

import regress  # noqa: E402  (benchmarks/regress.py)


def compare_runs(
    baseline: dict, fresh: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Per-experiment deltas.  Returns (report lines, regression lines)."""
    lines: list[str] = []
    regressions: list[str] = []
    base_experiments = baseline.get("experiments", {})
    for name, entry in fresh.get("experiments", {}).items():
        base = base_experiments.get(name)
        if base is None:
            lines.append(f"  {name}: new experiment (no baseline)")
            continue
        old, new = base["seconds"], entry["seconds"]
        delta = (new - old) / old if old > 0 else 0.0
        line = f"  {name}: {old:.5f}s -> {new:.5f}s ({delta:+.1%})"
        if base.get("counts") != entry.get("counts"):
            regressions.append(
                f"  {name}: COUNTS CHANGED {base.get('counts')} -> "
                f"{entry.get('counts')} (determinism contract broken?)"
            )
        if delta > threshold:
            regressions.append(line + "  REGRESSION")
        lines.append(line)
    return lines, regressions


def measure_other_src(src_path: str, small: bool, repeats: int) -> dict:
    """Run the same suite against another source tree, out of process."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = handle.name
    env = dict(os.environ)
    env["PYTHONPATH"] = src_path
    cmd = [
        sys.executable,
        str(REPO_ROOT / "benchmarks" / "regress.py"),
        "--out",
        out_path,
        "--repeats",
        str(repeats),
    ]
    if small:
        cmd.append("--small")
    subprocess.run(cmd, check=True, env=env, cwd=str(REPO_ROOT))
    try:
        return json.loads(Path(out_path).read_text())
    finally:
        os.unlink(out_path)


def speedups(baseline: dict, current: dict) -> dict[str, float]:
    """baseline seconds / current seconds, per shared experiment."""
    result: dict[str, float] = {}
    for name, entry in current.get("experiments", {}).items():
        base = baseline.get("experiments", {}).get(name)
        if base and entry["seconds"] > 0:
            result[name] = round(base["seconds"] / entry["seconds"], 2)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_1.json"), help="report path"
    )
    parser.add_argument("--threshold", type=float, default=0.20)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--full", action="store_true", help="also refresh the full-size section"
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="SRC",
        help="source tree to measure as the speedup baseline (subprocess)",
    )
    args = parser.parse_args(argv)

    out_path = Path(args.out)
    committed = json.loads(out_path.read_text()) if out_path.exists() else {}

    print("== bench_check: trimmed (small=True) suite ==")
    fresh_small = regress.run_suite(small=True, repeats=args.repeats)
    for name, entry in fresh_small["experiments"].items():
        print(f"  {name}: {entry['seconds']:.5f}s")

    status = 0
    if committed.get("small"):
        lines, regressions = compare_runs(
            committed["small"], fresh_small, args.threshold
        )
        print("== comparison against committed BENCH_1.json (small) ==")
        print("\n".join(lines))
        if regressions:
            print(
                f"== FAIL: regression beyond {args.threshold:.0%} threshold ==",
                file=sys.stderr,
            )
            print("\n".join(regressions), file=sys.stderr)
            status = 1
    else:
        print("== no committed small baseline; establishing one ==")

    merged = dict(committed)
    merged["small"] = fresh_small

    if args.full:
        print("== full-size suite ==")
        merged["full"] = regress.run_suite(small=False, repeats=args.repeats)
        for name, entry in merged["full"]["experiments"].items():
            print(f"  {name}: {entry['seconds']:.5f}s")

    if args.compare:
        print(f"== measuring baseline source tree: {args.compare} ==")
        merged["baseline_src_small"] = measure_other_src(
            args.compare, small=True, repeats=args.repeats
        )
        merged["speedup_vs_baseline_src"] = {
            "small": speedups(merged["baseline_src_small"], fresh_small)
        }
        if args.full:
            merged["baseline_src_full"] = measure_other_src(
                args.compare, small=False, repeats=args.repeats
            )
            merged["speedup_vs_baseline_src"]["full"] = speedups(
                merged["baseline_src_full"], merged["full"]
            )
        print(json.dumps(merged["speedup_vs_baseline_src"], indent=1))

    if status == 0 or not out_path.exists():
        out_path.write_text(json.dumps(merged, indent=1, sort_keys=True) + "\n")
        print(f"wrote {out_path}")
    else:
        print(f"not rewriting {out_path} on regression", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
