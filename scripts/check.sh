#!/usr/bin/env bash
# Pre-PR gate: everything that must be green before a change ships.
#
#   scripts/check.sh
#
# Runs, in order:
#   1. python -m compileall src     — no syntax-broken modules slip in;
#   2. the tier-1 test suite        — semantics (ROADMAP.md's verify line),
#                                     with --durations=10 so creeping slow
#                                     tests are visible in every run;
#   3. bench_check --quick          — count determinism vs BENCH_8.json
#                                     (smoke wall-clock, no --memory);
#                                     emits bench_quick_fresh.json for CI
#                                     to attach on failure;
#   4. resume_gate                  — checkpoint in one process, resume in
#                                     another, counts must match a straight
#                                     run (process-local state, e.g. the
#                                     simulated-hmac secret registry, is
#                                     invisible to in-process tests).
#
# The full wall-clock/memory gate (scripts/bench_check.py --memory, and
# --full for the n=128 grid) stays a pre-merge step; this script is the
# fast loop.  See PERFORMANCE.md ("Measuring and gating").
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== check: compileall =="
python -m compileall -q src

echo "== check: tier-1 tests =="
python -m pytest -x -q --durations=10

echo "== check: bench smoke =="
python scripts/bench_check.py --quick

echo "== check: cross-process resume equivalence =="
python scripts/resume_gate.py

echo "== check: all green =="
