#!/usr/bin/env bash
# Pre-PR gate: everything that must be green before a change ships.
#
#   scripts/check.sh
#
# Runs, in order:
#   1. python -m compileall src     — no syntax-broken modules slip in;
#   2. the tier-1 test suite        — semantics (ROADMAP.md's verify line);
#   3. bench_check --quick          — count determinism vs BENCH_3.json
#                                     (smoke wall-clock, no --memory).
#
# The full wall-clock/memory gate (scripts/bench_check.py --memory, and
# --full for the n=128 grid) stays a pre-merge step; this script is the
# fast loop.  See PERFORMANCE.md ("Measuring and gating").
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== check: compileall =="
python -m compileall -q src

echo "== check: tier-1 tests =="
python -m pytest -x -q

echo "== check: bench smoke =="
python scripts/bench_check.py --quick

echo "== check: all green =="
