"""Byzantine fault library: the adversary plane, generic behaviours and
targeted attacks.

* :mod:`repro.faults.adversary` — the declarative adversary plane:
  :class:`AdversarySpec` names which nodes are corrupt, how each
  misbehaves, which delivery power the run grants, and (optionally) an
  *adaptive* strategy committing corruptions online, with the paper's
  ``≤ t`` budget enforced at construction (static) and commitment time
  (adaptive);
* :mod:`repro.faults.behaviors` — crash (with recovery), silence, drop,
  tamper, scripted, plus the loss-/partition-exploiting ``ack-lie`` and
  ``equivocate`` lies of experiment E14;
* :mod:`repro.faults.keyattacks` — the key-distribution attacks of the
  paper's section 3.2 (key sharing, cross claiming, mixed predicates,
  foreign claims);
* :mod:`repro.faults.fdattacks` — attacks on the Failure Discovery
  protocols (equivocation, fabrication, impersonation, withholding,
  garbling, duplication).
"""

from .adversary import (
    ADAPTIVE_STRATEGIES,
    BEHAVIOR_GRAMMAR,
    BEHAVIOR_KINDS,
    PARSEABLE_KINDS,
    AdaptiveCoordinator,
    AdaptiveCorruptible,
    AdversaryObservation,
    AdversarySpec,
    Behavior,
    behavior_grammar_help,
    build_behavior,
    make_adversary,
    parse_behavior,
    register_adaptive_strategy,
)
from .behaviors import (
    AckLieProtocol,
    CrashProtocol,
    EquivocatingProtocol,
    RandomNoiseProtocol,
    RushMirrorProtocol,
    ScriptedProtocol,
    SilentProtocol,
    TamperingProtocol,
)
from .fdattacks import (
    DelayedRelayChainNode,
    EquivocatingSender,
    FabricatingChainNode,
    ImpersonatingChainNode,
    duplicating_chain_node,
    garbling_chain_node,
    withholding_chain_node,
)
from .keyattacks import (
    AdversaryCoordination,
    ClaimForeignPredicateAttack,
    CrossClaimAttack,
    MixedPredicateAttack,
    SharedKeyAttack,
)

__all__ = [
    "ADAPTIVE_STRATEGIES",
    "AckLieProtocol",
    "AdaptiveCoordinator",
    "AdaptiveCorruptible",
    "AdversaryCoordination",
    "AdversaryObservation",
    "AdversarySpec",
    "BEHAVIOR_GRAMMAR",
    "BEHAVIOR_KINDS",
    "Behavior",
    "ClaimForeignPredicateAttack",
    "CrashProtocol",
    "EquivocatingProtocol",
    "CrossClaimAttack",
    "DelayedRelayChainNode",
    "EquivocatingSender",
    "FabricatingChainNode",
    "ImpersonatingChainNode",
    "MixedPredicateAttack",
    "PARSEABLE_KINDS",
    "RandomNoiseProtocol",
    "RushMirrorProtocol",
    "ScriptedProtocol",
    "SharedKeyAttack",
    "SilentProtocol",
    "TamperingProtocol",
    "behavior_grammar_help",
    "build_behavior",
    "duplicating_chain_node",
    "garbling_chain_node",
    "make_adversary",
    "parse_behavior",
    "register_adaptive_strategy",
    "withholding_chain_node",
]
