"""Byzantine fault library: generic behaviours and targeted attacks.

* :mod:`repro.faults.behaviors` — crash, silence, drop, tamper, scripted;
* :mod:`repro.faults.keyattacks` — the key-distribution attacks of the
  paper's section 3.2 (key sharing, cross claiming, mixed predicates,
  foreign claims);
* :mod:`repro.faults.fdattacks` — attacks on the Failure Discovery
  protocols (equivocation, fabrication, impersonation, withholding,
  garbling, duplication).
"""

from .behaviors import (
    CrashProtocol,
    RandomNoiseProtocol,
    RushMirrorProtocol,
    ScriptedProtocol,
    SilentProtocol,
    TamperingProtocol,
)
from .fdattacks import (
    DelayedRelayChainNode,
    EquivocatingSender,
    FabricatingChainNode,
    ImpersonatingChainNode,
    duplicating_chain_node,
    garbling_chain_node,
    withholding_chain_node,
)
from .keyattacks import (
    AdversaryCoordination,
    ClaimForeignPredicateAttack,
    CrossClaimAttack,
    MixedPredicateAttack,
    SharedKeyAttack,
)

__all__ = [
    "AdversaryCoordination",
    "ClaimForeignPredicateAttack",
    "CrashProtocol",
    "CrossClaimAttack",
    "DelayedRelayChainNode",
    "EquivocatingSender",
    "FabricatingChainNode",
    "ImpersonatingChainNode",
    "MixedPredicateAttack",
    "RandomNoiseProtocol",
    "RushMirrorProtocol",
    "ScriptedProtocol",
    "SharedKeyAttack",
    "SilentProtocol",
    "TamperingProtocol",
    "duplicating_chain_node",
    "garbling_chain_node",
    "withholding_chain_node",
]
