"""Byzantine fault library: the adversary plane, generic behaviours and
targeted attacks.

* :mod:`repro.faults.adversary` — the declarative adversary plane:
  :class:`AdversarySpec` names which nodes are corrupt, how each
  misbehaves, and which delivery power the run grants, with the paper's
  ``≤ t`` budget enforced at construction;
* :mod:`repro.faults.behaviors` — crash (with recovery), silence, drop,
  tamper, scripted;
* :mod:`repro.faults.keyattacks` — the key-distribution attacks of the
  paper's section 3.2 (key sharing, cross claiming, mixed predicates,
  foreign claims);
* :mod:`repro.faults.fdattacks` — attacks on the Failure Discovery
  protocols (equivocation, fabrication, impersonation, withholding,
  garbling, duplication).
"""

from .adversary import (
    BEHAVIOR_KINDS,
    PARSEABLE_KINDS,
    AdversarySpec,
    Behavior,
    build_behavior,
    make_adversary,
    parse_behavior,
)
from .behaviors import (
    CrashProtocol,
    RandomNoiseProtocol,
    RushMirrorProtocol,
    ScriptedProtocol,
    SilentProtocol,
    TamperingProtocol,
)
from .fdattacks import (
    DelayedRelayChainNode,
    EquivocatingSender,
    FabricatingChainNode,
    ImpersonatingChainNode,
    duplicating_chain_node,
    garbling_chain_node,
    withholding_chain_node,
)
from .keyattacks import (
    AdversaryCoordination,
    ClaimForeignPredicateAttack,
    CrossClaimAttack,
    MixedPredicateAttack,
    SharedKeyAttack,
)

__all__ = [
    "AdversaryCoordination",
    "AdversarySpec",
    "BEHAVIOR_KINDS",
    "Behavior",
    "ClaimForeignPredicateAttack",
    "CrashProtocol",
    "CrossClaimAttack",
    "DelayedRelayChainNode",
    "EquivocatingSender",
    "FabricatingChainNode",
    "ImpersonatingChainNode",
    "MixedPredicateAttack",
    "PARSEABLE_KINDS",
    "RandomNoiseProtocol",
    "RushMirrorProtocol",
    "ScriptedProtocol",
    "SharedKeyAttack",
    "SilentProtocol",
    "TamperingProtocol",
    "build_behavior",
    "duplicating_chain_node",
    "garbling_chain_node",
    "make_adversary",
    "parse_behavior",
    "withholding_chain_node",
]
