"""The adversary plane: one declarative object naming a run's adversary.

Before this module, "node 3 is faulty" could be said three incompatible
ways — a hand-built :class:`~repro.sim.node.Protocol` replacement dict,
a scenario factory closure over key material, or the agreement-based
key-distribution ``byzantine=`` pair spec — none of which could be
combined with a delivery power or checked against the paper's fault
budget.  An :class:`AdversarySpec` subsumes all three:

* **who is corrupt** — ``corrupt`` pairs each node id with a
  :class:`Behavior` (or its spec string): ``silent``, ``crash@r`` /
  ``crash@r-s`` (crash-recovery), ``noise``, ``rush``, ``drop@p``,
  ``tamper@p``, ``scripted`` — subsuming the generic wrappers of
  :mod:`repro.faults.behaviors`;
* **custom corruption** — ``overrides`` pairs node ids with ready
  :class:`~repro.sim.node.Protocol` instances, the escape hatch the
  attack scenarios (which need key material) re-layer through;
* **which delivery power the run grants** — ``delivery`` carries a
  :func:`repro.sim.make_delivery` spec string, so one object names the
  whole adversary: corruptions *and* scheduling/network power;
* **the budget** — construction enforces the paper's ``≤ t`` corruption
  bound: a spec naming more corrupt nodes than its ``t`` does not
  construct (:class:`~repro.errors.ConfigurationError`), which is what
  keeps every layered entry point honest about its claimed resilience.

A spec built purely from declarative behaviours is picklable (primitive
fields only), so it travels through workload parameters and the sweep
executors; ``overrides`` carrying closures make it in-process-only, and
:func:`repro.harness.parallel.sweep_parallel` warns by spec when that
forces a serial fallback.

Determinism: the ``drop@p`` / ``tamper@p`` behaviours decide per message
by hashing ``(node, round, recipient)`` — a pure function of the
message's coordinates, so runs reproduce bit-for-bit and the behaviours
pickle as plain data (no closures, no rng state).

``make_adversary`` mirrors :func:`repro.sim.make_delivery`: spec strings
are ``;``-separated ``node=behavior`` items plus an optional
``delivery=SPEC`` item, e.g. ``"3=silent;5=crash@2;delivery=loss:0.2"``
(``;`` because delivery specs themselves contain ``,`` and ``:``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError
from ..sim.node import Protocol
from ..types import NodeId, Round
from .behaviors import (
    CrashProtocol,
    RandomNoiseProtocol,
    RushMirrorProtocol,
    ScriptedProtocol,
    SilentProtocol,
    TamperingProtocol,
)

#: All declarative behaviour kinds a :class:`Behavior` can carry.
BEHAVIOR_KINDS = (
    "silent",
    "crash",
    "noise",
    "rush",
    "drop",
    "tamper",
    "scripted",
)

#: The kinds expressible as spec strings (:func:`parse_behavior`) —
#: ``scripted`` carries payload data and is construction-only.
PARSEABLE_KINDS = tuple(kind for kind in BEHAVIOR_KINDS if kind != "scripted")

#: Payload pool the generic ``noise`` behaviour draws from: wire-encodable
#: garbage of the families every protocol must shrug off.
NOISE_POOL = (
    ("adversary-noise", 0),
    ("adversary-noise", "garbage"),
    ("unrelated", 7),
    b"raw-bytes",
)

#: Tag of payloads the ``tamper@p`` behaviour substitutes.
TAMPERED = "tampered"


def _hash_unit(node: NodeId, round_: Round, recipient: NodeId) -> float:
    """A uniform draw in [0, 1) from the message's coordinates.

    Pure and stateless: the same ``(node, round, recipient)`` always
    yields the same value, which is what makes the probabilistic
    behaviours deterministic per run *and* picklable as plain data.
    """
    digest = hashlib.sha256(
        f"adversary/{node}/{round_}/{recipient}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


@dataclass(frozen=True)
class _CoordinateFilter:
    """Base for the hash-driven per-message behaviours (picklable)."""

    prob: float
    node: NodeId


class DropSends(_CoordinateFilter):
    """``should_send`` predicate: drop each message with probability
    ``prob`` (decided by :func:`_hash_unit`, so deterministic)."""

    def __call__(self, round_: Round, to: NodeId, payload: Any) -> bool:
        return _hash_unit(self.node, round_, to) >= self.prob


class TamperPayloads(_CoordinateFilter):
    """Payload transform: replace each message, with probability
    ``prob``, by a recognisably-garbled wire value."""

    def __call__(self, round_: Round, to: NodeId, payload: Any) -> Any:
        if _hash_unit(self.node, round_, to) < self.prob:
            return (TAMPERED, int(self.node), int(round_))
        return payload


@dataclass(frozen=True)
class Behavior:
    """One corrupt node's declarative behaviour.

    Plain picklable data; :func:`build_behavior` turns it into a
    :class:`~repro.sim.node.Protocol` once the honest inner protocol and
    the network shape are known.

    :ivar kind: one of :data:`BEHAVIOR_KINDS`.
    :ivar at: crash tick (``crash`` only).
    :ivar recover: crash-recovery tick, or ``None`` for fail-stop
        (``crash`` only).
    :ivar prob: per-message probability (``drop`` / ``tamper`` only).
    :ivar script: ``(round, recipient, payload)`` triples (``scripted``
        only; payloads must be wire values for the spec to stay
        picklable).
    """

    kind: str
    at: Round | None = None
    recover: Round | None = None
    prob: float | None = None
    script: tuple[tuple[Round, NodeId, Any], ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in BEHAVIOR_KINDS:
            raise ConfigurationError(
                f"unknown behaviour kind {self.kind!r}; "
                f"available: {', '.join(BEHAVIOR_KINDS)}"
            )
        if self.kind == "crash":
            if self.at is None or self.at < 0:
                raise ConfigurationError(
                    f"crash behaviour needs a round, e.g. 'crash@2'; got {self!r}"
                )
            if self.recover is not None and self.recover <= self.at:
                raise ConfigurationError(
                    f"crash recovery must come after the crash, got {self.spec()!r}"
                )
        if self.kind in ("drop", "tamper") and not (
            self.prob is not None and 0.0 < self.prob <= 1.0
        ):
            raise ConfigurationError(
                f"{self.kind} behaviour needs a probability in (0, 1], "
                f"e.g. '{self.kind}@0.3'; got {self!r}"
            )
        if self.kind == "scripted" and not self.script:
            raise ConfigurationError(
                "scripted behaviour needs a non-empty script of "
                "(round, recipient, payload) triples"
            )

    def spec(self) -> str:
        """The behaviour as its spec string (inverse of
        :func:`parse_behavior`, modulo the string-less ``scripted``)."""
        if self.kind == "crash":
            base = f"crash@{self.at}"
            return f"{base}-{self.recover}" if self.recover is not None else base
        if self.kind in ("drop", "tamper"):
            return f"{self.kind}@{self.prob:g}"
        return self.kind


def parse_behavior(spec: "str | Behavior") -> Behavior:
    """Parse one behaviour spec string (a :class:`Behavior` passes
    through unchanged).

    * ``silent`` / ``noise`` / ``rush`` — parameterless;
    * ``crash@R`` — fail-stop at tick R; ``crash@R-S`` — recover at S;
    * ``drop@P`` / ``tamper@P`` — per-message probability P.

    :raises ConfigurationError: for unknown or malformed specs — the
        error names the valid behaviour kinds.
    """
    if isinstance(spec, Behavior):
        return spec
    head, _, arg = spec.partition("@")
    if head in ("silent", "noise", "rush"):
        if arg:
            raise ConfigurationError(
                f"behaviour {head!r} takes no argument, got {spec!r}"
            )
        return Behavior(head)
    if head == "crash":
        crash_at, dash, recover = arg.partition("-")
        try:
            return Behavior(
                "crash",
                at=int(crash_at),
                recover=int(recover) if dash else None,
            )
        except ValueError:
            raise ConfigurationError(
                f"crash behaviour must look like 'crash@2' or 'crash@2-5', "
                f"got {spec!r}"
            ) from None
    if head in ("drop", "tamper"):
        try:
            return Behavior(head, prob=float(arg))
        except ValueError:
            raise ConfigurationError(
                f"{head} behaviour must look like '{head}@0.3', got {spec!r}"
            ) from None
    raise ConfigurationError(
        f"unknown behaviour {spec!r}; "
        f"available: {', '.join(PARSEABLE_KINDS)} "
        "(scripted behaviours carry payload data and are construction-only: "
        "Behavior('scripted', script=...))"
    )


def build_behavior(
    behavior: Behavior, node: NodeId, inner: Protocol, t: int
) -> Protocol:
    """Realise one declarative behaviour as a node protocol.

    :param inner: the honest protocol the node would have run — wrapped
        (crash/drop/tamper) or discarded (silent/noise/rush/scripted)
        depending on the kind.
    :param t: the run's fault budget (bounds the self-halting behaviours
        at ``t + 2``, past every honest protocol's deadline).
    """
    if behavior.kind == "silent":
        return SilentProtocol()
    if behavior.kind == "crash":
        return CrashProtocol(inner, behavior.at, recover_round=behavior.recover)
    if behavior.kind == "noise":
        return RandomNoiseProtocol(NOISE_POOL, halt_after=t + 2)
    if behavior.kind == "rush":
        return RushMirrorProtocol(halt_after=t + 2)
    if behavior.kind == "drop":
        return TamperingProtocol(
            inner, should_send=DropSends(behavior.prob, node)
        )
    if behavior.kind == "tamper":
        return TamperingProtocol(
            inner, transform=TamperPayloads(behavior.prob, node)
        )
    script: dict[Round, list[tuple[NodeId, Any]]] = {}
    for round_, recipient, payload in behavior.script:
        script.setdefault(round_, []).append((recipient, payload))
    return ScriptedProtocol(script)


#: Optional per-context builder: ``(node, behavior, inner, t) -> Protocol
#: | None`` — ``None`` defers to :func:`build_behavior`.  How layers with
#: richer corruption (the AKD mux noise) reinterpret a kind without
#: forking the spec format.
BehaviorBuilder = Callable[[NodeId, Behavior, Protocol, int], "Protocol | None"]


@dataclass(frozen=True)
class AdversarySpec:
    """Everything one run's adversary is allowed to do, as one object.

    :ivar corrupt: ``(node, behaviour)`` pairs — behaviours may be spec
        strings (normalised to :class:`Behavior` at construction).
    :ivar t: the fault budget the spec claims; construction fails if the
        corrupt set exceeds it.
    :ivar delivery: optional delivery-power spec string (see
        :func:`repro.sim.make_delivery`) granted to the run.
    :ivar overrides: ``(node, Protocol)`` pairs installing custom
        behaviours directly — counted against the same budget; may make
        the spec unpicklable (in-process use only).

    Construction normalises and validates: behaviours parse, node ids
    are distinct across ``corrupt`` and ``overrides``, and the total
    corruption stays within ``t``.
    """

    corrupt: tuple[tuple[NodeId, Behavior], ...] = ()
    t: int = 0
    delivery: str | None = None
    overrides: tuple[tuple[NodeId, Protocol], ...] = ()

    def __post_init__(self) -> None:
        corrupt = tuple(
            (int(node), parse_behavior(behavior))
            for node, behavior in (
                self.corrupt.items()
                if isinstance(self.corrupt, Mapping)
                else self.corrupt
            )
        )
        object.__setattr__(
            self, "corrupt", tuple(sorted(corrupt, key=lambda pair: pair[0]))
        )
        overrides = tuple(
            (int(node), protocol)
            for node, protocol in (
                self.overrides.items()
                if isinstance(self.overrides, Mapping)
                else self.overrides
            )
        )
        object.__setattr__(
            self, "overrides", tuple(sorted(overrides, key=lambda pair: pair[0]))
        )
        if self.t < 0:
            raise ConfigurationError(f"fault budget must be >= 0, got {self.t}")
        nodes = [node for node, _ in self.corrupt] + [
            node for node, _ in self.overrides
        ]
        if len(set(nodes)) != len(nodes):
            duplicates = sorted({n for n in nodes if nodes.count(n) > 1})
            raise ConfigurationError(
                f"nodes {duplicates} corrupted more than once in one adversary spec"
            )
        if any(node < 0 for node in nodes):
            raise ConfigurationError(f"corrupt node ids must be >= 0, got {nodes}")
        if len(nodes) > self.t:
            raise ConfigurationError(
                f"adversary corrupts {len(nodes)} nodes "
                f"({sorted(nodes)}) but the fault budget is t={self.t} — "
                "the paper's guarantees are only claimed within the budget"
            )

    @property
    def faulty(self) -> frozenset[NodeId]:
        """All corrupted node ids (declarative and override alike)."""
        return frozenset(node for node, _ in self.corrupt) | frozenset(
            node for node, _ in self.overrides
        )

    @property
    def rushing(self) -> frozenset[NodeId]:
        """Nodes running the ``rush`` behaviour — the conventional
        rushing set for a ``rush`` delivery model."""
        return frozenset(
            node for node, behavior in self.corrupt if behavior.kind == "rush"
        )

    def spec(self) -> str:
        """The spec as a (mostly) round-trippable string, for messages."""
        items = [f"{node}={behavior.spec()}" for node, behavior in self.corrupt]
        items += [f"{node}=<custom>" for node, _ in self.overrides]
        if self.delivery:
            items.append(f"delivery={self.delivery}")
        return ";".join(items)

    def protocols_for(
        self,
        protocols: Sequence[Protocol],
        builder: BehaviorBuilder | None = None,
    ) -> list[Protocol]:
        """The run's protocol list with every corruption installed.

        :param protocols: the honest per-node protocols (index = node
            id); corrupt nodes' entries become the ``inner`` of wrapping
            behaviours.
        :param builder: optional context-specific reinterpretation of
            declarative kinds (see :data:`BehaviorBuilder`).
        :raises ConfigurationError: if a corrupt node id lies outside
            the network.
        """
        n = len(protocols)
        out = list(protocols)
        for node, behavior in self.corrupt:
            if node >= n:
                raise ConfigurationError(
                    f"adversary corrupts node {node} but the network has "
                    f"only {n} nodes"
                )
            built = builder(node, behavior, out[node], self.t) if builder else None
            if built is None:
                built = build_behavior(behavior, node, out[node], self.t)
            out[node] = built
        for node, protocol in self.overrides:
            if node >= n:
                raise ConfigurationError(
                    f"adversary overrides node {node} but the network has "
                    f"only {n} nodes"
                )
            out[node] = protocol
        return out


def make_adversary(
    spec: "str | AdversarySpec | Mapping[NodeId, str | Behavior] | None",
    t: int,
    delivery: str | None = None,
) -> AdversarySpec | None:
    """Build an :class:`AdversarySpec` from a primitive spec string.

    The mirror of :func:`repro.sim.make_delivery` for the corruption
    half.  Spec strings are ``;``-separated items (``;`` because
    delivery specs contain ``,`` and ``:``):

    * ``NODE=BEHAVIOR`` — e.g. ``"3=silent"``, ``"5=crash@2-6"``,
      ``"6=drop@0.3"`` (see :func:`parse_behavior` for behaviours);
    * ``delivery=SPEC`` — the delivery power, e.g.
      ``delivery=loss:0.2`` (at most once).

    A ready :class:`AdversarySpec` passes through unchanged; a mapping
    ``{node: behaviour}`` is wrapped; ``None`` stays ``None`` (no
    adversary).  The budget ``t`` is enforced at construction either
    way.

    :param delivery: default delivery power when the spec string names
        none.
    :raises ConfigurationError: for malformed items, unknown behaviours,
        duplicate nodes, or a corrupt set exceeding ``t``.
    """
    if spec is None:
        return None
    if isinstance(spec, AdversarySpec):
        return spec
    if isinstance(spec, Mapping):
        return AdversarySpec(corrupt=tuple(spec.items()), t=t, delivery=delivery)
    corrupt: list[tuple[NodeId, str]] = []
    for item in spec.split(";"):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key or not value:
            raise ConfigurationError(
                f"adversary items must look like 'NODE=BEHAVIOR' or "
                f"'delivery=SPEC', got {item!r} in {spec!r}"
            )
        if key == "delivery":
            delivery = value
            continue
        try:
            node = int(key)
        except ValueError:
            raise ConfigurationError(
                f"adversary node id must be an integer, got {item!r} in {spec!r}"
            ) from None
        corrupt.append((node, value))
    return AdversarySpec(corrupt=tuple(corrupt), t=t, delivery=delivery)
