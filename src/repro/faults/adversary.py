"""The adversary plane: one declarative object naming a run's adversary.

Before this module, "node 3 is faulty" could be said three incompatible
ways — a hand-built :class:`~repro.sim.node.Protocol` replacement dict,
a scenario factory closure over key material, or the agreement-based
key-distribution ``byzantine=`` pair spec — none of which could be
combined with a delivery power or checked against the paper's fault
budget.  An :class:`AdversarySpec` subsumes all three:

* **who is corrupt** — ``corrupt`` pairs each node id with a
  :class:`Behavior` (or its spec string): ``silent``, ``crash@r`` /
  ``crash@r-s`` (crash-recovery), ``noise``, ``rush``, ``drop@p``,
  ``tamper@p``, ``ack-lie``, ``equivocate``, ``scripted`` — subsuming
  the generic wrappers of :mod:`repro.faults.behaviors` (the grammar
  is the :data:`BEHAVIOR_GRAMMAR` parse table);
* **adaptive corruption** — ``strategy`` names a registered
  :data:`AdaptiveStrategy` (spec item ``adaptive:NAME``) that observes
  the run online and commits corruptions lazily, budget-checked at
  commitment time by the :class:`AdaptiveCoordinator`;
* **custom corruption** — ``overrides`` pairs node ids with ready
  :class:`~repro.sim.node.Protocol` instances, the escape hatch the
  attack scenarios (which need key material) re-layer through;
* **which delivery power the run grants** — ``delivery`` carries a
  :func:`repro.sim.make_delivery` spec string, so one object names the
  whole adversary: corruptions *and* scheduling/network power;
* **the budget** — construction enforces the paper's ``≤ t`` corruption
  bound: a spec naming more corrupt nodes than its ``t`` does not
  construct (:class:`~repro.errors.ConfigurationError`), which is what
  keeps every layered entry point honest about its claimed resilience.

A spec built purely from declarative behaviours is picklable (primitive
fields only), so it travels through workload parameters and the sweep
executors; ``overrides`` carrying closures make it in-process-only, and
:func:`repro.harness.parallel.sweep_parallel` warns by spec when that
forces a serial fallback.

Determinism: the ``drop@p`` / ``tamper@p`` behaviours decide per message
by hashing ``(node, round, recipient)`` — a pure function of the
message's coordinates, so runs reproduce bit-for-bit and the behaviours
pickle as plain data (no closures, no rng state).

``make_adversary`` mirrors :func:`repro.sim.make_delivery`: spec strings
are ``;``-separated ``node=behavior`` items plus an optional
``delivery=SPEC`` item, e.g. ``"3=silent;5=crash@2;delivery=loss:0.2"``
(``;`` because delivery specs themselves contain ``,`` and ``:``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError
from ..sim.node import NodeContext, Protocol
from ..types import NodeId, Round
from .behaviors import (
    AckLieProtocol,
    CrashProtocol,
    EquivocatingProtocol,
    RandomNoiseProtocol,
    RushMirrorProtocol,
    ScriptedProtocol,
    SilentProtocol,
    TamperingProtocol,
)

def _parse_plain(head: str):
    """Grammar entry for parameterless behaviours."""

    def parse(arg: str, spec: str) -> "Behavior":
        if arg:
            raise ConfigurationError(
                f"behaviour {head!r} takes no argument, got {spec!r}"
            )
        return Behavior(head)

    return parse


def _parse_crash(arg: str, spec: str) -> "Behavior":
    crash_at, dash, recover = arg.partition("-")
    try:
        return Behavior(
            "crash",
            at=int(crash_at),
            recover=int(recover) if dash else None,
        )
    except ValueError:
        raise ConfigurationError(
            f"crash behaviour must look like 'crash@2' or 'crash@2-5', "
            f"got {spec!r}"
        ) from None


def _parse_prob(head: str):
    """Grammar entry for the per-message probability behaviours."""

    def parse(arg: str, spec: str) -> "Behavior":
        try:
            return Behavior(head, prob=float(arg))
        except ValueError:
            raise ConfigurationError(
                f"{head} behaviour must look like '{head}@0.3', got {spec!r}"
            ) from None

    return parse


def _parse_from_tick(head: str):
    """Grammar entry for behaviours with an optional from-tick."""

    def parse(arg: str, spec: str) -> "Behavior":
        try:
            return Behavior(head, at=int(arg) if arg else None)
        except ValueError:
            raise ConfigurationError(
                f"{head} behaviour must look like '{head}' or '{head}@3', "
                f"got {spec!r}"
            ) from None

    return parse


#: The behaviour-spec parse table: head -> (example form, parser).
#: Single source of truth for what the grammar accepts — the CLI help,
#: the parse-error message and :data:`PARSEABLE_KINDS` all derive from
#: it, so adding a behaviour here is the *whole* registration.
BEHAVIOR_GRAMMAR: dict[str, tuple[str, Callable[[str, str], "Behavior"]]] = {
    "silent": ("silent", _parse_plain("silent")),
    "crash": ("crash@R[-S]", _parse_crash),
    "noise": ("noise", _parse_plain("noise")),
    "rush": ("rush", _parse_plain("rush")),
    "drop": ("drop@P", _parse_prob("drop")),
    "tamper": ("tamper@P", _parse_prob("tamper")),
    "ack-lie": ("ack-lie[@T]", _parse_from_tick("ack-lie")),
    "equivocate": ("equivocate[@T]", _parse_from_tick("equivocate")),
}

#: The kinds expressible as spec strings, derived from the parse table.
PARSEABLE_KINDS = tuple(BEHAVIOR_GRAMMAR)

#: All declarative behaviour kinds a :class:`Behavior` can carry —
#: ``scripted`` carries payload data and is construction-only.
BEHAVIOR_KINDS = PARSEABLE_KINDS + ("scripted",)


def behavior_grammar_help() -> str:
    """The grammar's example forms, comma-joined — the one string every
    user-facing enumeration of behaviours (CLI help, parse errors)
    renders, so it can never drift from the table."""
    return ", ".join(example for example, _ in BEHAVIOR_GRAMMAR.values())


#: Payload pool the generic ``noise`` behaviour draws from: wire-encodable
#: garbage of the families every protocol must shrug off.
NOISE_POOL = (
    ("adversary-noise", 0),
    ("adversary-noise", "garbage"),
    ("unrelated", 7),
    b"raw-bytes",
)

#: Tag of payloads the ``tamper@p`` behaviour substitutes.
TAMPERED = "tampered"


def _hash_unit(node: NodeId, round_: Round, recipient: NodeId) -> float:
    """A uniform draw in [0, 1) from the message's coordinates.

    Pure and stateless: the same ``(node, round, recipient)`` always
    yields the same value, which is what makes the probabilistic
    behaviours deterministic per run *and* picklable as plain data.
    """
    digest = hashlib.sha256(
        f"adversary/{node}/{round_}/{recipient}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


@dataclass(frozen=True)
class _CoordinateFilter:
    """Base for the hash-driven per-message behaviours (picklable)."""

    prob: float
    node: NodeId


class DropSends(_CoordinateFilter):
    """``should_send`` predicate: drop each message with probability
    ``prob`` (decided by :func:`_hash_unit`, so deterministic)."""

    def __call__(self, round_: Round, to: NodeId, payload: Any) -> bool:
        return _hash_unit(self.node, round_, to) >= self.prob


class TamperPayloads(_CoordinateFilter):
    """Payload transform: replace each message, with probability
    ``prob``, by a recognisably-garbled wire value."""

    def __call__(self, round_: Round, to: NodeId, payload: Any) -> Any:
        if _hash_unit(self.node, round_, to) < self.prob:
            return (TAMPERED, int(self.node), int(round_))
        return payload


@dataclass(frozen=True)
class Behavior:
    """One corrupt node's declarative behaviour.

    Plain picklable data; :func:`build_behavior` turns it into a
    :class:`~repro.sim.node.Protocol` once the honest inner protocol and
    the network shape are known.

    :ivar kind: one of :data:`BEHAVIOR_KINDS`.
    :ivar at: crash tick (``crash``), or the first tick the lie applies
        (``ack-lie`` / ``equivocate``; ``None`` = from the start).
    :ivar recover: crash-recovery tick, or ``None`` for fail-stop
        (``crash`` only).
    :ivar prob: per-message probability (``drop`` / ``tamper`` only).
    :ivar script: ``(round, recipient, payload)`` triples (``scripted``
        only; payloads must be wire values for the spec to stay
        picklable).
    """

    kind: str
    at: Round | None = None
    recover: Round | None = None
    prob: float | None = None
    script: tuple[tuple[Round, NodeId, Any], ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in BEHAVIOR_KINDS:
            raise ConfigurationError(
                f"unknown behaviour kind {self.kind!r}; "
                f"available: {', '.join(BEHAVIOR_KINDS)}"
            )
        if self.kind == "crash":
            if self.at is None or self.at < 0:
                raise ConfigurationError(
                    f"crash behaviour needs a round, e.g. 'crash@2'; got {self!r}"
                )
            if self.recover is not None and self.recover <= self.at:
                raise ConfigurationError(
                    f"crash recovery must come after the crash, got {self.spec()!r}"
                )
        if self.kind in ("drop", "tamper") and not (
            self.prob is not None and 0.0 < self.prob <= 1.0
        ):
            raise ConfigurationError(
                f"{self.kind} behaviour needs a probability in (0, 1], "
                f"e.g. '{self.kind}@0.3'; got {self!r}"
            )
        if self.kind == "scripted" and not self.script:
            raise ConfigurationError(
                "scripted behaviour needs a non-empty script of "
                "(round, recipient, payload) triples"
            )
        if self.kind in ("ack-lie", "equivocate") and (
            self.at is not None and self.at < 0
        ):
            raise ConfigurationError(
                f"{self.kind} from-tick must be >= 0, got {self.at}"
            )

    def spec(self) -> str:
        """The behaviour as its spec string (inverse of
        :func:`parse_behavior`, modulo the string-less ``scripted``)."""
        if self.kind == "crash":
            base = f"crash@{self.at}"
            return f"{base}-{self.recover}" if self.recover is not None else base
        if self.kind in ("drop", "tamper"):
            return f"{self.kind}@{self.prob:g}"
        if self.kind in ("ack-lie", "equivocate") and self.at is not None:
            return f"{self.kind}@{self.at}"
        return self.kind


def parse_behavior(spec: "str | Behavior") -> Behavior:
    """Parse one behaviour spec string (a :class:`Behavior` passes
    through unchanged).

    * ``silent`` / ``noise`` / ``rush`` — parameterless;
    * ``crash@R`` — fail-stop at tick R; ``crash@R-S`` — recover at S;
    * ``drop@P`` / ``tamper@P`` — per-message probability P;
    * ``ack-lie`` / ``equivocate`` — loss- and partition-exploiting
      lies, optionally ``@T`` for the first tick they apply.

    The accepted forms are exactly the rows of
    :data:`BEHAVIOR_GRAMMAR`; this function is a table lookup.

    :raises ConfigurationError: for unknown or malformed specs — the
        error enumerates the grammar.
    """
    if isinstance(spec, Behavior):
        return spec
    head, _, arg = spec.partition("@")
    grammar = BEHAVIOR_GRAMMAR.get(head)
    if grammar is None:
        raise ConfigurationError(
            f"unknown behaviour {spec!r}; "
            f"available: {behavior_grammar_help()} "
            "(scripted behaviours carry payload data and are construction-only: "
            "Behavior('scripted', script=...))"
        )
    return grammar[1](arg, spec)


def build_behavior(
    behavior: Behavior, node: NodeId, inner: Protocol, t: int
) -> Protocol:
    """Realise one declarative behaviour as a node protocol.

    :param inner: the honest protocol the node would have run — wrapped
        (crash/drop/tamper) or discarded (silent/noise/rush/scripted)
        depending on the kind.
    :param t: the run's fault budget (bounds the self-halting behaviours
        at ``t + 2``, past every honest protocol's deadline).
    """
    if behavior.kind == "silent":
        return SilentProtocol()
    if behavior.kind == "crash":
        return CrashProtocol(inner, behavior.at, recover_round=behavior.recover)
    if behavior.kind == "noise":
        return RandomNoiseProtocol(NOISE_POOL, halt_after=t + 2)
    if behavior.kind == "rush":
        return RushMirrorProtocol(halt_after=t + 2)
    if behavior.kind == "drop":
        return TamperingProtocol(
            inner, should_send=DropSends(behavior.prob, node)
        )
    if behavior.kind == "tamper":
        return TamperingProtocol(
            inner, transform=TamperPayloads(behavior.prob, node)
        )
    if behavior.kind == "ack-lie":
        return AckLieProtocol(inner, from_tick=behavior.at or 0)
    if behavior.kind == "equivocate":
        return EquivocatingProtocol(inner, from_tick=behavior.at or 0)
    script: dict[Round, list[tuple[NodeId, Any]]] = {}
    for round_, recipient, payload in behavior.script:
        script.setdefault(round_, []).append((recipient, payload))
    return ScriptedProtocol(script)


#: Optional per-context builder: ``(node, behavior, inner, t) -> Protocol
#: | None`` — ``None`` defers to :func:`build_behavior`.  How layers with
#: richer corruption (the AKD mux noise) reinterpret a kind without
#: forking the spec format.
BehaviorBuilder = Callable[[NodeId, Behavior, Protocol, int], "Protocol | None"]


@dataclass(frozen=True)
class AdversaryObservation:
    """What an adaptive strategy sees of the run, one snapshot per tick.

    A pure value: every field derives from the master seed and the
    events observed so far, so a strategy keyed on it is itself a pure
    function — which is what keeps adaptive runs bit-for-bit
    reproducible and plane-vs-manual property tests meaningful.

    :ivar tick: the kernel tick about to execute (no node has acted in
        it yet when the snapshot is taken).
    :ivar n: network size.
    :ivar t: the spec's fault budget.
    :ivar seed: the run's master seed.
    :ivar activity: per-node ``(messages sent, drops charged)`` counts
        over all earlier ticks (:meth:`repro.sim.Metrics.activity_snapshot`).
    :ivar faulty: nodes already corrupt — statically named by the spec
        or committed by this strategy in an earlier tick.
    :ivar budget_remaining: corruptions the strategy may still commit.
    """

    tick: Round
    n: int
    t: int
    seed: int | str
    activity: tuple[tuple[int, int], ...]
    faulty: tuple[NodeId, ...]
    budget_remaining: int


#: An adaptive strategy: observation -> corruptions to commit *now*
#: (``(node, behaviour-spec)`` pairs), or ``None`` / ``()`` for "not
#: yet".  Must be pure — no state, no randomness beyond the seed already
#: inside the observation.
AdaptiveStrategy = Callable[
    [AdversaryObservation], "Sequence[tuple[NodeId, str | Behavior]] | None"
]

#: Registered adaptive strategies, by ``adaptive:NAME`` spec name.
ADAPTIVE_STRATEGIES: dict[str, AdaptiveStrategy] = {}


def register_adaptive_strategy(name: str):
    """Register an :data:`AdaptiveStrategy` under ``adaptive:{name}``."""

    def decorate(strategy: AdaptiveStrategy) -> AdaptiveStrategy:
        if name in ADAPTIVE_STRATEGIES:
            raise ConfigurationError(
                f"adaptive strategy {name!r} registered twice"
            )
        ADAPTIVE_STRATEGIES[name] = strategy
        return strategy

    return decorate


class AdaptiveCoordinator:
    """Runs one adaptive strategy against a live run.

    Installed by :meth:`AdversarySpec.adaptive_protocols_for`: every
    honest node's protocol is wrapped in an :class:`AdaptiveCorruptible`
    that reports to this coordinator.  Once per tick — driven by the
    first wrapper the kernel activates, i.e. *before any node acts in
    that tick* — the coordinator snapshots the run and asks the strategy
    whether to commit corruptions.  The ≤ t budget is enforced at
    commitment time: static corruptions plus commitments may never
    exceed the spec's ``t``.

    :ivar committed: node -> behaviour, every corruption committed so
        far (in commitment order).
    """

    def __init__(self, spec: "AdversarySpec") -> None:
        strategy = ADAPTIVE_STRATEGIES.get(spec.strategy or "")
        if strategy is None:
            raise ConfigurationError(
                f"unknown adaptive strategy {spec.strategy!r}; "
                f"available: {', '.join(sorted(ADAPTIVE_STRATEGIES))}"
            )
        self._spec = spec
        self._strategy = strategy
        self._static_faulty = spec.faulty
        self.committed: dict[NodeId, Behavior] = {}
        self._last_tick: Round = -1

    @property
    def committed_nodes(self) -> frozenset[NodeId]:
        """Nodes corrupted online (excludes static corruptions)."""
        return frozenset(self.committed)

    @property
    def budget_remaining(self) -> int:
        """Corruptions the strategy may still commit within ``t``."""
        return self._spec.t - len(self._static_faulty) - len(self.committed)

    def observe(self, ctx: NodeContext) -> None:
        """Advance the strategy to ``ctx``'s tick (idempotent per tick)."""
        tick = ctx.round
        if tick <= self._last_tick:
            return
        self._last_tick = tick
        observation = AdversaryObservation(
            tick=tick,
            n=ctx.n,
            t=self._spec.t,
            seed=ctx.seed,
            activity=ctx.metrics.activity_snapshot(ctx.n),
            faulty=tuple(sorted(self._static_faulty | set(self.committed))),
            budget_remaining=self.budget_remaining,
        )
        for node, behavior in self._strategy(observation) or ():
            self.commit(node, behavior)

    def commit(self, node: NodeId, behavior: "str | Behavior") -> None:
        """Corrupt ``node`` from the current tick on.

        :raises ConfigurationError: if the node is already corrupt or
            the commitment would exceed the budget — the adaptive
            power's ``≤ t`` bound is enforced *here*, at commitment
            time, not at spec construction.
        """
        node = int(node)
        if node in self._static_faulty or node in self.committed:
            raise ConfigurationError(
                f"adaptive strategy {self._spec.strategy!r} committed node "
                f"{node} twice"
            )
        if self.budget_remaining <= 0:
            raise ConfigurationError(
                f"adaptive strategy {self._spec.strategy!r} exceeded the "
                f"fault budget t={self._spec.t}: static corruptions "
                f"{sorted(self._static_faulty)} + committed "
                f"{sorted(self.committed)} leave no budget for node {node}"
            )
        self.committed[node] = parse_behavior(behavior)


class AdaptiveCorruptible(Protocol):
    """Wrapper giving the adaptive adversary a hook on one honest node.

    Delegates to the honest inner protocol verbatim — same sends, same
    decisions, zero own traffic — until the coordinator commits a
    corruption for this node; from that tick on the committed behaviour
    (realised once via :func:`build_behavior`, inner already set up — no
    second ``setup``) runs instead.  An uncommitted wrapper is therefore
    observationally identical to the bare inner protocol, which is what
    the plane-vs-manual property tests pin bit-for-bit.
    """

    def __init__(
        self,
        inner: Protocol,
        node: NodeId,
        coordinator: AdaptiveCoordinator,
        t: int,
    ) -> None:
        self.inner = inner
        self.node = node
        self._coordinator = coordinator
        self._t = t
        self._active: Protocol | None = None

    def setup(self, ctx: NodeContext) -> None:
        self.inner.setup(ctx)

    def _resolve(self, ctx: NodeContext) -> Protocol:
        self._coordinator.observe(ctx)
        if self._active is None:
            behavior = self._coordinator.committed.get(self.node)
            if behavior is not None:
                self._active = build_behavior(
                    behavior, self.node, self.inner, self._t
                )
        return self._active if self._active is not None else self.inner

    def on_round(self, ctx: NodeContext, inbox: list) -> None:
        self._resolve(ctx).on_round(ctx, inbox)

    def on_activate(self, ctx: NodeContext, inbox: list) -> None:
        self._resolve(ctx).on_activate(ctx, inbox)


@register_adaptive_strategy("silence-muffled")
def _silence_muffled(obs: AdversaryObservation):
    """Corrupt the node whose silence maximises FD confusion.

    Waits two ticks of evidence, then silences the non-sender node the
    network has already muffled hardest (most drops charged to it; ties
    to the lowest id) — the node whose disappearance is hardest for a
    timeout FD to tell apart from ordinary loss.
    """
    if obs.tick < 2 or obs.budget_remaining <= 0 or obs.faulty:
        return None
    candidates = [
        (drops, -node)
        for node, (_, drops) in enumerate(obs.activity)
        if node != 0
    ]
    if not candidates:
        return None
    drops, neg_node = max(candidates)
    return ((-neg_node, "silent"),)


@register_adaptive_strategy("gag-sender")
def _gag_sender(obs: AdversaryObservation):
    """Corrupt the designated sender with ack-lies once the run is warm.

    From tick 1 the sender keeps heartbeating but stops emitting value
    payloads — the adversary that makes a static-horizon FD wait its
    whole deadline before (correctly) crying foul.
    """
    if obs.tick < 1 or obs.budget_remaining <= 0 or 0 in obs.faulty:
        return None
    return ((0, "ack-lie"),)


@dataclass(frozen=True)
class AdversarySpec:
    """Everything one run's adversary is allowed to do, as one object.

    :ivar corrupt: ``(node, behaviour)`` pairs — behaviours may be spec
        strings (normalised to :class:`Behavior` at construction).
    :ivar t: the fault budget the spec claims; construction fails if the
        corrupt set exceeds it.
    :ivar delivery: optional delivery-power spec string (see
        :func:`repro.sim.make_delivery`) granted to the run.
    :ivar overrides: ``(node, Protocol)`` pairs installing custom
        behaviours directly — counted against the same budget; may make
        the spec unpicklable (in-process use only).
    :ivar strategy: optional *adaptive* power — the name of a registered
        :data:`AdaptiveStrategy` that observes the run online and
        commits further corruptions lazily (spec form
        ``adaptive:NAME``).  Static corruptions plus online commitments
        share the one ``t`` budget; the online half is enforced at
        commitment time by the :class:`AdaptiveCoordinator`.

    Construction normalises and validates: behaviours parse, node ids
    are distinct across ``corrupt`` and ``overrides``, the strategy (if
    named) is registered, and the static corruption stays within ``t``.
    """

    corrupt: tuple[tuple[NodeId, Behavior], ...] = ()
    t: int = 0
    delivery: str | None = None
    overrides: tuple[tuple[NodeId, Protocol], ...] = ()
    strategy: str | None = None

    def __post_init__(self) -> None:
        corrupt = tuple(
            (int(node), parse_behavior(behavior))
            for node, behavior in (
                self.corrupt.items()
                if isinstance(self.corrupt, Mapping)
                else self.corrupt
            )
        )
        object.__setattr__(
            self, "corrupt", tuple(sorted(corrupt, key=lambda pair: pair[0]))
        )
        overrides = tuple(
            (int(node), protocol)
            for node, protocol in (
                self.overrides.items()
                if isinstance(self.overrides, Mapping)
                else self.overrides
            )
        )
        object.__setattr__(
            self, "overrides", tuple(sorted(overrides, key=lambda pair: pair[0]))
        )
        if self.t < 0:
            raise ConfigurationError(f"fault budget must be >= 0, got {self.t}")
        nodes = [node for node, _ in self.corrupt] + [
            node for node, _ in self.overrides
        ]
        if len(set(nodes)) != len(nodes):
            duplicates = sorted({n for n in nodes if nodes.count(n) > 1})
            raise ConfigurationError(
                f"nodes {duplicates} corrupted more than once in one adversary spec"
            )
        if any(node < 0 for node in nodes):
            raise ConfigurationError(f"corrupt node ids must be >= 0, got {nodes}")
        if len(nodes) > self.t:
            raise ConfigurationError(
                f"adversary corrupts {len(nodes)} nodes "
                f"({sorted(nodes)}) but the fault budget is t={self.t} — "
                "the paper's guarantees are only claimed within the budget"
            )
        if self.strategy is not None and self.strategy not in ADAPTIVE_STRATEGIES:
            raise ConfigurationError(
                f"unknown adaptive strategy {self.strategy!r}; "
                f"available: {', '.join(sorted(ADAPTIVE_STRATEGIES))}"
            )

    @property
    def faulty(self) -> frozenset[NodeId]:
        """All corrupted node ids (declarative and override alike)."""
        return frozenset(node for node, _ in self.corrupt) | frozenset(
            node for node, _ in self.overrides
        )

    @property
    def rushing(self) -> frozenset[NodeId]:
        """Nodes running the ``rush`` behaviour — the conventional
        rushing set for a ``rush`` delivery model."""
        return frozenset(
            node for node, behavior in self.corrupt if behavior.kind == "rush"
        )

    def spec(self) -> str:
        """The spec as a (mostly) round-trippable string, for messages."""
        items = [f"{node}={behavior.spec()}" for node, behavior in self.corrupt]
        items += [f"{node}=<custom>" for node, _ in self.overrides]
        if self.strategy:
            items.append(f"adaptive:{self.strategy}")
        if self.delivery:
            items.append(f"delivery={self.delivery}")
        return ";".join(items)

    def protocols_for(
        self,
        protocols: Sequence[Protocol],
        builder: BehaviorBuilder | None = None,
    ) -> list[Protocol]:
        """The run's protocol list with every corruption installed.

        :param protocols: the honest per-node protocols (index = node
            id); corrupt nodes' entries become the ``inner`` of wrapping
            behaviours.
        :param builder: optional context-specific reinterpretation of
            declarative kinds (see :data:`BehaviorBuilder`).
        :raises ConfigurationError: if a corrupt node id lies outside
            the network.
        """
        n = len(protocols)
        out = list(protocols)
        for node, behavior in self.corrupt:
            if node >= n:
                raise ConfigurationError(
                    f"adversary corrupts node {node} but the network has "
                    f"only {n} nodes"
                )
            built = builder(node, behavior, out[node], self.t) if builder else None
            if built is None:
                built = build_behavior(behavior, node, out[node], self.t)
            out[node] = built
        for node, protocol in self.overrides:
            if node >= n:
                raise ConfigurationError(
                    f"adversary overrides node {node} but the network has "
                    f"only {n} nodes"
                )
            out[node] = protocol
        return out

    def adaptive_protocols_for(
        self,
        protocols: Sequence[Protocol],
        builder: BehaviorBuilder | None = None,
    ) -> tuple[list[Protocol], AdaptiveCoordinator | None]:
        """Like :meth:`protocols_for`, plus the adaptive power.

        When the spec names a ``strategy``, every *honest* node's
        protocol is additionally wrapped in an
        :class:`AdaptiveCorruptible` reporting to a fresh
        :class:`AdaptiveCoordinator`, which is returned so the caller
        can read the committed corruptions after the run.  Without a
        strategy this is exactly :meth:`protocols_for` (coordinator
        ``None``).
        """
        out = self.protocols_for(protocols, builder)
        if self.strategy is None:
            return out, None
        coordinator = AdaptiveCoordinator(self)
        statically_faulty = self.faulty
        out = [
            protocol
            if node in statically_faulty
            else AdaptiveCorruptible(protocol, node, coordinator, self.t)
            for node, protocol in enumerate(out)
        ]
        return out, coordinator


def make_adversary(
    spec: "str | AdversarySpec | Mapping[NodeId, str | Behavior] | None",
    t: int,
    delivery: str | None = None,
) -> AdversarySpec | None:
    """Build an :class:`AdversarySpec` from a primitive spec string.

    The mirror of :func:`repro.sim.make_delivery` for the corruption
    half.  Spec strings are ``;``-separated items (``;`` because
    delivery specs contain ``,`` and ``:``):

    * ``NODE=BEHAVIOR`` — e.g. ``"3=silent"``, ``"5=crash@2-6"``,
      ``"6=drop@0.3"`` (see :func:`parse_behavior` for behaviours);
    * ``delivery=SPEC`` — the delivery power, e.g.
      ``delivery=loss:0.2`` (at most once);
    * ``adaptive:STRATEGY`` — the adaptive power, e.g.
      ``adaptive:silence-muffled`` (at most once; see
      :data:`ADAPTIVE_STRATEGIES`).

    A ready :class:`AdversarySpec` passes through unchanged; a mapping
    ``{node: behaviour}`` is wrapped; ``None`` stays ``None`` (no
    adversary).  The budget ``t`` is enforced at construction either
    way.

    :param delivery: default delivery power when the spec string names
        none.
    :raises ConfigurationError: for malformed items, unknown behaviours,
        duplicate nodes, or a corrupt set exceeding ``t``.
    """
    if spec is None:
        return None
    if isinstance(spec, AdversarySpec):
        return spec
    if isinstance(spec, Mapping):
        return AdversarySpec(corrupt=tuple(spec.items()), t=t, delivery=delivery)
    corrupt: list[tuple[NodeId, str]] = []
    strategy: str | None = None
    for item in spec.split(";"):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key or not value:
            head, colon, name = item.partition(":")
            if head == "adaptive" and colon and name:
                strategy = name
                continue
            raise ConfigurationError(
                f"adversary items must look like 'NODE=BEHAVIOR', "
                f"'delivery=SPEC' or 'adaptive:STRATEGY', got {item!r} "
                f"in {spec!r}"
            )
        if key == "delivery":
            delivery = value
            continue
        try:
            node = int(key)
        except ValueError:
            raise ConfigurationError(
                f"adversary node id must be an integer, got {item!r} in {spec!r}"
            ) from None
        corrupt.append((node, value))
    return AdversarySpec(
        corrupt=tuple(corrupt), t=t, delivery=delivery, strategy=strategy
    )
