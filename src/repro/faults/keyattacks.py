"""Adversarial behaviours against the key distribution protocol.

These are the attacks the paper's section 3.2 reasons about:

* **key sharing** (:class:`SharedKeyAttack`) — "some faulty node gives its
  secret key to some other faulty node which uses this key to sign its
  messages": two faulty nodes register the *same* predicate, so signed
  messages are assigned to both.  G1/G2 untouched (only faulty subjects
  involved); strict G3 still holds (all correct nodes make the *same*
  multi-assignment).
* **cross claiming** (:class:`CrossClaimAttack`) — "cooperating faulty
  nodes may well distribute their test predicates in a mixed manner such
  that two correct nodes assign a message to different faulty nodes": the
  canonical G3 violation.
* **mixed predicates** (:class:`MixedPredicateAttack`) — "a faulty node
  distributes different test predicates to the correct nodes", creating
  "classes of nodes such that the faulty node can select the class of
  nodes which can assign the message at all".
* **foreign claim** (:class:`ClaimForeignPredicateAttack`) — a faulty node
  tries to register a *correct* node's predicate as its own.  The
  challenge-response defeats it (Theorem 2's G1): without the secret key
  no acceptable response exists.

All attack behaviours are coordinated through an :class:`AdversaryCoordination`
object — the standard single-adversary model, where all faulty nodes share
state (including secret keys) out of band.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..crypto import DEFAULT_SCHEME
from ..crypto.keys import KeyPair, TestPredicate, get_scheme
from ..crypto.signing import sign_value
from ..auth.local import CHALLENGE, PREDICATE, RESPONSE, challenge_body
from ..sim import Envelope, NodeContext, Protocol
from ..types import NodeId


@dataclass
class AdversaryCoordination:
    """Shared adversary state: key material common to all faulty nodes.

    Keys are generated lazily on first request, from the rng of whichever
    coordinated node's ``setup`` runs first — deterministic because the
    runner initialises nodes in id order.
    """

    scheme: str = DEFAULT_SCHEME
    _keypairs: dict[str, KeyPair] = field(default_factory=dict)

    def keypair(self, label: str, rng: random.Random) -> KeyPair:
        """The shared keypair registered under ``label`` (lazily created)."""
        if label not in self._keypairs:
            self._keypairs[label] = get_scheme(self.scheme).generate_keypair(rng)
        return self._keypairs[label]

    def known_keypairs(self) -> dict[str, KeyPair]:
        """All keypairs generated so far, by label (for test assertions)."""
        return dict(self._keypairs)


class _KeyAttackBase(Protocol):
    """Common plumbing: participate in the 3-round schedule, answer
    challenges according to a per-challenger predicate choice."""

    def __init__(self, coordination: AdversaryCoordination) -> None:
        self.coordination = coordination

    # Subclasses override: which predicate does this node claim toward
    # ``peer``?  Returning None means claim nothing toward that peer.
    def _claimed_keypair(
        self, ctx: NodeContext, peer: NodeId
    ) -> KeyPair | None:
        raise NotImplementedError

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.round == 0:
            for peer in ctx.others():
                keypair = self._claimed_keypair(ctx, peer)
                if keypair is not None:
                    ctx.send(peer, (PREDICATE, keypair.predicate))
        elif ctx.round == 2:
            self._answer(ctx, inbox)
        elif ctx.round >= 3:
            ctx.halt()

    def _answer(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        """Answer each challenge with the key the challenger was shown.

        The adversary holds every coordinated secret, so it signs whatever
        challenge it likes — S1 is respected (it *knows* those keys), which
        is exactly why these attacks succeed at the directory level and
        must be caught later, at chain-verification time (Theorem 4).
        """
        for env in inbox:
            payload = env.payload
            if not (
                isinstance(payload, tuple)
                and len(payload) == 4
                and payload[0] == CHALLENGE
            ):
                continue
            challenger, challenged, nonce = payload[1], payload[2], payload[3]
            keypair = self._claimed_keypair(ctx, env.sender)
            if keypair is None or challenged != ctx.node:
                continue
            signed = sign_value(
                keypair.secret, challenge_body(challenger, challenged, nonce)
            )
            ctx.send(env.sender, (RESPONSE, signed))


class SharedKeyAttack(_KeyAttackBase):
    """Two (or more) faulty nodes register one shared key.

    Every node running this behaviour with the same coordination object
    and ``label`` claims the same predicate to everyone and answers all
    challenges with the shared secret.  Result: all correct directories
    bind that predicate to *all* the sharing nodes — Definition 1 yields a
    multi-assignment, consistently across correct observers.
    """

    def __init__(
        self, coordination: AdversaryCoordination, label: str = "shared"
    ) -> None:
        super().__init__(coordination)
        self._label = label

    def _claimed_keypair(self, ctx: NodeContext, peer: NodeId) -> KeyPair:
        return self.coordination.keypair(self._label, ctx.rng)


class CrossClaimAttack(_KeyAttackBase):
    """Coordinated pair distributing two keys in a crossed pattern.

    Toward peers in ``group_one`` this node claims key ``first_label``;
    toward everyone else, key ``second_label``.  Instantiating the partner
    with the labels swapped produces the paper's G3 violation: a message
    signed under ``first_label``'s key is assigned to this node by group
    one and to the partner by group two.
    """

    def __init__(
        self,
        coordination: AdversaryCoordination,
        group_one: set[NodeId],
        first_label: str = "x",
        second_label: str = "y",
    ) -> None:
        super().__init__(coordination)
        self._group_one = set(group_one)
        self._first = first_label
        self._second = second_label

    def _claimed_keypair(self, ctx: NodeContext, peer: NodeId) -> KeyPair:
        label = self._first if peer in self._group_one else self._second
        return self.coordination.keypair(label, ctx.rng)


class MixedPredicateAttack(CrossClaimAttack):
    """Single faulty node distributing different predicates to different
    correct nodes ("classes of nodes").

    Structurally a :class:`CrossClaimAttack` without a partner: group one
    accepts key A for this node, everyone else accepts key B, and a
    message signed with A is *unassignable* outside group one.
    """


class ClaimForeignPredicateAttack(Protocol):
    """Claim a correct node's predicate without knowing its secret.

    Broadcasts ``victim_predicate`` as its own in round 0.  Challenges
    cannot be answered (S1: no secret, no signature); the attacker either
    stays silent or, with ``garbage_responses=True``, returns syntactically
    valid but cryptographically worthless responses.  Theorem 2 (G1)
    predicts — and the tests confirm — that no correct node accepts.
    """

    def __init__(
        self, victim_predicate: TestPredicate, garbage_responses: bool = False
    ) -> None:
        self._predicate = victim_predicate
        self._garbage = garbage_responses

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.round == 0:
            ctx.broadcast((PREDICATE, self._predicate))
        elif ctx.round == 2 and self._garbage:
            for env in inbox:
                payload = env.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 4
                    and payload[0] == CHALLENGE
                ):
                    from ..crypto.signing import SignedMessage

                    fake = SignedMessage(
                        body=challenge_body(payload[1], payload[2], payload[3]),
                        signature=bytes(ctx.rng.getrandbits(8) for _ in range(64)),
                    )
                    ctx.send(env.sender, (RESPONSE, fake))
        elif ctx.round >= 3:
            ctx.halt()
