"""Adversarial behaviours against the Failure Discovery protocols.

Each attack targets a specific check in the protocols' discovery logic;
the FD tests pair every attack with the F1-F3 oracle to confirm that the
conditions survive (usually because some correct node discovers).
"""

from __future__ import annotations

from typing import Any

from ..auth.directory import KeyDirectory
from ..crypto.chain import extend_chain, sign_leaf
from ..crypto.keys import KeyPair
from ..crypto.signing import SignedMessage, garble_signature
from ..fd.authenticated import CHAIN_MSG, ChainFDProtocol
from ..sim import Envelope, NodeContext, Protocol
from ..types import NodeId, Round
from .behaviors import TamperingProtocol


class EquivocatingSender(Protocol):
    """A faulty sender telling different nodes different values.

    :param values: recipient -> value; each recipient is sent a properly
        signed leaf for its designated value in round 0.  Recipients not
        listed receive nothing.

    Against the chain protocol with ``t >= 1`` the spurious direct sends
    land outside the failure-free message pattern and are discovered; with
    ``t = 0`` the sender alone exceeds the fault budget, so F1-F3 do not
    bind (the tests assert the budget boundary both ways).
    """

    def __init__(self, keypair: KeyPair, values: dict[NodeId, Any]) -> None:
        self._keypair = keypair
        self._values = dict(values)

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.round == 0:
            for recipient, value in sorted(self._values.items()):
                leaf = sign_leaf(self._keypair.secret, value)
                ctx.send(recipient, (CHAIN_MSG, leaf))
        ctx.halt()


class FabricatingChainNode(Protocol):
    """A chain node that discards the real chain and forges its own.

    It cannot forge its predecessors' signatures (S1), so the best it can
    do is start a fresh chain from its own leaf — which fails the
    successor's expected-depth/expected-signers check.

    :param substitute_value: the value it tries to inject.
    """

    def __init__(
        self,
        n: int,
        t: int,
        keypair: KeyPair,
        substitute_value: Any,
    ) -> None:
        self._n = n
        self._t = t
        self._keypair = keypair
        self._value = substitute_value

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        node = ctx.node
        if ctx.round == node and 1 <= node <= self._t:
            forged = sign_leaf(self._keypair.secret, self._value)
            if node < self._t:
                ctx.send(node + 1, (CHAIN_MSG, forged))
            else:
                ctx.broadcast(
                    (CHAIN_MSG, forged), to=list(range(self._t + 1, self._n))
                )
        if ctx.round >= self._t + 1:
            ctx.halt()


class ImpersonatingChainNode(Protocol):
    """A chain node extending the chain with a key it claims is another's.

    The vehicle for the Theorem 4 experiments: combined with a key
    distribution attack (cross claiming / key sharing), this node signs
    its chain link with a key whose assignment differs between correct
    observers, so *somebody's* submessage check must fail.

    :param signing_keypair: the (shared/foreign) key to extend with.
    :param name_in_link: the predecessor name to embed (an honest extender
        embeds its true predecessor; a lying one embeds anything).
    """

    def __init__(
        self,
        n: int,
        t: int,
        signing_keypair: KeyPair,
        name_in_link: NodeId | None = None,
    ) -> None:
        self._n = n
        self._t = t
        self._keypair = signing_keypair
        self._name = name_in_link

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        node = ctx.node
        if ctx.round == node and 1 <= node <= self._t:
            chain = _first_chain_payload(inbox)
            if chain is not None:
                name = self._name if self._name is not None else node - 1
                extended = extend_chain(self._keypair.secret, name, chain)
                if node < self._t:
                    ctx.send(node + 1, (CHAIN_MSG, extended))
                else:
                    ctx.broadcast(
                        (CHAIN_MSG, extended),
                        to=list(range(self._t + 1, self._n)),
                    )
        if ctx.round >= self._t + 1:
            ctx.halt()


def _first_chain_payload(inbox: list[Envelope]) -> SignedMessage | None:
    for env in inbox:
        payload = env.payload
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == CHAIN_MSG
            and isinstance(payload[1], SignedMessage)
        ):
            return payload[1]
    return None


class DelayedRelayChainNode(Protocol):
    """A chain node that forwards a *valid* chain one round late.

    Delivery timing is part of the failure-free view: the successor
    expects the chain in exactly its designated round, so a correct chain
    message arriving late is discovered twice over — first as a missing
    message at the deadline, then as an unexpected message after it.

    :param delay: extra rounds to hold the chain before forwarding.
    """

    def __init__(
        self,
        n: int,
        t: int,
        keypair: KeyPair,
        delay: int = 1,
    ) -> None:
        self._n = n
        self._t = t
        self._keypair = keypair
        self._delay = delay
        self._held: SignedMessage | None = None
        self._forward_round: int | None = None

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        node = ctx.node
        if ctx.round == node and 1 <= node <= self._t:
            chain = _first_chain_payload(inbox)
            if chain is not None:
                self._held = extend_chain(self._keypair.secret, node - 1, chain)
                self._forward_round = ctx.round + self._delay
        if self._forward_round is not None and ctx.round == self._forward_round:
            if node < self._t:
                ctx.send(node + 1, (CHAIN_MSG, self._held))
            else:
                ctx.broadcast(
                    (CHAIN_MSG, self._held),
                    to=list(range(self._t + 1, self._n)),
                )
            self._forward_round = None
        if ctx.round >= self._t + 1 + self._delay:
            ctx.halt()


def withholding_chain_node(
    n: int,
    t: int,
    keypair: KeyPair,
    directory: KeyDirectory,
    withhold_from: set[NodeId],
    from_round: Round = 0,
) -> Protocol:
    """An otherwise honest chain node that drops messages to a target set.

    Selective withholding is the attack that distinguishes the sound chain
    protocol (victims discover a missing message) from the optimistic
    small-range variant (victims silently decide the default — the F2
    break documented in :mod:`repro.fd.smallrange`).
    """
    inner = ChainFDProtocol(n, t, keypair, directory)
    return TamperingProtocol(
        inner,
        should_send=lambda rnd, to, payload: not (
            rnd >= from_round and to in withhold_from
        ),
    )


def garbling_chain_node(
    n: int, t: int, keypair: KeyPair, directory: KeyDirectory
) -> Protocol:
    """An otherwise honest chain node whose outgoing signatures are garbled.

    Exercises the "check the signatures ... if negative then discover
    failure and stop" branch of paper Fig. 2 at the successor.
    """
    inner = ChainFDProtocol(n, t, keypair, directory)

    def transform(rnd: Round, to: NodeId, payload: Any) -> Any:
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == CHAIN_MSG
            and isinstance(payload[1], SignedMessage)
        ):
            return (CHAIN_MSG, garble_signature(payload[1]))
        return payload

    return TamperingProtocol(inner, transform=transform)


def duplicating_chain_node(
    n: int, t: int, keypair: KeyPair, directory: KeyDirectory
) -> Protocol:
    """An otherwise honest chain node that sends every message twice.

    Duplicates deviate from every failure-free view (exactly-one-message
    expectations), so successors discover.
    """
    inner = ChainFDProtocol(n, t, keypair, directory)

    class _Duplicator(TamperingProtocol):
        def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
            sent: list[tuple[NodeId, Any]] = []

            def record(rnd: Round, to: NodeId, payload: Any) -> bool:
                sent.append((to, payload))
                return True

            self._should_send = record
            super().on_round(ctx, inbox)
            for to, payload in sent:
                ctx.send(to, payload)

    return _Duplicator(inner)
