"""Generic Byzantine behaviours: crash, silence, drop, payload tampering.

The model places no restriction on faulty nodes ("If a node is faulty it
may behave in an arbitrary manner"), but every expressible behaviour still
goes through the simulator's send/receive API — network properties N1/N2
are *network* properties and hold regardless of who is sending.  These
wrappers compose arbitrary misbehaviour out of an honest inner protocol:
suppress some sends, rewrite some payloads, die at a chosen round.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim import Envelope, NodeContext, Protocol
from ..sim.message import payload_kind
from ..types import NodeId, Round

# (round, recipient, payload) -> deliver?  Used by the drop filter.
SendPredicate = Callable[[Round, NodeId, Any], bool]
# (round, recipient, payload) -> replacement payload.
PayloadTransform = Callable[[Round, NodeId, Any], Any]

#: Payload tags that carry an FD protocol's *value* (as opposed to pure
#: liveness traffic).  Duplicated literals rather than imports: the fault
#: layer must not import :mod:`repro.fd` (which imports back into
#: :mod:`repro.faults` for its attack scenarios), so the tags are pinned
#: here and equality with the FD modules' constants is asserted in
#: ``tests/faults/test_loss_exploits.py``.
FD_VALUE_TAGS = ("fd-timeout-value", "fd-adaptive-value")

#: Tag of the adaptive FD's acknowledgement payloads (same duplication
#: rationale as :data:`FD_VALUE_TAGS`).
FD_ACK_TAG = "fd-adaptive-ack"

#: The FD problem's designated sender.
_FD_SENDER: NodeId = 0

#: Marker embedded in an equivocator's garbled twin payloads.
EQUIVOCAL_TWIN = "equivocal-twin"


class SilentProtocol(Protocol):
    """A node that never says anything (crashed before the run).

    Note this is *not* a no-op for the system: peers expecting its
    messages see deviations from failure-free views and discover failures.
    """

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        ctx.halt()


class CrashProtocol(Protocol):
    """Behaves honestly, then crashes (halts silently) at ``crash_round``.

    A crash at round ``r`` means the node performs rounds ``0 .. r-1``
    honestly and sends nothing from round ``r`` on — the cleanest Byzantine
    behaviour, and already enough to exercise missing-message discovery.

    Crash-*recovery*: with ``recover_round`` set, the node does not halt
    but goes dark for ticks ``crash_round .. recover_round-1`` — sending
    nothing, acting on nothing — and resumes the honest inner protocol
    at ``recover_round`` *with its inbox intact*: every envelope that
    arrived during the outage is buffered, in arrival order, and handed
    to the inner protocol ahead of the recovery tick's own arrivals.
    This is the crash-recovery timing model of the weak-delivery
    experiments (E13): a recovering node has missed its chance to *act*
    in the dark ticks but has lost no delivered message.  Determinism is
    untouched — the buffer replays the kernel's own deterministic
    arrival sequence.

    :param recover_round: tick at which the node resumes, or ``None``
        (the classic fail-stop crash).
    """

    def __init__(
        self,
        inner: Protocol,
        crash_round: Round,
        recover_round: Round | None = None,
    ) -> None:
        if recover_round is not None and recover_round <= crash_round:
            raise ValueError(
                f"recover_round must come after crash_round, got "
                f"crash@{crash_round} recover@{recover_round}"
            )
        self.inner = inner
        self.crash_round = crash_round
        self.recover_round = recover_round
        self._outage_inbox: list[Envelope] = []

    def setup(self, ctx: NodeContext) -> None:
        self.inner.setup(ctx)

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.round >= self.crash_round:
            if self.recover_round is None:
                ctx.halt()
                return
            if ctx.round < self.recover_round:
                # Down but not out: keep the arrivals for the resume.
                self._outage_inbox.extend(inbox)
                return
            if self._outage_inbox:
                inbox = self._outage_inbox + list(inbox)
                self._outage_inbox = []
        self.inner.on_round(ctx, inbox)


class _InterceptingContext:
    """Context proxy that filters/rewrites outgoing messages.

    Delegates everything to the wrapped context except ``send`` (and hence
    ``broadcast``, which it reimplements on top of its own ``send`` so the
    filter sees every individual message).
    """

    def __init__(
        self,
        ctx: NodeContext,
        should_send: SendPredicate | None,
        transform: PayloadTransform | None,
    ) -> None:
        self._ctx = ctx
        self._should_send = should_send
        self._transform = transform

    def __getattr__(self, item: str) -> Any:
        return getattr(self._ctx, item)

    def send(self, to: NodeId, payload: Any) -> None:
        if self._should_send is not None and not self._should_send(
            self._ctx.round, to, payload
        ):
            return
        if self._transform is not None:
            payload = self._transform(self._ctx.round, to, payload)
        self._ctx.send(to, payload)

    def broadcast(self, payload: Any, to: list[NodeId] | None = None) -> None:
        recipients = self._ctx.others() if to is None else to
        for recipient in recipients:
            self.send(recipient, payload)

    def send_batch(
        self,
        channel: str,
        instance: int,
        payload: Any,
        to: list[NodeId] | None = None,
    ) -> int:
        # A columnar mux under this lens loses the batch fast path by
        # construction: the filter's contract is per-message, so the
        # batch send is re-materialised as the per-recipient wrapped
        # sends the object engine would have made (same wrapper object
        # shared across recipients, so byte metering still deduplicates
        # by identity).  Without this override the batch record would
        # slip past the filter via ``__getattr__`` and a tampered
        # columnar run would diverge from the object oracle.
        from ..sim.message import mux_wrap

        recipients = self._ctx.others() if to is None else list(to)
        wrapped = mux_wrap(channel, instance, payload)
        for recipient in recipients:
            self.send(recipient, wrapped)
        return len(recipients)


class TamperingProtocol(Protocol):
    """Runs an honest protocol through a message-tampering lens.

    :param inner: the honest behaviour to corrupt.
    :param should_send: per-message drop filter (None = keep all).
    :param transform: per-message payload rewrite (None = unchanged).

    This is the workhorse for targeted attacks: selective withholding
    (drop filter on specific recipients), signature garbling, value
    substitution — each expressed as a small closure in the test or
    scenario that builds it.
    """

    def __init__(
        self,
        inner: Protocol,
        should_send: SendPredicate | None = None,
        transform: PayloadTransform | None = None,
    ) -> None:
        self.inner = inner
        self._should_send = should_send
        self._transform = transform

    def setup(self, ctx: NodeContext) -> None:
        self.inner.setup(ctx)

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        proxy = _InterceptingContext(ctx, self._should_send, self._transform)
        self.inner.on_round(proxy, inbox)  # type: ignore[arg-type]


class ScriptedProtocol(Protocol):
    """Send an explicit script of messages; ignore everything received.

    :param script: round -> list of (recipient, payload) to emit.
    :param halt_after: round after which the node halts.

    Maximal-control behaviour for constructing exact counterexample runs
    (equivocation, fabricated chains, replayed messages).
    """

    def __init__(
        self,
        script: dict[Round, list[tuple[NodeId, Any]]],
        halt_after: Round | None = None,
    ) -> None:
        self._script = {r: list(msgs) for r, msgs in script.items()}
        if halt_after is None:
            halt_after = max(self._script, default=0)
        self._halt_after = halt_after

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for recipient, payload in self._script.get(ctx.round, []):
            ctx.send(recipient, payload)
        if ctx.round >= self._halt_after:
            ctx.halt()


class RushMirrorProtocol(Protocol):
    """Re-emits every observed payload to the other nodes, every round.

    The reference *rushing strategy*: under
    :class:`~repro.sim.network.AdversarialOrder` this node receives the
    honest round-``r`` traffic addressed to it *within* round ``r`` and
    mirrors it onward in the same round — its copies arrive at
    ``r + 1`` alongside (and indistinguishable in timing from) the
    originals, which no lock-step adversary can arrange.  Run under
    lock-step or bounded-delay models the identical behaviour only ever
    mirrors stale traffic, so sweeping the delivery axis with this one
    strategy isolates exactly what *scheduling power* (rather than a
    different attack) changes about agreement and discovery outcomes —
    the comparison experiment E12 tabulates.

    :param halt_after: round after which the node halts.
    :param max_mirrors: cap on mirrored copies per round (keeps the
        traffic amplification bounded; earliest observations win).
    """

    def __init__(self, halt_after: Round, max_mirrors: int = 16) -> None:
        self._halt_after = halt_after
        self._max_mirrors = max_mirrors

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        mirrored = 0
        for env in inbox:
            for recipient in ctx.others():
                if recipient == env.sender:
                    continue
                if mirrored >= self._max_mirrors:
                    break
                ctx.send(recipient, env.payload)
                mirrored += 1
        if ctx.round >= self._halt_after:
            ctx.halt()


class RandomNoiseProtocol(Protocol):
    """Sends random payloads from a pool to random peers, every round.

    All randomness is drawn from ``ctx.rng`` — the node's stream in a
    plain run, the *instance's* namespaced stream when hosted in an
    :class:`~repro.sim.multiplex.InstanceMux`.  The latter is what makes
    this the reference Byzantine behaviour for mux equivalence tests: an
    instance's noise is a pure function of ``(master seed, node,
    instance)``, so it replays identically whichever other instances
    share the run or the shard.

    :param pool: payload candidates (drawn uniformly, with replacement).
    :param halt_after: round after which the node halts.
    :param max_sends: upper bound on messages per round (at least one
        draw is made per round; a draw of zero recipients sends nothing).
    """

    def __init__(
        self, pool: tuple[Any, ...], halt_after: Round, max_sends: int = 3
    ) -> None:
        if not pool:
            raise ValueError("noise pool must not be empty")
        self._pool = tuple(pool)
        self._halt_after = halt_after
        self._max_sends = max_sends

    supports_batch_inbox = True

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        rng = ctx.rng
        others = ctx.others()
        for _ in range(rng.randrange(self._max_sends + 1)):
            recipient = rng.choice(others)
            payload = self._pool[rng.randrange(len(self._pool))]
            ctx.send(recipient, payload)
        if ctx.round >= self._halt_after:
            ctx.halt()

    def on_round_batch(self, ctx: NodeContext, batch) -> None:
        """Inbox-oblivious, so the columnar form costs nothing: never
        materialise envelopes this behaviour would not read."""
        self.on_round(ctx, [])


class AckLieProtocol(Protocol):
    """Selective-acknowledgement lies against FD retransmission.

    The loss-exploiting attack of experiment E14, in both placements:

    * **on the designated sender** — from ``from_tick`` on, every
      outgoing *value-bearing* payload (:data:`FD_VALUE_TAGS`) is
      suppressed while liveness traffic (heartbeats) still flows: the
      sender looks alive, so the static FD's receivers wait out their
      whole horizon before discovering, and retransmissions silently
      stop carrying the value;
    * **on a receiver** — on first contact from the sender it emits a
      *forged acknowledgement* (:data:`FD_ACK_TAG`) without having
      received any value: an ack-driven retransmitter (the adaptive FD)
      then strikes this node off its retry list, so lost value copies
      towards it are never resent — ack-then-drop.

    Everything else delegates to the honest inner protocol, so the
    corrupt node's timing footprint stays indistinguishable from an
    honest one's.

    :param inner: the honest behaviour to corrupt.
    :param from_tick: first tick the lies apply (default 0 = always).
    """

    def __init__(self, inner: Protocol, from_tick: Round = 0) -> None:
        self.inner = inner
        self.from_tick = from_tick
        self._lied = False

    def setup(self, ctx: NodeContext) -> None:
        self.inner.setup(ctx)

    def _should_send(self, round_: Round, to: NodeId, payload: Any) -> bool:
        if round_ < self.from_tick:
            return True
        return payload_kind(payload) not in FD_VALUE_TAGS

    def _forge_ack(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if (
            self._lied
            or ctx.node == _FD_SENDER
            or ctx.round < self.from_tick
            or not any(env.sender == _FD_SENDER for env in inbox)
        ):
            return
        ctx.send(_FD_SENDER, (FD_ACK_TAG, int(ctx.node)))
        self._lied = True

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self._forge_ack(ctx, inbox)
        proxy = _InterceptingContext(ctx, self._should_send, None)
        self.inner.on_round(proxy, inbox)  # type: ignore[arg-type]


class EquivocatingProtocol(Protocol):
    """Partition-straddling equivocation: two stories, one per side.

    From ``from_tick`` on, payloads to the *lower* half of the id space
    (``node < n // 2``) pass through genuine while payloads to the upper
    half are replaced by recognisably-garbled twins — same leading tag,
    body stamped :data:`EQUIVOCAL_TWIN`.  Under a
    :class:`~repro.sim.network.PartitionedDelivery` split along the same
    boundary, each side sees a *consistent* story for as long as the
    partition holds; whether the heal exposes the equivocation (garbled
    twins finally crossing, failing signature checks) or hides it (run
    ends first, deferred twins swept as drops) is exactly what the
    ``e14-equivocation`` workload measures.

    :param inner: the honest behaviour to corrupt.
    :param from_tick: first tick the equivocation applies (default 0).
    """

    def __init__(self, inner: Protocol, from_tick: Round = 0) -> None:
        self.inner = inner
        self.from_tick = from_tick

    def setup(self, ctx: NodeContext) -> None:
        self.inner.setup(ctx)

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        split = ctx.n // 2
        node = int(ctx.node)
        from_tick = self.from_tick

        def transform(round_: Round, to: NodeId, payload: Any) -> Any:
            if round_ < from_tick or to < split:
                return payload
            if isinstance(payload, tuple) and payload:
                return (payload[0], EQUIVOCAL_TWIN, node, int(round_))
            return (EQUIVOCAL_TWIN, node, int(round_))

        proxy = _InterceptingContext(ctx, None, transform)
        self.inner.on_round(proxy, inbox)  # type: ignore[arg-type]
