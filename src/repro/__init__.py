"""repro — reproduction of Borcherding, *Efficient Failure Discovery with
Limited Authentication* (ICDCS 1995).

The paper introduces **local authentication**: a challenge-response key
distribution protocol that any fully connected synchronous network can run
with *no* trusted dealer and under *any* number of Byzantine faults, and
shows that authenticated **Failure Discovery** protocols — linear message
complexity instead of the non-authenticated quadratic — remain correct
with only this weaker authentication.

Package map (bottom-up):

* :mod:`repro.crypto` — canonical encoding, RSA / Schnorr / simulated
  signature schemes (axioms S1-S3), named chain signatures (Theorem 4);
* :mod:`repro.sim` — the synchronous round network (properties N1/N2);
* :mod:`repro.faults` — Byzantine behaviours and key-distribution attacks;
* :mod:`repro.auth` — the key distribution protocol (Fig. 1), trusted
  dealer baseline, assignment properties G1-G3;
* :mod:`repro.fd` — the Failure Discovery problem (F1-F3), chain protocol
  (Fig. 2), echo baseline, small-range variants;
* :mod:`repro.agreement` — OM(t), SM(t), the FD→BA extension, degradable
  agreement;
* :mod:`repro.analysis` — closed-form complexity and amortization;
* :mod:`repro.harness` — scenario runner, attack catalogue, sweeps.

Quickstart::

    from repro.harness import run_fd_scenario, LOCAL

    outcome = run_fd_scenario(n=8, t=2, value="commit", auth=LOCAL, seed=1)
    assert outcome.fd.ok                       # F1-F3 hold
    assert outcome.run.metrics.messages_total == 7   # n - 1
    assert outcome.kd.messages == 3 * 8 * 7          # 3 n (n-1), once
"""

from . import agreement, analysis, auth, crypto, faults, fd, harness, sim
from .errors import ReproError
from .types import NodeId, Round, default_fault_budget

__version__ = "1.0.0"

__all__ = [
    "NodeId",
    "ReproError",
    "Round",
    "agreement",
    "analysis",
    "auth",
    "crypto",
    "default_fault_budget",
    "faults",
    "fd",
    "harness",
    "sim",
]
