"""Parameter sweeps: the loops behind every benchmark series.

Kept deliberately simple — a sweep is a list of parameter points and a
function applied to each, with results collected in order so benchmark
output is stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Iterable, Sequence

from ..types import default_fault_budget


@dataclass(frozen=True)
class SweepPoint:
    """One parameter point and its measurement."""

    params: dict[str, Any]
    result: Any


def grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes, in axis-order-major sequence.

    >>> grid(n=[4, 8], seed=[0, 1])
    [{'n': 4, 'seed': 0}, {'n': 4, 'seed': 1}, {'n': 8, 'seed': 0}, {'n': 8, 'seed': 1}]
    """
    names = list(axes)
    return [
        dict(zip(names, combo)) for combo in product(*(axes[name] for name in names))
    ]


def sweep(
    points: Iterable[dict[str, Any]], fn: str | Callable[..., Any]
) -> list[SweepPoint]:
    """Apply ``fn(**params)`` to every point, collecting results in order.

    ``fn`` is a callable or the name of a workload registered in
    :mod:`repro.harness.workloads` — the registry is how the benchmark
    suites dispatch (names are stable and always picklable).

    Serial reference executor.  :func:`repro.harness.parallel.sweep_parallel`
    is the drop-in process-parallel variant; both produce identical
    :class:`SweepPoint` lists for the same points (seeds travel inside the
    points, so results are pure functions of the params).
    """
    if isinstance(fn, str):
        from .workloads import resolve_workload

        fn = resolve_workload(fn)
    return [SweepPoint(params=dict(p), result=fn(**p)) for p in points]


def standard_sizes(small: bool = False) -> list[int]:
    """Network sizes used across the experiment suite.

    :param small: trimmed list for quick runs / CI.
    """
    return [4, 8, 16] if small else [4, 8, 16, 32, 64]


def sizes_with_budgets(sizes: Iterable[int]) -> list[tuple[int, int]]:
    """``(n, t)`` pairs with the conventional budget ``t = (n-1)//3``."""
    return [(n, default_fault_budget(n)) for n in sizes]
