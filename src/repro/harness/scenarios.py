"""Named attack scenarios for the discovery experiments (E6).

Each scenario packages: which nodes are Byzantine, how they misbehave
during key distribution and/or the FD run, and what the paper's theorems
predict about the outcome.  The E6 benchmark and the integration tests
iterate this catalogue.

Scenarios are re-layered onto the adversary plane
(:mod:`repro.faults.adversary`): :meth:`AttackScenario.adversary` turns
a scenario's FD-phase corruption into a deferred
:class:`~repro.faults.AdversarySpec` factory the scenario runners
consume — one corruption vocabulary for the whole library, with the
``≤ t`` budget enforced when the spec is built.  The raw
``fd_adversary_factory`` field remains the thin facade the existing
call sites keep using.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..auth.directory import KeyDirectory
from ..crypto.keys import KeyPair
from ..faults import (
    AdversaryCoordination,
    AdversarySpec,
    CrossClaimAttack,
    FabricatingChainNode,
    ImpersonatingChainNode,
    MixedPredicateAttack,
    SharedKeyAttack,
    SilentProtocol,
    garbling_chain_node,
    withholding_chain_node,
)
from ..sim import Protocol
from ..types import NodeId


def _no_fd_adversaries(n, t, keypairs, directories):
    """Default FD-phase adversary factory: no replacements."""
    return {}


@dataclass
class AttackScenario:
    """A named Byzantine scenario against key distribution + chain FD.

    :ivar name: stable identifier used in reports.
    :ivar faulty: the Byzantine node set.
    :ivar expects_discovery: whether, per the paper's theorems, at least
        one correct node must discover a failure in the FD run (scenarios
        that merely corrupt the *directories* without touching the FD run
        may legitimately complete undiscovered — the corruption only
        matters once a corrupted key signs something).
    :ivar description: what the scenario exercises.
    """

    name: str
    faulty: set[NodeId]
    kd_adversaries: Callable[[], dict[NodeId, Protocol]]
    fd_adversary_factory: Callable[
        [int, int, dict[NodeId, KeyPair], dict[NodeId, KeyDirectory]],
        dict[NodeId, Protocol],
    ] = field(default=_no_fd_adversaries)
    expects_discovery: bool = True
    description: str = ""

    def adversary(
        self, n: int, t: int
    ) -> Callable[
        [dict[NodeId, KeyPair], dict[NodeId, KeyDirectory]], AdversarySpec
    ]:
        """The FD-phase corruption as a deferred adversary-plane spec.

        Returns the ``(keypairs, directories) -> AdversarySpec`` factory
        the scenario runners accept as ``adversary=``: the scenario's
        key-material-dependent behaviours ride in the spec's
        ``overrides``, and building the spec enforces the ``≤ t``
        corruption budget — a scenario can no longer claim a resilience
        its faulty set exceeds.
        """

        def build(
            keypairs: dict[NodeId, KeyPair],
            directories: dict[NodeId, KeyDirectory],
        ) -> AdversarySpec:
            overrides = self.fd_adversary_factory(n, t, keypairs, directories)
            return AdversarySpec(overrides=tuple(overrides.items()), t=t)

        return build


def _shared_key_chain_scenario(n: int, t: int) -> AttackScenario:
    """Faulty pair shares a key; the in-chain one signs with it.

    Receivers assign the signature to *both* sharers — consistently, which
    is why the paper notes key sharing does not break G3 and why this run
    legitimately completes without discovery."""
    coordination = AdversaryCoordination()
    a, b = t, n - 1  # one in the chain, one receiver

    def kd() -> dict[NodeId, Protocol]:
        return {
            a: SharedKeyAttack(coordination, "shared"),
            b: SharedKeyAttack(coordination, "shared"),
        }

    def fd(n_, t_, keypairs, directories) -> dict[NodeId, Protocol]:
        shared = coordination.known_keypairs()["shared"]
        return {
            a: ImpersonatingChainNode(n_, t_, shared),
            b: SilentProtocol(),
        }

    return AttackScenario(
        name="shared-key-chain",
        faulty={a, b},
        kd_adversaries=kd,
        fd_adversary_factory=fd,
        # Key sharing is the benign case of the paper's G3 discussion:
        # "still all correct recipients of the signed message assign it to
        # the same node" — every correct node makes the same
        # multi-assignment, the chain verifies everywhere, and F1-F3 hold
        # without any discovery being necessary.
        expects_discovery=False,
        description=(
            "two faulty nodes register one key (paper G3 discussion); the "
            "in-chain one extends the chain with it — consistent "
            "multi-assignment, legitimately undiscovered"
        ),
    )


def _cross_claim_scenario(n: int, t: int) -> AttackScenario:
    """The paper's mixed-manner distribution: two faulty nodes cross-claim
    two keys so correct observers assign signatures to different nodes;
    one of them then signs inside the chain."""
    coordination = AdversaryCoordination()
    a, b = t, n - 1
    group_one = {node for node in range(n) if node % 2 == 0 and node not in (a, b)}

    def kd() -> dict[NodeId, Protocol]:
        return {
            a: CrossClaimAttack(coordination, group_one, "x", "y"),
            b: CrossClaimAttack(coordination, group_one, "y", "x"),
        }

    def fd(n_, t_, keypairs, directories) -> dict[NodeId, Protocol]:
        key_x = coordination.known_keypairs()["x"]
        return {
            a: ImpersonatingChainNode(n_, t_, key_x),
            b: SilentProtocol(),
        }

    return AttackScenario(
        name="cross-claim-chain",
        faulty={a, b},
        kd_adversaries=kd,
        fd_adversary_factory=fd,
        expects_discovery=True,
        description=(
            "cooperating faulty nodes distribute predicates in a mixed "
            "manner (paper section 3.2) and then sign in the chain — the "
            "Theorem 4 situation"
        ),
    )


def _mixed_predicate_scenario(n: int, t: int) -> AttackScenario:
    """A single faulty chain node gives different predicates to different
    correct nodes, creating assignment classes, then signs in the chain:
    the class that cannot assign must discover."""
    coordination = AdversaryCoordination()
    a = t
    group_one = {node for node in range(n) if node % 2 == 1 and node != a}

    def kd() -> dict[NodeId, Protocol]:
        return {a: MixedPredicateAttack(coordination, group_one, "p", "q")}

    def fd(n_, t_, keypairs, directories) -> dict[NodeId, Protocol]:
        key_p = coordination.known_keypairs()["p"]
        return {a: ImpersonatingChainNode(n_, t_, key_p)}

    return AttackScenario(
        name="mixed-predicate-chain",
        faulty={a},
        kd_adversaries=kd,
        fd_adversary_factory=fd,
        expects_discovery=True,
        description=(
            "faulty node distributes different test predicates to correct "
            "node classes (paper section 3.2), then signs in the chain"
        ),
    )


def _withholding_scenario(n: int, t: int) -> AttackScenario:
    def fd(n_, t_, keypairs, directories) -> dict[NodeId, Protocol]:
        return {
            1: withholding_chain_node(
                n_, t_, keypairs[1], directories[1], withhold_from={2}
            )
        }

    return AttackScenario(
        name="withholding-chain-node",
        faulty={1},
        kd_adversaries=dict,
        fd_adversary_factory=fd,
        expects_discovery=True,
        description="chain node drops the chain message to its successor",
    )


def _garbling_scenario(n: int, t: int) -> AttackScenario:
    def fd(n_, t_, keypairs, directories) -> dict[NodeId, Protocol]:
        return {1: garbling_chain_node(n_, t_, keypairs[1], directories[1])}

    return AttackScenario(
        name="garbling-chain-node",
        faulty={1},
        kd_adversaries=dict,
        fd_adversary_factory=fd,
        expects_discovery=True,
        description="chain node forwards the chain with a corrupted signature",
    )


def _fabricating_scenario(n: int, t: int) -> AttackScenario:
    def fd(n_, t_, keypairs, directories) -> dict[NodeId, Protocol]:
        return {1: FabricatingChainNode(n_, t_, keypairs[1], "forged-value")}

    return AttackScenario(
        name="fabricating-chain-node",
        faulty={1},
        kd_adversaries=dict,
        fd_adversary_factory=fd,
        expects_discovery=True,
        description=(
            "chain node discards the chain and restarts it from its own "
            "leaf with a substituted value"
        ),
    )


def _crash_scenario(n: int, t: int) -> AttackScenario:
    def fd(n_, t_, keypairs, directories) -> dict[NodeId, Protocol]:
        return {1: SilentProtocol()}

    return AttackScenario(
        name="crashed-chain-node",
        faulty={1},
        kd_adversaries=dict,
        fd_adversary_factory=fd,
        expects_discovery=True,
        description="chain node crashed before the run",
    )


def attack_catalogue(n: int, t: int) -> list[AttackScenario]:
    """All E6 scenarios instantiated for the given network shape.

    Requires ``t >= 1`` (the attacks place a faulty node inside the chain)
    and ``n >= t + 3`` (at least two receivers).
    """
    if t < 1 or n < t + 3:
        raise ValueError(f"attack catalogue needs t >= 1 and n >= t+3, got n={n}, t={t}")
    return [
        _withholding_scenario(n, t),
        _garbling_scenario(n, t),
        _fabricating_scenario(n, t),
        _crash_scenario(n, t),
        _shared_key_chain_scenario(n, t),
        _cross_claim_scenario(n, t),
        _mixed_predicate_scenario(n, t),
    ]
