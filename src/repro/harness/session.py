"""Amortized sessions: pay for key distribution once, run FD many times.

This is the deployment story of the paper's Summary: "one can run
arbitrarily many Failure Discovery protocols with low message complexity"
after establishing local authentication once.  An :class:`AmortizedSession`
holds the authentication state across runs and keeps a cumulative ledger
comparing against the non-authenticated baseline, so callers can watch the
3·n·(n−1) investment pay off run by run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis import fd_nonauth_messages
from ..auth import run_key_distribution, trusted_dealer_setup
from ..crypto import DEFAULT_SCHEME
from ..fd import evaluate_fd, make_chain_fd_protocols
from ..sim import Protocol, make_delivery, run_protocols
from ..types import NodeId, validate_fault_budget
from .runner import GLOBAL, LOCAL, AdversaryFactory, ScenarioOutcome


@dataclass(frozen=True)
class LedgerEntry:
    """Cumulative totals after one more FD run in the session."""

    runs: int
    local_total: int      # keydist (if any) + all FD runs so far
    baseline_total: int   # what runs * echo-FD would have cost

    @property
    def amortized(self) -> bool:
        """True once the session has beaten the non-auth baseline."""
        return self.local_total < self.baseline_total


class AmortizedSession:
    """Authentication established once; chain-FD runs on demand.

    :param n: network size.
    :param t: fault budget for every FD run in the session.
    :param auth: :data:`LOCAL` (pay 3n(n−1) up front, the paper's setting)
        or :data:`GLOBAL` (trusted dealer, zero setup messages).
    :param seed: master seed for key generation.

    Example::

        session = AmortizedSession(n=16, t=5, auth=LOCAL)
        for k in range(20):
            outcome = session.run(value=("op", k), seed=k)
            assert outcome.fd.ok
        assert session.ledger[-1].amortized  # 3n(n-1) has paid for itself
    """

    def __init__(
        self,
        n: int,
        t: int,
        auth: str = LOCAL,
        scheme: str = DEFAULT_SCHEME,
        seed: int | str = 0,
        delivery: str | None = None,
    ) -> None:
        validate_fault_budget(t, n)
        self.n = n
        self.t = t
        self.auth = auth
        #: Delivery model spec applied to every FD run in the session
        #: (the key-distribution investment stays lock-step — it is the
        #: paper's baseline being amortized).
        self.delivery = delivery
        if auth == LOCAL:
            self._kd = run_key_distribution(n, scheme=scheme, seed=seed)
            self.keypairs = self._kd.keypairs
            self.directories = self._kd.directories
            self.setup_messages = self._kd.messages
        elif auth == GLOBAL:
            self._kd = None
            self.keypairs, self.directories = trusted_dealer_setup(
                n, scheme=scheme, seed=seed
            )
            self.setup_messages = 0
        else:
            from ..errors import ConfigurationError

            raise ConfigurationError(f"unknown auth mode {auth!r}")
        self._fd_messages = 0
        self.ledger: list[LedgerEntry] = []

    def run(
        self,
        value: Any,
        seed: int | str = 0,
        adversary_factory: AdversaryFactory | None = None,
        faulty: set[NodeId] | None = None,
    ) -> ScenarioOutcome:
        """Run one chain-FD instance over the session's key material."""
        adversaries: dict[NodeId, Protocol] = (
            adversary_factory(self.keypairs, self.directories)
            if adversary_factory is not None
            else {}
        )
        if faulty is None:
            faulty = set(adversaries)
        correct = set(range(self.n)) - faulty
        protocols = make_chain_fd_protocols(
            self.n, self.t, value, self.keypairs, self.directories,
            adversaries=adversaries,
        )
        run = run_protocols(
            protocols, seed=seed, delivery=make_delivery(self.delivery)
        )
        self._fd_messages += run.metrics.messages_total
        self.ledger.append(
            LedgerEntry(
                runs=len(self.ledger) + 1,
                local_total=self.setup_messages + self._fd_messages,
                baseline_total=(len(self.ledger) + 1)
                * fd_nonauth_messages(self.n, self.t),
            )
        )
        return ScenarioOutcome(
            kd=self._kd,
            run=run,
            fd=evaluate_fd(run, correct, sender=0, sender_value=value),
            ba=None,
            correct=correct,
        )

    def crossover_run(self) -> int | None:
        """The run index at which the session first beat the baseline."""
        for entry in self.ledger:
            if entry.amortized:
                return entry.runs
        return None
