"""Experiment harness: scenario runner, attack catalogue, sweeps."""

from .parallel import (
    default_workers,
    run_mux_shards,
    set_default_workers,
    shard_instances,
    sweep_parallel,
    sweep_prefix_shared,
)
from .runner import (
    GLOBAL,
    LOCAL,
    ScenarioOutcome,
    run_ba_scenario,
    run_fd_scenario,
    setup_authentication,
)
from .scenarios import AttackScenario, attack_catalogue
from .session import AmortizedSession, LedgerEntry
from .sweep import SweepPoint, grid, sizes_with_budgets, standard_sizes, sweep
from .workloads import (
    available_workloads,
    get_workload,
    resolve_workload,
    workload_deliveries,
    workload_suite,
)

__all__ = [
    "available_workloads",
    "get_workload",
    "resolve_workload",
    "AmortizedSession",
    "AttackScenario",
    "GLOBAL",
    "LedgerEntry",
    "LOCAL",
    "ScenarioOutcome",
    "SweepPoint",
    "attack_catalogue",
    "default_workers",
    "grid",
    "run_ba_scenario",
    "run_fd_scenario",
    "run_mux_shards",
    "set_default_workers",
    "setup_authentication",
    "shard_instances",
    "sizes_with_budgets",
    "standard_sizes",
    "sweep",
    "sweep_parallel",
    "sweep_prefix_shared",
    "workload_deliveries",
    "workload_suite",
]
