"""Scenario runner: authentication setup + protocol run + evaluation.

One call = one experiment data point.  The runner wires together the
layers in the order the paper prescribes: establish authentication (local
key distribution or global trusted dealer), then run a Failure Discovery
or agreement protocol on the resulting key material, then evaluate the
F1-F3 / BA conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..agreement import (
    BAEvaluation,
    evaluate_ba,
    make_extended_protocols,
    make_signed_agreement_protocols,
)
from ..auth import (
    KeyDirectory,
    KeyDistributionResult,
    run_key_distribution,
    trusted_dealer_setup,
)
from ..crypto import DEFAULT_SCHEME
from ..crypto.keys import KeyPair
from ..errors import ConfigurationError
from ..faults.adversary import AdaptiveCoordinator, AdversarySpec, make_adversary
from ..fd import (
    FDEvaluation,
    evaluate_fd,
    make_adaptive_fd_protocols,
    make_chain_fd_protocols,
    make_echo_fd_protocols,
    make_small_range_protocols,
    make_timeout_fd_protocols,
)
from ..sim import (
    DeliveryModel,
    EventKernel,
    KernelSnapshot,
    Protocol,
    Runner,
    RunResult,
    capture_kernel,
    make_delivery,
    retune_protocols,
    run_protocols,
)
from ..types import NodeId

#: Authentication modes: the paper's new mechanism vs the classic baseline.
LOCAL = "local"
GLOBAL = "global"

# Given the authentication outputs, build the faulty nodes' behaviours.
AdversaryFactory = Callable[
    [dict[NodeId, KeyPair], dict[NodeId, KeyDirectory]], dict[NodeId, Protocol]
]

#: The ``adversary=`` parameter of the scenario runners: a spec string, a
#: ready :class:`~repro.faults.AdversarySpec`, or a deferred factory
#: ``(keypairs, directories) -> AdversarySpec`` for corruption that needs
#: key material (the attack scenarios).
AdversaryInput = Any


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced.

    :ivar kd: the key distribution result (None under global auth).
    :ivar run: the protocol run itself.
    :ivar fd: F1-F3 evaluation (None for BA scenarios).
    :ivar ba: BA evaluation (None for FD scenarios).
    :ivar correct: the correct-node set the evaluation used — with
        adaptive corruptions already subtracted.
    :ivar committed: corruptions an adaptive adversary strategy
        committed online, as ``(node, behaviour-spec)`` pairs in node
        order (empty for static adversaries).
    """

    kd: KeyDistributionResult | None
    run: RunResult
    fd: FDEvaluation | None
    ba: BAEvaluation | None
    correct: set[NodeId]
    committed: tuple[tuple[NodeId, str], ...] = ()

    @property
    def total_messages(self) -> int:
        """Protocol messages plus (under local auth) key distribution."""
        kd_messages = self.kd.messages if self.kd is not None else 0
        return kd_messages + self.run.metrics.messages_total


def setup_authentication(
    n: int,
    auth: str = GLOBAL,
    scheme: str = DEFAULT_SCHEME,
    seed: int | str = 0,
    kd_adversaries: dict[NodeId, Protocol] | None = None,
) -> tuple[dict[NodeId, KeyPair], dict[NodeId, KeyDirectory], KeyDistributionResult | None]:
    """Establish keys and directories in the requested mode.

    :param auth: :data:`LOCAL` (run the paper's Fig. 1 protocol, possibly
        with Byzantine participants) or :data:`GLOBAL` (trusted dealer).
    :returns: ``(keypairs, directories, kd_result_or_None)``.
    """
    if auth == GLOBAL:
        if kd_adversaries:
            raise ConfigurationError(
                "key-distribution adversaries only make sense under local auth"
            )
        keypairs, directories = trusted_dealer_setup(n, scheme=scheme, seed=seed)
        return keypairs, directories, None
    if auth == LOCAL:
        kd = run_key_distribution(
            n, scheme=scheme, adversaries=kd_adversaries, seed=seed
        )
        return kd.keypairs, kd.directories, kd
    raise ConfigurationError(f"unknown auth mode {auth!r}")


def _resolve_adversary(
    adversary: "str | AdversarySpec | None",
    t: int,
    legacy_adversaries: set[NodeId],
    delivery: "str | DeliveryModel | None",
) -> tuple[AdversarySpec | None, "str | DeliveryModel | None"]:
    """Fold the adversary plane into a scenario's legacy knobs.

    One resolution rule for both scenario runners: parse the spec
    (budget enforced against ``t``), refuse corruption collisions with
    the legacy factory path *of the same protocol run* (kd-phase
    adversaries may legitimately corrupt the same nodes again — that is
    a different run), and let the spec's delivery power apply when the
    caller named none.
    """
    spec = make_adversary(adversary, t=t)
    if spec is None:
        return None, delivery
    collisions = legacy_adversaries & spec.faulty
    if collisions:
        raise ConfigurationError(
            f"nodes {sorted(collisions)} are corrupted by both the adversary "
            "spec and a legacy adversary factory — name each corruption once"
        )
    if delivery is None and spec.delivery is not None:
        delivery = spec.delivery
    return spec, delivery


def _find_coordinator(protocols: list[Protocol]) -> AdaptiveCoordinator | None:
    """The adaptive coordinator shared by a run's wrapper protocols, if
    any — recovered from a resumed kernel's protocol list (the
    single-pickle snapshot preserves the sharing, so the first wrapper's
    coordinator *is* every wrapper's coordinator)."""
    for protocol in protocols:
        coordinator = getattr(protocol, "_coordinator", None)
        if isinstance(coordinator, AdaptiveCoordinator):
            return coordinator
    return None


def _resume_fd_scenario(
    snapshot: KernelSnapshot,
    *,
    n: int,
    t: int,
    value: Any,
    protocol: str,
    seed: int | str,
    delivery: "str | DeliveryModel | None",
    protocol_params: dict[str, Any] | None,
) -> ScenarioOutcome:
    """Finish an FD scenario from a prefix snapshot and evaluate it.

    The suffix half of :func:`run_fd_scenario`'s ``resume_from`` mode:
    validates the snapshot against the caller's scenario parameters
    (mismatched forks fail fast instead of silently evaluating the
    wrong run), retunes any ``protocol_params`` onto the resumed
    protocols (the warm-started sweep axis), runs to completion, and
    evaluates exactly as the straight path would.
    """
    scenario = snapshot.extras.get("scenario")
    if not isinstance(scenario, dict) or scenario.get("kind") != "fd":
        raise ConfigurationError(
            "snapshot does not carry an FD scenario fingerprint — "
            "resume_from expects a snapshot made by run_fd_scenario(..., "
            "checkpoint_at=T)"
        )
    for name, given in (
        ("n", n), ("t", t), ("protocol", protocol), ("seed", seed)
    ):
        if scenario.get(name) != given:
            raise ConfigurationError(
                f"resume mismatch: snapshot was taken with "
                f"{name}={scenario.get(name)!r}, this call passes {given!r}"
            )
    recorded = scenario.get("delivery")
    if (
        isinstance(delivery, str)
        and isinstance(recorded, str)
        and delivery != recorded
    ):
        raise ConfigurationError(
            f"resume mismatch: snapshot was taken under delivery "
            f"{recorded!r}, this call passes {delivery!r} — the delivery "
            "model is part of the shared prefix, not a fork axis"
        )
    kernel = EventKernel.resume(snapshot)
    if protocol_params:
        retune_protocols(kernel.protocols, **protocol_params)
    run = kernel.run()
    faulty = set(scenario["faulty"])
    committed: tuple[tuple[NodeId, str], ...] = ()
    coordinator = _find_coordinator(kernel.protocols)
    if coordinator is not None and coordinator.committed:
        committed = tuple(
            (node, behavior.spec())
            for node, behavior in sorted(coordinator.committed.items())
        )
        faulty |= coordinator.committed_nodes
    correct = set(range(n)) - faulty
    fd_eval = evaluate_fd(run, correct, sender=0, sender_value=value)
    return ScenarioOutcome(
        kd=snapshot.extras.get("kd"),
        run=run,
        fd=fd_eval,
        ba=None,
        correct=correct,
        committed=committed,
    )


def run_fd_scenario(
    n: int,
    t: int,
    value: Any,
    protocol: str = "chain",
    auth: str = GLOBAL,
    scheme: str = DEFAULT_SCHEME,
    seed: int | str = 0,
    kd_adversaries: dict[NodeId, Protocol] | None = None,
    fd_adversary_factory: AdversaryFactory | None = None,
    faulty: set[NodeId] | None = None,
    delivery: str | DeliveryModel | None = None,
    adversary: AdversaryInput = None,
    record_trace: bool = False,
    protocol_params: dict[str, Any] | None = None,
    checkpoint_at: int | None = None,
    resume_from: KernelSnapshot | None = None,
) -> "ScenarioOutcome | KernelSnapshot":
    """Run one Failure Discovery scenario end to end.

    :param protocol: ``"chain"`` (paper Fig. 2), ``"echo"`` (non-auth
        baseline), ``"smallrange"`` / ``"smallrange-optimistic"`` (binary
        variants), ``"timeout"`` (heartbeat/timeout FD for the weak
        delivery models, :mod:`repro.fd.timeout`), ``"adaptive"``
        (adaptive-timeout FD with measured deadlines,
        :mod:`repro.fd.adaptive`).
    :param kd_adversaries: Byzantine behaviours during key distribution.
    :param fd_adversary_factory: builds the FD-phase Byzantine behaviours
        once key material exists (legacy path; kept as a facade over the
        adversary plane).
    :param faulty: the faulty-node set for evaluation; inferred from the
        adversary collections when omitted.
    :param delivery: delivery model for the FD run — an instance or a
        spec string (see :func:`repro.sim.make_delivery`); a ``"rush"``
        spec without an explicit node list rushes the faulty set.  The
        key-distribution phase always runs lock-step (it establishes the
        baseline the paper assumes); only the FD phase is skewed.
    :param adversary: the declarative adversary plane —
        an :class:`~repro.faults.AdversarySpec`, its spec string (see
        :func:`repro.faults.make_adversary`), or a deferred factory
        ``(keypairs, directories) -> AdversarySpec`` for corruption that
        needs key material.  Budget-checked against ``t``; its
        corruptions are installed over the honest protocols and its
        delivery power applies when ``delivery`` is unset.
    :param record_trace: capture the FD run's structured event log.
    :param protocol_params: extra keyword arguments for the protocol
        factory (e.g. ``timeout`` / ``retransmit_every`` for
        ``"timeout"``).  In ``resume_from`` mode they are *retunes*
        applied to the resumed protocols instead
        (:func:`repro.sim.retune_protocols`) — only warm-fork-safe
        parameters (the protocol's ``tunable`` set) are accepted.
    :param checkpoint_at: run only to this tick and return a
        :class:`~repro.sim.KernelSnapshot` (carrying the scenario
        fingerprint and evaluation inputs) instead of an outcome — the
        shared-prefix half of a warm-started sweep.  Fails fast if the
        run completes before the checkpoint tick.
    :param resume_from: finish a previously captured prefix snapshot
        instead of starting from tick 0; every other scenario parameter
        must match the snapshot's fingerprint, and ``protocol_params``
        become the fork's retunes.
    """
    if resume_from is not None:
        if checkpoint_at is not None:
            raise ConfigurationError(
                "checkpoint_at and resume_from are mutually exclusive: a "
                "call either captures a prefix or finishes one"
            )
        return _resume_fd_scenario(
            resume_from,
            n=n,
            t=t,
            value=value,
            protocol=protocol,
            seed=seed,
            delivery=delivery,
            protocol_params=protocol_params,
        )
    if (
        protocol == "echo"
        and auth == GLOBAL
        and fd_adversary_factory is None
        and not kd_adversaries
    ):
        # The echo baseline is non-authenticated: no protocol or adversary
        # consumes key material, and a global dealer contributes neither
        # messages nor rounds — skip its (expensive) key generation.
        keypairs, directories, kd = {}, {}, None
    else:
        keypairs, directories, kd = setup_authentication(
            n, auth=auth, scheme=scheme, seed=seed, kd_adversaries=kd_adversaries
        )
    fd_adversaries = (
        fd_adversary_factory(keypairs, directories)
        if fd_adversary_factory is not None
        else {}
    )
    if callable(adversary) and not isinstance(adversary, (str, AdversarySpec)):
        # Deferred spec: corruption that needs key material (the attack
        # scenarios) supplies a factory resolved once authentication ran.
        adversary = adversary(keypairs, directories)
    spec, delivery = _resolve_adversary(
        adversary, t, set(fd_adversaries), delivery
    )
    if faulty is None:
        faulty = set(kd_adversaries or {}) | set(fd_adversaries)
    if spec is not None:
        faulty = set(faulty) | spec.faulty
        # Overrides may corrupt nodes whose key material never existed
        # (kd-phase casualties), so they enter through the factories'
        # skip path; declarative behaviours wrap the honest protocol
        # after construction.
        fd_adversaries = {**fd_adversaries, **dict(spec.overrides)}
    correct = set(range(n)) - faulty
    params = protocol_params or {}

    if protocol == "chain":
        protocols = make_chain_fd_protocols(
            n, t, value, keypairs, directories, adversaries=fd_adversaries, **params
        )
    elif protocol == "echo":
        protocols = make_echo_fd_protocols(
            n, t, value, adversaries=fd_adversaries, **params
        )
    elif protocol == "timeout":
        protocols = make_timeout_fd_protocols(
            n, t, value, keypairs, directories, adversaries=fd_adversaries, **params
        )
    elif protocol == "adaptive":
        protocols = make_adaptive_fd_protocols(
            n, t, value, keypairs, directories, adversaries=fd_adversaries, **params
        )
    elif protocol in ("smallrange", "smallrange-optimistic"):
        protocols = make_small_range_protocols(
            n,
            t,
            value,
            keypairs,
            directories,
            adversaries=fd_adversaries,
            optimistic=protocol.endswith("optimistic"),
            **params,
        )
    else:
        raise ConfigurationError(f"unknown FD protocol {protocol!r}")
    coordinator = None
    if spec is not None and (spec.corrupt or spec.strategy is not None):
        protocols, coordinator = spec.adaptive_protocols_for(protocols)

    if checkpoint_at is not None:
        runner = Runner(
            protocols,
            seed=seed,
            delivery=make_delivery(delivery, rushing=faulty),
            record_trace=record_trace,
        )
        partial = runner.run(until_tick=checkpoint_at)
        if partial is not None:
            raise ConfigurationError(
                f"run completed after {partial.rounds_executed} ticks, "
                f"before the checkpoint tick {checkpoint_at} — a prefix "
                "snapshot must precede completion"
            )
        return capture_kernel(
            runner,
            extras={
                "scenario": {
                    "kind": "fd",
                    "n": n,
                    "t": t,
                    "protocol": protocol,
                    "seed": seed,
                    "delivery": delivery if isinstance(delivery, str) else None,
                    "adversary": spec.spec() if spec is not None else None,
                    "faulty": sorted(faulty),
                },
                "kd": kd,
            },
        )

    run = run_protocols(
        protocols,
        seed=seed,
        delivery=make_delivery(delivery, rushing=faulty),
        record_trace=record_trace,
    )
    committed: tuple[tuple[NodeId, str], ...] = ()
    if coordinator is not None and coordinator.committed:
        # Adaptive corruptions exist only now the run has happened —
        # recompute the evaluation sets before judging F1-F3.
        committed = tuple(
            (node, behavior.spec())
            for node, behavior in sorted(coordinator.committed.items())
        )
        faulty = set(faulty) | coordinator.committed_nodes
        correct = set(range(n)) - faulty
    fd_eval = evaluate_fd(run, correct, sender=0, sender_value=value)
    return ScenarioOutcome(
        kd=kd, run=run, fd=fd_eval, ba=None, correct=correct, committed=committed
    )


def run_ba_scenario(
    n: int,
    t: int,
    value: Any,
    protocol: str = "extension",
    auth: str = GLOBAL,
    scheme: str = DEFAULT_SCHEME,
    seed: int | str = 0,
    kd_adversaries: dict[NodeId, Protocol] | None = None,
    ba_adversary_factory: AdversaryFactory | None = None,
    faulty: set[NodeId] | None = None,
    delivery: str | DeliveryModel | None = None,
    adversary: AdversaryInput = None,
    record_trace: bool = False,
) -> ScenarioOutcome:
    """Run one Byzantine Agreement scenario end to end.

    :param protocol: ``"extension"`` (FD→BA) or ``"signed"`` (SM(t)).
    :param delivery: delivery model for the BA run (instance or spec
        string; ``"rush"`` without node list rushes the faulty set).
    :param adversary: declarative adversary plane spec (string or
        :class:`~repro.faults.AdversarySpec`), budget-checked against
        ``t`` — see :func:`run_fd_scenario`.
    :param record_trace: capture the BA run's structured event log.
    """
    keypairs, directories, kd = setup_authentication(
        n, auth=auth, scheme=scheme, seed=seed, kd_adversaries=kd_adversaries
    )
    ba_adversaries = (
        ba_adversary_factory(keypairs, directories)
        if ba_adversary_factory is not None
        else {}
    )
    if callable(adversary) and not isinstance(adversary, (str, AdversarySpec)):
        adversary = adversary(keypairs, directories)
    spec, delivery = _resolve_adversary(
        adversary, t, set(ba_adversaries), delivery
    )
    if faulty is None:
        faulty = set(kd_adversaries or {}) | set(ba_adversaries)
    if spec is not None:
        faulty = set(faulty) | spec.faulty
        ba_adversaries = {**ba_adversaries, **dict(spec.overrides)}
    correct = set(range(n)) - faulty

    if protocol == "extension":
        protocols = make_extended_protocols(
            n, t, value, keypairs, directories, adversaries=ba_adversaries
        )
    elif protocol == "signed":
        protocols = make_signed_agreement_protocols(
            n, t, value, keypairs, directories, adversaries=ba_adversaries
        )
    else:
        raise ConfigurationError(f"unknown BA protocol {protocol!r}")
    coordinator = None
    if spec is not None and (spec.corrupt or spec.strategy is not None):
        protocols, coordinator = spec.adaptive_protocols_for(protocols)

    run = run_protocols(
        protocols,
        seed=seed,
        delivery=make_delivery(delivery, rushing=faulty),
        record_trace=record_trace,
    )
    committed: tuple[tuple[NodeId, str], ...] = ()
    if coordinator is not None and coordinator.committed:
        committed = tuple(
            (node, behavior.spec())
            for node, behavior in sorted(coordinator.committed.items())
        )
        faulty = set(faulty) | coordinator.committed_nodes
        correct = set(range(n)) - faulty
    ba_eval = evaluate_ba(run, correct, sender=0, sender_value=value)
    return ScenarioOutcome(
        kd=kd, run=run, fd=None, ba=ba_eval, correct=correct, committed=committed
    )
