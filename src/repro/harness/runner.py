"""Scenario runner: authentication setup + protocol run + evaluation.

One call = one experiment data point.  The runner wires together the
layers in the order the paper prescribes: establish authentication (local
key distribution or global trusted dealer), then run a Failure Discovery
or agreement protocol on the resulting key material, then evaluate the
F1-F3 / BA conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..agreement import (
    BAEvaluation,
    evaluate_ba,
    make_extended_protocols,
    make_signed_agreement_protocols,
)
from ..auth import (
    KeyDirectory,
    KeyDistributionResult,
    run_key_distribution,
    trusted_dealer_setup,
)
from ..crypto import DEFAULT_SCHEME
from ..crypto.keys import KeyPair
from ..errors import ConfigurationError
from ..fd import (
    FDEvaluation,
    evaluate_fd,
    make_chain_fd_protocols,
    make_echo_fd_protocols,
    make_small_range_protocols,
)
from ..sim import DeliveryModel, Protocol, RunResult, make_delivery, run_protocols
from ..types import NodeId

#: Authentication modes: the paper's new mechanism vs the classic baseline.
LOCAL = "local"
GLOBAL = "global"

# Given the authentication outputs, build the faulty nodes' behaviours.
AdversaryFactory = Callable[
    [dict[NodeId, KeyPair], dict[NodeId, KeyDirectory]], dict[NodeId, Protocol]
]


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced.

    :ivar kd: the key distribution result (None under global auth).
    :ivar run: the protocol run itself.
    :ivar fd: F1-F3 evaluation (None for BA scenarios).
    :ivar ba: BA evaluation (None for FD scenarios).
    :ivar correct: the correct-node set the evaluation used.
    """

    kd: KeyDistributionResult | None
    run: RunResult
    fd: FDEvaluation | None
    ba: BAEvaluation | None
    correct: set[NodeId]

    @property
    def total_messages(self) -> int:
        """Protocol messages plus (under local auth) key distribution."""
        kd_messages = self.kd.messages if self.kd is not None else 0
        return kd_messages + self.run.metrics.messages_total


def setup_authentication(
    n: int,
    auth: str = GLOBAL,
    scheme: str = DEFAULT_SCHEME,
    seed: int | str = 0,
    kd_adversaries: dict[NodeId, Protocol] | None = None,
) -> tuple[dict[NodeId, KeyPair], dict[NodeId, KeyDirectory], KeyDistributionResult | None]:
    """Establish keys and directories in the requested mode.

    :param auth: :data:`LOCAL` (run the paper's Fig. 1 protocol, possibly
        with Byzantine participants) or :data:`GLOBAL` (trusted dealer).
    :returns: ``(keypairs, directories, kd_result_or_None)``.
    """
    if auth == GLOBAL:
        if kd_adversaries:
            raise ConfigurationError(
                "key-distribution adversaries only make sense under local auth"
            )
        keypairs, directories = trusted_dealer_setup(n, scheme=scheme, seed=seed)
        return keypairs, directories, None
    if auth == LOCAL:
        kd = run_key_distribution(
            n, scheme=scheme, adversaries=kd_adversaries, seed=seed
        )
        return kd.keypairs, kd.directories, kd
    raise ConfigurationError(f"unknown auth mode {auth!r}")


def run_fd_scenario(
    n: int,
    t: int,
    value: Any,
    protocol: str = "chain",
    auth: str = GLOBAL,
    scheme: str = DEFAULT_SCHEME,
    seed: int | str = 0,
    kd_adversaries: dict[NodeId, Protocol] | None = None,
    fd_adversary_factory: AdversaryFactory | None = None,
    faulty: set[NodeId] | None = None,
    delivery: str | DeliveryModel | None = None,
    record_trace: bool = False,
) -> ScenarioOutcome:
    """Run one Failure Discovery scenario end to end.

    :param protocol: ``"chain"`` (paper Fig. 2), ``"echo"`` (non-auth
        baseline), ``"smallrange"`` / ``"smallrange-optimistic"`` (binary
        variants).
    :param kd_adversaries: Byzantine behaviours during key distribution.
    :param fd_adversary_factory: builds the FD-phase Byzantine behaviours
        once key material exists.
    :param faulty: the faulty-node set for evaluation; inferred from the
        two adversary collections when omitted.
    :param delivery: delivery model for the FD run — an instance or a
        spec string (see :func:`repro.sim.make_delivery`); a ``"rush"``
        spec without an explicit node list rushes the faulty set.  The
        key-distribution phase always runs lock-step (it establishes the
        baseline the paper assumes); only the FD phase is skewed.
    :param record_trace: capture the FD run's structured event log.
    """
    if (
        protocol == "echo"
        and auth == GLOBAL
        and fd_adversary_factory is None
        and not kd_adversaries
    ):
        # The echo baseline is non-authenticated: no protocol or adversary
        # consumes key material, and a global dealer contributes neither
        # messages nor rounds — skip its (expensive) key generation.
        keypairs, directories, kd = {}, {}, None
    else:
        keypairs, directories, kd = setup_authentication(
            n, auth=auth, scheme=scheme, seed=seed, kd_adversaries=kd_adversaries
        )
    fd_adversaries = (
        fd_adversary_factory(keypairs, directories)
        if fd_adversary_factory is not None
        else {}
    )
    if faulty is None:
        faulty = set(kd_adversaries or {}) | set(fd_adversaries)
    correct = set(range(n)) - faulty

    if protocol == "chain":
        protocols = make_chain_fd_protocols(
            n, t, value, keypairs, directories, adversaries=fd_adversaries
        )
    elif protocol == "echo":
        protocols = make_echo_fd_protocols(n, t, value, adversaries=fd_adversaries)
    elif protocol in ("smallrange", "smallrange-optimistic"):
        protocols = make_small_range_protocols(
            n,
            t,
            value,
            keypairs,
            directories,
            adversaries=fd_adversaries,
            optimistic=protocol.endswith("optimistic"),
        )
    else:
        raise ConfigurationError(f"unknown FD protocol {protocol!r}")

    run = run_protocols(
        protocols,
        seed=seed,
        delivery=make_delivery(delivery, rushing=faulty),
        record_trace=record_trace,
    )
    fd_eval = evaluate_fd(run, correct, sender=0, sender_value=value)
    return ScenarioOutcome(kd=kd, run=run, fd=fd_eval, ba=None, correct=correct)


def run_ba_scenario(
    n: int,
    t: int,
    value: Any,
    protocol: str = "extension",
    auth: str = GLOBAL,
    scheme: str = DEFAULT_SCHEME,
    seed: int | str = 0,
    kd_adversaries: dict[NodeId, Protocol] | None = None,
    ba_adversary_factory: AdversaryFactory | None = None,
    faulty: set[NodeId] | None = None,
    delivery: str | DeliveryModel | None = None,
    record_trace: bool = False,
) -> ScenarioOutcome:
    """Run one Byzantine Agreement scenario end to end.

    :param protocol: ``"extension"`` (FD→BA) or ``"signed"`` (SM(t)).
    :param delivery: delivery model for the BA run (instance or spec
        string; ``"rush"`` without node list rushes the faulty set).
    :param record_trace: capture the BA run's structured event log.
    """
    keypairs, directories, kd = setup_authentication(
        n, auth=auth, scheme=scheme, seed=seed, kd_adversaries=kd_adversaries
    )
    ba_adversaries = (
        ba_adversary_factory(keypairs, directories)
        if ba_adversary_factory is not None
        else {}
    )
    if faulty is None:
        faulty = set(kd_adversaries or {}) | set(ba_adversaries)
    correct = set(range(n)) - faulty

    if protocol == "extension":
        protocols = make_extended_protocols(
            n, t, value, keypairs, directories, adversaries=ba_adversaries
        )
    elif protocol == "signed":
        protocols = make_signed_agreement_protocols(
            n, t, value, keypairs, directories, adversaries=ba_adversaries
        )
    else:
        raise ConfigurationError(f"unknown BA protocol {protocol!r}")

    run = run_protocols(
        protocols,
        seed=seed,
        delivery=make_delivery(delivery, rushing=faulty),
        record_trace=record_trace,
    )
    ba_eval = evaluate_ba(run, correct, sender=0, sender_value=value)
    return ScenarioOutcome(kd=kd, run=run, fd=None, ba=ba_eval, correct=correct)
