"""Process-parallel sweep execution.

Benchmark sweeps are embarrassingly parallel: every point carries its own
parameters *and its own seed*, so points share no state and their results
are independent of execution order.  :func:`sweep_parallel` exploits that
with a :class:`~concurrent.futures.ProcessPoolExecutor`, while preserving
the serial sweep's two contracts exactly:

* **order** — results come back in point order (``executor.map`` keeps
  input order regardless of completion order);
* **determinism** — each point's result is a pure function of its params
  (seeds travel with the points), so a parallel sweep is value-identical
  to a serial one.  ``tests/harness/test_parallel.py`` enforces this.

Registry dispatch: a workload *name* (see
:mod:`repro.harness.workloads`) is the preferred ``fn`` — the name is
what gets pickled, so a registry-dispatched sweep can never degrade to
the serial fallback.  The E1–E11 suites all dispatch by name.

Serial fallback: unpicklable callables (lambdas, closures), single-worker
configs, and environments where process pools cannot start (sandboxes
without semaphore support) fall back to :func:`~repro.harness.sweep.sweep`.
Degraded runs are *visible*: the unpicklable-workload fallback emits a
:class:`RuntimeWarning` naming the offending workload (registering it in
``repro.harness.workloads`` and sweeping by name is the fix).
Parallelism is an executor choice, never a semantics choice.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable

from .sweep import SweepPoint, sweep

#: Process-wide default worker count; ``None`` means "one per CPU".
#: Configured by the benchmark suite's ``--sweep-workers`` option.
_DEFAULT_WORKERS: int | None = 1


def set_default_workers(workers: int | None) -> None:
    """Set the worker count :func:`sweep_parallel` uses when not given one.

    ``1`` (the initial default) means serial; ``None`` means one worker
    per CPU.
    """
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = workers


def default_workers() -> int | None:
    """The currently configured default worker count."""
    return _DEFAULT_WORKERS


def _apply(item: tuple[str | Callable[..., Any], dict[str, Any]]) -> Any:
    """Worker-side shim: unpack one (fn-or-name, params) job."""
    fn, params = item
    if isinstance(fn, str):
        from .workloads import resolve_workload

        fn = resolve_workload(fn)
    return fn(**params)


def sweep_parallel(
    points: Iterable[dict[str, Any]],
    fn: str | Callable[..., Any],
    workers: int | None = None,
) -> list[SweepPoint]:
    """Apply ``fn(**params)`` to every point across worker processes.

    Drop-in replacement for :func:`~repro.harness.sweep.sweep`: same
    signature plus ``workers``, same result order, same values.

    :param points: parameter dicts; seeds must travel inside the points
        (anything the point function needs beyond its params would break
        the determinism contract).
    :param fn: a registered workload name (preferred — always picklable)
        or a picklable callable.  Unpicklable callables are executed
        serially instead, with a :class:`RuntimeWarning` naming them.
    :param workers: process count; ``None`` defers to the configured
        default (see :func:`set_default_workers`), which itself defaults
        to serial.
    """
    pts = [dict(p) for p in points]
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers is None:
        workers = os.cpu_count() or 1
    workers = min(workers, len(pts))
    if workers <= 1:
        return sweep(pts, fn)
    if not isinstance(fn, str):
        try:
            pickle.dumps(fn)
        except Exception:
            # Closures/lambdas cannot cross the process boundary; run
            # serially, but say so — a silently degraded benchmark sweep
            # looks exactly like a slow machine otherwise.
            name = getattr(fn, "__qualname__", None) or repr(fn)
            warnings.warn(
                f"sweep_parallel: workload {name!r} is not picklable; "
                "falling back to serial execution (register it in "
                "repro.harness.workloads and sweep by name to parallelize)",
                RuntimeWarning,
                stacklevel=2,
            )
            return sweep(pts, fn)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_apply, [(fn, p) for p in pts]))
    except (OSError, PermissionError, BrokenProcessPool):
        # No process support (sandbox) or a worker died: the serial path
        # computes the identical answer, just slower.
        return sweep(pts, fn)
    return [
        SweepPoint(params=p, result=r) for p, r in zip(pts, results)
    ]
