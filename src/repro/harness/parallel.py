"""Process-parallel sweep execution.

Benchmark sweeps are embarrassingly parallel: every point carries its own
parameters *and its own seed*, so points share no state and their results
are independent of execution order.  :func:`sweep_parallel` exploits that
with a :class:`~concurrent.futures.ProcessPoolExecutor`, while preserving
the serial sweep's two contracts exactly:

* **order** — results come back in point order (``executor.map`` keeps
  input order regardless of completion order);
* **determinism** — each point's result is a pure function of its params
  (seeds travel with the points), so a parallel sweep is value-identical
  to a serial one.  ``tests/harness/test_parallel.py`` enforces this.

Registry dispatch: a workload *name* (see
:mod:`repro.harness.workloads`) is the preferred ``fn`` — the name is
what gets pickled, so a registry-dispatched sweep can never degrade to
the serial fallback.  The E1–E11 suites all dispatch by name.

Serial fallback: unpicklable callables (lambdas, closures), single-worker
configs, and environments where process pools cannot start (sandboxes
without semaphore support) fall back to :func:`~repro.harness.sweep.sweep`.
Degraded runs are *visible*: the unpicklable-workload fallback emits a
:class:`RuntimeWarning` naming the offending workload (registering it in
``repro.harness.workloads`` and sweeping by name is the fix).
Parallelism is an executor choice, never a semantics choice.

Instance sharding
-----------------
:func:`run_mux_shards` is the second executor in this module: where
``sweep_parallel`` fans out *independent parameter points*, the mux
shard executor fans out *the K instances of one logical run*
(:mod:`repro.sim.multiplex`).  It partitions the instance ids into
contiguous shards, runs ``fn(instances=shard, **params)`` per shard —
pipelined through a process pool, or in-process under the same fallback
rules — and merges the per-instance results.  Causal independence of
the instances (per-instance wire tags + namespaced rng streams) makes
every shard's per-instance decisions, rounds and metrics bit-for-bit
identical to the unsharded run, so merging is a disjoint dict union;
the sharding property tests enforce that equivalence under random
Byzantine behaviour.  Params travel verbatim to the workers, so shard
runs ride whatever mux execution engine the caller picked (the columnar
batch plane by default — see :mod:`repro.sim.batch`) with no executor
involvement: sharding and columnar execution compose freely.
"""

from __future__ import annotations

import inspect
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import ConfigurationError
from ..sim import KernelSnapshot
from .sweep import SweepPoint, sweep

#: Process-wide default worker count; ``None`` means "one per CPU".
#: Configured by the benchmark suite's ``--sweep-workers`` option.
_DEFAULT_WORKERS: int | None = 1


def set_default_workers(workers: int | None) -> None:
    """Set the worker count :func:`sweep_parallel` uses when not given one.

    ``1`` (the initial default) means serial; ``None`` means one worker
    per CPU.
    """
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = workers


def default_workers() -> int | None:
    """The currently configured default worker count."""
    return _DEFAULT_WORKERS


def _apply(item: tuple[str | Callable[..., Any], dict[str, Any]]) -> Any:
    """Worker-side shim: unpack one (fn-or-name, params) job."""
    fn, params = item
    if isinstance(fn, str):
        from .workloads import resolve_workload

        fn = resolve_workload(fn)
    return fn(**params)


def _describe_unpicklable_param(pts: list[dict[str, Any]]) -> str:
    """Name the first parameter value that cannot cross the process
    boundary — adversary specs get their spec string in the message."""
    from ..faults.adversary import AdversarySpec

    for point in pts:
        for key, value in point.items():
            try:
                pickle.dumps(value)
            except Exception:
                if isinstance(value, AdversarySpec):
                    return (
                        f"adversary spec {value.spec()!r} (parameter {key!r}) "
                        "is not picklable — its overrides carry in-process "
                        "protocols"
                    )
                return f"parameter {key!r} = {value!r} is not picklable"
    return "a sweep parameter is not picklable"


def sweep_parallel(
    points: Iterable[dict[str, Any]],
    fn: str | Callable[..., Any],
    workers: int | None = None,
) -> list[SweepPoint]:
    """Apply ``fn(**params)`` to every point across worker processes.

    Drop-in replacement for :func:`~repro.harness.sweep.sweep`: same
    signature plus ``workers``, same result order, same values.

    :param points: parameter dicts; seeds must travel inside the points
        (anything the point function needs beyond its params would break
        the determinism contract).
    :param fn: a registered workload name (preferred — always picklable)
        or a picklable callable.  Unpicklable callables are executed
        serially instead, with a :class:`RuntimeWarning` naming them.
    :param workers: process count; ``None`` defers to the configured
        default (see :func:`set_default_workers`), which itself defaults
        to serial.
    """
    pts = [dict(p) for p in points]
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers is None:
        workers = os.cpu_count() or 1
    workers = min(workers, len(pts))
    if workers <= 1:
        return sweep(pts, fn)
    if not isinstance(fn, str):
        try:
            pickle.dumps(fn)
        except Exception:
            # Closures/lambdas cannot cross the process boundary; run
            # serially, but say so — a silently degraded benchmark sweep
            # looks exactly like a slow machine otherwise.
            name = getattr(fn, "__qualname__", None) or repr(fn)
            warnings.warn(
                f"sweep_parallel: workload {name!r} is not picklable; "
                "falling back to serial execution (register it in "
                "repro.harness.workloads and sweep by name to parallelize)",
                RuntimeWarning,
                stacklevel=2,
            )
            return sweep(pts, fn)
    try:
        pickle.dumps(pts)
    except Exception:
        # Same degradation, different culprit: a parameter value that
        # cannot cross the process boundary — most often an adversary
        # spec carrying in-process overrides.  Name the offender.
        warnings.warn(
            f"sweep_parallel: {_describe_unpicklable_param(pts)}; "
            "falling back to serial execution (use declarative adversary "
            "spec strings to parallelize)",
            RuntimeWarning,
            stacklevel=2,
        )
        return sweep(pts, fn)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_apply, [(fn, p) for p in pts]))
    except (OSError, PermissionError, BrokenProcessPool):
        # No process support (sandbox) or a worker died: the serial path
        # computes the identical answer, just slower.
        return sweep(pts, fn)
    return [
        SweepPoint(params=p, result=r) for p, r in zip(pts, results)
    ]


def sweep_prefix_shared(
    points: Iterable[dict[str, Any]],
    fn: str | Callable[..., Any],
    *,
    prefix: dict[str, Any],
    prefix_ticks: int,
    workers: int | None = None,
    on_snapshot: Callable[[KernelSnapshot], None] | None = None,
) -> list[SweepPoint]:
    """Warm-started sweep: run the shared prefix once, fork it per point.

    Sweeps whose points differ only in parameters the protocols declare
    *tunable* (:attr:`repro.sim.node.Protocol.tunable` — e.g. the
    timeout-FD deadline, never read before it fires) share an identical
    execution prefix: every fork's straight run passes through the exact
    same kernel state at the checkpoint tick.  This executor exploits
    that — it runs ``fn(**prefix, checkpoint_at=prefix_ticks)`` once in
    the parent process, takes the returned
    :class:`~repro.sim.snapshot.KernelSnapshot`, and fans the points out
    with ``resume_from=snapshot`` via :func:`sweep_parallel` (snapshots
    are plain bytes, so forks cross the process pool unchanged).  Each
    fork resumes the shared state, retunes its swept parameters
    (:func:`~repro.sim.snapshot.retune_protocols`), and runs only the
    suffix.  Results are bit-for-bit identical to the straight sweep —
    the resume property tests and the benchmark count gates enforce it.

    The *caller* owns the validity contract: the prefix params must pin
    every tuned axis wide enough that no protocol acts on it before
    ``prefix_ticks`` (e.g. a prefix ``timeout`` beyond the checkpoint
    tick), and each point must repeat the scenario-identity params
    (``n``, ``t``, ``seed``, delivery, adversary) verbatim — the resume
    path fail-fasts on any mismatch with the snapshot's fingerprint.

    :param points: parameter dicts for the forks, straight-sweep form
        (the executor injects ``resume_from`` itself and strips it from
        the returned :class:`SweepPoint` params).
    :param fn: registered workload name or callable; must accept both
        ``checkpoint_at`` and ``resume_from`` keyword parameters.
    :param prefix: params for the shared-prefix run.
    :param prefix_ticks: tick to checkpoint the prefix at; the prefix
        run must still be live there (the scenario runner raises
        otherwise).
    :param workers: fan-out process count, as in :func:`sweep_parallel`.
    :param on_snapshot: observer called once with the shared prefix
        snapshot before the fan-out — how the benchmark suite records
        the snapshot size without a second prefix run.
    :raises ConfigurationError: non-positive ``prefix_ticks``, a
        workload without the checkpoint/resume parameters, or a prefix
        run that returned a result instead of a snapshot.
    """
    if prefix_ticks < 1:
        raise ConfigurationError(
            f"prefix_ticks must be a positive tick count, got {prefix_ticks}"
        )
    resolved = fn
    if isinstance(resolved, str):
        from .workloads import resolve_workload

        resolved = resolve_workload(resolved)
    accepted = inspect.signature(resolved).parameters
    missing = [k for k in ("checkpoint_at", "resume_from") if k not in accepted]
    if missing:
        name = getattr(resolved, "__qualname__", None) or repr(resolved)
        raise ConfigurationError(
            f"workload {name!r} does not accept {missing} — only workloads "
            "with checkpoint/resume support can run prefix-shared sweeps"
        )
    snapshot = resolved(**prefix, checkpoint_at=prefix_ticks)
    if not isinstance(snapshot, KernelSnapshot):
        raise ConfigurationError(
            f"prefix run returned {type(snapshot).__name__}, not a "
            "KernelSnapshot — the workload must return the checkpoint "
            "when called with checkpoint_at"
        )
    if on_snapshot is not None:
        on_snapshot(snapshot)
    jobs = [{**dict(p), "resume_from": snapshot} for p in points]
    swept = sweep_parallel(jobs, fn, workers=workers)
    return [
        SweepPoint(
            params={k: v for k, v in sp.params.items() if k != "resume_from"},
            result=sp.result,
        )
        for sp in swept
    ]


def shard_instances(
    instances: Sequence[int], shards: int
) -> list[tuple[int, ...]]:
    """Partition instance ids into contiguous, near-equal shards.

    Deterministic: ids keep their given order, sizes differ by at most
    one, earlier shards take the remainder.  At most ``len(instances)``
    shards are produced (never an empty shard).
    """
    ids = list(instances)
    if not ids:
        return []
    shards = max(1, min(shards, len(ids)))
    base, extra = divmod(len(ids), shards)
    out: list[tuple[int, ...]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(tuple(ids[start : start + size]))
        start += size
    return out


def run_mux_shards(
    fn: str | Callable[..., Mapping[int, Any]],
    params: dict[str, Any],
    instances: Sequence[int],
    workers: int | None = None,
    in_process: bool = False,
) -> dict[int, Any]:
    """Pipelined instance-shard executor for multiplexed runs.

    Splits ``instances`` into up to ``workers`` contiguous shards and
    evaluates ``fn(instances=shard, **params)`` for each — the function
    must run its shard as a self-contained simulation (all n nodes, the
    shard's instances only) and return a per-instance mapping, e.g. the
    ``akd-shard`` workload returning
    :class:`~repro.sim.multiplex.InstanceAggregate` objects.  Results
    merge by disjoint union in instance-id order; because instance
    streams are causally independent, the merged map is bit-for-bit the
    unsharded run's (the property tests enforce this).

    :param fn: registered workload name (preferred) or picklable callable.
    :param params: the run's parameters, shards included verbatim in each
        job (seed travels here — the determinism contract).
    :param workers: shard/process count; ``None`` defers to the
        configured default (see :func:`set_default_workers`).
    :param in_process: evaluate the shards serially in this process while
        keeping the exact shard boundaries — the transport-free mode the
        equivalence property tests (and pool-less sandboxes) use.
    :raises ValueError: if a shard result claims an instance outside its
        shard or two shards claim the same instance.
    """
    ids = list(instances)
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers is None:
        workers = os.cpu_count() or 1
    shards = shard_instances(ids, max(1, workers))
    jobs = [(fn, {**params, "instances": shard}) for shard in shards]
    if not in_process and len(jobs) > 1 and not isinstance(fn, str):
        try:
            pickle.dumps(fn)
        except Exception:
            name = getattr(fn, "__qualname__", None) or repr(fn)
            warnings.warn(
                f"run_mux_shards: workload {name!r} is not picklable; "
                "running shards in-process (register it in "
                "repro.harness.workloads and dispatch by name to "
                "parallelize)",
                RuntimeWarning,
                stacklevel=2,
            )
            in_process = True
    if in_process or len(jobs) <= 1:
        results = [_apply(job) for job in jobs]
    else:
        try:
            with ProcessPoolExecutor(max_workers=len(jobs)) as pool:
                results = list(pool.map(_apply, jobs))
        except (OSError, PermissionError, BrokenProcessPool):
            results = [_apply(job) for job in jobs]
    from ..sim.multiplex import merge_instance_aggregates

    for shard, result in zip(shards, results):
        foreign = set(result) - set(shard)
        if foreign:
            raise ValueError(
                f"shard {shard} returned foreign instances {sorted(foreign)}"
            )
    return merge_instance_aggregates(results)
