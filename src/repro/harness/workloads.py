"""The central workload registry: every benchmark sweep as a named,
picklable point function.

:func:`~repro.harness.parallel.sweep_parallel` ships jobs to worker
processes by pickling ``(fn, params)``, which requires module-level
functions returning plain data.  This module collects the point functions
behind *all* E1–E11 benchmark sweeps and ``benchmarks/regress.py`` in that
shape — every function takes only primitive params (seed included — the
determinism contract), runs one scenario, and returns a flat dict of
counts — and registers each under a stable name.

Sweeps dispatch by name: :func:`repro.harness.sweep.sweep` and
:func:`~repro.harness.parallel.sweep_parallel` accept either a callable
or a registered workload name.  Names are what the benchmark suites pass
(``psweep(points, "fd")``), and names are what travels to worker
processes — a name is always picklable, so registry-dispatched sweeps
never degrade to the serial fallback.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..agreement import make_oral_agreement_protocols
from ..analysis.complexity import crossover_runs
from ..auth import (
    check_g1,
    check_g2,
    run_agreement_key_distribution,
    run_key_distribution,
)
from ..errors import ConfigurationError
from ..faults import AdversarySpec, SilentProtocol, TamperingProtocol, make_adversary
from ..fd.smallrange import OptimisticBinaryChainProtocol
from ..sim import KernelSnapshot, default_mux_engine, make_delivery, run_protocols
from .runner import GLOBAL, LOCAL, run_ba_scenario, run_fd_scenario
from .scenarios import attack_catalogue
from .session import AmortizedSession

#: Count-measuring sweeps default to the fast HMAC simulation scheme (the
#: measured quantities are scheme-independent; benchmark E10 verifies that).
COUNT_SCHEME = "simulated-hmac"

#: name -> point function.  Populated by :func:`workload`.
WORKLOADS: dict[str, Callable[..., dict[str, Any]]] = {}

#: name -> benchmark suite label (e.g. ``"E11"``).  Populated alongside
#: :data:`WORKLOADS`; surfaced by ``repro-fd list-workloads``.
WORKLOAD_SUITES: dict[str, str] = {}

#: name -> delivery-model spec names the workload supports.  Workloads
#: without a ``delivery`` parameter run lock-step only (``("sync",)``);
#: the E12 sweeps accept any registered spec.  Surfaced by
#: ``repro-fd list-workloads``.
WORKLOAD_DELIVERIES: dict[str, tuple[str, ...]] = {}


def workload(
    name: str, suite: str = "-", deliveries: tuple[str, ...] = ("sync",)
) -> Callable[[Callable], Callable]:
    """Register a point function under a stable sweep name.

    :param suite: the benchmark suite(s) the workload backs (``"E1/E2"``,
        ``"regress"`` ...), shown by ``repro-fd list-workloads``.
    :param deliveries: delivery-model spec names the workload supports
        (most are lock-step only; the E12 sweeps take a ``delivery``
        parameter and accept any registered spec).
    """

    def register(fn: Callable) -> Callable:
        if name in WORKLOADS:
            raise ConfigurationError(f"workload {name!r} registered twice")
        WORKLOADS[name] = fn
        WORKLOAD_SUITES[name] = suite
        WORKLOAD_DELIVERIES[name] = tuple(deliveries)
        return fn

    return register


def available_workloads() -> list[str]:
    """Registered workload names, sorted."""
    return sorted(WORKLOADS)


def workload_suite(name: str) -> str:
    """The suite label a workload was registered under."""
    get_workload(name)  # raise uniformly for unknown names
    return WORKLOAD_SUITES.get(name, "-")


def workload_deliveries(name: str) -> tuple[str, ...]:
    """The delivery-model specs a workload supports."""
    get_workload(name)  # raise uniformly for unknown names
    return WORKLOAD_DELIVERIES.get(name, ("sync",))


def get_workload(name: str) -> Callable[..., dict[str, Any]]:
    """Look up a registered point function.

    :raises ConfigurationError: for unknown names.
    """
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        ) from None


def resolve_workload(fn: str | Callable) -> Callable:
    """Registry dispatch: a name resolves through :func:`get_workload`,
    a callable passes through unchanged."""
    if isinstance(fn, str):
        return get_workload(fn)
    return fn


@workload("keydist", suite="E1/E8/regress")
def keydist_point(n: int, seed: int | str = 0, scheme: str = COUNT_SCHEME) -> dict[str, Any]:
    """One key-distribution run (paper Fig. 1): message/round counts."""
    kd = run_key_distribution(n, scheme=scheme, seed=seed)
    return {"n": n, "messages": kd.messages, "rounds": kd.rounds}


@workload("fd", suite="E2/E3/regress")
def fd_point(
    n: int,
    t: int,
    seed: int | str = 0,
    protocol: str = "chain",
    auth: str = GLOBAL,
    scheme: str = COUNT_SCHEME,
) -> dict[str, Any]:
    """One failure-discovery scenario: rounds/messages/bytes plus verdicts."""
    outcome = run_fd_scenario(
        n, t, "v", protocol=protocol, auth=auth, scheme=scheme, seed=seed
    )
    metrics = outcome.run.metrics
    return {
        "n": n,
        "t": t,
        "protocol": protocol,
        "rounds": metrics.rounds_used,
        "messages": metrics.messages_total,
        "bytes": metrics.bytes_total,
        "total_messages": outcome.total_messages,
        "all_decided": all(s.decided for s in outcome.run.states),
        "fd_ok": outcome.fd.ok if outcome.fd is not None else None,
    }


@workload("ba", suite="E7/regress")
def ba_point(
    n: int,
    t: int,
    seed: int | str = 0,
    protocol: str = "extension",
    auth: str = GLOBAL,
    scheme: str = COUNT_SCHEME,
) -> dict[str, Any]:
    """One Byzantine-agreement scenario: counts plus the BA verdict."""
    outcome = run_ba_scenario(
        n, t, "v", protocol=protocol, auth=auth, scheme=scheme, seed=seed
    )
    metrics = outcome.run.metrics
    return {
        "n": n,
        "t": t,
        "protocol": protocol,
        "rounds": metrics.rounds_used,
        "messages": metrics.messages_total,
        "bytes": metrics.bytes_total,
        "agreement": outcome.ba.agreement if outcome.ba is not None else None,
    }


@workload("oral", suite="E9/regress")
def oral_point(
    n: int, t: int, seed: int | str = 0, value: Any = "v", engine: str = "succinct"
) -> dict[str, Any]:
    """One OM(t) oral-agreement run over the EIG tree.

    ``engine="succinct"`` (default) is what makes the n=128 grid points
    feasible; ``engine="dense"`` runs the reference engine — identical
    counts, exponential memory (see PERFORMANCE.md).
    """
    run = run_protocols(
        make_oral_agreement_protocols(n, t, value, engine=engine), seed=seed
    )
    decisions = run.decisions()
    return {
        "n": n,
        "t": t,
        "rounds": run.metrics.rounds_used,
        "messages": run.metrics.messages_total,
        "bytes": run.metrics.bytes_total,
        "agreed": len(set(map(repr, decisions.values()))) == 1,
        "decision": repr(decisions.get(1)),
    }


@workload("e4-crossover", suite="E4")
def e4_crossover_point(n: int, t: int, seed: int | str = 0) -> dict[str, Any]:
    """One amortization-session measurement: runs until local auth wins."""
    predicted = crossover_runs(n, t)
    session = AmortizedSession(n=n, t=t, auth=LOCAL, scheme=COUNT_SCHEME, seed=seed)
    all_ok = True
    for k in range(predicted + 2):
        outcome = session.run(value=("run", k), seed=k)
        all_ok = all_ok and bool(outcome.fd.ok)
    return {
        "n": n,
        "t": t,
        "predicted": predicted,
        "measured": session.crossover_run(),
        "all_ok": all_ok,
    }


@workload("e5-binary", suite="E5")
def e5_binary_point(
    n: int, value: int, seed: int | str = 0, scheme: str = COUNT_SCHEME
) -> dict[str, Any]:
    """One binary small-range FD run (t=0): silence carries the 0."""
    outcome = run_fd_scenario(
        n, 0, value, protocol="smallrange", scheme=scheme, seed=seed
    )
    return {
        "n": n,
        "value": value,
        "messages": outcome.run.metrics.messages_total,
        "fd_ok": outcome.fd.ok,
    }


@workload("e5-optimistic", suite="E5")
def e5_optimistic_point(
    n: int,
    t: int,
    value: int,
    seed: int | str = 0,
    withhold: bool = False,
    scheme: str = COUNT_SCHEME,
) -> dict[str, Any]:
    """One optimistic binary chain run; ``withhold=True`` reproduces the
    documented F2 break (disseminator sends to low ids only)."""
    factory = None
    if withhold:

        def factory(keypairs, directories):
            disseminator = TamperingProtocol(
                OptimisticBinaryChainProtocol(n, t, keypairs[t], directories[t]),
                should_send=lambda rnd, to, payload: to < t + 3,
            )
            return {t: disseminator}

    outcome = run_fd_scenario(
        n,
        t,
        value,
        protocol="smallrange-optimistic",
        scheme=scheme,
        seed=seed,
        fd_adversary_factory=factory,
    )
    return {
        "n": n,
        "t": t,
        "value": value,
        "withhold": withhold,
        "messages": outcome.run.metrics.messages_total,
        "fd_ok": outcome.fd.ok,
        "weak_agreement": outcome.fd.weak_agreement,
        "any_discovery": outcome.fd.any_discovery,
    }


@workload("e6-scenario", suite="E6")
def e6_scenario_point(n: int, t: int, scenario: str, seed: int | str = 0) -> dict[str, Any]:
    """One (attack scenario, seed) cell of the E6 discovery matrix.

    The scenario's FD-phase corruption enters through the adversary
    plane (:meth:`~repro.harness.scenarios.AttackScenario.adversary`),
    so the run is budget-checked like every other adversarial run.
    """
    match = [s for s in attack_catalogue(n, t) if s.name == scenario]
    if not match:
        raise ConfigurationError(f"unknown attack scenario {scenario!r}")
    sc = match[0]
    outcome = run_fd_scenario(
        n,
        t,
        "v",
        auth=LOCAL,
        scheme=COUNT_SCHEME,
        seed=seed,
        kd_adversaries=sc.kd_adversaries(),
        adversary=sc.adversary(n, t),
        faulty=sc.faulty,
    )
    genuine = {
        node: outcome.kd.keypairs[node].predicate for node in outcome.correct
    }
    g12_violations = len(
        check_g1(outcome.kd.directories, genuine, outcome.correct)
    ) + len(check_g2(outcome.kd.directories, genuine, outcome.correct))
    return {
        "n": n,
        "t": t,
        "scenario": scenario,
        "expects_discovery": sc.expects_discovery,
        "fd_ok": outcome.fd.ok,
        "any_discovery": outcome.fd.any_discovery,
        "g12_violations": g12_violations,
    }


@workload("e7-ba-compare", suite="E7")
def e7_ba_compare_point(
    n: int, t: int, seed: int | str = 0, scheme: str = COUNT_SCHEME
) -> dict[str, Any]:
    """One failure-free row: FD→BA extension vs direct SM(t)."""
    ext = run_ba_scenario(
        n, t, "v", protocol="extension", auth=GLOBAL, scheme=scheme, seed=seed
    )
    sm = run_ba_scenario(
        n, t, "v", protocol="signed", auth=GLOBAL, scheme=scheme, seed=seed
    )
    return {
        "n": n,
        "t": t,
        "ext_messages": ext.run.metrics.messages_total,
        "sm_messages": sm.run.metrics.messages_total,
        "ext_ok": ext.ba.ok,
        "sm_ok": sm.ba.ok,
    }


@workload("e7-fallback", suite="E7")
def e7_fallback_point(
    n: int,
    t: int,
    seed: int | str = 0,
    silent_node: int | None = None,
    scheme: str = COUNT_SCHEME,
) -> dict[str, Any]:
    """Extension cost profile: failure-free vs a crashed chain node."""
    factory = None
    if silent_node is not None:
        def factory(keypairs, directories):
            return {silent_node: SilentProtocol()}

    outcome = run_ba_scenario(
        n,
        t,
        "v",
        protocol="extension",
        auth=GLOBAL,
        scheme=scheme,
        seed=seed,
        ba_adversary_factory=factory,
    )
    return {
        "n": n,
        "t": t,
        "silent_node": silent_node,
        "messages": outcome.run.metrics.messages_total,
        "rounds": outcome.run.metrics.rounds_used,
        "ba_ok": outcome.ba.ok,
    }


@workload("e8-rounds", suite="E8")
def e8_round_point(
    n: int, t: int, seed: int | str = 0, scheme: str = COUNT_SCHEME
) -> dict[str, Any]:
    """One row of the E8 round-complexity table: all three round counts."""
    kd = run_key_distribution(n, scheme=scheme, seed=seed)
    chain = run_fd_scenario(
        n, t, "v", protocol="chain", auth=GLOBAL, scheme=scheme, seed=seed
    )
    echo = run_fd_scenario(n, t, "v", protocol="echo", seed=seed)
    return {
        "n": n,
        "t": t,
        "keydist_rounds": kd.rounds,
        "chain_rounds": chain.run.metrics.rounds_used,
        "echo_rounds": echo.run.metrics.rounds_used,
    }


@workload("e9-chain-bytes", suite="E9")
def e9_chain_bytes_point(
    n: int, t: int, seed: int | str = 0, scheme: str = "schnorr-512"
) -> dict[str, Any]:
    """One chain-depth byte measurement (real signatures by default)."""
    outcome = run_fd_scenario(
        n, t, "v", protocol="chain", auth=GLOBAL, scheme=scheme, seed=seed
    )
    metrics = outcome.run.metrics
    last_round = max(metrics.bytes_per_round)
    return {
        "n": n,
        "t": t,
        "messages": metrics.messages_total,
        "bytes": metrics.bytes_total,
        "dissemination_msg_bytes": (
            metrics.bytes_per_round[last_round]
            / metrics.messages_per_round[last_round]
        ),
        "fd_ok": outcome.fd.ok,
    }


@workload("e9-compression", suite="E9")
def e9_compression_point(
    n: int, t: int, seed: int | str = 0, value: Any = "v"
) -> dict[str, Any]:
    """One succinct-engine OM(t) run instrumented for compression:
    dense-equivalent bytes (what the meters charge) vs the run-length
    bytes that actually crossed the wire, plus run/item counts for the
    closed-form check against
    :func:`repro.analysis.complexity.om_collapsed_reports`."""
    from ..agreement.eigtree import OM_REPORT_RLE
    from ..crypto.encoding import decode

    run = run_protocols(
        make_oral_agreement_protocols(n, t, value, engine="succinct"),
        seed=seed,
        record_views=True,
    )
    reports = runs_total = dense_items = wire_bytes = 0
    for view in run.views:
        for round_msgs in view.rounds:
            for msg in round_msgs:
                wire_bytes += len(msg.payload_encoding)
                payload = decode(msg.payload_encoding)
                if (
                    isinstance(payload, tuple)
                    and payload
                    and payload[0] == OM_REPORT_RLE
                ):
                    reports += 1
                    rle_runs = payload[5]
                    runs_total += len(rle_runs)
                    dense_items += sum(count for count, _ in rle_runs)
    decisions = run.decisions()
    return {
        "n": n,
        "t": t,
        "reports": reports,
        "runs_total": runs_total,
        "dense_items": dense_items,
        "dense_bytes": run.metrics.bytes_total,
        "wire_bytes": wire_bytes,
        "agreed": len(set(map(repr, decisions.values()))) == 1,
    }


@workload("e10-scheme", suite="E10")
def e10_scheme_point(n: int, t: int, scheme: str, seed: int | str = 0) -> dict[str, Any]:
    """One scheme-ablation cell: the three counts that must not depend on
    the signature scheme."""
    outcome = run_fd_scenario(
        n, t, "v", protocol="chain", auth=LOCAL, scheme=scheme, seed=seed
    )
    return {
        "n": n,
        "t": t,
        "scheme": scheme,
        "keydist_messages": outcome.kd.messages,
        "fd_messages": outcome.run.metrics.messages_total,
        "fd_rounds": outcome.run.metrics.rounds_used,
        "fd_ok": outcome.fd.ok,
    }


@workload("e10-walltime", suite="E10")
def e10_walltime_point(n: int, t: int, scheme: str, seed: int | str = 0) -> dict[str, Any]:
    """Coarse single-shot wall-clock of one keydist+FD run per scheme."""
    start = time.perf_counter()
    outcome = run_fd_scenario(
        n, t, "v", protocol="chain", auth=LOCAL, scheme=scheme, seed=seed
    )
    elapsed_ms = (time.perf_counter() - start) * 1000
    return {
        "n": n,
        "t": t,
        "scheme": scheme,
        "elapsed_ms": elapsed_ms,
        "fd_ok": outcome.fd.ok,
    }


@workload("e11-methods", suite="E11")
def e11_methods_point(
    n: int, t: int, seed: int | str = 0, scheme: str = COUNT_SCHEME
) -> dict[str, Any]:
    """One key-distribution method-comparison row: local auth vs n·OM(t)."""
    local = run_key_distribution(n, scheme=scheme, seed=seed)
    agreement = run_agreement_key_distribution(n, t, scheme=scheme, seed=seed)
    return {
        "n": n,
        "t": t,
        "local_messages": local.messages,
        "local_rounds": local.rounds,
        "agreement_messages": agreement.messages,
        "agreement_rounds": agreement.rounds,
    }


@workload("e11-feasibility", suite="E11")
def e11_feasibility_point(
    n: int, t: int, seed: int | str = 0, scheme: str = COUNT_SCHEME
) -> dict[str, Any]:
    """One feasibility-boundary row: agreement-based distribution at
    ``n <= 3t`` vs local authentication under a faulty majority."""
    try:
        run_agreement_key_distribution(n, t, scheme=scheme)
        agreement_feasible = True
    except ConfigurationError:
        agreement_feasible = False
    adversaries = {node: SilentProtocol() for node in range(2, n)}
    local = run_key_distribution(n, scheme=scheme, adversaries=adversaries, seed=seed)
    pair_ok = local.directories[0].predicates_for(1) == (
        local.keypairs[1].predicate,
    )
    return {
        "n": n,
        "t": t,
        "agreement_feasible": agreement_feasible,
        "local_pair_ok": pair_ok,
        "faulty": n - 2,
    }


def _mirror_nodes(n: int, faulty: int) -> tuple[int, ...]:
    """The conventional E12 Byzantine set: the ``faulty`` highest ids
    (never node 0 — the commander/disseminator stays honest)."""
    if faulty < 0 or faulty >= n:
        raise ConfigurationError(f"faulty must be in 0..{n - 1}, got {faulty}")
    return tuple(range(n - faulty, n))


def _mirror_spec(mirrors: tuple[int, ...], t: int) -> AdversarySpec | None:
    """The conventional E12/E13 corruption as an adversary-plane spec:
    rushing mirrors on the given nodes, or None for a failure-free run.

    The budget is checked against ``max(t, len(mirrors))`` rather than
    ``t`` alone: the sweeps deliberately let the ``faulty`` axis exceed
    small fault budgets to map where the guarantees actually crack.
    """
    if not mirrors:
        return None
    return AdversarySpec(
        corrupt=tuple((node, "rush") for node in mirrors),
        t=max(t, len(mirrors)),
    )


def _e12_result(
    run, n: int, t: int, delivery: str, faulty: int, trace: bool, **outcome: Any
) -> dict[str, Any]:
    """The shared E12 result shape: identity + timing counters + the
    probe-specific outcome fields, plus the event log when asked."""
    result = {
        "n": n,
        "t": t,
        "delivery": delivery,
        "faulty": faulty,
        **outcome,
        "rounds": run.metrics.rounds_used,
        "ticks": run.rounds_executed,
        "messages": run.metrics.messages_total,
        "mean_lag": round(run.metrics.mean_delivery_lag, 4),
    }
    if trace and run.trace is not None:
        result["trace"] = run.trace.format()
    return result


@workload("e12-oral", suite="E12/regress", deliveries=("sync", "bounded", "rush"))
def e12_oral_point(
    n: int,
    t: int,
    delivery: str = "sync",
    faulty: int = 0,
    seed: int | str = 0,
    value: Any = "v",
    trace: bool = False,
) -> dict[str, Any]:
    """One OM(t) oral-agreement run under a chosen delivery model.

    The E12 axis: the *same* protocols and the same Byzantine strategy
    (:class:`~repro.faults.RushMirrorProtocol` on the ``faulty`` highest
    ids) swept across ``sync`` / ``bounded:d`` / ``rush`` delivery
    specs, so outcome divergence is attributable to network timing
    alone.  Under ``rush`` the mirrors are the rushing set.
    """
    protocols = make_oral_agreement_protocols(n, t, value)
    mirrors = _mirror_nodes(n, faulty)
    spec = _mirror_spec(mirrors, t)
    if spec is not None:
        protocols = spec.protocols_for(protocols)
    run = run_protocols(
        protocols,
        seed=seed,
        delivery=make_delivery(delivery, rushing=mirrors),
        record_trace=trace,
    )
    honest = {
        node: val
        for node, val in run.decisions().items()
        if node not in mirrors
    }
    return _e12_result(
        run, n, t, delivery, faulty, trace,
        agreed=len(set(map(repr, honest.values()))) == 1,
        decision=repr(min(honest.items())[1]) if honest else None,
        decided=len(honest),
    )


@workload("e12-fd", suite="E12/regress", deliveries=("sync", "bounded", "rush"))
def e12_fd_point(
    n: int,
    t: int,
    delivery: str = "sync",
    faulty: int = 0,
    seed: int | str = 0,
    trace: bool = False,
) -> dict[str, Any]:
    """One chain-FD scenario under a chosen delivery model.

    Chain FD leans hardest on N1's *known* one-round bound (silence and
    timing are evidence), so this is where delivery skew shows first:
    under ``bounded:d`` even failure-free runs deliver chain links late
    and honest nodes discover "failures" that are really network skew.
    """
    mirrors = _mirror_nodes(n, faulty)
    outcome = run_fd_scenario(
        n,
        t,
        "v",
        protocol="chain",
        auth=GLOBAL,
        scheme=COUNT_SCHEME,
        seed=seed,
        adversary=_mirror_spec(mirrors, t),
        delivery=delivery,
        record_trace=trace,
    )
    run = outcome.run
    return _e12_result(
        run, n, t, delivery, faulty, trace,
        fd_ok=outcome.fd.ok,
        any_discovery=outcome.fd.any_discovery,
        all_decided=all(run.states[node].decided for node in outcome.correct),
    )


@workload("e12-ba", suite="E12/regress", deliveries=("sync", "bounded", "rush"))
def e12_ba_point(
    n: int,
    t: int,
    delivery: str = "sync",
    faulty: int = 0,
    seed: int | str = 0,
    trace: bool = False,
) -> dict[str, Any]:
    """One signed-agreement (SM(t)) run under a chosen delivery model.

    The signature chains make equivocation detectable regardless of
    timing, so SM(t) is the resilience baseline of the E12 sweep — the
    interesting measurement is how far its agreement survives skew and
    rushing relative to oral agreement and chain FD.
    """
    mirrors = _mirror_nodes(n, faulty)
    outcome = run_ba_scenario(
        n,
        t,
        "v",
        protocol="signed",
        auth=GLOBAL,
        scheme=COUNT_SCHEME,
        seed=seed,
        adversary=_mirror_spec(mirrors, t),
        delivery=delivery,
        record_trace=trace,
    )
    return _e12_result(
        outcome.run, n, t, delivery, faulty, trace,
        ba_ok=outcome.ba.ok,
        agreement=outcome.ba.agreement,
    )


def _silent_spec(n: int, t: int, faulty: int) -> "AdversarySpec | None":
    """The conventional E13 fault load: ``faulty`` silent nodes on the
    highest ids (the crash case every FD protocol must catch)."""
    nodes = _mirror_nodes(n, faulty)
    if not nodes:
        return None
    return AdversarySpec(
        corrupt=tuple((node, "silent") for node in nodes),
        t=max(t, len(nodes)),
    )


@workload("e13-loss", suite="E13/regress", deliveries=("loss",))
def e13_loss_point(
    n: int,
    t: int,
    loss: float = 0.2,
    protocol: str = "oral",
    faulty: int = 0,
    seed: int | str = 0,
    value: Any = "v",
    trace: bool = False,
) -> dict[str, Any]:
    """Agreement survival under message loss: one (protocol, loss) cell.

    The E13 agreement axis: the same protocols as E12's baseline —
    ``oral`` OM(t) or ``ba`` signed SM(t) — under ``loss:p`` delivery,
    with ``faulty`` silent nodes from the adversary plane.  The
    measurement is how much loss each guarantee absorbs before honest
    nodes stop agreeing (and how much of the sent traffic the network
    ate, now first-class in the metrics).
    """
    delivery = f"loss:{loss}"
    spec = _silent_spec(n, t, faulty)
    mirrors = _mirror_nodes(n, faulty)
    if protocol == "oral":
        protocols = make_oral_agreement_protocols(n, t, value)
        if spec is not None:
            protocols = spec.protocols_for(protocols)
        run = run_protocols(
            protocols,
            seed=seed,
            delivery=make_delivery(delivery),
            record_trace=trace,
        )
        honest = {
            node: val
            for node, val in run.decisions().items()
            if node not in mirrors
        }
        outcome = {
            "agreed": len(set(map(repr, honest.values()))) == 1 and bool(honest),
            "decided": len(honest),
        }
    elif protocol == "ba":
        scenario = run_ba_scenario(
            n, t, value, protocol="signed", auth=GLOBAL, scheme=COUNT_SCHEME,
            seed=seed, adversary=spec, delivery=delivery, record_trace=trace,
        )
        run = scenario.run
        outcome = {
            "agreed": scenario.ba.agreement,
            "decided": sum(
                1 for node in scenario.correct if run.states[node].decided
            ),
        }
    else:
        raise ConfigurationError(
            f"e13-loss protocol must be 'oral' or 'ba', got {protocol!r}"
        )
    result = {
        "n": n,
        "t": t,
        "protocol": protocol,
        "loss": loss,
        "faulty": faulty,
        **outcome,
        "messages": run.metrics.messages_total,
        "drops": run.metrics.drops_total,
        "loss_rate": round(run.metrics.loss_rate, 4),
        "rounds": run.metrics.rounds_used,
    }
    if trace and run.trace is not None:
        result["trace"] = run.trace.format()
    return result


@workload(
    "e13-timeout-fd",
    suite="E13/regress",
    deliveries=("sync", "bounded", "loss", "partition"),
)
def e13_timeout_fd_point(
    n: int,
    t: int,
    delivery: str = "sync",
    protocol: str = "timeout",
    faulty: int = 0,
    seed: int | str = 0,
    timeout: int | None = None,
    trace: bool = False,
    checkpoint_at: int | None = None,
    resume_from: KernelSnapshot | None = None,
) -> dict[str, Any] | KernelSnapshot:
    """Round-indexed vs timeout FD under a chosen delivery model.

    The E13 discovery axis: the *same* fault load (``faulty`` silent
    nodes via the adversary plane) and the same delivery spec, run
    through the paper's round-indexed ``chain`` protocol or the
    weak-model ``timeout`` protocol — so the spurious-vs-missed
    discovery comparison isolates the protocol design.  ``spurious`` is
    a discovery in a failure-free run (network skew mistaken for a
    fault); ``missed`` is a faulty run no correct node discovered.

    ``checkpoint_at`` / ``resume_from`` are the warm-started sweep hooks
    (:func:`repro.harness.parallel.sweep_prefix_shared`): the former
    runs only the shared prefix and returns its snapshot, the latter
    finishes a prefix with ``timeout`` retuned as the fork axis.
    """
    if protocol not in ("chain", "timeout"):
        raise ConfigurationError(
            f"e13-timeout-fd protocol must be 'chain' or 'timeout', got "
            f"{protocol!r}"
        )
    params: dict[str, Any] = {}
    if protocol == "timeout" and timeout is not None:
        params["timeout"] = timeout
    outcome = run_fd_scenario(
        n,
        t,
        "v",
        protocol=protocol,
        auth=GLOBAL,
        scheme=COUNT_SCHEME,
        seed=seed,
        adversary=_silent_spec(n, t, faulty),
        delivery=delivery,
        record_trace=trace,
        protocol_params=params,
        checkpoint_at=checkpoint_at,
        resume_from=resume_from,
    )
    if checkpoint_at is not None:
        return outcome
    run = outcome.run
    discovered = outcome.fd.any_discovery
    result = {
        "n": n,
        "t": t,
        "protocol": protocol,
        "delivery": delivery,
        "faulty": faulty,
        "fd_ok": outcome.fd.ok,
        "discovered": discovered,
        "spurious": bool(discovered and faulty == 0),
        "missed": bool(not discovered and faulty > 0),
        "decided": sum(1 for node in outcome.correct if run.states[node].decided),
        "messages": run.metrics.messages_total,
        "drops": run.metrics.drops_total,
        "rounds": run.metrics.rounds_used,
    }
    if trace and run.trace is not None:
        result["trace"] = run.trace.format()
    return result


@workload("e13-partition", suite="E13/regress", deliveries=("partition",))
def e13_partition_point(
    n: int,
    t: int,
    heal: int = 4,
    defer: bool = True,
    protocol: str = "timeout",
    seed: int | str = 0,
    timeout: int | None = None,
    trace: bool = False,
    checkpoint_at: int | None = None,
    resume_from: KernelSnapshot | None = None,
) -> dict[str, Any] | KernelSnapshot:
    """Partition-heal convergence: one (heal tick, mode) cell.

    The network splits ``{0 .. n//2-1}`` from ``{n//2 .. n-1}`` at tick
    0 and heals at ``heal``; ``defer`` parks cross-partition traffic
    until then (store-and-forward) instead of dropping it.  Measured:
    whether every node converges on the sender's value once the
    partition heals — which for timeout FD happens exactly when the
    heal falls inside the protocol's ``timeout`` horizon — versus the
    chain protocol, which has no second chance.
    """
    split = n // 2
    mode = "/defer" if defer else ""
    delivery = f"partition:0-{split - 1}|{split}-{n - 1}@{heal}{mode}"
    result = e13_timeout_fd_point(
        n,
        t,
        delivery=delivery,
        protocol=protocol,
        faulty=0,
        seed=seed,
        timeout=timeout,
        trace=trace,
        checkpoint_at=checkpoint_at,
        resume_from=resume_from,
    )
    if checkpoint_at is not None:
        return result
    return result | {"heal": heal, "defer": defer}


@workload(
    "e14-adaptive",
    suite="E14/regress",
    deliveries=("sync", "bounded", "loss", "partition"),
)
def e14_adaptive_point(
    n: int,
    t: int,
    delivery: str = "sync",
    protocol: str = "adaptive",
    attack: str = "none",
    seed: int | str = 0,
    timeout: int | None = None,
    max_timeout: int | None = None,
    trace: bool = False,
    checkpoint_at: int | None = None,
    resume_from: KernelSnapshot | None = None,
) -> dict[str, Any] | KernelSnapshot:
    """Static vs adaptive timeout FD against a chosen attack: one cell.

    The E14 arms-race axis.  ``protocol`` selects the defence (the
    fixed-horizon ``timeout`` FD or the delay-estimating ``adaptive``
    FD); ``attack`` selects the offence:

    * ``none`` — failure-free (measures spurious discovery);
    * ``silent`` — one statically silent node (the E13 load);
    * ``ack-lie`` — the corrupt node acks-then-drops so retransmission
      stops while the value never lands;
    * ``equivocate`` — node 1 tells the two halves of the network
      different stories;
    * an ``adaptive:STRATEGY`` spec — the adversary watches the run's
      live counters and commits corruptions online, budget-checked at
      commitment time.

    ``spurious`` is a discovery with nothing faulty *and* nothing
    committed — an adaptively committed corruption is a real fault, so
    discovering it is the FD doing its job.
    """
    if protocol not in ("timeout", "adaptive"):
        raise ConfigurationError(
            f"e14-adaptive protocol must be 'timeout' or 'adaptive', got "
            f"{protocol!r}"
        )
    if attack == "none":
        adversary: AdversarySpec | None = None
    elif attack == "silent":
        adversary = _silent_spec(n, t, 1)
    elif attack == "ack-lie":
        adversary = AdversarySpec(corrupt=((n - 1, "ack-lie"),), t=t)
    elif attack == "equivocate":
        adversary = AdversarySpec(corrupt=((1, "equivocate"),), t=t)
    elif attack.startswith("adaptive:"):
        adversary = make_adversary(attack, t=t)
    else:
        raise ConfigurationError(
            f"e14-adaptive attack must be 'none', 'silent', 'ack-lie', "
            f"'equivocate' or 'adaptive:STRATEGY', got {attack!r}"
        )
    params: dict[str, Any] = {}
    if protocol == "timeout" and timeout is not None:
        params["timeout"] = timeout
    if protocol == "adaptive" and max_timeout is not None:
        params["max_timeout"] = max_timeout
    outcome = run_fd_scenario(
        n,
        t,
        "v",
        protocol=protocol,
        auth=GLOBAL,
        scheme=COUNT_SCHEME,
        seed=seed,
        adversary=adversary,
        delivery=delivery,
        record_trace=trace,
        protocol_params=params,
        checkpoint_at=checkpoint_at,
        resume_from=resume_from,
    )
    if checkpoint_at is not None:
        return outcome
    run = outcome.run
    discovered = outcome.fd.any_discovery
    faulty = 0 if adversary is None else len(adversary.faulty)
    committed = len(outcome.committed)
    result = {
        "n": n,
        "t": t,
        "protocol": protocol,
        "delivery": delivery,
        "attack": attack,
        "faulty": faulty,
        "committed": committed,
        "fd_ok": outcome.fd.ok,
        "discovered": discovered,
        "spurious": bool(discovered and faulty == 0 and committed == 0),
        "missed": bool(not discovered and (faulty > 0 or committed > 0)),
        "decided": sum(1 for node in outcome.correct if run.states[node].decided),
        "messages": run.metrics.messages_total,
        "drops": run.metrics.drops_total,
        "rounds": run.metrics.rounds_used,
    }
    if trace and run.trace is not None:
        result["trace"] = run.trace.format()
    return result


@workload("e14-equivocation", suite="E14/regress", deliveries=("partition",))
def e14_equivocation_point(
    n: int,
    t: int,
    heal: int = 4,
    defer: bool = True,
    protocol: str = "adaptive",
    seed: int | str = 0,
    trace: bool = False,
) -> dict[str, Any]:
    """Partition-straddling equivocation: one (heal tick, mode) cell.

    The network splits in half and heals at ``heal`` (``defer`` parks
    cross-partition traffic until then); node 1 — inside the sender's
    partition — tells the two sides different stories from tick 0
    (:class:`repro.faults.EquivocatingProtocol`), so the heal either
    exposes the lie to the far side or buries it with the dropped
    deferrals.  Measured: whether the FD under test still converges on
    the sender's value and whether anyone catches the equivocator.
    """
    split = n // 2
    mode = "/defer" if defer else ""
    delivery = f"partition:0-{split - 1}|{split}-{n - 1}@{heal}{mode}"
    return e14_adaptive_point(
        n,
        t,
        delivery=delivery,
        protocol=protocol,
        attack="equivocate",
        seed=seed,
        trace=trace,
    ) | {"heal": heal, "defer": defer}


@workload(
    "akd-shard",
    suite="E11/regress",
    deliveries=("sync", "bounded", "loss", "partition"),
)
def akd_shard_point(
    n: int,
    t: int,
    seed: int | str = 0,
    scheme: str = COUNT_SCHEME,
    instances: tuple[int, ...] | None = None,
    byzantine: tuple[tuple[int, str], ...] = (),
    delivery: "str | None" = None,
    engine: "str | None" = None,
) -> dict[int, Any]:
    """One shard of an agreement-based key-distribution mux run.

    The job :func:`repro.harness.parallel.run_mux_shards` ships to worker
    processes: runs the full n-node simulation restricted to the given
    instance subset and returns each instance's
    :class:`~repro.sim.multiplex.InstanceAggregate` (settled metrics —
    picklable, value-comparable).  ``byzantine`` is the picklable
    adversary spec of :func:`repro.auth.agreement_based.akd_byzantine_protocol`.
    Unlike the other registry entries this returns aggregates rather than
    a flat count dict — it is executor plumbing, not a sweep point.
    """
    result = run_agreement_key_distribution(
        n,
        t,
        scheme=scheme,
        seed=seed,
        byzantine=byzantine,
        instances=instances,
        delivery=delivery,
        engine=engine,
    )
    return result.per_instance


@workload(
    "akd",
    suite="E11/regress",
    deliveries=("sync", "bounded", "loss", "partition"),
)
def akd_point(
    n: int,
    t: int,
    seed: int | str = 0,
    scheme: str = COUNT_SCHEME,
    shard_workers: int = 0,
    byzantine: tuple[tuple[int, str], ...] = (),
    delivery: "str | None" = None,
    engine: "str | None" = None,
) -> dict[str, Any]:
    """One agreement-based key-distribution run: per-instance counts.

    ``shard_workers > 1`` routes through the pipelined instance-shard
    executor (:func:`repro.harness.parallel.run_mux_shards`); the counts
    are shard-invariant by the mux equivalence property, so the flat
    result is identical either way — only wall-clock and peak memory
    change.  ``engine`` picks the mux execution engine (``None`` = the
    process default, columnar unless ``REPRO_MUX_ENGINE`` overrides);
    counts are engine-invariant likewise, and ``engine_used`` in the
    result reports the engine that actually ran (so silent fallback to
    the object oracle is visible in every sweep row).  ``delivery``
    accepts any deterministic-calendar spec (``bounded:3``,
    ``loss:0.05:2``, ``partition:...``) — the arrival-columned batch
    plane keeps the columnar engine engaged on all of them.
    """
    if shard_workers and shard_workers > 1:
        from .parallel import run_mux_shards

        per_instance = run_mux_shards(
            "akd-shard",
            {
                "n": n,
                "t": t,
                "seed": seed,
                "scheme": scheme,
                "byzantine": byzantine,
                "delivery": delivery,
                "engine": engine,
            },
            range(n),
            workers=shard_workers,
        )
        # Shard workers run in other processes; all resolve the same
        # configured engine, and none of these runs records, so the
        # resolution is the engine used.
        engine_used = default_mux_engine() if engine is None else engine
    else:
        result = run_agreement_key_distribution(
            n,
            t,
            scheme=scheme,
            seed=seed,
            byzantine=byzantine,
            delivery=delivery,
            engine=engine,
        )
        per_instance = result.per_instance
        engine_used = result.engine_used
    messages = [agg.messages for agg in per_instance.values()]
    byte_counts = [agg.bytes for agg in per_instance.values()]
    agreed = all(
        len({repr(v) for node, v in agg.decisions.items() if node != instance})
        == 1
        for instance, agg in per_instance.items()
    )
    return {
        "n": n,
        "t": t,
        "instances": len(per_instance),
        "messages": sum(messages),
        "bytes": sum(byte_counts),
        "rounds": max(agg.rounds for agg in per_instance.values()),
        "instance_messages_min": min(messages),
        "instance_messages_max": max(messages),
        "instance_bytes_min": min(byte_counts),
        "instance_bytes_max": max(byte_counts),
        "agreed": agreed,
        "engine_used": engine_used,
    }
