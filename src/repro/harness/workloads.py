"""Picklable sweep workloads: one module-level function per point kind.

:func:`~repro.harness.parallel.sweep_parallel` ships jobs to worker
processes by pickling ``(fn, params)``, which requires module-level
functions returning plain data.  This module collects the point functions
behind the E1–E11 benchmark sweeps and ``benchmarks/regress.py`` in that
shape: every function takes only primitive params (seed included — the
determinism contract), runs one scenario, and returns a flat dict of
counts.
"""

from __future__ import annotations

from typing import Any

from ..agreement import make_oral_agreement_protocols
from ..auth import run_key_distribution
from ..sim import run_protocols
from .runner import GLOBAL, run_ba_scenario, run_fd_scenario

#: Count-measuring sweeps default to the fast HMAC simulation scheme (the
#: measured quantities are scheme-independent; benchmark E10 verifies that).
COUNT_SCHEME = "simulated-hmac"


def keydist_point(n: int, seed: int | str = 0, scheme: str = COUNT_SCHEME) -> dict[str, Any]:
    """One key-distribution run (paper Fig. 1): message/round counts."""
    kd = run_key_distribution(n, scheme=scheme, seed=seed)
    return {"n": n, "messages": kd.messages, "rounds": kd.rounds}


def fd_point(
    n: int,
    t: int,
    seed: int | str = 0,
    protocol: str = "chain",
    auth: str = GLOBAL,
    scheme: str = COUNT_SCHEME,
) -> dict[str, Any]:
    """One failure-discovery scenario: rounds/messages/bytes plus verdicts."""
    outcome = run_fd_scenario(
        n, t, "v", protocol=protocol, auth=auth, scheme=scheme, seed=seed
    )
    metrics = outcome.run.metrics
    return {
        "n": n,
        "t": t,
        "protocol": protocol,
        "rounds": metrics.rounds_used,
        "messages": metrics.messages_total,
        "bytes": metrics.bytes_total,
        "total_messages": outcome.total_messages,
        "all_decided": all(s.decided for s in outcome.run.states),
        "fd_ok": outcome.fd.ok if outcome.fd is not None else None,
    }


def ba_point(
    n: int,
    t: int,
    seed: int | str = 0,
    protocol: str = "extension",
    auth: str = GLOBAL,
    scheme: str = COUNT_SCHEME,
) -> dict[str, Any]:
    """One Byzantine-agreement scenario: counts plus the BA verdict."""
    outcome = run_ba_scenario(
        n, t, "v", protocol=protocol, auth=auth, scheme=scheme, seed=seed
    )
    metrics = outcome.run.metrics
    return {
        "n": n,
        "t": t,
        "protocol": protocol,
        "rounds": metrics.rounds_used,
        "messages": metrics.messages_total,
        "bytes": metrics.bytes_total,
        "agreement": outcome.ba.agreement if outcome.ba is not None else None,
    }


def oral_point(
    n: int, t: int, seed: int | str = 0, value: Any = "v"
) -> dict[str, Any]:
    """One OM(t) oral-agreement run over the EIG tree."""
    run = run_protocols(
        make_oral_agreement_protocols(n, t, value), seed=seed
    )
    decisions = run.decisions()
    return {
        "n": n,
        "t": t,
        "rounds": run.metrics.rounds_used,
        "messages": run.metrics.messages_total,
        "bytes": run.metrics.bytes_total,
        "agreed": len(set(map(repr, decisions.values()))) == 1,
        "decision": repr(decisions.get(1)),
    }


def e8_round_point(
    n: int, t: int, seed: int | str = 0, scheme: str = COUNT_SCHEME
) -> dict[str, Any]:
    """One row of the E8 round-complexity table: all three round counts."""
    kd = run_key_distribution(n, scheme=scheme, seed=seed)
    chain = run_fd_scenario(
        n, t, "v", protocol="chain", auth=GLOBAL, scheme=scheme, seed=seed
    )
    echo = run_fd_scenario(n, t, "v", protocol="echo", seed=seed)
    return {
        "n": n,
        "t": t,
        "keydist_rounds": kd.rounds,
        "chain_rounds": chain.run.metrics.rounds_used,
        "echo_rounds": echo.run.metrics.rounds_used,
    }
