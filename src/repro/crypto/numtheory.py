"""Number-theoretic primitives for the from-scratch signature schemes.

The paper cites RSA and DSA as example schemes satisfying its signature
axioms S1-S3.  We implement both from first principles (no external crypto
libraries are available offline), which requires primality testing, prime
generation, modular inverses and subgroup parameter generation.

Security disclaimer: key sizes default to research-grade small parameters
(512-bit moduli) so that simulations with dozens of nodes stay fast.  This
is a *reproduction substrate*, not a production cryptosystem.
"""

from __future__ import annotations

import random

from ..errors import KeyGenerationError

# Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
)

# Deterministic Miller-Rabin witness sets.  Testing against these bases is
# a *proof* of primality for n below the stated bounds (Sinclair/Jaeschke).
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 318_665_857_834_031_151_167_461  # ~3.3e23


def _miller_rabin_round(n: int, base: int) -> bool:
    """One Miller-Rabin round; True means 'probably prime' for this base."""
    if base % n == 0:
        return True
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(base, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rng: random.Random | None = None, rounds: int = 24) -> bool:
    """Miller-Rabin primality test.

    Deterministic (a proof, not a probability) for ``n`` below ~3.3e23;
    above that, ``rounds`` random bases give error probability at most
    ``4**-rounds``.

    :param n: the candidate.
    :param rng: randomness source for witness selection; a fresh unseeded
        ``random.Random`` is used if omitted.
    :param rounds: number of random witnesses for large ``n``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_BOUND:
        return all(_miller_rabin_round(n, base) for base in _DETERMINISTIC_BASES)
    if rng is None:
        rng = random.Random()
    for _ in range(rounds):
        base = rng.randrange(2, n - 1)
        if not _miller_rabin_round(n, base):
            return False
    return True


def generate_prime(bits: int, rng: random.Random, max_attempts: int = 100_000) -> int:
    """Generate a random prime of exactly ``bits`` bits.

    :param bits: bit length, at least 8.
    :param rng: seeded randomness source (reproducibility contract: the
        same rng state always yields the same prime).
    :raises KeyGenerationError: if no prime is found within the attempt
        budget (astronomically unlikely for sane ``bits``).
    """
    if bits < 8:
        raise KeyGenerationError(f"prime bit length must be >= 8, got {bits}")
    for _ in range(max_attempts):
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force exact bit length and oddness
        if is_probable_prime(candidate, rng):
            return candidate
    raise KeyGenerationError(f"no {bits}-bit prime found in {max_attempts} attempts")


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, modulus: int) -> int:
    """Modular inverse of ``a`` modulo ``modulus``.

    :raises KeyGenerationError: if the inverse does not exist.
    """
    g, x, _ = egcd(a % modulus, modulus)
    if g != 1:
        raise KeyGenerationError(f"{a} is not invertible modulo {modulus}")
    return x % modulus


def generate_schnorr_group(
    p_bits: int, q_bits: int, rng: random.Random, max_attempts: int = 100_000
) -> tuple[int, int, int]:
    """Generate Schnorr/DSA-style group parameters ``(p, q, g)``.

    ``q`` is a ``q_bits`` prime, ``p = q*k + 1`` is a ``p_bits`` prime, and
    ``g`` generates the order-``q`` subgroup of ``Z_p^*``.

    :raises KeyGenerationError: if parameters cannot be found in budget.
    """
    if q_bits >= p_bits:
        raise KeyGenerationError(f"need q_bits < p_bits, got {q_bits} >= {p_bits}")
    q = generate_prime(q_bits, rng)
    for _ in range(max_attempts):
        k = rng.getrandbits(p_bits - q_bits)
        k |= 1 << (p_bits - q_bits - 1)
        k &= ~1  # even k keeps p odd
        p = q * k + 1
        if p.bit_length() != p_bits or not is_probable_prime(p, rng):
            continue
        # Any h with h^((p-1)/q) != 1 yields a generator of the q-subgroup.
        for _ in range(64):
            h = rng.randrange(2, p - 1)
            g = pow(h, (p - 1) // q, p)
            if g != 1:
                return p, q, g
    raise KeyGenerationError(
        f"no Schnorr group with p_bits={p_bits}, q_bits={q_bits} found"
    )
