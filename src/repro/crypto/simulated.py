"""A fast HMAC-based *simulation* signature scheme.

Real public-key signing dominates wall-clock time in large parameter
sweeps.  For benchmarks whose subject is *message complexity* — where the
cryptography only needs to be functionally correct, not adversary-proof —
this scheme provides microsecond signing with the same interface.

Construction
------------
* secret key: 32 random bytes ``k``;
* test predicate material: ``sha256(k)`` — a commitment to ``k`` that does
  not reveal it (so axiom S3 holds for the predicate *value* itself);
* signature: ``HMAC-SHA256(k, m)``;
* verification: the predicate's commitment is looked up in a process-local
  registry populated at key-generation time, yielding ``k``, and the HMAC
  is recomputed.

Threat-model caveat (read before using in security experiments)
---------------------------------------------------------------
Verification requires the verifier's *process* to know ``k`` via the
registry.  Inside one simulation process this is invisible: honest protocol
code and the fault behaviours in :mod:`repro.faults` never touch the
registry, so S1-S3 hold *against every adversary this library implements*.
A hypothetical adversary with process-memory access could forge, which is
why the adversarial key-distribution experiments (E6) default to the real
schemes.  The deliberate forgery helper :func:`forge_signature` exists only
so tests can construct counterfeits and confirm the protocols reject the
detectable ones.
"""

from __future__ import annotations

import hashlib
import hmac
import random

from ..errors import SigningError
from .keys import KeyPair, SecretKey, SignatureScheme, TestPredicate, register_scheme

# commitment (predicate material) -> secret bytes.  Process-local trust base.
_SECRET_REGISTRY: dict[bytes, bytes] = {}


class SimulatedScheme(SignatureScheme):
    """HMAC-based scheme for honest-path benchmarking (see module docs)."""

    name = "simulated-hmac"

    def generate_keypair(self, rng: random.Random) -> KeyPair:
        k = rng.getrandbits(256).to_bytes(32, "big")
        commitment = hashlib.sha256(k).digest()
        _SECRET_REGISTRY[commitment] = k
        secret = SecretKey(scheme=self.name, material=k)
        predicate = TestPredicate(scheme=self.name, material=commitment)
        return KeyPair(secret=secret, predicate=predicate)

    def sign(self, secret: SecretKey, message: bytes) -> bytes:
        if secret.scheme != self.name:
            raise SigningError(
                f"secret key for scheme {secret.scheme!r} given to {self.name!r}"
            )
        # hmac.digest is the one-shot C fast path (no HMAC object setup).
        return hmac.digest(secret.material, message, "sha256")

    def verify(self, predicate: TestPredicate, message: bytes, signature: bytes) -> bool:
        material = predicate.material
        if not isinstance(material, bytes):
            return False
        k = _SECRET_REGISTRY.get(material)
        if k is None:
            # Unknown commitment: the "public key" was fabricated without
            # key generation, so no secret exists and S2 says reject.
            return False
        expected = hmac.digest(k, message, "sha256")
        return hmac.compare_digest(expected, signature)

    def observe_unpickled_secret(self, secret: SecretKey) -> None:
        # The trust base is process-local; a secret arriving by pickle
        # (kernel snapshot resume, sweep worker fan-out) re-registers its
        # commitment so the in-flight signatures it produced still verify.
        material = secret.material
        if isinstance(material, (bytes, bytearray)):
            k = bytes(material)
            _SECRET_REGISTRY.setdefault(hashlib.sha256(k).digest(), k)


def forge_signature(predicate: TestPredicate, message: bytes) -> bytes | None:
    """Deliberately forge a signature valid under ``predicate``.

    Test-only helper modelling an S1-violating adversary.  Returns ``None``
    when the predicate's secret is not in this process's registry (in which
    case even an S1 violation is impossible to simulate).
    """
    if predicate.scheme != SimulatedScheme.name:
        return None
    k = _SECRET_REGISTRY.get(predicate.material)
    if k is None:
        return None
    return hmac.new(k, message, hashlib.sha256).digest()


#: Default simulated instance, registered at import time.
SIMULATED = register_scheme(SimulatedScheme())
