"""Cryptographic substrate: canonical encoding, signature schemes, chains.

The paper assumes a signature scheme with axioms S1-S3 (see
:mod:`repro.crypto.keys`) and names RSA and DSA as instantiations.  This
package provides both families from first principles plus a fast simulation
scheme, a canonical wire encoding so structured values can be signed
consistently across nodes, and the named chain signatures of the paper's
section 4.
"""

from .chain import (
    ChainVerdict,
    chain_depth,
    extend_chain,
    is_leaf,
    is_link,
    leaf_value,
    link_parts,
    sign_leaf,
    submessages,
    verify_chain,
)
from .encoding import byte_size, decode, encode, register_codec
from .keys import (
    KeyPair,
    SecretKey,
    SignatureScheme,
    TestPredicate,
    available_schemes,
    get_scheme,
    register_scheme,
)
from .rsa import RSA_512, RsaScheme
from .schnorr import SCHNORR_512, SchnorrScheme
from .signing import SignedMessage, garble_signature, sign_value
from .simulated import SIMULATED, SimulatedScheme, forge_signature

#: Scheme used by default throughout the library.  Schnorr rather than RSA
#: because its keygen cost is a single modular exponentiation (RSA keygen
#: must search for primes per node), which matters when sweeping network
#: sizes; and rather than the HMAC scheme because it genuinely satisfies
#: S1-S3 (see the caveat in :mod:`repro.crypto.simulated`).
DEFAULT_SCHEME = SCHNORR_512.name

__all__ = [
    "ChainVerdict",
    "DEFAULT_SCHEME",
    "KeyPair",
    "RSA_512",
    "RsaScheme",
    "SCHNORR_512",
    "SIMULATED",
    "SchnorrScheme",
    "SecretKey",
    "SignatureScheme",
    "SignedMessage",
    "SimulatedScheme",
    "TestPredicate",
    "available_schemes",
    "byte_size",
    "chain_depth",
    "decode",
    "encode",
    "extend_chain",
    "forge_signature",
    "garble_signature",
    "get_scheme",
    "is_leaf",
    "is_link",
    "leaf_value",
    "link_parts",
    "register_codec",
    "register_scheme",
    "sign_leaf",
    "sign_value",
    "submessages",
    "verify_chain",
]
