"""Keys, test predicates and the signature-scheme registry.

The paper's signature axioms (its section 2):

S1. A node can produce a signed message ``{m}_S`` if and only if it knows
    the secret key ``S`` and the message ``m``.
S2. For each secret key ``S_i`` there exists a public *test predicate*
    ``T_i`` with ``T_i({m}_S) == true  <=>  S == S_i``.
S3. The secret key ``S_i`` cannot be extracted from a signed message or
    from the test predicate.

We model the test predicate as a first-class value (:class:`TestPredicate`)
that travels on the wire during the key distribution protocol, exactly as
the paper casts "public key" into "test predicate" for notational reasons.

Crucially — and this is the paper's departure from the usual authenticated
model — *nothing* here assumes test predicates are distributed
authentically.  A predicate is just a value; binding predicates to nodes is
the job of :mod:`repro.auth`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any

from ..errors import UnknownSchemeError
from . import encoding


@dataclass(frozen=True)
class SecretKey:
    """A secret signing key ``S_i`` (axiom S1).

    ``material`` is scheme-specific and opaque to everything outside the
    scheme implementation.  Secret keys are deliberately *not* registered
    with the wire codec: the key distribution protocol never transmits
    them, and the proof of paper Theorem 2 relies on exactly that.
    """

    scheme: str
    material: Any = field(repr=False)

    def sign(self, message: bytes) -> bytes:
        """Sign ``message``, returning the raw signature bytes."""
        return get_scheme(self.scheme).sign(self, message)

    def __getstate__(self) -> dict[str, Any]:
        return {"scheme": self.scheme, "material": self.material}

    def __setstate__(self, state: dict[str, Any]) -> None:
        object.__setattr__(self, "scheme", state["scheme"])
        object.__setattr__(self, "material", state["material"])
        # A secret crossing a process boundary — a kernel snapshot being
        # resumed, a sweep point fanned out to a worker — must bring its
        # scheme's process-local state along, or verification silently
        # flips to "reject" in the new process and a resumed run diverges
        # from the straight one.  Schemes with such state (the simulated
        # HMAC scheme's secret registry) re-register here.
        try:
            get_scheme(self.scheme).observe_unpickled_secret(self)
        except UnknownSchemeError:
            pass


@dataclass(frozen=True)
class TestPredicate:
    """A public test predicate ``T_i`` (axiom S2).

    Calling the predicate on ``(message, signature)`` returns whether the
    signature was produced with the matching secret key.  Predicates are
    value objects: equality and hashing go through the canonical encoding
    of the public material, so two nodes can compare the predicates they
    received byte-for-byte — which is all the key distribution protocol
    ever needs.
    """

    scheme: str
    material: Any

    # The class name matches pytest's collection pattern by coincidence;
    # this marker keeps test collectors away from a library type.
    __test__ = False

    def __call__(self, message: bytes, signature: bytes) -> bool:
        """Evaluate ``T_i({m}_S)``: True iff ``signature`` is valid for
        ``message`` under this predicate's key (axiom S2)."""
        try:
            scheme = get_scheme(self.scheme)
        except UnknownSchemeError:
            return False
        return scheme.verify(self, message, signature)

    def fingerprint(self) -> bytes:
        """A 16-byte digest identifying this predicate's public material."""
        return hashlib.sha256(encoding.encode(self._wire_payload())).digest()[:16]

    def _wire_payload(self) -> Any:
        return (self.scheme, self.material)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TestPredicate):
            return NotImplemented
        return self._wire_payload() == other._wire_payload()

    def __hash__(self) -> int:
        # Hashing encodes the material; predicates key the hot
        # signature-verification memo, so the hash itself is memoized.
        cached = self.__dict__.get("_repro_hash")
        if cached is None:
            cached = hash((self.scheme, encoding.encode(self.material)))
            object.__setattr__(self, "_repro_hash", cached)
        return cached

    def __getstate__(self) -> dict[str, Any]:
        # Strip cache stashes (hash, wire bytes) for canonical pickles.
        return {"scheme": self.scheme, "material": self.material}

    def __setstate__(self, state: dict[str, Any]) -> None:
        object.__setattr__(self, "scheme", state["scheme"])
        object.__setattr__(self, "material", state["material"])


@dataclass(frozen=True)
class KeyPair:
    """A node's ``(S_i, T_i)`` pair as generated in paper Fig. 1, line 1."""

    secret: SecretKey
    predicate: TestPredicate


class SignatureScheme:
    """Interface every signature scheme implements.

    Concrete schemes (:mod:`repro.crypto.rsa`, :mod:`repro.crypto.schnorr`,
    :mod:`repro.crypto.simulated`) register themselves under a stable name
    via :func:`register_scheme`.
    """

    #: Stable registry name; subclasses override.
    name: str = ""

    def generate_keypair(self, rng: random.Random) -> KeyPair:
        """Generate a fresh ``(S, T)`` pair from the given randomness."""
        raise NotImplementedError

    def sign(self, secret: SecretKey, message: bytes) -> bytes:
        """Produce ``{m}_S`` (the signature part)."""
        raise NotImplementedError

    def verify(self, predicate: TestPredicate, message: bytes, signature: bytes) -> bool:
        """Evaluate the test predicate.  Must never raise on garbage input."""
        raise NotImplementedError

    def observe_unpickled_secret(self, secret: SecretKey) -> None:
        """Called when one of this scheme's secret keys is unpickled.

        Default: nothing — real schemes are stateless beyond the key
        material itself.  Schemes with process-local state that
        verification depends on (the simulated HMAC scheme's secret
        registry) override this to rebuild it, so kernel snapshots and
        process-pool sweep points stay verifiable across processes.
        """


_SCHEMES: dict[str, SignatureScheme] = {}


def register_scheme(scheme: SignatureScheme) -> SignatureScheme:
    """Add ``scheme`` to the global registry (idempotent per name)."""
    _SCHEMES[scheme.name] = scheme
    return scheme


def get_scheme(name: str) -> SignatureScheme:
    """Look up a registered scheme.

    :raises UnknownSchemeError: for names never registered.
    """
    try:
        return _SCHEMES[name]
    except KeyError:
        raise UnknownSchemeError(
            f"unknown signature scheme {name!r}; known: {sorted(_SCHEMES)}"
        ) from None


def available_schemes() -> list[str]:
    """Names of all registered schemes, sorted."""
    return sorted(_SCHEMES)


# Test predicates travel on the wire (paper Fig. 1 line 2: "send T_i to all
# other nodes"), so they get a codec.  Secret keys intentionally do not.
encoding.register_codec(
    TestPredicate,
    "repro.TestPredicate",
    lambda p: p._wire_payload(),
    lambda payload: TestPredicate(scheme=payload[0], material=payload[1]),
)
