"""Textbook RSA signatures (hash-then-sign), built from first principles.

The paper cites RSA (Rivest-Shamir-Adleman, CACM 1978) as an example of a
scheme satisfying its axioms S1-S3 "with a sufficiently high probability".
This module implements the classical construction:

* key generation: two random primes ``p, q``; modulus ``N = p*q``; public
  exponent ``e = 65537``; secret exponent ``d = e^-1 mod lcm(p-1, q-1)``;
* signing: ``sig = H(m)^d mod N`` with ``H`` = SHA-256 interpreted as an
  integer (full-domain-hash style, adequate for a research substrate);
* verification: ``sig^e mod N == H(m) mod N``.

Signing uses the CRT speed-up (sign modulo ``p`` and ``q`` separately and
recombine), which roughly quadruples throughput — relevant because the
benchmarks sign thousands of chain links.

Default modulus size is 512 bits: large enough that the axioms hold against
the adversaries *this library* implements, small enough that key generation
for a 64-node network takes well under a second.
"""

from __future__ import annotations

import hashlib
import random

from ..errors import KeyGenerationError, SigningError
from .keys import KeyPair, SecretKey, SignatureScheme, TestPredicate, register_scheme
from .numtheory import generate_prime, modinv

_PUBLIC_EXPONENT = 65537


def _digest_int(message: bytes) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big")


class RsaScheme(SignatureScheme):
    """RSA hash-and-sign over a ``modulus_bits``-bit modulus."""

    def __init__(self, modulus_bits: int = 512, name: str = "rsa-512") -> None:
        if modulus_bits < 64:
            raise KeyGenerationError(
                f"RSA modulus must be >= 64 bits, got {modulus_bits}"
            )
        self.name = name
        self.modulus_bits = modulus_bits

    def generate_keypair(self, rng: random.Random) -> KeyPair:
        """Generate an RSA key pair from seeded randomness.

        Retries on the (rare) draws where ``e`` divides ``lambda(N)`` or the
        primes collide.
        """
        half = self.modulus_bits // 2
        for _ in range(64):
            p = generate_prime(half, rng)
            q = generate_prime(self.modulus_bits - half, rng)
            if p == q:
                continue
            lam = (p - 1) * (q - 1) // _gcd(p - 1, q - 1)
            if lam % _PUBLIC_EXPONENT == 0:
                continue
            n = p * q
            d = modinv(_PUBLIC_EXPONENT, lam)
            secret = SecretKey(
                scheme=self.name,
                # CRT precomputation: d mod p-1, d mod q-1, q^-1 mod p.
                material=(n, d, p, q, d % (p - 1), d % (q - 1), modinv(q, p)),
            )
            predicate = TestPredicate(scheme=self.name, material=(n, _PUBLIC_EXPONENT))
            return KeyPair(secret=secret, predicate=predicate)
        raise KeyGenerationError("RSA key generation failed repeatedly")

    def sign(self, secret: SecretKey, message: bytes) -> bytes:
        if secret.scheme != self.name:
            raise SigningError(
                f"secret key for scheme {secret.scheme!r} given to {self.name!r}"
            )
        n, _d, p, q, d_p, d_q, q_inv = secret.material
        h = _digest_int(message) % n
        # CRT: s_p = h^dP mod p, s_q = h^dQ mod q, recombine.
        s_p = pow(h % p, d_p, p)
        s_q = pow(h % q, d_q, q)
        t = (q_inv * (s_p - s_q)) % p
        signature = (s_q + t * q) % n
        return signature.to_bytes((n.bit_length() + 7) // 8, "big")

    def verify(self, predicate: TestPredicate, message: bytes, signature: bytes) -> bool:
        try:
            n, e = predicate.material
            if not isinstance(n, int) or not isinstance(e, int) or n <= 1:
                return False
            sig_int = int.from_bytes(signature, "big")
            if not 0 <= sig_int < n:
                return False
            return pow(sig_int, e, n) == _digest_int(message) % n
        except (TypeError, ValueError):
            return False


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


#: Default RSA instance, registered at import time.
RSA_512 = register_scheme(RsaScheme(modulus_bits=512, name="rsa-512"))
