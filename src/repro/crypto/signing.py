"""The signed-message value ``{m}_S`` and helpers to create and check it.

A :class:`SignedMessage` bundles a structured body with the raw signature
over the body's canonical encoding.  It is the unit the paper writes as
``{m}_S``: test predicates consume it whole (``T_i({m}_S)``), and chain
signatures nest it (:mod:`repro.crypto.chain`).

Hot-path caching
----------------
Signed messages are re-encoded and re-verified many times per run (every
relay hop re-checks every layer of a chain), so two caches sit here:

* ``body_bytes()`` is computed once per instance and stashed on the frozen
  dataclass via ``object.__setattr__`` — sound because bodies are wire
  values, immutable by library discipline;
* verification verdicts are memoized process-wide, keyed by
  ``(predicate, body bytes, signature)``.  Signature schemes are pure
  functions of exactly that triple (axiom S2), so a cached verdict can
  never diverge from a fresh one within a process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from . import encoding
from .keys import SecretKey, TestPredicate

_BODY_CACHE_ATTR = "_repro_body_bytes"

# (predicate, body bytes, signature) -> verdict.  Bounded: cleared wholesale
# when full; entries are cheap to recompute.
_VERIFY_CACHE: dict[tuple[TestPredicate, bytes, bytes], bool] = {}
_VERIFY_CACHE_MAX = 1 << 16


def cached_verify(predicate: TestPredicate, body: bytes, signature: bytes) -> bool:
    """Evaluate ``predicate(body, signature)`` through the process memo."""
    key = (predicate, body, signature)
    verdict = _VERIFY_CACHE.get(key)
    if verdict is None:
        verdict = predicate(body, signature)
        if len(_VERIFY_CACHE) >= _VERIFY_CACHE_MAX:
            _VERIFY_CACHE.clear()
        _VERIFY_CACHE[key] = verdict
    return verdict


def clear_verify_cache() -> None:
    """Drop all memoized verification verdicts (tests / scheme changes)."""
    _VERIFY_CACHE.clear()


@dataclass(frozen=True)
class SignedMessage:
    """``{body}_S``: a body value plus a signature over its encoding.

    Immutable and wire-encodable.  Equality is structural, which lets
    protocol code deduplicate identical signed messages (used by the
    signed-messages agreement protocol's relay filter).
    """

    body: Any
    signature: bytes

    def body_bytes(self) -> bytes:
        """Canonical encoding of the body — the exact bytes that were signed.

        Memoized per instance; the body is immutable wire data, so the
        first encoding is also the last.
        """
        cached = self.__dict__.get(_BODY_CACHE_ATTR)
        if cached is None:
            cached = encoding.encode(self.body)
            object.__setattr__(self, _BODY_CACHE_ATTR, cached)
        return cached

    def check(self, predicate: TestPredicate) -> bool:
        """Evaluate the test predicate on this message: ``T({m}_S)``."""
        return cached_verify(predicate, self.body_bytes(), self.signature)

    def __getstate__(self) -> dict[str, Any]:
        # Strip cache stashes so pickles are canonical: a message that was
        # verified and one that was not serialize byte-identically.
        return {"body": self.body, "signature": self.signature}

    def __setstate__(self, state: dict[str, Any]) -> None:
        object.__setattr__(self, "body", state["body"])
        object.__setattr__(self, "signature", state["signature"])


def sign_value(secret: SecretKey, body: Any) -> SignedMessage:
    """Produce ``{body}_S`` — sign the canonical encoding of ``body``."""
    body_bytes = encoding.encode(body)
    signature = secret.sign(body_bytes)
    signed = SignedMessage(body=body, signature=signature)
    # Both component encodings are in hand; seed the per-instance body
    # memo and the full wire-cache so later sends never re-walk the body.
    object.__setattr__(signed, _BODY_CACHE_ATTR, body_bytes)
    encoding.seed_sequence_object_cache(
        signed, (body_bytes, encoding.encode(signature))
    )
    return signed


def garble_signature(signed: SignedMessage) -> SignedMessage:
    """Return a copy with a corrupted signature (first byte flipped).

    Fault-injection helper: models a Byzantine node forwarding a message
    whose signature no longer verifies.  An empty signature becomes a
    single null byte so the result is always distinct from the input.
    """
    if signed.signature:
        corrupted = bytes([signed.signature[0] ^ 0xFF]) + signed.signature[1:]
    else:
        corrupted = b"\x00"
    garbled = SignedMessage(body=signed.body, signature=corrupted)
    cached = signed.__dict__.get(_BODY_CACHE_ATTR)
    if cached is not None:
        # Same body, same canonical bytes — but a distinct signature, so the
        # garbled copy gets its own (failing) verification-cache entries.
        object.__setattr__(garbled, _BODY_CACHE_ATTR, cached)
    return garbled


encoding.register_codec(
    SignedMessage,
    "repro.SignedMessage",
    lambda s: (s.body, s.signature),
    lambda payload: SignedMessage(body=payload[0], signature=payload[1]),
)
