"""The signed-message value ``{m}_S`` and helpers to create and check it.

A :class:`SignedMessage` bundles a structured body with the raw signature
over the body's canonical encoding.  It is the unit the paper writes as
``{m}_S``: test predicates consume it whole (``T_i({m}_S)``), and chain
signatures nest it (:mod:`repro.crypto.chain`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from . import encoding
from .keys import SecretKey, TestPredicate


@dataclass(frozen=True)
class SignedMessage:
    """``{body}_S``: a body value plus a signature over its encoding.

    Immutable and wire-encodable.  Equality is structural, which lets
    protocol code deduplicate identical signed messages (used by the
    signed-messages agreement protocol's relay filter).
    """

    body: Any
    signature: bytes

    def body_bytes(self) -> bytes:
        """Canonical encoding of the body — the exact bytes that were signed."""
        return encoding.encode(self.body)

    def check(self, predicate: TestPredicate) -> bool:
        """Evaluate the test predicate on this message: ``T({m}_S)``."""
        return predicate(self.body_bytes(), self.signature)


def sign_value(secret: SecretKey, body: Any) -> SignedMessage:
    """Produce ``{body}_S`` — sign the canonical encoding of ``body``."""
    return SignedMessage(body=body, signature=secret.sign(encoding.encode(body)))


def garble_signature(signed: SignedMessage) -> SignedMessage:
    """Return a copy with a corrupted signature (first byte flipped).

    Fault-injection helper: models a Byzantine node forwarding a message
    whose signature no longer verifies.  An empty signature becomes a
    single null byte so the result is always distinct from the input.
    """
    if signed.signature:
        corrupted = bytes([signed.signature[0] ^ 0xFF]) + signed.signature[1:]
    else:
        corrupted = b"\x00"
    return SignedMessage(body=signed.body, signature=corrupted)


encoding.register_codec(
    SignedMessage,
    "repro.SignedMessage",
    lambda s: (s.body, s.signature),
    lambda payload: SignedMessage(body=payload[0], signature=payload[1]),
)
