"""Schnorr signatures over a prime-order subgroup (the DSA family).

The paper cites the Digital Signature Standard as its second example of a
scheme satisfying axioms S1-S3.  We implement the Schnorr variant of that
family: identical algebraic setting (prime-order subgroup of ``Z_p^*``),
simpler and easier to verify correct.

* parameters: primes ``p, q`` with ``q | p - 1``, generator ``g`` of the
  order-``q`` subgroup;
* keys: secret ``x`` uniform in ``[1, q)``, public ``y = g^x mod p``;
* signing (deterministic, RFC-6979 flavoured): nonce
  ``k = H(x || m) mod q``, commitment ``r = g^k mod p``, challenge
  ``e = H(r || m) mod q``, response ``s = (k + x*e) mod q``;
* verification: recompute ``r' = g^s * y^(-e) mod p`` and check
  ``H(r' || m) mod q == e``.

All nodes in a run share one group parameter set.  That is faithful to
deployed DSA (domain parameters are common) and does not weaken the model:
the per-node secret is ``x``, and possession of ``x`` is exactly what the
challenge-response of the key distribution protocol demonstrates.

Group generation is deterministic from a fixed seed and cached, so repeated
runs and tests do not pay the parameter-search cost.
"""

from __future__ import annotations

import hashlib
import random

from ..errors import SigningError
from .keys import KeyPair, SecretKey, SignatureScheme, TestPredicate, register_scheme
from .numtheory import generate_schnorr_group, modinv

_GROUP_CACHE: dict[tuple[int, int], tuple[int, int, int]] = {}


def default_group(p_bits: int = 512, q_bits: int = 160) -> tuple[int, int, int]:
    """The library-wide Schnorr group for the given sizes (cached).

    Generated from a fixed seed so every process derives identical
    parameters — the moral equivalent of published DSA domain parameters.
    """
    key = (p_bits, q_bits)
    if key not in _GROUP_CACHE:
        rng = random.Random(f"repro-schnorr-group-{p_bits}-{q_bits}")
        _GROUP_CACHE[key] = generate_schnorr_group(p_bits, q_bits, rng)
    return _GROUP_CACHE[key]


def _hash_to_int(*parts: bytes) -> int:
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return int.from_bytes(h.digest(), "big")


class SchnorrScheme(SignatureScheme):
    """Schnorr signatures over the library's shared subgroup."""

    def __init__(
        self, p_bits: int = 512, q_bits: int = 160, name: str = "schnorr-512"
    ) -> None:
        self.name = name
        self._p_bits = p_bits
        self._q_bits = q_bits

    @property
    def group(self) -> tuple[int, int, int]:
        """The ``(p, q, g)`` domain parameters (generated lazily)."""
        return default_group(self._p_bits, self._q_bits)

    def generate_keypair(self, rng: random.Random) -> KeyPair:
        p, q, g = self.group
        x = rng.randrange(1, q)
        y = pow(g, x, p)
        secret = SecretKey(scheme=self.name, material=x)
        predicate = TestPredicate(scheme=self.name, material=y)
        return KeyPair(secret=secret, predicate=predicate)

    def sign(self, secret: SecretKey, message: bytes) -> bytes:
        if secret.scheme != self.name:
            raise SigningError(
                f"secret key for scheme {secret.scheme!r} given to {self.name!r}"
            )
        p, q, g = self.group
        x = secret.material
        x_bytes = x.to_bytes((q.bit_length() + 7) // 8, "big")
        k = _hash_to_int(b"nonce", x_bytes, message) % q
        if k == 0:  # one-in-2^160 corner; renonce deterministically
            k = 1
        r = pow(g, k, p)
        e = _hash_to_int(b"chal", r.to_bytes((p.bit_length() + 7) // 8, "big"), message) % q
        s = (k + x * e) % q
        size = (q.bit_length() + 7) // 8
        return e.to_bytes(size, "big") + s.to_bytes(size, "big")

    def verify(self, predicate: TestPredicate, message: bytes, signature: bytes) -> bool:
        try:
            p, q, g = self.group
            y = predicate.material
            if not isinstance(y, int) or not 1 < y < p:
                return False
            size = (q.bit_length() + 7) // 8
            if len(signature) != 2 * size:
                return False
            e = int.from_bytes(signature[:size], "big")
            s = int.from_bytes(signature[size:], "big")
            if not (0 <= e < q and 0 <= s < q):
                return False
            r = pow(g, s, p) * pow(modinv(y, p), e, p) % p
            e_check = (
                _hash_to_int(b"chal", r.to_bytes((p.bit_length() + 7) // 8, "big"), message)
                % q
            )
            return e_check == e
        except Exception:
            return False


#: Default Schnorr instance, registered at import time.
SCHNORR_512 = register_scheme(SchnorrScheme())
