"""Canonical, deterministic byte encoding of structured wire values.

Signatures operate on byte strings, but the paper's protocols sign
*structured* values such as ``{P_i, P_j, r}`` (a challenge naming two nodes
and a nonce) and nested chain-signed messages.  This module provides the
bridge: a total, injective, deterministic mapping from a closed set of
Python value shapes to bytes, with an exact inverse.

Determinism matters twice over:

* two nodes must derive byte-identical encodings for the same logical value,
  otherwise signature verification would fail between correct nodes; and
* dictionary encodings must not depend on insertion order, so keys are
  sorted by their own encoding.

Supported shapes
----------------
``None``, ``bool``, ``int`` (arbitrary precision, signed), ``bytes``,
``str``, sequences (``list``/``tuple``, decoded as ``tuple``), ``dict`` with
sorted keys, and *registered objects*: dataclass-like types registered via
:func:`register_codec` travel as a tagged (type-name, payload) pair.

The format is a compact tag-length-value scheme with unsigned LEB128
varints for lengths.  It is a private wire format, not an interoperability
standard; its only contracts are injectivity and round-tripping, which the
property tests in ``tests/crypto/test_encoding.py`` enforce.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import DecodingError, EncodingError

# Wire tags.  One byte each.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_SEQ = b"L"
_TAG_DICT = b"D"
_TAG_OBJ = b"O"

# Registered object codecs: type -> (name, to_payload); name -> (type, from_payload).
_TO_WIRE: dict[type, tuple[str, Callable[[Any], Any]]] = {}
_FROM_WIRE: dict[str, Callable[[Any], Any]] = {}

# Instance attribute under which a registered object's full wire encoding is
# stashed after its first encode.  Wire values are immutable by library
# discipline (frozen dataclasses holding scalars/tuples), which makes the
# stash safe; `__getstate__` on the registered types strips it so pickles
# stay canonical.
WIRE_CACHE_ATTR = "_repro_wire_bytes"

# Scalar-encoding memo for the common scalar shapes (kind tags, node ids,
# nonces, signatures).  Keys carry the concrete type so bool/int (and any
# future scalar subclasses) never collide.  Bounded: cleared wholesale when
# full — entries are cheap to recompute.
_SCALAR_CACHE: dict[tuple[type, Any], bytes] = {}
_SCALAR_CACHE_MAX = 1 << 15
_SCALAR_TYPES = (int, str, bytes)


def register_codec(
    cls: type,
    name: str,
    to_payload: Callable[[Any], Any],
    from_payload: Callable[[Any], Any],
) -> None:
    """Register a codec so instances of ``cls`` can travel on the wire.

    :param cls: the Python type to encode.
    :param name: a stable wire name; must be unique across the process.
    :param to_payload: maps an instance to an encodable payload value.
    :param from_payload: maps a decoded payload back to an instance.
    :raises EncodingError: if ``name`` or ``cls`` is already registered
        with a different codec.
    """
    if name in _FROM_WIRE and _TO_WIRE.get(cls, (None,))[0] != name:
        raise EncodingError(f"wire name {name!r} already registered")
    if cls in _TO_WIRE and _TO_WIRE[cls][0] != name:
        raise EncodingError(f"type {cls!r} already registered as {_TO_WIRE[cls][0]!r}")
    _TO_WIRE[cls] = (name, to_payload)
    _FROM_WIRE[name] = from_payload
    _ENCODERS[cls] = _enc_registered


def _write_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint at ``pos``; return (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise DecodingError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        # Arbitrary-precision ints are legitimate (RSA moduli are 512+
        # bits); the bound only exists to stop a hostile peer streaming an
        # unbounded varint.  16384 bits is far above any key material.
        if shift > 16384:
            raise DecodingError("varint too long")


def _scalar_encoding(value: Any) -> bytes:
    """Canonical encoding of an int/str/bytes scalar.

    Most scalars recur within a run (kind tags, node ids, and even
    128-bit nonces and signatures, which are re-encoded at send, sign and
    verify time), so everything small enough is memoized; only long byte
    strings are encoded directly to keep the memo light.
    """
    if isinstance(value, int):
        key = (int, value)
    elif isinstance(value, bytes):
        if len(value) <= 64:
            key = (bytes, value)
        else:
            out = bytearray(_TAG_BYTES)
            _write_uvarint(len(value), out)
            out += value
            return bytes(out)
    else:
        key = (str, value)
    cached = _SCALAR_CACHE.get(key)
    if cached is None:
        out = bytearray()
        if isinstance(value, int):
            out += _TAG_INT
            # Zig-zag map signed -> unsigned so varints stay compact.
            zigzag = (value << 1) if value >= 0 else ((-value << 1) - 1)
            _write_uvarint(zigzag, out)
        elif isinstance(value, bytes):
            out += _TAG_BYTES
            _write_uvarint(len(value), out)
            out += value
        else:
            raw = value.encode("utf-8")
            out += _TAG_STR
            _write_uvarint(len(raw), out)
            out += raw
        cached = bytes(out)
        if len(_SCALAR_CACHE) >= _SCALAR_CACHE_MAX:
            _SCALAR_CACHE.clear()
        _SCALAR_CACHE[key] = cached
    return cached


def _enc_none(value: Any, out: bytearray) -> None:
    out += _TAG_NONE


def _enc_bool(value: Any, out: bytearray) -> None:
    out += _TAG_TRUE if value else _TAG_FALSE


def _enc_scalar(value: Any, out: bytearray) -> None:
    out += _scalar_encoding(value)


def _enc_seq(value: Any, out: bytearray) -> None:
    out += _TAG_SEQ
    _write_uvarint(len(value), out)
    encoders = _ENCODERS
    for item in value:
        handler = encoders.get(type(item))
        if handler is not None:
            handler(item, out)
        else:
            _encode_slow(item, out)


def _enc_registered(value: Any, out: bytearray) -> None:
    cached = getattr(value, WIRE_CACHE_ATTR, None)
    if cached is not None:
        out += cached
        return
    name, to_payload = _TO_WIRE[type(value)]
    start = len(out)
    out += _TAG_OBJ
    raw = name.encode("utf-8")
    _write_uvarint(len(raw), out)
    out += raw
    _encode_into(to_payload(value), out)
    try:
        object.__setattr__(value, WIRE_CACHE_ATTR, bytes(out[start:]))
    except (AttributeError, TypeError):
        pass  # slotted or otherwise uncacheable instances encode fine


# Exact-type dispatch for the hot shapes; subclasses (bool-before-int
# ordering, IntEnum and friends) fall through to the isinstance chain in
# ``_encode_slow``.  Registered codecs are added by ``register_codec``.
_ENCODERS: dict[type, Callable[[Any, bytearray], None]] = {
    type(None): _enc_none,
    bool: _enc_bool,
    int: _enc_scalar,
    str: _enc_scalar,
    bytes: _enc_scalar,
    tuple: _enc_seq,
    list: _enc_seq,
}


def _encode_into(value: Any, out: bytearray) -> None:
    handler = _ENCODERS.get(type(value))
    if handler is not None:
        handler(value, out)
    else:
        _encode_slow(value, out)


def _encode_slow(value: Any, out: bytearray) -> None:
    # bool must be tested before int: bool is a subclass of int.
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, _SCALAR_TYPES):
        out += _scalar_encoding(value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_SEQ
        _write_uvarint(len(value), out)
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT
        _write_uvarint(len(value), out)
        encoded_items = []
        for key, item in value.items():
            key_buf = bytearray()
            _encode_into(key, key_buf)
            item_buf = bytearray()
            _encode_into(item, item_buf)
            encoded_items.append((bytes(key_buf), bytes(item_buf)))
        encoded_items.sort(key=lambda pair: pair[0])
        for index in range(1, len(encoded_items)):
            if encoded_items[index][0] == encoded_items[index - 1][0]:
                raise EncodingError("duplicate dict keys after canonicalisation")
        for key_bytes, item_bytes in encoded_items:
            out += key_bytes
            out += item_bytes
    elif type(value) in _TO_WIRE:
        _enc_registered(value, out)
    else:
        raise EncodingError(f"cannot encode value of type {type(value).__name__}")


def seed_sequence_object_cache(value: Any, parts: tuple[bytes, ...]) -> None:
    """Pre-fill a registered object's wire cache from encoded payload parts.

    For a registered type whose ``to_payload`` yields a sequence, the full
    wire encoding is ``OBJ header + SEQ header + the concatenated item
    encodings``.  Callers that already hold the item encodings (for
    example :func:`repro.crypto.signing.sign_value`, which encodes the
    body to sign it) can assemble the object encoding without re-walking
    the payload.  The caller must pass exactly the canonical encodings of
    the payload items, in order — the tests cross-check the seeded cache
    against a cold encode.
    """
    entry = _TO_WIRE.get(type(value))
    if entry is None:
        return
    name, _ = entry
    out = bytearray(_TAG_OBJ)
    raw = name.encode("utf-8")
    _write_uvarint(len(raw), out)
    out += raw
    out += _TAG_SEQ
    _write_uvarint(len(parts), out)
    for part in parts:
        out += part
    try:
        object.__setattr__(value, WIRE_CACHE_ATTR, bytes(out))
    except (AttributeError, TypeError):
        pass


def encode(value: Any) -> bytes:
    """Encode ``value`` canonically.

    The encoding is deterministic: equal values (after tuple/list
    normalisation) produce identical bytes, regardless of dict insertion
    order or process state.

    :raises EncodingError: for unsupported types or non-canonical dicts.
    """
    # Fast paths for the most common whole-value shapes: scalars hit the
    # memo directly, registered objects their stashed wire bytes.
    if value is not True and value is not False and isinstance(value, _SCALAR_TYPES):
        return _scalar_encoding(value)
    cached = getattr(value, WIRE_CACHE_ATTR, None)
    if cached is not None and type(value) in _TO_WIRE:
        return cached
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _decode_at(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise DecodingError("truncated value")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        zigzag, pos = _read_uvarint(data, pos)
        value = (zigzag >> 1) if not zigzag & 1 else -((zigzag + 1) >> 1)
        return value, pos
    if tag == _TAG_BYTES:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise DecodingError("truncated bytes")
        return data[pos : pos + length], pos + length
    if tag == _TAG_STR:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise DecodingError("truncated string")
        try:
            return data[pos : pos + length].decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise DecodingError("invalid utf-8 in string") from exc
    if tag == _TAG_SEQ:
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_at(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _TAG_DICT:
        count, pos = _read_uvarint(data, pos)
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_at(data, pos)
            item, pos = _decode_at(data, pos)
            try:
                if key in result:
                    raise DecodingError("duplicate dict key")
            except TypeError as exc:
                raise DecodingError(f"unhashable dict key {key!r}") from exc
            result[key] = item
        return result, pos
    if tag == _TAG_OBJ:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise DecodingError("truncated object name")
        name = data[pos : pos + length].decode("utf-8", errors="replace")
        pos += length
        if name not in _FROM_WIRE:
            raise DecodingError(f"unknown wire object type {name!r}")
        payload, pos = _decode_at(data, pos)
        try:
            return _FROM_WIRE[name](payload), pos
        except DecodingError:
            raise
        except Exception as exc:
            raise DecodingError(f"payload rejected for {name!r}: {exc}") from exc
    raise DecodingError(f"unknown tag {tag!r}")


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode`.

    Sequences come back as tuples; all other shapes round-trip exactly.

    :raises DecodingError: if ``data`` is not a complete canonical encoding.
    """
    value, pos = _decode_at(data, 0)
    if pos != len(data):
        raise DecodingError(f"{len(data) - pos} trailing bytes after value")
    return value


def byte_size(value: Any) -> int:
    """The canonical encoded size of ``value`` in bytes.

    Used by the simulator's metrics to account bytes-on-wire (experiment E9).
    """
    return len(encode(value))


def uvarint_size(value: int) -> int:
    """Encoded length of an unsigned LEB128 varint, in bytes.

    The encoding is additive (every container is ``tag + varint(length) +
    concatenated item encodings``), so callers holding per-item byte sums
    can derive a container's exact size without encoding it; the succinct
    EIG engine uses this to account compressed reports at their dense
    equivalent size.

    :raises EncodingError: for negative values (not encodable).
    """
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size
