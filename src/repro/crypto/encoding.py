"""Canonical, deterministic byte encoding of structured wire values.

Signatures operate on byte strings, but the paper's protocols sign
*structured* values such as ``{P_i, P_j, r}`` (a challenge naming two nodes
and a nonce) and nested chain-signed messages.  This module provides the
bridge: a total, injective, deterministic mapping from a closed set of
Python value shapes to bytes, with an exact inverse.

Determinism matters twice over:

* two nodes must derive byte-identical encodings for the same logical value,
  otherwise signature verification would fail between correct nodes; and
* dictionary encodings must not depend on insertion order, so keys are
  sorted by their own encoding.

Supported shapes
----------------
``None``, ``bool``, ``int`` (arbitrary precision, signed), ``bytes``,
``str``, sequences (``list``/``tuple``, decoded as ``tuple``), ``dict`` with
sorted keys, and *registered objects*: dataclass-like types registered via
:func:`register_codec` travel as a tagged (type-name, payload) pair.

The format is a compact tag-length-value scheme with unsigned LEB128
varints for lengths.  It is a private wire format, not an interoperability
standard; its only contracts are injectivity and round-tripping, which the
property tests in ``tests/crypto/test_encoding.py`` enforce.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import DecodingError, EncodingError

# Wire tags.  One byte each.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_SEQ = b"L"
_TAG_DICT = b"D"
_TAG_OBJ = b"O"

# Registered object codecs: type -> (name, to_payload); name -> (type, from_payload).
_TO_WIRE: dict[type, tuple[str, Callable[[Any], Any]]] = {}
_FROM_WIRE: dict[str, Callable[[Any], Any]] = {}


def register_codec(
    cls: type,
    name: str,
    to_payload: Callable[[Any], Any],
    from_payload: Callable[[Any], Any],
) -> None:
    """Register a codec so instances of ``cls`` can travel on the wire.

    :param cls: the Python type to encode.
    :param name: a stable wire name; must be unique across the process.
    :param to_payload: maps an instance to an encodable payload value.
    :param from_payload: maps a decoded payload back to an instance.
    :raises EncodingError: if ``name`` or ``cls`` is already registered
        with a different codec.
    """
    if name in _FROM_WIRE and _TO_WIRE.get(cls, (None,))[0] != name:
        raise EncodingError(f"wire name {name!r} already registered")
    if cls in _TO_WIRE and _TO_WIRE[cls][0] != name:
        raise EncodingError(f"type {cls!r} already registered as {_TO_WIRE[cls][0]!r}")
    _TO_WIRE[cls] = (name, to_payload)
    _FROM_WIRE[name] = from_payload


def _write_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint at ``pos``; return (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise DecodingError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        # Arbitrary-precision ints are legitimate (RSA moduli are 512+
        # bits); the bound only exists to stop a hostile peer streaming an
        # unbounded varint.  16384 bits is far above any key material.
        if shift > 16384:
            raise DecodingError("varint too long")


def _encode_into(value: Any, out: bytearray) -> None:
    # bool must be tested before int: bool is a subclass of int.
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        out += _TAG_INT
        # Zig-zag map signed -> unsigned so varints stay compact.
        zigzag = (value << 1) if value >= 0 else ((-value << 1) - 1)
        _write_uvarint(zigzag, out)
    elif isinstance(value, bytes):
        out += _TAG_BYTES
        _write_uvarint(len(value), out)
        out += value
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        _write_uvarint(len(raw), out)
        out += raw
    elif isinstance(value, (list, tuple)):
        out += _TAG_SEQ
        _write_uvarint(len(value), out)
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT
        _write_uvarint(len(value), out)
        encoded_items = []
        for key, item in value.items():
            key_buf = bytearray()
            _encode_into(key, key_buf)
            item_buf = bytearray()
            _encode_into(item, item_buf)
            encoded_items.append((bytes(key_buf), bytes(item_buf)))
        encoded_items.sort(key=lambda pair: pair[0])
        for index in range(1, len(encoded_items)):
            if encoded_items[index][0] == encoded_items[index - 1][0]:
                raise EncodingError("duplicate dict keys after canonicalisation")
        for key_bytes, item_bytes in encoded_items:
            out += key_bytes
            out += item_bytes
    elif type(value) in _TO_WIRE:
        name, to_payload = _TO_WIRE[type(value)]
        out += _TAG_OBJ
        raw = name.encode("utf-8")
        _write_uvarint(len(raw), out)
        out += raw
        _encode_into(to_payload(value), out)
    else:
        raise EncodingError(f"cannot encode value of type {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Encode ``value`` canonically.

    The encoding is deterministic: equal values (after tuple/list
    normalisation) produce identical bytes, regardless of dict insertion
    order or process state.

    :raises EncodingError: for unsupported types or non-canonical dicts.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _decode_at(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise DecodingError("truncated value")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        zigzag, pos = _read_uvarint(data, pos)
        value = (zigzag >> 1) if not zigzag & 1 else -((zigzag + 1) >> 1)
        return value, pos
    if tag == _TAG_BYTES:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise DecodingError("truncated bytes")
        return data[pos : pos + length], pos + length
    if tag == _TAG_STR:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise DecodingError("truncated string")
        try:
            return data[pos : pos + length].decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise DecodingError("invalid utf-8 in string") from exc
    if tag == _TAG_SEQ:
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_at(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _TAG_DICT:
        count, pos = _read_uvarint(data, pos)
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_at(data, pos)
            item, pos = _decode_at(data, pos)
            try:
                if key in result:
                    raise DecodingError("duplicate dict key")
            except TypeError as exc:
                raise DecodingError(f"unhashable dict key {key!r}") from exc
            result[key] = item
        return result, pos
    if tag == _TAG_OBJ:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise DecodingError("truncated object name")
        name = data[pos : pos + length].decode("utf-8", errors="replace")
        pos += length
        if name not in _FROM_WIRE:
            raise DecodingError(f"unknown wire object type {name!r}")
        payload, pos = _decode_at(data, pos)
        try:
            return _FROM_WIRE[name](payload), pos
        except DecodingError:
            raise
        except Exception as exc:
            raise DecodingError(f"payload rejected for {name!r}: {exc}") from exc
    raise DecodingError(f"unknown tag {tag!r}")


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode`.

    Sequences come back as tuples; all other shapes round-trip exactly.

    :raises DecodingError: if ``data`` is not a complete canonical encoding.
    """
    value, pos = _decode_at(data, 0)
    if pos != len(data):
        raise DecodingError(f"{len(data) - pos} trailing bytes after value")
    return value


def byte_size(value: Any) -> int:
    """The canonical encoded size of ``value`` in bytes.

    Used by the simulator's metrics to account bytes-on-wire (experiment E9).
    """
    return len(encode(value))
