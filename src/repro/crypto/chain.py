"""Named chain signatures and their verification discipline.

Chain signatures are the mechanism behind authenticated agreement
protocols: a message signed by a sequence of nodes, each signing the signed
message of its predecessor.  The paper (its section 4) adds one requirement
that makes them safe under *local* authentication:

    "a message which has been signed before is always signed together with
    the name of the node it is assigned to"

so a chain has the shape::

    {P_{k-1}, { ... {P_0, {m}_{S_0}}_{S_1} ... }}_{S_k}

Reading outside-in: the outermost signature is assigned to the *immediate
sender* (known by network property N2); its body names the node the inner
message is assigned to; and so on down to the innermost ``{m}_{S_0}``.

Paper Theorem 4 shows that with this discipline, after the key distribution
protocol **all correct nodes assign every submessage to the same node, or
at least one of them discovers a failure** — which is exactly the property
that lets globally-authenticated Failure Discovery protocols run unchanged
under local authentication.  :func:`verify_chain` implements the checking
side of that theorem; its verdict distinguishes *why* a chain was rejected
so protocols can report precise discovery reasons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ChainStructureError
from ..types import NodeId
from .keys import SecretKey
from .signing import SignedMessage, sign_value

if TYPE_CHECKING:  # circular at runtime: auth imports crypto
    from ..auth.directory import KeyDirectory

# Body tags providing domain separation between leaf and link layers.
LEAF_TAG = "chain-leaf"
LINK_TAG = "chain-link"


def sign_leaf(secret: SecretKey, value: Any) -> SignedMessage:
    """Create the innermost ``{m}_{S_0}`` of a chain."""
    return sign_value(secret, (LEAF_TAG, value))


def extend_chain(
    secret: SecretKey, inner_assigned: NodeId, inner: SignedMessage
) -> SignedMessage:
    """Sign ``inner`` together with the name of the node it is assigned to.

    This is the paper's "signed together with the name of the node it is
    assigned to": the new layer is ``{P_inner, inner}_S``.

    :param secret: the extending node's secret key.
    :param inner_assigned: the node the extender assigned ``inner`` to
        (for the first extension, the leaf signer; afterwards, the previous
        extender).
    :param inner: the already chain-signed message.
    """
    return sign_value(secret, (LINK_TAG, int(inner_assigned), inner))


def is_leaf(signed: SignedMessage) -> bool:
    """True if ``signed`` is a structurally valid chain leaf."""
    body = signed.body
    return (
        isinstance(body, tuple)
        and len(body) == 2
        and body[0] == LEAF_TAG
    )


def is_link(signed: SignedMessage) -> bool:
    """True if ``signed`` is a structurally valid chain link."""
    body = signed.body
    return (
        isinstance(body, tuple)
        and len(body) == 3
        and body[0] == LINK_TAG
        and isinstance(body[1], int)
        and isinstance(body[2], SignedMessage)
    )


def leaf_value(signed: SignedMessage) -> Any:
    """The payload ``m`` of a chain leaf.

    :raises ChainStructureError: if ``signed`` is not a leaf.
    """
    if not is_leaf(signed):
        raise ChainStructureError("not a chain leaf")
    return signed.body[1]


def link_parts(signed: SignedMessage) -> tuple[NodeId, SignedMessage]:
    """The ``(named inner signer, inner message)`` of a chain link.

    :raises ChainStructureError: if ``signed`` is not a link.
    """
    if not is_link(signed):
        raise ChainStructureError("not a chain link")
    return signed.body[1], signed.body[2]


_LAYERS_CACHE_ATTR = "_repro_chain_layers"


def submessages(signed: SignedMessage) -> list[SignedMessage]:
    """All layers of a chain, outermost first, innermost (leaf) last.

    These are the paper's "submessages": for
    ``{P_1, {P_0, {m}_{S_0}}_{S_1}}_{S_2}`` it returns the whole message,
    then ``{P_0, {m}_{S_0}}_{S_1}``, then ``{m}_{S_0}``.

    The decomposition is structural and the message immutable, so the
    layer tuple is memoized per instance — chains get re-verified at every
    relay hop, and only the first check walks the nesting.

    :raises ChainStructureError: on malformed nesting.
    """
    cached = signed.__dict__.get(_LAYERS_CACHE_ATTR)
    if cached is not None:
        return list(cached)
    layers = [signed]
    current = signed
    while is_link(current):
        _, current = link_parts(current)
        layers.append(current)
        if len(layers) > 1_000_000:
            raise ChainStructureError("chain nesting too deep")
    if not is_leaf(current):
        raise ChainStructureError("chain does not terminate in a leaf")
    object.__setattr__(signed, _LAYERS_CACHE_ATTR, tuple(layers))
    return layers


def chain_depth(signed: SignedMessage) -> int:
    """Number of signatures on the chain (leaf counts as one)."""
    return len(submessages(signed))


@dataclass(frozen=True)
class ChainVerdict:
    """Outcome of verifying a chain against a node's key directory.

    :ivar ok: True iff every layer verified and the naming discipline held.
    :ivar value: the leaf payload ``m`` when ``ok`` (or when the structure
        was readable even if a signature failed), else ``None``.
    :ivar assignments: ``(node, submessage)`` pairs, outermost first — the
        assignments (paper Definition 1) this verifier made.  Meaningful
        only when ``ok``.
    :ivar reason: human-readable rejection reason when not ``ok``.
    """

    ok: bool
    value: Any
    assignments: tuple[tuple[NodeId, SignedMessage], ...]
    reason: str | None = None

    def signers(self) -> tuple[NodeId, ...]:
        """Assigned signer ids, outermost first."""
        return tuple(node for node, _ in self.assignments)


def _reject(reason: str, value: Any = None) -> ChainVerdict:
    return ChainVerdict(ok=False, value=value, assignments=(), reason=reason)


def verify_chain(
    signed: SignedMessage,
    outer_signer: NodeId,
    directory: "KeyDirectory",
    expected_depth: int | None = None,
    expected_signers: tuple[NodeId, ...] | None = None,
) -> ChainVerdict:
    """Check "the signatures of the message and the submessages" (Fig. 2).

    Walks the chain outside-in.  The outermost layer must be assignable to
    ``outer_signer`` — in protocol use this is the *immediate sender*,
    which network property N2 makes unforgeable.  Each link's body then
    names the node its inner message must be assigned to, implementing the
    paper's rule that a verifier "not only assigns the complete message ...
    but also the submessages to the respective given nodes".

    Any of the following yields a rejection verdict (→ failure discovery):

    * malformed structure (not a leaf-terminated chain);
    * a signer for which the verifier accepted no test predicate;
    * a signature the accepted predicate rejects;
    * a repeated signer in the chain (each node signs at most once in the
      paper's protocols);
    * a depth or signer-sequence mismatch against the protocol's
      expectation, when the caller supplies one.

    :param signed: the chain-signed message.
    :param outer_signer: node to assign the outermost signature to (N2).
    :param directory: the verifier's accepted predicates.
    :param expected_depth: exact chain depth required by the protocol
        position, if known.
    :param expected_signers: exact outermost-first signer sequence required
        by the protocol position, if known.
    """
    try:
        layers = submessages(signed)
    except ChainStructureError as exc:
        return _reject(f"malformed chain: {exc}")

    value = leaf_value(layers[-1])

    if expected_depth is not None and len(layers) != expected_depth:
        return _reject(
            f"chain depth {len(layers)} != expected {expected_depth}", value
        )

    assignments: list[tuple[NodeId, SignedMessage]] = []
    assigned_to = outer_signer
    seen: set[NodeId] = set()
    for layer in layers:
        if assigned_to in seen:
            return _reject(f"node {assigned_to} signed twice in chain", value)
        seen.add(assigned_to)
        if not directory.predicates_for(assigned_to):
            return _reject(f"no accepted test predicate for node {assigned_to}", value)
        if not directory.verifies(assigned_to, layer):
            return _reject(f"signature of node {assigned_to} does not verify", value)
        assignments.append((assigned_to, layer))
        if is_link(layer):
            assigned_to, _ = link_parts(layer)

    if expected_signers is not None:
        actual = tuple(node for node, _ in assignments)
        if actual != tuple(expected_signers):
            return _reject(
                f"chain signers {actual} != expected {tuple(expected_signers)}", value
            )

    return ChainVerdict(
        ok=True, value=value, assignments=tuple(assignments), reason=None
    )
