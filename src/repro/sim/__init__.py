"""Network simulator realising (and relaxing) the paper's model of computation.

Fully interconnected network with authenticated immediate senders (N2),
driven by an event kernel (:mod:`repro.sim.kernel`) under a pluggable
delivery model (:mod:`repro.sim.network`).  The default model is the
paper's: lock-step rounds with reliable next-round delivery (N1, bound
known); ``BoundedDelay`` and ``AdversarialOrder`` relax the timing half
for the E12 experiments.  See :mod:`repro.sim.kernel` for the semantics
and the determinism contract; :mod:`repro.sim.scheduler` keeps the
pre-kernel ``Runner`` API as a facade.
"""

from .batch import BatchPlane, BatchRecord, ChannelBatch
from .kernel import EventKernel
from .message import Envelope, mux_unwrap, mux_wrap, payload_kind
from .metrics import Metrics
from .multiplex import (
    COLUMNAR_ENGINE,
    DEFAULT_MUX_ENGINE,
    MUX_ENGINE_ENV,
    MUX_OUTCOMES,
    OBJECT_ENGINE,
    InstanceAggregate,
    InstanceMux,
    InstanceOutcome,
    collect_instances,
    default_mux_engine,
    merge_instance_aggregates,
)
from .network import (
    DELIVERY_MODELS,
    AdversarialOrder,
    BoundedDelay,
    DeliveryModel,
    LossyDelivery,
    PartitionedDelivery,
    SynchronousRounds,
    available_deliveries,
    make_delivery,
)
from .node import NodeContext, NodeState, Protocol
from .rng import instance_rng, node_rng
from .scheduler import Runner, RunResult, run_protocols
from .snapshot import (
    SNAPSHOT_VERSION,
    KernelSnapshot,
    capture_kernel,
    clear_checkpoint_policy,
    load_snapshot,
    restore_kernel,
    retune_protocols,
    save_snapshot,
    set_checkpoint_policy,
)
from .trace import Trace, TraceEvent
from .views import ReceivedMessage, View

__all__ = [
    "AdversarialOrder",
    "BatchPlane",
    "BatchRecord",
    "BoundedDelay",
    "COLUMNAR_ENGINE",
    "ChannelBatch",
    "DEFAULT_MUX_ENGINE",
    "DELIVERY_MODELS",
    "DeliveryModel",
    "Envelope",
    "EventKernel",
    "InstanceAggregate",
    "InstanceMux",
    "InstanceOutcome",
    "KernelSnapshot",
    "LossyDelivery",
    "MUX_ENGINE_ENV",
    "MUX_OUTCOMES",
    "Metrics",
    "OBJECT_ENGINE",
    "PartitionedDelivery",
    "NodeContext",
    "NodeState",
    "Protocol",
    "ReceivedMessage",
    "RunResult",
    "Runner",
    "SNAPSHOT_VERSION",
    "SynchronousRounds",
    "Trace",
    "TraceEvent",
    "View",
    "available_deliveries",
    "capture_kernel",
    "clear_checkpoint_policy",
    "collect_instances",
    "default_mux_engine",
    "instance_rng",
    "load_snapshot",
    "make_delivery",
    "merge_instance_aggregates",
    "mux_unwrap",
    "mux_wrap",
    "node_rng",
    "payload_kind",
    "restore_kernel",
    "retune_protocols",
    "run_protocols",
    "save_snapshot",
    "set_checkpoint_policy",
]
