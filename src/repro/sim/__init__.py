"""Synchronous-network simulator realising the paper's model of computation.

Fully interconnected network, lock-step rounds, reliable bounded-time
delivery (N1) and authenticated immediate senders (N2).  See
:mod:`repro.sim.scheduler` for the semantics and determinism contract.
"""

from .message import Envelope, payload_kind
from .metrics import Metrics
from .node import NodeContext, NodeState, Protocol
from .rng import node_rng
from .scheduler import Runner, RunResult, run_protocols
from .trace import Trace, TraceEvent
from .views import ReceivedMessage, View

__all__ = [
    "Envelope",
    "Metrics",
    "NodeContext",
    "NodeState",
    "Protocol",
    "ReceivedMessage",
    "RunResult",
    "Runner",
    "Trace",
    "TraceEvent",
    "View",
    "node_rng",
    "payload_kind",
    "run_protocols",
]
