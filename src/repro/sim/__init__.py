"""Synchronous-network simulator realising the paper's model of computation.

Fully interconnected network, lock-step rounds, reliable bounded-time
delivery (N1) and authenticated immediate senders (N2).  See
:mod:`repro.sim.scheduler` for the semantics and determinism contract.
"""

from .message import Envelope, mux_unwrap, mux_wrap, payload_kind
from .metrics import Metrics
from .multiplex import (
    MUX_OUTCOMES,
    InstanceAggregate,
    InstanceMux,
    InstanceOutcome,
    collect_instances,
    merge_instance_aggregates,
)
from .node import NodeContext, NodeState, Protocol
from .rng import instance_rng, node_rng
from .scheduler import Runner, RunResult, run_protocols
from .trace import Trace, TraceEvent
from .views import ReceivedMessage, View

__all__ = [
    "Envelope",
    "InstanceAggregate",
    "InstanceMux",
    "InstanceOutcome",
    "MUX_OUTCOMES",
    "Metrics",
    "NodeContext",
    "NodeState",
    "Protocol",
    "ReceivedMessage",
    "RunResult",
    "Runner",
    "Trace",
    "TraceEvent",
    "View",
    "collect_instances",
    "instance_rng",
    "merge_instance_aggregates",
    "mux_unwrap",
    "mux_wrap",
    "node_rng",
    "payload_kind",
    "run_protocols",
]
