"""The event-driven simulation kernel.

Where the pre-kernel runner hard-coded the paper's model (N1 bounded-time
delivery with the bound known and equal to one round, N2 authentic
immediate senders, lock-step rounds), the kernel factors the runtime into

* **this module** — a deterministic event core: a calendar priority
  queue of deliveries ordered by ``(arrival tick, emission seq)``, plus
  one activation per live node per tick in a model-chosen order; and
* **:mod:`repro.sim.network`** — pluggable :class:`DeliveryModel`\\ s
  deciding every envelope's arrival tick and the per-tick activation
  order.  Synchronous rounds are one such model — the default, and a
  *special case*, not the kernel's shape.

Determinism contract, re-proved at the event level
--------------------------------------------------
Given the same protocols, master seed and delivery model, a run is
bit-for-bit reproducible.  The event-level argument:

1. every emitted envelope receives a global *emission sequence number*;
   node activations within a tick follow the model's fixed order, and a
   node's sends are appended in call order, so the emission sequence is
   itself deterministic;
2. arrival ticks are pure functions of ``(envelope, emission tick)`` and
   seed-derived streams (:meth:`DeliveryModel.arrival_tick` consults no
   global state), so the calendar's buckets are deterministic;
3. within one arrival tick, deliveries are handed to inboxes in emission
   sequence order (buckets are appended in ascending seq, so no sort is
   ever needed), making each inbox a deterministic sequence;
4. node randomness is seed-derived per node (:func:`repro.sim.rng.node_rng`)
   exactly as before.

Under :class:`~repro.sim.network.SynchronousRounds` this collapses to
the old scheduler's guarantee: all arrivals are "next tick", activations
ascend by node id, so every inbox is born sender-sorted — and the kernel
runs a batched lock-step fast path that is *bit-for-bit identical* to
the pre-kernel ``Runner`` in decisions, rounds and per-kind
message/byte counters (``tests/sim/test_kernel.py`` keeps a verbatim
copy of the old runner as the reference oracle and property-tests the
equivalence under random Byzantine behaviour; the benchmark gate checks
the whole grid's counts against ``BENCH_3.json``).

Causality
---------
The kernel enforces that no delivery lands in the past: an arrival tick
below the current tick, or equal to it when the recipient has already
acted this tick, raises :class:`~repro.errors.SimulationError`.  Models
like :class:`~repro.sim.network.AdversarialOrder` exploit the legal
same-tick window — deliveries to nodes the activation order places
later — to grant rushing power without ever violating causality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import ConfigurationError, SimulationError
from ..types import NodeId, Round, validate_node_count
from .batch import BatchPlane, BatchRecord
from .message import Envelope, mux_wrap
from .metrics import Metrics
from .network import DeliveryModel, SynchronousRounds
from .node import NodeContext, NodeState, Protocol
from .rng import node_rng
from .trace import Trace
from .views import View


@dataclass
class RunResult:
    """Everything observable about one completed run.

    :ivar n: network size.
    :ivar rounds_executed: number of kernel ticks executed.  Under
        lock-step delivery a tick is exactly one synchronous round; the
        name is kept for the 100+ pre-kernel call sites.
    :ivar metrics: message/byte/round counters (see :class:`Metrics`).
    :ivar states: per-node outcomes, indexed by node id.
    :ivar views: per-node recorded views (empty if view recording was off).
    :ivar trace: structured event log (None if trace recording was off).
    :ivar seed: the master seed, for reproduction.
    """

    n: int
    rounds_executed: int
    metrics: Metrics
    states: list[NodeState]
    views: list[View]
    seed: int | str
    trace: Trace | None = None

    def decisions(self) -> dict[NodeId, Any]:
        """Decisions of all nodes that decided."""
        return {s.node: s.decision for s in self.states if s.decided}

    def discoverers(self) -> list[NodeId]:
        """Nodes that discovered a failure."""
        return [s.node for s in self.states if s.discovered_failure]

    def outputs(self, key: str) -> dict[NodeId, Any]:
        """Collect a named protocol output across nodes that produced it."""
        return {
            s.node: s.outputs[key] for s in self.states if key in s.outputs
        }


class EventKernel:
    """Drives protocols to completion under a pluggable delivery model.

    The single source of truth for simulated time is :attr:`tick`
    (exposed to contexts as ``round`` for API continuity): the event
    loop advances it once per processed tick, the final value *is*
    ``RunResult.rounds_executed``, and every trace timestamp and
    envelope ``round_sent`` derives from it — there is no second
    counter to keep in lock-step.
    """

    def __init__(
        self,
        protocols: Sequence[Protocol],
        seed: int | str = 0,
        max_rounds: int = 10_000,
        record_views: bool = False,
        record_trace: bool = False,
        delivery: DeliveryModel | None = None,
    ) -> None:
        """
        :param protocols: one behaviour per node; index = node id.
        :param seed: master seed for all node randomness (and for the
            delivery model's jitter streams).
        :param max_rounds: safety horizon in ticks; exceeding it raises,
            naming the nodes that had not halted.
        :param record_views: capture per-node views (costs memory; enable
            for semantic failure-discovery analyses).
        :param record_trace: capture a structured event log of sends,
            decisions, discoveries and halts (see :class:`Trace`).
        :param delivery: the network-timing policy; ``None`` means the
            paper's :class:`~repro.sim.network.SynchronousRounds`.
        """
        validate_node_count(len(protocols))
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.n = len(protocols)
        self.seed = seed
        self.tick: Round = 0
        # sender -> all-other-nodes list, resolved once per run for the
        # batch broadcast path (recipient order is part of the schedule
        # contract, so the cache must stay id-ascending).
        self._others: dict[NodeId, list[NodeId]] = {}
        self._protocols = list(protocols)
        self._max_rounds = max_rounds
        self._record_views = record_views
        self._trace = Trace() if record_trace else None
        self._metrics = Metrics()
        self._delivery = delivery if delivery is not None else SynchronousRounds()
        self._lockstep = self._delivery.lockstep
        # Lock-step fast queue: every arrival is "next tick", so a single
        # pending list (drained into per-recipient buckets each tick) is
        # the whole calendar.  May also hold BatchRecords (see below).
        self._pending: list[Envelope] = []
        # General calendar queue: arrival tick -> envelopes in emission
        # (seq) order.  Buckets are appended in ascending seq, so popping
        # a bucket yields (tick, seq)-ordered deliveries without sorting.
        self._calendar: dict[Round, list[Envelope]] = {}
        # Columnar batch plane (structure-of-arrays mux delivery): only
        # when the model can price whole batch sends deterministically
        # (batch_arrivals) and nothing is observing per-envelope events.
        # Recording runs fall back to the object path wholesale, which
        # doubles as the live oracle.  When disabled, the reason is kept
        # for the mux to surface (see InstanceMux.fallback_reason).
        if record_views or self._trace is not None:
            self._batch_disabled_reason: str | None = (
                "recording is on (views/trace observe per-envelope events)"
            )
        elif not getattr(self._delivery, "batch_capable", False):
            self._batch_disabled_reason = (
                f"delivery model {self._delivery.name!r} is not batch-capable"
            )
        else:
            self._batch_disabled_reason = None
        self._batch: BatchPlane | None = (
            BatchPlane(self) if self._batch_disabled_reason is None else None
        )
        # Persistent inboxes for the general path (same-tick rushing
        # deliveries append here mid-tick); freshly rebuilt per tick on
        # the lock-step path.
        self._inboxes: list[list[Envelope]] = [[] for _ in range(self.n)]
        # Last tick each node acted in (causality check for same-tick
        # deliveries); -1 = never.
        self._acted_at: list[Round] = [-1] * self.n
        self._contexts = [
            NodeContext(self, node, node_rng(seed, node)) for node in range(self.n)
        ]
        self._views = [View(node=node) for node in range(self.n)]
        # One-time protocol setup() has run (guards resumed runs against
        # a second setup — the flag travels inside snapshots).
        self._started = False
        self._delivery.bind(self)

    @property
    def round(self) -> Round:
        """Alias of :attr:`tick` — the API the contexts and the old
        ``Runner`` call sites read."""
        return self.tick

    @property
    def delivery(self) -> DeliveryModel:
        """The delivery model driving this run."""
        return self._delivery

    @property
    def protocols(self) -> list[Protocol]:
        """The per-node protocol objects (index = node id) — what a
        resumed run retunes (:func:`repro.sim.snapshot.retune_protocols`)
        or inspects (finding the adaptive coordinator's commitments)."""
        return self._protocols

    @property
    def metrics(self) -> Metrics:
        """Live run counters (read-only view for online observers).

        The observation surface for adaptive adversary strategies: a
        strategy hook may *read* the instrument mid-run, never write it.
        """
        return self._metrics

    @property
    def trace(self) -> Trace | None:
        """The live event log, or ``None`` when trace recording is off."""
        return self._trace

    @property
    def batch_plane(self) -> BatchPlane | None:
        """The columnar batch plane, or ``None`` when this run cannot
        batch (recording on, or the delivery model not batch-capable).
        Consumers probe this via the context API and fall back to the
        object path when absent."""
        return self._batch

    @property
    def batch_fallback_reason(self) -> str | None:
        """Why this run cannot batch, or ``None`` when it can.

        The human-readable half of :attr:`batch_plane` — the mux records
        it on fallback so "silently slower" becomes a visible,
        warnable condition (see ``InstanceMux.fallback_reason``)."""
        return self._batch_disabled_reason

    def enqueue(self, envelope: Envelope) -> None:
        """Accept an envelope for delivery (called by contexts).

        Metrics and trace record the *send* here; the delivery model
        assigns the arrival tick, and the kernel checks causality.
        """
        self._metrics.record(envelope)
        if self._lockstep:
            if self._trace is not None:
                self._trace.record_send(envelope)
            self._pending.append(envelope)
            return
        arrival = self._delivery.arrival_tick(envelope, self.tick)
        if arrival is None:
            # The model dropped the envelope (lossy links, partition
            # boundary): it still counts as sent, and the loss itself is
            # accounted so runs under unreliable delivery stay auditable.
            self._metrics.record_drop(envelope)
            if self._trace is not None:
                self._trace.record_drop(envelope)
            return
        if self._trace is not None:
            self._trace.record_send(envelope, arrival_tick=arrival)
        if arrival > self.tick:
            bucket = self._calendar.get(arrival)
            if bucket is None:
                bucket = self._calendar[arrival] = []
            bucket.append(envelope)
            return
        if arrival < self.tick or self._acted_at[envelope.recipient] == self.tick:
            raise SimulationError(
                f"delivery model {self._delivery.name!r} scheduled an envelope "
                f"from {envelope.sender} to {envelope.recipient} into the past "
                f"(arrival {arrival}, tick {self.tick})"
            )
        # Legal same-tick (rushing) delivery: the recipient acts later
        # this tick and will see the envelope in its current inbox.
        self._metrics.record_delivery(envelope, arrival)
        self._inboxes[envelope.recipient].append(envelope)

    def enqueue_batch(
        self,
        sender: NodeId,
        channel: str,
        instance: int,
        payload: Any,
        recipients: "Sequence[NodeId] | None" = None,
    ) -> int:
        """Accept one logical mux broadcast as batch records.

        The columnar counterpart of per-recipient :meth:`enqueue` calls:
        metrics charge the whole send at once, and delivery travels as
        :class:`~repro.sim.batch.BatchRecord`\\ s interleaved with plain
        envelopes in emission order.  ``recipients=None`` is the
        broadcast-to-all-others fast path (a single record, no
        per-recipient structure); an explicit recipient list becomes one
        single-target record per entry, which preserves per-copy
        delivery even for duplicate recipients.  Only reachable through
        consumers that successfully registered with the batch plane, so
        ``self._batch`` is always present here.

        Returns the number of envelopes the send stands for.
        """
        tick = self.tick
        n = self.n
        wrapped = mux_wrap(channel, instance, payload)
        count = n - 1 if recipients is None else len(recipients)
        self._metrics.record_broadcast(sender, tick, wrapped, count)
        if self._lockstep:
            pending = self._pending
            if recipients is None:
                pending.append(
                    BatchRecord(channel, instance, sender, payload, wrapped, None, tick)
                )
            else:
                for recipient in recipients:
                    pending.append(
                        BatchRecord(
                            channel, instance, sender, payload, wrapped, recipient, tick
                        )
                    )
            return count
        broadcast_all = recipients is None
        if broadcast_all:
            recipients = self._others.get(sender)
            if recipients is None:
                recipients = self._others[sender] = [
                    node for node in range(n) if node != sender
                ]
        # One bulk pricing call instead of per-envelope arrival_tick:
        # the model draws per-recipient latency/drop decisions from the
        # same per-link streams, in recipient order == the object path's
        # emission order, so the calendar it produces is bit-identical.
        arrivals = self._delivery.batch_arrivals(sender, recipients, tick)
        calendar = self._calendar
        dropped = 0
        if broadcast_all:
            # Split the logical broadcast into one record per arrival
            # tick.  Appending during this call keeps each bucket in
            # emission order relative to other senders' traffic.
            buckets: dict[Round, list[NodeId]] = {}
            for recipient, arrival in zip(recipients, arrivals):
                if arrival is None:
                    dropped += 1
                else:
                    buckets.setdefault(arrival, []).append(recipient)
            if dropped:
                self._metrics.record_drops(sender, tick, dropped)
            full = count
            for arrival in sorted(buckets):
                members = buckets[arrival]
                target: "NodeId | frozenset[NodeId] | None"
                if len(members) == full:
                    target = None
                elif len(members) == 1:
                    target = members[0]
                else:
                    target = frozenset(members)
                bucket = calendar.get(arrival)
                if bucket is None:
                    bucket = calendar[arrival] = []
                bucket.append(
                    BatchRecord(channel, instance, sender, payload, wrapped, target, tick)
                )
        else:
            # Explicit recipient lists keep one single-target record per
            # surviving copy (duplicate recipients get duplicate copies,
            # as the object path would deliver them).
            for recipient, arrival in zip(recipients, arrivals):
                if arrival is None:
                    dropped += 1
                    continue
                bucket = calendar.get(arrival)
                if bucket is None:
                    bucket = calendar[arrival] = []
                bucket.append(
                    BatchRecord(
                        channel, instance, sender, payload, wrapped, recipient, tick
                    )
                )
            if dropped:
                self._metrics.record_drops(sender, tick, dropped)
        return count

    def snapshot(self) -> "Any":
        """Capture the run's full state at the current tick boundary.

        Legal between construction and completion, and between ``run``
        calls (``run(until_tick=T)`` stops at exactly such a boundary).
        Returns a picklable :class:`~repro.sim.snapshot.KernelSnapshot`;
        see :mod:`repro.sim.snapshot` for what it carries and the
        bit-for-bit resume contract.
        """
        from .snapshot import capture_kernel

        return capture_kernel(self)

    @classmethod
    def resume(cls, snapshot: "Any") -> "EventKernel":
        """Rebuild a kernel from a snapshot; ``run()`` continues the run
        bit-for-bit from the snapshot's tick.

        A fresh object graph per call — resuming one snapshot K times
        yields K independent runs, which is what the warm-started sweep
        forks (:func:`repro.harness.parallel.sweep_prefix_shared`) do.
        """
        from .snapshot import restore_kernel

        return restore_kernel(snapshot)

    def run(self, until_tick: Round | None = None) -> RunResult | None:
        """Execute ticks until every node halts.

        :param until_tick: stop *before* processing this tick (a clean
            snapshot boundary) and return ``None`` instead of a result;
            a later ``run()`` — on this kernel or on one resumed from a
            snapshot taken here — continues where it stopped.
        :raises SimulationError: if the horizon is exceeded — the error
            names the nodes (id + protocol class) that had not halted,
            so the stuck protocol is identifiable without a trace re-run.
        """
        contexts = self._contexts
        protocols = self._protocols
        if not self._started:
            for ctx, protocol in zip(contexts, protocols):
                protocol.setup(ctx)
            self._started = True

        from .snapshot import active_checkpoint_policy

        policy = active_checkpoint_policy()
        n = self.n
        recording = self._record_views or self._trace is not None
        # Early-exit bookkeeping: count halted nodes incrementally instead
        # of re-scanning every context each tick.
        halted = sum(1 for ctx in contexts if ctx.state.halted)
        lockstep = self._lockstep
        order = list(self._delivery.activation_order(n))
        if sorted(order) != list(range(n)):
            raise ConfigurationError(
                f"delivery model {self._delivery.name!r} returned an "
                f"activation order that is not a permutation of 0..{n - 1}"
            )

        while halted < n:
            if until_tick is not None and self.tick >= until_tick:
                return None
            if self.tick >= self._max_rounds:
                raise SimulationError(self._horizon_report())
            plane = self._batch
            batching = plane is not None and plane.used
            if batching:
                # Snapshot the consumer registry and reset the per-tick
                # buffer *before* any delivery of this tick is filed.
                plane.begin_tick()
            if lockstep:
                # Per-recipient buckets filled in emission order.  Senders
                # act in ascending id order, so each bucket is born
                # sender-sorted — no per-inbox sort, same as the
                # pre-kernel fast path.
                inboxes: list[list[Envelope]] = [[] for _ in range(n)]
                if batching:
                    for item in self._pending:
                        if type(item) is Envelope:
                            inboxes[item.recipient].append(item)
                        else:
                            plane.deliver(item, inboxes, None, self.tick)
                else:
                    for envelope in self._pending:
                        inboxes[envelope.recipient].append(envelope)
                self._pending = []
            else:
                inboxes = self._inboxes
                metrics = self._metrics
                tick = self.tick
                if batching:
                    for item in self._calendar.pop(tick, ()):
                        if type(item) is Envelope:
                            # Plain wrapped traffic to a consumer is
                            # captured into the group arrays at its
                            # calendar position, preserving the object
                            # path's arrival interleave under jitter.
                            if plane.capture(item, metrics, tick):
                                continue
                            metrics.record_delivery(item, tick)
                            inboxes[item.recipient].append(item)
                        else:
                            plane.deliver(item, inboxes, metrics, tick)
                else:
                    for envelope in self._calendar.pop(tick, ()):
                        metrics.record_delivery(envelope, tick)
                        inboxes[envelope.recipient].append(envelope)

            if not recording:
                for node in order:
                    ctx = contexts[node]
                    state = ctx.state
                    inbox = inboxes[node]
                    if not lockstep:
                        if inbox:
                            inboxes[node] = []
                        self._acted_at[node] = self.tick
                    if state.halted:
                        continue
                    protocols[node].on_activate(ctx, inbox)
                    if state.halted:
                        halted += 1
            else:
                for node in order:
                    ctx = contexts[node]
                    inbox = inboxes[node]
                    if not lockstep:
                        if inbox:
                            inboxes[node] = []
                        self._acted_at[node] = self.tick
                    if self._record_views and not ctx.state.halted:
                        self._views[node].record_round(inbox)
                    if ctx.state.halted:
                        continue
                    before = (ctx.state.decided, ctx.state.discovered, ctx.state.halted)
                    protocols[node].on_activate(ctx, inbox)
                    if self._trace is not None:
                        self._record_transitions(node, before, ctx.state)
                    if ctx.state.halted:
                        halted += 1

            self.tick += 1
            if (
                policy is not None
                and halted < n
                and self.tick % policy.every == 0
            ):
                policy.checkpoint(self)

        if self._calendar and getattr(self._delivery, "sweep_undelivered", False):
            # Envelopes still parked past the final tick (a defer-mode
            # partition whose heal lands at or after run end) would
            # otherwise vanish without a drop record.  Models that opt in
            # get them swept into the loss accounting, in deterministic
            # (tick, seq) order.
            for arrival in sorted(self._calendar):
                for item in self._calendar.pop(arrival):
                    if type(item) is Envelope:
                        self._metrics.record_drop(item)
                        if self._trace is not None:
                            self._trace.record_drop(item)
                    else:
                        # A parked batch record (defer-mode partition
                        # whose heal never came): bulk-charge its whole
                        # recipient set, exactly as the object path's
                        # per-envelope sweep would.  Tracing never
                        # coexists with the batch plane.
                        self._metrics.record_drops(
                            item.sender, item.round_sent, item.recipient_count(self.n)
                        )

        return RunResult(
            n=self.n,
            rounds_executed=self.tick,
            metrics=self._metrics,
            states=[ctx.state for ctx in self._contexts],
            views=self._views if self._record_views else [],
            seed=self.seed,
            trace=self._trace,
        )

    def _horizon_report(self) -> str:
        """Horizon-overrun message naming the stuck nodes."""
        stuck = [
            (ctx.node, type(self._protocols[ctx.node]).__name__)
            for ctx in self._contexts
            if not ctx.state.halted
        ]
        shown = ", ".join(f"{node}:{name}" for node, name in stuck[:16])
        more = f", +{len(stuck) - 16} more" if len(stuck) > 16 else ""
        return (
            f"run exceeded max_rounds={self._max_rounds}; "
            f"{len(stuck)} of {self.n} nodes had not halted "
            f"(node:protocol = {shown}{more})"
        )

    def _record_transitions(
        self,
        node: NodeId,
        before: tuple[bool, str | None, bool],
        state: NodeState,
    ) -> None:
        """Log decide/discover/halt transitions made during this tick."""
        was_decided, was_discovered, was_halted = before
        if state.decided and not was_decided:
            self._trace.record_decide(self.tick, node, state.decision)
        if state.discovered is not None and was_discovered is None:
            self._trace.record_discover(self.tick, node, state.discovered)
        if state.halted and not was_halted:
            self._trace.record_halt(self.tick, node)
