"""Message envelopes delivered by the synchronous network.

An :class:`Envelope` is the simulator's unit of delivery.  It carries the
unforgeable ``sender`` field — network property N2 ("a receiver of a message
can identify its immediate sender") is realised by the fact that only the
network constructs envelopes, stamping the true origin.

Envelopes are named tuples rather than dataclasses: the runner constructs
one per (sender, recipient, round) and frozen-dataclass construction was a
measurable share of large-sweep wall-clock.  The type is still immutable
and field-addressable; only construction got cheaper.

Succinct payloads
-----------------
Payloads are canonical-encodable wire values by library discipline, with
one sanctioned exception: a payload object exposing ``dense_byte_size()``
(the succinct EIG engine's :class:`~repro.agreement.eigtree.RleReport`) is
a *compressed stand-in* for a dense wire value, and the byte meters charge
it at the dense value's exact size.  :func:`wire_byte_size` implements
that accounting, including compressed payloads nested inside the mux
envelope extension below; :func:`payload_kind` honours the object's
``kind`` tag so per-kind tallies stay engine-independent.

Multiplex envelope extension
----------------------------
:mod:`repro.sim.multiplex` runs K independent protocol instances inside
one run.  Their traffic shares the wire, so each instance's payloads are
wrapped in the *mux extension*: an ordinary encodable tuple
``(MUX_WIRE_TAG, channel, instance, payload)`` built by :func:`mux_wrap`
and parsed by :func:`mux_unwrap`.  The wrapper is part of the payload —
Byzantine nodes can forge or mangle it like any other wire value, and a
wrapper that does not parse is delivered to no instance (dropped by the
demux, exactly like other unintelligible noise).  Per-kind tallies
attribute a well-formed wrapper to its channel, so run-level metrics
breakdowns see ``"akd"`` rather than the transport-level tag.

Under the columnar batch plane (:mod:`repro.sim.batch`) one broadcast's
wrapper is built by :func:`mux_wrap` exactly once and rides a single
batch record instead of K envelopes: batch consumers read the *inner*
payload straight from the record (the wrap/unwrap round-trip is elided,
which is legal because :func:`mux_unwrap` of a :func:`mux_wrap` result
is the identity on ``(instance, payload)``), while recipients outside
the batch plane get ordinary envelopes carrying the same wrapper object
— byte accounting, kind tallies and forgery semantics are unchanged.
"""

from __future__ import annotations

from typing import Any, NamedTuple

from ..crypto import encoding
from ..crypto.encoding import EncodingError, uvarint_size
from ..types import NodeId, Round


class Envelope(NamedTuple):
    """A message in flight: who sent it, to whom, what, and when.

    :ivar sender: true originating node (stamped by the network, N2).
    :ivar recipient: destination node.
    :ivar payload: any wire-encodable value; by convention protocols use
        tuples whose first element is a string kind tag.
    :ivar round_sent: round in which the sender emitted the message; it is
        received at ``round_sent + 1`` (bounded-time delivery, N1).
    """

    sender: NodeId
    recipient: NodeId
    payload: Any
    round_sent: Round

    def byte_size(self) -> int:
        """Bytes-on-wire of the payload under the canonical encoding
        (compressed payloads count at their dense-equivalent size)."""
        return wire_byte_size(self.payload)


#: Head tag of the mux envelope extension (see module docstring).
MUX_WIRE_TAG = "mux"


def mux_wrap(channel: str, instance: int, payload: Any) -> tuple:
    """Wrap one instance's payload in the mux envelope extension.

    The result is a plain encodable tuple, so wrapped traffic obeys every
    wire rule unchanged (canonical encoding, byte accounting, Byzantine
    forgeability).  ``channel`` names the multiplexed protocol family
    (e.g. ``"akd"``), ``instance`` the stream within it.
    """
    return (MUX_WIRE_TAG, channel, instance, payload)


def mux_unwrap(payload: Any, channel: str) -> tuple[int, Any] | None:
    """Parse a mux extension for ``channel``: ``(instance, inner)`` or None.

    Anything that is not a well-formed wrapper for this channel — wrong
    tag, wrong channel, non-int instance, wrong arity — yields ``None``:
    the demux treats it as noise for no instance, never as a crash.
    """
    if (
        type(payload) is tuple
        and len(payload) == 4
        and payload[0] == MUX_WIRE_TAG
        and payload[1] == channel
        and type(payload[2]) is int
    ):
        return payload[2], payload[3]
    return None


def payload_kind(payload: Any) -> str:
    """Classify a payload for metrics breakdowns.

    Protocol payloads are tuples tagged with a string head (for example
    ``("predicate", ...)`` or ``("chain", ...)``); payload objects may tag
    themselves via a string ``kind`` attribute (the succinct EIG report
    declares the same kind as its dense form, keeping per-kind counts
    engine-independent); anything else is grouped under its type name.
    A well-formed mux wrapper is attributed to its *channel* — per-kind
    tallies describe protocols, not the multiplexing transport.
    """
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        if (
            payload[0] == MUX_WIRE_TAG
            and len(payload) == 4
            and isinstance(payload[1], str)
            and type(payload[2]) is int
        ):
            return payload[1]
        return payload[0]
    kind = getattr(payload, "kind", None)
    if isinstance(kind, str):
        return kind
    return type(payload).__name__


def wire_byte_size(payload: Any) -> int:
    """Byte accounting for one payload: canonical-encoding size, with
    compressed stand-ins charged at their dense equivalent.

    The common cases stay on the fast paths: a compressed payload answers
    ``dense_byte_size()`` directly, every ordinary payload goes through
    :func:`repro.crypto.encoding.byte_size` unchanged.  Only a payload the
    encoder rejects — a composition wrapper with a compressed payload
    nested inside — takes the structural walk, which prices containers by
    the additive encoding rule (tag + varint length + items).
    """
    dense = getattr(payload, "dense_byte_size", None)
    if dense is not None:
        return dense()
    try:
        return encoding.byte_size(payload)
    except EncodingError:
        return _structural_size(payload)


def _structural_size(value: Any) -> int:
    """Additive size of a container holding compressed payload objects."""
    dense = getattr(value, "dense_byte_size", None)
    if dense is not None:
        return dense()
    if isinstance(value, (tuple, list)):
        return (
            1
            + uvarint_size(len(value))
            + sum(_structural_size(item) for item in value)
        )
    return encoding.byte_size(value)
