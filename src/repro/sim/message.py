"""Message envelopes delivered by the synchronous network.

An :class:`Envelope` is the simulator's unit of delivery.  It carries the
unforgeable ``sender`` field — network property N2 ("a receiver of a message
can identify its immediate sender") is realised by the fact that only the
network constructs envelopes, stamping the true origin.

Envelopes are named tuples rather than dataclasses: the runner constructs
one per (sender, recipient, round) and frozen-dataclass construction was a
measurable share of large-sweep wall-clock.  The type is still immutable
and field-addressable; only construction got cheaper.
"""

from __future__ import annotations

from typing import Any, NamedTuple

from ..crypto import encoding
from ..types import NodeId, Round


class Envelope(NamedTuple):
    """A message in flight: who sent it, to whom, what, and when.

    :ivar sender: true originating node (stamped by the network, N2).
    :ivar recipient: destination node.
    :ivar payload: any wire-encodable value; by convention protocols use
        tuples whose first element is a string kind tag.
    :ivar round_sent: round in which the sender emitted the message; it is
        received at ``round_sent + 1`` (bounded-time delivery, N1).
    """

    sender: NodeId
    recipient: NodeId
    payload: Any
    round_sent: Round

    def byte_size(self) -> int:
        """Bytes-on-wire of the payload under the canonical encoding."""
        return encoding.byte_size(self.payload)


def payload_kind(payload: Any) -> str:
    """Classify a payload for metrics breakdowns.

    Protocol payloads are tuples tagged with a string head (for example
    ``("predicate", ...)`` or ``("chain", ...)``); anything else is grouped
    under its type name.
    """
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        return payload[0]
    return type(payload).__name__
