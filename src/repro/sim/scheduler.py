"""The synchronous round scheduler — now a facade over the event kernel.

Historically this module *was* the runtime: a hard-coded lock-step loop
realising the paper's model (N1 reliable bounded-time delivery with the
bound known and equal to one round, N2 authentic immediate senders,
lock-step rounds).  That loop now lives behind two layers:

* :mod:`repro.sim.kernel` — the event-driven core (deterministic
  calendar queue of ``(tick, seq)``-ordered deliveries, per-tick node
  activations, the determinism contract re-proved at the event level);
* :mod:`repro.sim.network` — pluggable delivery models, of which
  :class:`~repro.sim.network.SynchronousRounds` (the default here) is
  the paper's model as one special case.

This module keeps the pre-kernel API surface intact — :class:`Runner`,
:class:`RunResult`, :func:`run_protocols` — so the 100+ existing call
sites compile unchanged, and ``Runner``'s synchronous default is
required (and property-tested, see ``tests/sim/test_kernel.py``) to be
bit-for-bit identical to the pre-kernel loop: same decisions, same
round counts, same per-kind message/byte counters.

New code that cares about delivery timing should construct an
:class:`~repro.sim.kernel.EventKernel` (or pass ``delivery=`` here) with
an explicit model from :mod:`repro.sim.network`.
"""

from __future__ import annotations

from typing import Sequence

from .kernel import EventKernel, RunResult
from .network import DeliveryModel
from .node import Protocol

__all__ = ["Runner", "RunResult", "run_protocols"]


class Runner(EventKernel):
    """Drives a set of protocols through synchronous rounds to completion.

    A thin facade over :class:`~repro.sim.kernel.EventKernel`: the same
    constructor signature as the pre-kernel runner plus an optional
    ``delivery`` model (default: the paper's lock-step
    :class:`~repro.sim.network.SynchronousRounds`).  ``runner.round`` —
    the attribute contexts and tests read — is the kernel's single
    :attr:`~repro.sim.kernel.EventKernel.tick` counter, which is also
    what ``RunResult.rounds_executed`` reports: one source of truth for
    simulated time instead of the old pair of lock-step-incremented
    counters.
    """


def run_protocols(
    protocols: Sequence[Protocol],
    seed: int | str = 0,
    max_rounds: int = 10_000,
    record_views: bool = False,
    record_trace: bool = False,
    delivery: DeliveryModel | None = None,
) -> RunResult:
    """Convenience one-shot: build a :class:`Runner` and run it.

    :param delivery: optional :class:`~repro.sim.network.DeliveryModel`;
        ``None`` keeps the paper's synchronous rounds.
    """
    return Runner(
        protocols,
        seed=seed,
        max_rounds=max_rounds,
        record_views=record_views,
        record_trace=record_trace,
        delivery=delivery,
    ).run()
