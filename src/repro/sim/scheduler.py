"""The synchronous round scheduler (the network "runtime").

Realises the paper's model of computation:

* fully interconnected network of ``n`` nodes (any node may address any
  other directly);
* N1 — reliable, bounded-time transmission: every message sent in round
  ``r`` is delivered at round ``r + 1``, never lost, never duplicated,
  never reordered within a round (inboxes are sender-sorted);
* N2 — the receiver learns the true immediate sender: envelopes are
  stamped by the network, and protocols (including Byzantine ones) have no
  way to spoof the ``sender`` field;
* lock-step rounds: each node's behaviour in round ``r`` is a function of
  its view through round ``r`` (its inbox plus prior state).

Determinism contract: given the same protocols and master seed, a run is
bit-for-bit reproducible — node rngs are seed-derived and all iteration
orders are fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import ConfigurationError, SimulationError
from ..types import NodeId, Round, validate_node_count
from .message import Envelope
from .metrics import Metrics
from .node import NodeContext, NodeState, Protocol
from .rng import node_rng
from .trace import Trace
from .views import View


@dataclass
class RunResult:
    """Everything observable about one completed run.

    :ivar n: network size.
    :ivar rounds_executed: number of scheduler iterations performed.
    :ivar metrics: message/byte/round counters (see :class:`Metrics`).
    :ivar states: per-node outcomes, indexed by node id.
    :ivar views: per-node recorded views (empty if view recording was off).
    :ivar trace: structured event log (None if trace recording was off).
    :ivar seed: the master seed, for reproduction.
    """

    n: int
    rounds_executed: int
    metrics: Metrics
    states: list[NodeState]
    views: list[View]
    seed: int | str
    trace: Trace | None = None

    def decisions(self) -> dict[NodeId, Any]:
        """Decisions of all nodes that decided."""
        return {s.node: s.decision for s in self.states if s.decided}

    def discoverers(self) -> list[NodeId]:
        """Nodes that discovered a failure."""
        return [s.node for s in self.states if s.discovered_failure]

    def outputs(self, key: str) -> dict[NodeId, Any]:
        """Collect a named protocol output across nodes that produced it."""
        return {
            s.node: s.outputs[key] for s in self.states if key in s.outputs
        }


class Runner:
    """Drives a set of protocols through synchronous rounds to completion."""

    def __init__(
        self,
        protocols: Sequence[Protocol],
        seed: int | str = 0,
        max_rounds: int = 10_000,
        record_views: bool = False,
        record_trace: bool = False,
    ) -> None:
        """
        :param protocols: one behaviour per node; index = node id.
        :param seed: master seed for all node randomness.
        :param max_rounds: safety horizon; exceeding it raises, because
            every protocol in this library halts within a known bound.
        :param record_views: capture per-node views (costs memory; enable
            for semantic failure-discovery analyses).
        :param record_trace: capture a structured event log of sends,
            decisions, discoveries and halts (see :class:`Trace`).
        """
        validate_node_count(len(protocols))
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.n = len(protocols)
        self.seed = seed
        self.round: Round = 0
        self._protocols = list(protocols)
        self._max_rounds = max_rounds
        self._record_views = record_views
        self._trace = Trace() if record_trace else None
        self._metrics = Metrics()
        self._pending: list[Envelope] = []
        self._contexts = [
            NodeContext(self, node, node_rng(seed, node)) for node in range(self.n)
        ]
        self._views = [View(node=node) for node in range(self.n)]

    def enqueue(self, envelope: Envelope) -> None:
        """Accept an envelope for next-round delivery (called by contexts)."""
        self._metrics.record(envelope)
        if self._trace is not None:
            self._trace.record_send(envelope)
        self._pending.append(envelope)

    def run(self) -> RunResult:
        """Execute rounds until every node halts.

        :raises SimulationError: if the horizon is exceeded — which, given
            this library's protocols all have static round bounds, means a
            protocol bug rather than a long run.
        """
        for ctx, protocol in zip(self._contexts, self._protocols):
            protocol.setup(ctx)

        contexts = self._contexts
        protocols = self._protocols
        n = self.n
        recording = self._record_views or self._trace is not None
        # Early-exit bookkeeping: count halted nodes incrementally instead
        # of re-scanning every context each round.
        halted = sum(1 for ctx in contexts if ctx.state.halted)

        rounds_executed = 0
        while halted < n:
            if rounds_executed >= self._max_rounds:
                raise SimulationError(
                    f"run exceeded max_rounds={self._max_rounds}; "
                    "a protocol failed to halt"
                )
            # Preallocated per-recipient buckets.  Senders step in ascending
            # id order and ``_pending`` preserves emission order, so each
            # bucket is born sender-sorted — the per-inbox sort of the seed
            # code is unnecessary.
            inboxes: list[list[Envelope]] = [[] for _ in range(n)]
            for envelope in self._pending:
                inboxes[envelope.recipient].append(envelope)
            self._pending = []

            if not recording:
                for node in range(n):
                    ctx = contexts[node]
                    state = ctx.state
                    if state.halted:
                        continue
                    protocols[node].on_round(ctx, inboxes[node])
                    if state.halted:
                        halted += 1
            else:
                for node in range(n):
                    ctx = contexts[node]
                    if self._record_views and not ctx.state.halted:
                        self._views[node].record_round(inboxes[node])
                    if ctx.state.halted:
                        continue
                    before = (ctx.state.decided, ctx.state.discovered, ctx.state.halted)
                    protocols[node].on_round(ctx, inboxes[node])
                    if self._trace is not None:
                        self._record_transitions(node, before, ctx.state)
                    if ctx.state.halted:
                        halted += 1

            self.round += 1
            rounds_executed += 1

        return RunResult(
            n=self.n,
            rounds_executed=rounds_executed,
            metrics=self._metrics,
            states=[ctx.state for ctx in self._contexts],
            views=self._views if self._record_views else [],
            seed=self.seed,
            trace=self._trace,
        )

    def _record_transitions(
        self,
        node: NodeId,
        before: tuple[bool, str | None, bool],
        state: NodeState,
    ) -> None:
        """Log decide/discover/halt transitions made during this round."""
        was_decided, was_discovered, was_halted = before
        if state.decided and not was_decided:
            self._trace.record_decide(self.round, node, state.decision)
        if state.discovered is not None and was_discovered is None:
            self._trace.record_discover(self.round, node, state.discovered)
        if state.halted and not was_halted:
            self._trace.record_halt(self.round, node)


def run_protocols(
    protocols: Sequence[Protocol],
    seed: int | str = 0,
    max_rounds: int = 10_000,
    record_views: bool = False,
    record_trace: bool = False,
) -> RunResult:
    """Convenience one-shot: build a :class:`Runner` and run it."""
    return Runner(
        protocols,
        seed=seed,
        max_rounds=max_rounds,
        record_views=record_views,
        record_trace=record_trace,
    ).run()
