"""Instance multiplexing: K independent protocol instances in one run.

The paper's cost argument against agreement-based key distribution rests
on running *n concurrent* OM(t) instances in one execution ("n agreement
instances cost n·[(n-1)+t(n-1)²] envelopes").  This module makes that
concurrency a first-class primitive of the simulator rather than a
private trick of one protocol: :class:`InstanceMux` runs any number of
independent instances of any :class:`~repro.sim.node.Protocol` inside a
single node behaviour, with

* **stable wire tags** — every instance's traffic travels in the mux
  envelope extension of :mod:`repro.sim.message` (``mux_wrap`` /
  ``mux_unwrap``), demultiplexed back to per-instance inboxes on arrival;
* **namespaced randomness** — each instance draws from
  :func:`repro.sim.rng.instance_rng`, keyed by ``(master seed, node,
  instance)``, so instance streams are mutually independent *and*
  independent of which other instances share the run;
* **per-instance metrics** — each instance's sends are also recorded, at
  the inner payload's (dense-equivalent) size, into a per-instance
  :class:`~repro.sim.metrics.Metrics`, settled every round to bound
  retention; run-level aggregation is :func:`collect_instances`;
* **per-instance outcomes** — decide / discover / halt land in an
  :class:`InstanceOutcome` (a :class:`~repro.sim.compose.PhaseOutcome`
  extended with identity and metrics), never in the real node state.

Causal independence and sharding
--------------------------------
Instances that never read each other's state — the agreement-based
key-distribution case: instance *i* is one OM(t) run about node *i*'s
key — interact only through their own tagged traffic and their own rng
streams.  A run over any *subset* of the instances therefore reproduces
that subset's decisions, rounds and per-instance metrics bit-for-bit,
which is what lets :func:`repro.harness.parallel.run_mux_shards` split
the K instances of one logical run across worker processes and merge the
per-instance results deterministically.  ``tests/harness/``'s sharding
property test enforces the equivalence under random Byzantine behaviour.

Columnar execution
------------------
K instances sharing one channel make the per-envelope pipeline the run's
hot loop (n=128 key distribution: ~6.2M envelopes, ~4 rounds).  The
mux's default ``engine="columnar"`` therefore rides the kernel's batch
plane (:mod:`repro.sim.batch`): every instance broadcast becomes one
batch record, arriving traffic is read as shared structure-of-arrays
groups instead of per-node envelope lists, and protocols that declare
``supports_batch_inbox`` ingest the arrays directly (others get
envelopes materialised on demand).  Jittered, lossy and partitioned
calendars batch too: records carry per-arrival-tick buckets and an
emission-``rounds[]`` column (see :mod:`repro.sim.batch`), so the plane
engages for every deterministic delivery model, not just lock-step.
``engine="object"`` forces the original per-envelope path — the
reference oracle — and the columnar engine *falls back to it
automatically* whenever the run cannot batch (views/trace recording on,
a rushing delivery model); the fallback is recorded on the mux
(:attr:`InstanceMux.fallback_reason` / :attr:`InstanceMux.engine_used`)
and warned once per process, so "silently slower" is neither.  The
process-wide default engine can be forced via the ``REPRO_MUX_ENGINE``
environment variable (:func:`default_mux_engine`).  The engine knob
changes execution strategy only: decisions, per-instance outcomes and
all metrics counters are bit-for-bit identical either way
(``tests/sim/test_batch.py`` property-tests this under random Byzantine
behaviour, jittered/lossy/partitioned delivery and adaptive
adversaries).

Composition
-----------
:class:`InstanceMux` is itself a :class:`~repro.sim.node.Protocol`: it
can run directly under the scheduler, be embedded in a larger protocol
through :class:`~repro.sim.compose.PhaseHost`, and host instances that
themselves embed sub-protocols via ``PhaseHost`` — the three layerings
the key-distribution and FD→BA stacks use.  Because it only speaks the
``Protocol`` API, the mux runs on the event kernel unchanged under any
:class:`~repro.sim.network.DeliveryModel`: each activation demultiplexes
whatever arrived that tick (``tests/sim/test_multiplex.py`` pins this).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..errors import ConfigurationError
from ..types import NodeId
from .batch import ChannelBatch
from .compose import PhaseOutcome
from .message import Envelope, mux_unwrap, mux_wrap
from .metrics import Metrics
from .node import NodeContext, Protocol
from .rng import instance_rng
from .scheduler import RunResult

#: Key under which a completed mux publishes its per-instance outcomes in
#: ``NodeState.outputs``.
MUX_OUTCOMES = "mux-outcomes"

#: Default channel name for anonymous muxes.
DEFAULT_CHANNEL = "mux"

#: Execution engines (see :class:`InstanceMux`): the columnar default
#: rides the kernel's batch plane when available; the object engine is
#: the per-envelope reference path the equivalence tests pin against.
OBJECT_ENGINE = "object"
COLUMNAR_ENGINE = "columnar"
DEFAULT_MUX_ENGINE = COLUMNAR_ENGINE

#: Environment knob overriding the default engine for muxes constructed
#: without an explicit ``engine=`` — how CI forces a whole test/bench
#: pass onto the object reference path (``REPRO_MUX_ENGINE=object``).
MUX_ENGINE_ENV = "REPRO_MUX_ENGINE"


def default_mux_engine() -> str:
    """The engine muxes use when none is requested explicitly.

    :data:`DEFAULT_MUX_ENGINE` (columnar), overridable per process via
    the :data:`MUX_ENGINE_ENV` environment variable — the knob CI's
    second quick-bench pass uses to keep the object oracle exercised and
    count-identical on every change.

    :raises ConfigurationError: if the variable holds an unknown engine.
    """
    engine = os.environ.get(MUX_ENGINE_ENV)
    if engine is None:
        return DEFAULT_MUX_ENGINE
    if engine not in (OBJECT_ENGINE, COLUMNAR_ENGINE):
        raise ConfigurationError(
            f"{MUX_ENGINE_ENV}={engine!r} names an unknown mux engine; "
            f"expected {OBJECT_ENGINE!r} or {COLUMNAR_ENGINE!r}"
        )
    return engine


#: Fallback reasons already warned about this process (one warning per
#: distinct reason, not one per mux — an n=128 run builds 128 muxes).
_FALLBACK_WARNED: set[str] = set()


def _warn_engine_fallback(reason: str) -> None:
    """One-time ``RuntimeWarning`` when a columnar mux degrades.

    The fallback is *correct* (the object path is the reference oracle)
    but silently slower; surfacing it once per distinct reason turns
    "why is this run 10x slower" into a printed answer without drowning
    multi-run sweeps in repeats.
    """
    if reason in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(reason)
    warnings.warn(
        f"columnar mux fell back to the object engine: {reason}",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass
class InstanceOutcome(PhaseOutcome):
    """Captured effects and measurements of one multiplexed instance.

    Generalizes :class:`~repro.sim.compose.PhaseOutcome` (decided /
    decision / discovered / halted) with the instance's identity and its
    own :class:`~repro.sim.metrics.Metrics`, fed with the instance's
    *inner* envelopes — what this instance's protocol sent, charged at
    dense-equivalent payload sizes, before mux wrapping.
    """

    instance: int = 0
    metrics: Metrics = field(default_factory=Metrics)


class _MuxInstanceContext:
    """One instance's window onto the node: tagged sends, namespaced rng.

    The mirror of :class:`repro.sim.compose._PhaseProxyContext`, per
    instance instead of per phase: sends are wrapped in the mux envelope
    extension (and mirrored into the instance's metrics), ``rng`` is the
    instance's namespaced stream, and decide / discover / halt are
    captured in the :class:`InstanceOutcome` instead of the node state.
    Rounds pass through unshifted — all instances share the mux's round
    frame (shift the whole mux with a ``PhaseHost`` if needed).
    """

    __slots__ = ("_ctx", "_channel", "_outcome", "_rng")

    def __init__(self, ctx, channel: str, outcome: InstanceOutcome, rng) -> None:
        self._ctx = ctx
        self._channel = channel
        self._outcome = outcome
        self._rng = rng

    def __getattr__(self, item: str) -> Any:
        return getattr(self._ctx, item)

    @property
    def node(self) -> NodeId:
        """This node's id (pass-through)."""
        return self._ctx.node

    @property
    def n(self) -> int:
        """Network size (pass-through)."""
        return self._ctx.n

    @property
    def round(self) -> int:
        """The mux's round frame, unshifted."""
        return self._ctx.round

    @property
    def rng(self):
        """The instance's namespaced random stream."""
        return self._rng

    @property
    def state(self):
        """The real node state (outputs only; terminal effects never
        reach it through this proxy)."""
        return self._ctx.state

    def others(self) -> list[NodeId]:
        """All node ids except this node's (pass-through)."""
        return self._ctx.others()

    def send(self, to: NodeId, payload: Any) -> None:
        """Send ``payload`` on this instance's tagged stream."""
        self._ctx.send(to, mux_wrap(self._channel, self._outcome.instance, payload))
        self._outcome.metrics.record(
            Envelope(self._ctx.node, to, payload, self._ctx.round)
        )

    def broadcast(self, payload: Any, to: list[NodeId] | None = None) -> None:
        """Broadcast on this instance's stream.

        Wraps once and hands every recipient the same wrapper object, so
        the run-level lazy byte meters still deduplicate the encode by
        identity (see :mod:`repro.sim.metrics`); the per-instance mirror
        records the one shared inner payload per recipient likewise.
        """
        wrapped = mux_wrap(self._channel, self._outcome.instance, payload)
        ctx = self._ctx
        record = self._outcome.metrics.record
        node, round_ = ctx.node, ctx.round
        for recipient in ctx.others() if to is None else to:
            ctx.send(recipient, wrapped)
            record(Envelope(node, recipient, payload, round_))

    def decide(self, value: Any) -> None:
        """Capture the instance's decision."""
        self._outcome.decided = True
        self._outcome.decision = value

    def discover_failure(self, reason: str) -> None:
        """Capture the instance's failure discovery (first reason wins)."""
        if self._outcome.discovered is None:
            self._outcome.discovered = reason

    def halt(self) -> None:
        """Mark the instance finished; the mux stops stepping it."""
        self._outcome.halted = True


class _ColumnarInstanceContext(_MuxInstanceContext):
    """The columnar twin of :class:`_MuxInstanceContext`: sends travel
    as kernel batch records instead of per-recipient wrapped envelopes.

    Everything observable is preserved — the kernel wraps the payload
    once, charges run metrics for the full recipient count, and the
    per-instance mirror records the same inner payload at the same
    (possibly phase-shifted) round; only the per-envelope object churn
    is gone.
    """

    __slots__ = ()

    def send(self, to: NodeId, payload: Any) -> None:
        ctx = self._ctx
        outcome = self._outcome
        ctx.send_batch(self._channel, outcome.instance, payload, (to,))
        outcome.metrics.record_broadcast(ctx.node, ctx.round, payload, 1)

    def broadcast(self, payload: Any, to: list[NodeId] | None = None) -> None:
        ctx = self._ctx
        outcome = self._outcome
        count = ctx.send_batch(self._channel, outcome.instance, payload, to)
        outcome.metrics.record_broadcast(ctx.node, ctx.round, payload, count)


def _batch_envelopes(group: ChannelBatch, me: NodeId) -> list[Envelope]:
    """Materialise one instance's batched deliveries for node ``me``.

    Inner payloads in the group's arrival order, each stamped with its
    entry's emission round from the ``rounds[]`` column — exactly the
    per-instance inbox the object path's demux would have built, under
    lock-step and jittered calendars alike.
    """
    envelopes = []
    senders = group.senders
    payloads = group.payloads
    targets = group.targets
    rounds = group.rounds
    for i in range(len(senders)):
        target = targets[i]
        sender = senders[i]
        if target is None:
            if sender == me:
                continue
        elif type(target) is int:
            if target != me:
                continue
        elif me not in target:
            continue
        envelopes.append(Envelope(sender, me, payloads[i], rounds[i]))
    return envelopes


def _merge_by_sender(batched: list[Envelope], plain: list[Envelope]) -> list[Envelope]:
    """Merge two sender-ascending envelope lists, batched first on ties.

    A sender ties with itself only if it sent both batch records and
    plain wrapped envelopes in one tick (a hand-crafted adversary); the
    batch-first rule is the documented order for that corner.
    """
    if not batched:
        return plain
    if not plain:
        return batched
    merged = []
    i = 0
    total = len(batched)
    for env in plain:
        sender = env.sender
        while i < total and batched[i].sender <= sender:
            merged.append(batched[i])
            i += 1
        merged.append(env)
    merged.extend(batched[i:])
    return merged


def _merge_plain_into_batch(
    group: ChannelBatch, plain: list[Envelope]
) -> ChannelBatch:
    """Splice demuxed plain envelopes into a copy of a batch group.

    Used when a batch-ingesting instance also received plain wrapped
    traffic (object-engine peers, Byzantine forgeries): the protocol
    still sees one sender-ascending columnar view.  The copy gets a
    fresh ``shared`` scratch (entry indices shift), which is fine — the
    plain-traffic case is the rare one.
    """
    merged = ChannelBatch()
    senders = merged.senders
    payloads = merged.payloads
    targets = merged.targets
    rounds = merged.rounds
    group_senders = group.senders
    group_payloads = group.payloads
    group_targets = group.targets
    group_rounds = group.rounds
    i = 0
    total = len(group_senders)
    for env in plain:
        sender = env.sender
        while i < total and group_senders[i] <= sender:
            senders.append(group_senders[i])
            payloads.append(group_payloads[i])
            targets.append(group_targets[i])
            rounds.append(group_rounds[i])
            i += 1
        senders.append(env.sender)
        payloads.append(env.payload)
        targets.append(env.recipient)
        rounds.append(env.round_sent)
    while i < total:
        senders.append(group_senders[i])
        payloads.append(group_payloads[i])
        targets.append(group_targets[i])
        rounds.append(group_rounds[i])
        i += 1
    return merged


class _MuxSlot:
    """Bookkeeping for one hosted instance."""

    __slots__ = ("protocol", "outcome", "rng")

    def __init__(self, protocol: Protocol, outcome: InstanceOutcome, rng) -> None:
        self.protocol = protocol
        self.outcome = outcome
        self.rng = rng


class InstanceMux(Protocol):
    """Runs K independent protocol instances as one node behaviour.

    :param instances: instance id -> that instance's protocol for *this
        node*.  Ids need not be contiguous; iteration is always in sorted
        id order (determinism).
    :param channel: wire-tag channel shared by all nodes of one mux run.
    :param engine: :data:`COLUMNAR_ENGINE` to ride the kernel's batch
        plane when the run supports it, :data:`OBJECT_ENGINE` to force
        the per-envelope reference path, or ``None`` (default) to use
        :func:`default_mux_engine` — columnar unless the
        ``REPRO_MUX_ENGINE`` environment knob says otherwise.  Execution
        strategy only — observable behaviour is identical (see module
        docstring).  After :meth:`setup`, :attr:`engine_used` reports
        the engine actually running and :attr:`fallback_reason` why a
        columnar request degraded (if it did).

    Each round, the inbox is demultiplexed by the mux envelope extension
    (non-parsing traffic is dropped — Byzantine noise belongs to no
    instance) and every live instance is stepped with its own envelopes,
    its own rng stream and its own metrics.  When every instance has
    halted, the per-instance outcomes are published under
    ``outputs[MUX_OUTCOMES]`` and the node halts.  Embedding protocols
    that want to post-process (e.g. build a key directory from the
    decisions) wrap the mux in a :class:`~repro.sim.compose.PhaseHost`
    and read :attr:`outcomes` when the host reports the halt.
    """

    def __init__(
        self,
        instances: Mapping[int, Protocol],
        channel: str = DEFAULT_CHANNEL,
        engine: "str | None" = None,
    ) -> None:
        if engine is None:
            engine = default_mux_engine()
        elif engine not in (OBJECT_ENGINE, COLUMNAR_ENGINE):
            raise ConfigurationError(
                f"unknown mux engine {engine!r}; expected "
                f"{OBJECT_ENGINE!r} or {COLUMNAR_ENGINE!r}"
            )
        self._channel = channel
        self._engine = engine
        self._columnar = False
        self._fallback_reason: "str | None" = None
        self._protocols = {int(i): p for i, p in instances.items()}
        self._slots: dict[int, _MuxSlot] = {}
        self._live = 0

    @property
    def engine(self) -> str:
        """The configured execution engine (``"object"``/``"columnar"``)."""
        return self._engine

    @property
    def engine_used(self) -> str:
        """The engine actually running (meaningful after :meth:`setup`):
        :data:`COLUMNAR_ENGINE` when the batch-plane registration
        succeeded, else :data:`OBJECT_ENGINE` — either because it was
        configured, or because a columnar request fell back (see
        :attr:`fallback_reason`)."""
        return COLUMNAR_ENGINE if self._columnar else OBJECT_ENGINE

    @property
    def fallback_reason(self) -> "str | None":
        """Why a columnar mux is running the object path, or ``None``.

        Set during :meth:`setup` when ``engine="columnar"`` could not
        register with the run's batch plane (recording on, delivery
        model not batch-capable, or a context without the batch API);
        always ``None`` for object-engine muxes and for columnar muxes
        that engaged.  The same reason is emitted once per process as a
        ``RuntimeWarning`` — fallback is correct but silently slower.
        """
        return self._fallback_reason

    @property
    def channel(self) -> str:
        """The mux's wire-tag channel."""
        return self._channel

    @property
    def outcomes(self) -> dict[int, InstanceOutcome]:
        """instance id -> its outcome (shared, live objects)."""
        return {i: slot.outcome for i, slot in self._slots.items()}

    @property
    def all_halted(self) -> bool:
        """Whether every instance has halted."""
        return self._live == 0 and bool(self._slots)

    def setup(self, ctx: NodeContext) -> None:
        """Create per-instance outcomes and rng streams; set up instances."""
        if self._engine == COLUMNAR_ENGINE:
            # getattr-probed: composition layers hand the mux proxy
            # contexts, and tests hand it bare fakes — anything without
            # the batch API simply runs the object path.
            register = getattr(ctx, "register_batch_consumer", None)
            self._columnar = (
                bool(register(self._channel)) if register is not None else False
            )
            if not self._columnar:
                reason_fn = getattr(ctx, "batch_fallback_reason", None)
                reason = reason_fn() if callable(reason_fn) else None
                if reason is None:
                    reason = "run context exposes no batch plane API"
                self._fallback_reason = reason
                _warn_engine_fallback(reason)
        seed = ctx.seed
        for instance in sorted(self._protocols):
            outcome = InstanceOutcome(instance=instance)
            rng = instance_rng(seed, ctx.node, instance, purpose=self._channel)
            slot = _MuxSlot(self._protocols[instance], outcome, rng)
            self._slots[instance] = slot
            slot.protocol.setup(
                _MuxInstanceContext(ctx, self._channel, outcome, rng)
            )  # type: ignore[arg-type]
        # An instance may already have halted inside its setup (a
        # config-validating or crashed-from-start behaviour): count only
        # the live ones, or _live could never reach zero.
        self._live = sum(
            1 for slot in self._slots.values() if not slot.outcome.halted
        )

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        """Demultiplex, step every live instance, halt when all are done."""
        slots = self._slots
        per_instance: dict[int, list[Envelope]] = {}
        channel = self._channel
        for env in inbox:
            parsed = mux_unwrap(env.payload, channel)
            if parsed is None:
                continue
            instance, inner = parsed
            if instance in slots:
                per_instance.setdefault(instance, []).append(
                    Envelope(env.sender, env.recipient, inner, env.round_sent)
                )
        columnar = self._columnar
        groups = ctx.batch_groups(channel) if columnar else None
        if groups is None:
            # Object path: either the object engine, or a columnar mux
            # whose run has no batch plane this tick.  A columnar mux
            # still *sends* through the plane when registered, hence the
            # engine-dependent proxy class.
            proxy_cls = _ColumnarInstanceContext if columnar else _MuxInstanceContext
            for instance in sorted(slots):
                slot = slots[instance]
                outcome = slot.outcome
                if outcome.halted:
                    continue
                proxy = proxy_cls(ctx, channel, outcome, slot.rng)
                slot.protocol.on_round(proxy, per_instance.get(instance, []))  # type: ignore[arg-type]
                outcome.metrics.settle()
                if outcome.halted:
                    self._live -= 1
        else:
            me = ctx.node
            for instance in sorted(slots):
                slot = slots[instance]
                outcome = slot.outcome
                if outcome.halted:
                    continue
                proxy = _ColumnarInstanceContext(ctx, channel, outcome, slot.rng)
                group = groups.get(instance)
                plain = per_instance.get(instance)
                protocol = slot.protocol
                if group is not None and getattr(
                    protocol, "supports_batch_inbox", False
                ):
                    protocol.on_round_batch(
                        proxy,  # type: ignore[arg-type]
                        group
                        if plain is None
                        else _merge_plain_into_batch(group, plain),
                    )
                elif group is not None:
                    protocol.on_round(
                        proxy,  # type: ignore[arg-type]
                        _merge_by_sender(
                            _batch_envelopes(group, me), plain or []
                        ),
                    )
                else:
                    protocol.on_round(proxy, plain or [])  # type: ignore[arg-type]
                outcome.metrics.settle()
                if outcome.halted:
                    self._live -= 1
        if self._live == 0:
            ctx.state.outputs[MUX_OUTCOMES] = self.outcomes
            ctx.halt()


@dataclass
class InstanceAggregate:
    """Run-level view of one instance across all participating nodes.

    The cross-node mirror of :class:`InstanceOutcome`: where the outcome
    captures what *one node* saw of the instance, the aggregate collects
    every node's decision and discovery for it, plus the instance's
    merged metrics (every node's per-instance instrument folded together
    in node order).  Aggregates are plain picklable data with value
    equality — the currency the sharded executor ships between processes
    and the equivalence property tests compare bit-for-bit.
    """

    instance: int
    decisions: dict[NodeId, Any] = field(default_factory=dict)
    discovered: dict[NodeId, str] = field(default_factory=dict)
    metrics: Metrics = field(default_factory=Metrics)

    @property
    def messages(self) -> int:
        """Envelopes this instance's participants sent (all nodes)."""
        return self.metrics.messages_total

    @property
    def bytes(self) -> int:
        """Dense-equivalent payload bytes across the instance's envelopes."""
        return self.metrics.bytes_total

    @property
    def rounds(self) -> int:
        """Rounds (in the mux's frame) in which the instance had traffic."""
        return self.metrics.rounds_used


def collect_instances(run: RunResult) -> dict[int, InstanceAggregate]:
    """Aggregate every node's published mux outcomes per instance.

    Walks ``run.states`` in node order, so metric merging — commutative
    anyway — happens in one canonical order.  Nodes that published no
    :data:`MUX_OUTCOMES` (Byzantine behaviours that are not muxes, nodes
    that never finished) simply contribute nothing; per-instance counts
    therefore measure the *participating* nodes' traffic, matching the
    library's convention that only correct-node counts are meaningfully
    bounded.
    """
    aggregates: dict[int, InstanceAggregate] = {}
    for state in run.states:
        outcomes = state.outputs.get(MUX_OUTCOMES)
        if not isinstance(outcomes, dict):
            continue
        for instance in sorted(outcomes):
            outcome = outcomes[instance]
            agg = aggregates.get(instance)
            if agg is None:
                agg = aggregates[instance] = InstanceAggregate(instance=instance)
            if outcome.decided:
                agg.decisions[state.node] = outcome.decision
            if outcome.discovered is not None:
                agg.discovered[state.node] = outcome.discovered
            agg.metrics.merge(outcome.metrics)
    return dict(sorted(aggregates.items()))


def merge_instance_aggregates(
    shards: Iterator[Mapping[int, InstanceAggregate]] | list,
) -> dict[int, InstanceAggregate]:
    """Combine disjoint per-shard aggregate maps into one, id-sorted.

    :raises ValueError: if two shards claim the same instance — shards of
        one logical run must partition the instance set.
    """
    merged: dict[int, InstanceAggregate] = {}
    for shard in shards:
        for instance, aggregate in shard.items():
            if instance in merged:
                raise ValueError(
                    f"instance {instance} appears in more than one shard"
                )
            merged[instance] = aggregate
    return dict(sorted(merged.items()))
