"""Phase composition: run a sub-protocol inside a window of a larger run.

The FD→BA extension (and several experiments) embed one protocol inside
another: chain-FD as phase one, an alarm window, a signed-messages
fallback as phase three.  :class:`PhaseHost` runs an inner protocol
against a round-shifted proxy context, capturing its decide / discover /
halt effects into a :class:`PhaseOutcome` instead of the real node state,
so the outer protocol decides what those effects mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..types import NodeId, Round
from .message import Envelope, payload_kind
from .node import NodeContext, Protocol


@dataclass
class PhaseOutcome:
    """Captured effects of an embedded protocol."""

    decided: bool = False
    decision: Any = None
    discovered: str | None = None
    halted: bool = False

    @property
    def discovered_failure(self) -> bool:
        return self.discovered is not None


class _PhaseProxyContext:
    """Context seen by the embedded protocol: rounds shifted to its own
    zero, terminal effects redirected into the outcome."""

    def __init__(
        self, ctx: NodeContext, offset: Round, outcome: PhaseOutcome
    ) -> None:
        self._ctx = ctx
        self._offset = offset
        self._outcome = outcome

    def __getattr__(self, item: str) -> Any:
        return getattr(self._ctx, item)

    @property
    def node(self) -> NodeId:
        return self._ctx.node

    @property
    def n(self) -> int:
        return self._ctx.n

    @property
    def rng(self):
        return self._ctx.rng

    @property
    def round(self) -> Round:
        return self._ctx.round - self._offset

    @property
    def state(self):
        # Expose the *real* node state for outputs, but note that decide /
        # discover / halt never reach it through this proxy.
        return self._ctx.state

    def others(self) -> list[NodeId]:
        return self._ctx.others()

    def send(self, to: NodeId, payload: Any) -> None:
        self._ctx.send(to, payload)

    def broadcast(self, payload: Any, to: list[NodeId] | None = None) -> None:
        self._ctx.broadcast(payload, to=to)

    def decide(self, value: Any) -> None:
        self._outcome.decided = True
        self._outcome.decision = value

    def discover_failure(self, reason: str) -> None:
        if self._outcome.discovered is None:
            self._outcome.discovered = reason

    def halt(self) -> None:
        self._outcome.halted = True


class PhaseHost:
    """Drives an embedded protocol across a round window of the real run.

    :param inner: the embedded protocol instance.
    :param offset: outer round at which the inner protocol's round 0 falls.
    :param kinds: optional payload-kind filter: when set, :meth:`step`
        hands the inner protocol only inbox envelopes whose
        :func:`~repro.sim.message.payload_kind` is in ``kinds``.  This is
        the same demultiplexing notion the instance mux
        (:mod:`repro.sim.multiplex`) applies per instance, at phase
        granularity — use it when the inner protocol's traffic is
        kind-tagged and the outer run interleaves other phases' traffic.
        Leave unset for protocols whose semantics depend on seeing *all*
        traffic (failure discovery treats unexpected messages as
        evidence).

    Call :meth:`step` every outer round within the window, passing the
    inbox messages that belong to the inner protocol; inspect
    :attr:`outcome` afterwards.
    """

    def __init__(
        self,
        inner: Protocol,
        offset: Round,
        kinds: tuple[str, ...] | None = None,
    ) -> None:
        self.inner = inner
        self.offset = offset
        self.kinds = kinds
        self.outcome = PhaseOutcome()
        self._setup_done = False

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        """Run one embedded round (no-op once the inner protocol halted)."""
        if self.outcome.halted:
            return
        if self.kinds is not None:
            inbox = [
                env for env in inbox if payload_kind(env.payload) in self.kinds
            ]
        proxy = _PhaseProxyContext(ctx, self.offset, self.outcome)
        if not self._setup_done:
            self.inner.setup(proxy)  # type: ignore[arg-type]
            self._setup_done = True
        self.inner.on_round(proxy, inbox)  # type: ignore[arg-type]
