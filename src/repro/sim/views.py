"""Node views, as defined by the paper's model of computation.

    "A view of a node in round i of run r is the sequence of sets of
    messages it has received in each round of the run r up to round i. ...
    If a node's view of a run differs from its views of all failure-free
    runs it discovers a failure."

Protocols in this library perform discovery *operationally* (they check the
concrete expectations that characterise their failure-free views), but the
recorded :class:`View` objects let tests and analyses apply the paper's
semantic definition directly: run the failure-free reference run, compare
views, and confirm the operational checks discover exactly when the
definition says a deviation exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..crypto import encoding
from ..types import NodeId, Round
from .message import Envelope


@dataclass(frozen=True)
class ReceivedMessage:
    """One element of a round's received set: ``(sender, payload)``.

    Payload equality is by canonical encoding so views compare reliably
    even for payloads containing nested structures.  Payload objects that
    are not directly encodable but expose an encodable ``wire_tuple()``
    (the succinct EIG engine's run-length reports) are recorded through
    that form — the stored bytes are then exactly what crossed the
    simulated wire, which is what E9's compression probes measure.
    """

    sender: NodeId
    payload_encoding: bytes

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> "ReceivedMessage":
        payload = envelope.payload
        wire = getattr(payload, "wire_tuple", None)
        if wire is not None:
            payload = wire()
        try:
            raw = encoding.encode(payload)
        except encoding.EncodingError:
            # A wire_tuple payload nested inside a composition wrapper
            # (e.g. ("akd", instance, RleReport)) — unwrap recursively,
            # mirroring repro.sim.message.wire_byte_size.
            raw = encoding.encode(_unwrap_wire_tuples(payload))
        return cls(sender=envelope.sender, payload_encoding=raw)

    def payload(self) -> Any:
        """Decode the payload back to its structured form."""
        return encoding.decode(self.payload_encoding)


def _unwrap_wire_tuples(value: Any) -> Any:
    """Replace nested ``wire_tuple()`` payload objects with their
    encodable tuple forms inside list/tuple containers."""
    wire = getattr(value, "wire_tuple", None)
    if wire is not None:
        return wire()
    if isinstance(value, (list, tuple)):
        return tuple(_unwrap_wire_tuples(item) for item in value)
    return value


@dataclass
class View:
    """The per-round sequence of received message sets of one node."""

    node: NodeId
    rounds: list[frozenset[ReceivedMessage]] = field(default_factory=list)

    def record_round(self, inbox: list[Envelope]) -> None:
        """Append the received set for the next round."""
        self.rounds.append(
            frozenset(ReceivedMessage.from_envelope(env) for env in inbox)
        )

    def up_to(self, round_index: Round) -> tuple[frozenset[ReceivedMessage], ...]:
        """The view truncated to rounds ``0 .. round_index`` inclusive."""
        return tuple(self.rounds[: round_index + 1])

    def differs_from(self, reference: "View") -> Round | None:
        """First round where this view deviates from ``reference``.

        Returns ``None`` when this view is a prefix-compatible match of the
        reference (same sets in every common round and same length) — i.e.
        the node would *not* discover a failure against that reference run.
        """
        common = min(len(self.rounds), len(reference.rounds))
        for index in range(common):
            if self.rounds[index] != reference.rounds[index]:
                return index
        if len(self.rounds) != len(reference.rounds):
            return common
        return None
