"""Structured event traces of a run.

A :class:`Trace` records what happened, in order: every send, every
decision, every discovery, every halt.  Where the :class:`~repro.sim.views.View`
machinery captures what each node *received* (the paper's semantic
object), the trace captures the run as a whole — the thing you read when a
protocol misbehaves, and the thing the examples print to walk a reader
through an execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..types import NodeId, Round
from .message import Envelope, payload_kind


@dataclass(frozen=True)
class TraceEvent:
    """One run event.

    :ivar round: round (kernel tick) in which the event happened.
    :ivar kind: ``"send"``, ``"drop"``, ``"decide"``, ``"discover"`` or
        ``"halt"``.
    :ivar node: the acting node.
    :ivar detail: kind-specific payload: for sends and drops,
        ``(recipient, payload kind tag)``; for decisions, the value; for
        discoveries, the reason; for halts, ``None``.
    :ivar tick: delivery timestamp for sends under a non-lock-step
        :class:`~repro.sim.network.DeliveryModel`: the kernel tick at
        which the envelope *arrives* (``None`` under lock-step delivery,
        where arrival is always ``round + 1`` and needs no annotation).
    """

    round: Round
    kind: str
    node: NodeId
    detail: Any
    tick: Round | None = None

    def format(self) -> str:
        """One human-readable line."""
        if self.kind == "send":
            recipient, tag = self.detail
            stamp = f"  @t{self.tick}" if self.tick is not None else ""
            return f"r{self.round:<3} P{self.node} -> P{recipient}  [{tag}]{stamp}"
        if self.kind == "drop":
            recipient, tag = self.detail
            return (
                f"r{self.round:<3} P{self.node} -> P{recipient}  [{tag}]  DROPPED"
            )
        if self.kind == "decide":
            return f"r{self.round:<3} P{self.node} decides {self.detail!r}"
        if self.kind == "discover":
            return f"r{self.round:<3} P{self.node} DISCOVERS: {self.detail}"
        return f"r{self.round:<3} P{self.node} halts"


class Trace:
    """Append-only event log with a size cap.

    The cap exists because Byzantine scripted behaviours can spray
    unbounded traffic; a capped trace degrades gracefully (the
    :attr:`truncated` flag records that it happened) instead of eating
    memory in long fuzz runs.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        self.events: list[TraceEvent] = []
        self.max_events = max_events
        self.truncated = False

    def _append(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(event)

    def record_send(
        self, envelope: Envelope, arrival_tick: Round | None = None
    ) -> None:
        """Log one outgoing envelope (recipient + payload kind).

        :param arrival_tick: the delivery tick assigned by a non-lock-step
            delivery model; lock-step callers omit it (arrival is always
            the next tick) and the event carries no timestamp annotation.
        """
        self._append(
            TraceEvent(
                round=envelope.round_sent,
                kind="send",
                node=envelope.sender,
                detail=(envelope.recipient, payload_kind(envelope.payload)),
                tick=arrival_tick,
            )
        )

    def record_drop(self, envelope: Envelope) -> None:
        """Log one envelope the delivery model dropped (never delivered).

        Recorded *instead of* the send event — a dropped envelope has no
        arrival tick, and the distinct kind keeps loss visible when
        reading a trace of an unreliable-network run.
        """
        self._append(
            TraceEvent(
                round=envelope.round_sent,
                kind="drop",
                node=envelope.sender,
                detail=(envelope.recipient, payload_kind(envelope.payload)),
            )
        )

    def record_decide(self, round_: Round, node: NodeId, value: Any) -> None:
        """Log a node choosing its decision value."""
        self._append(TraceEvent(round=round_, kind="decide", node=node, detail=value))

    def record_discover(self, round_: Round, node: NodeId, reason: str) -> None:
        """Log a node discovering a failure, with its reason."""
        self._append(
            TraceEvent(round=round_, kind="discover", node=node, detail=reason)
        )

    def record_halt(self, round_: Round, node: NodeId) -> None:
        """Log a node leaving the protocol."""
        self._append(TraceEvent(round=round_, kind="halt", node=node, detail=None))

    # -- queries ----------------------------------------------------------

    def events_since(self, cursor: int) -> tuple[list[TraceEvent], int]:
        """Incremental read: events appended at or after ``cursor``.

        Returns the new events plus the next cursor, so an online
        observer (the adaptive adversary's strategy hook) can poll the
        trace once per tick without rescanning the whole log.
        """
        events = self.events[cursor:]
        return events, cursor + len(events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def for_node(self, node: NodeId) -> list[TraceEvent]:
        """All events a node performed, in order."""
        return [event for event in self.events if event.node == node]

    def format(self, max_lines: int | None = None) -> str:
        """The whole trace (or its head) as printable lines."""
        lines = [event.format() for event in self.events]
        if max_lines is not None and len(lines) > max_lines:
            lines = lines[:max_lines] + [f"... ({len(self.events) - max_lines} more)"]
        if self.truncated:
            lines.append("... (trace truncated at cap)")
        return "\n".join(lines)
