"""Deterministic kernel checkpoint/resume.

The kernel's determinism contract (run state is a pure function of the
master seed plus the emission sequence — :mod:`repro.sim.kernel`) makes
run state *snapshot-able*: everything the next tick depends on lives in
one object graph rooted at the :class:`~repro.sim.kernel.EventKernel` —

* the calendar queue and lock-step pending list (in-flight envelopes and
  batch records, in emission order),
* the tick counter and per-node ``_acted_at`` causality marks,
* every node's protocol object and :class:`~repro.sim.node.NodeState`,
* every rng stream position: node streams (``NodeContext.rng``),
  instance streams (inside mux-owned contexts), and the per-link /
  per-fanout ``random.Random`` caches of the jittered delivery models
  (see the audit note in :mod:`repro.sim.rng`),
* delivery-model state (partition epoch schedule position, parked
  defer-mode records — which simply sit in the calendar),
* metrics (settled first, so no live payload references inflate the
  snapshot), the trace so far, recorded views, and the batch plane's
  consumer registry (its per-tick arrays are dead at tick boundaries).

A :class:`KernelSnapshot` is therefore one :func:`pickle.dumps` of the
kernel taken at a tick boundary.  The single-pickle design is
deliberate: shared references survive — the fanout rng lists alias the
link streams, every ``AdaptiveCorruptible`` wrapper shares one
``AdaptiveCoordinator``, contexts point back at the kernel — so the
restored graph has exactly the original's aliasing structure, which is
what makes resume-equals-straight-run hold *bit-for-bit*
(``tests/sim/test_snapshot.py`` property-tests it across all four
delivery families, random Byzantine and adaptive adversaries, and both
mux engines).

Protocols default to this whole-object capture.  A protocol holding
state that must not travel (an unpicklable cache, a handle) opts into
the explicit hook pair instead: ``snapshot_state()`` returning a
picklable value and ``restore_state(state)`` rebuilding from it (see
:class:`repro.sim.node.Protocol`); the capture swaps such protocols for
``(class, state)`` placeholders before pickling and rebuilds them via
``cls.__new__`` on restore.

Checkpoint files and the policy hook
------------------------------------
:func:`save_snapshot` / :func:`load_snapshot` move snapshots through
files with fail-fast validation (missing/corrupt/version-mismatched
files raise :class:`~repro.errors.ConfigurationError`, which the CLI
maps to exit 2).  :func:`set_checkpoint_policy` installs a process-wide
"write a checkpoint every N ticks" policy that the kernel's run loop
consults — how ``repro-fd run --checkpoint-every N --checkpoint-dir D``
checkpoints *any* workload without threading new parameters through
every entry point.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError
from ..types import Round

if TYPE_CHECKING:
    from .kernel import EventKernel

#: Snapshot format version.  Bumped whenever the kernel's pickled shape
#: changes incompatibly; :func:`restore_kernel` refuses other versions.
SNAPSHOT_VERSION = 1

#: Conventional checkpoint-file suffix (documentation only — loading
#: validates content, never the name).
SNAPSHOT_SUFFIX = ".ckpt"


@dataclass(frozen=True)
class KernelSnapshot:
    """One run's full state at a tick boundary, as a picklable value.

    :ivar version: format version (see :data:`SNAPSHOT_VERSION`).
    :ivar n: network size, for display and sanity checks.
    :ivar seed: the run's master seed.
    :ivar tick: the tick the snapshot was taken at — the resumed kernel
        continues by *processing* this tick.
    :ivar payload: the pickled kernel graph.
    :ivar extras: caller-attached context (picklable) that must travel
        with the snapshot — e.g. the scenario fingerprint and evaluation
        inputs :func:`repro.harness.runner.run_fd_scenario` stores so a
        forked suffix can finish and evaluate without re-deriving them.
    """

    version: int
    n: int
    seed: int | str
    tick: Round
    payload: bytes
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        """Size of the pickled kernel graph (the bench column that keeps
        snapshot bloat visible per PR)."""
        return len(self.payload)


class _HookedProtocolState:
    """Placeholder for a protocol captured via its explicit hooks.

    Takes the protocol's slot in the pickled ``_protocols`` list;
    :func:`restore_kernel` swaps it back for
    ``cls.__new__(cls).restore_state(state)``.
    """

    __slots__ = ("cls", "state")

    def __init__(self, cls: type, state: Any) -> None:
        self.cls = cls
        self.state = state


def capture_kernel(kernel: "EventKernel", extras: dict[str, Any] | None = None) -> KernelSnapshot:
    """Snapshot a kernel at its current tick boundary.

    Settles the metrics first (idempotent; byte totals are independent
    of settle boundaries) so no payload references bloat the pickle,
    then swaps hook-implementing protocols for their captured state and
    pickles the whole graph in one call.
    """
    kernel._metrics.settle()
    protocols = kernel._protocols
    swapped: list[tuple[int, Any]] = []
    for index, protocol in enumerate(protocols):
        hook = getattr(protocol, "snapshot_state", None)
        if hook is not None:
            swapped.append((index, protocol))
            protocols[index] = _HookedProtocolState(type(protocol), hook())
    try:
        payload = pickle.dumps(kernel, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ConfigurationError(
            f"run state is not snapshot-able: {exc} — protocols holding "
            "unpicklable state must implement the snapshot_state/"
            "restore_state hook pair (see repro.sim.node.Protocol)"
        ) from exc
    finally:
        for index, protocol in swapped:
            protocols[index] = protocol
    return KernelSnapshot(
        version=SNAPSHOT_VERSION,
        n=kernel.n,
        seed=kernel.seed,
        tick=kernel.tick,
        payload=payload,
        extras=dict(extras) if extras else {},
    )


def restore_kernel(snapshot: KernelSnapshot) -> "EventKernel":
    """Rebuild a runnable kernel from a snapshot.

    The restored kernel is a fresh object graph (resuming twice from one
    snapshot yields two independent runs — the property warm-started
    sweep forks rely on); calling ``run()`` on it continues the run
    bit-for-bit where the snapshot was taken.
    """
    if not isinstance(snapshot, KernelSnapshot):
        raise ConfigurationError(
            f"expected a KernelSnapshot, got {type(snapshot).__name__} — "
            "snapshots come from EventKernel.snapshot() / load_snapshot()"
        )
    if snapshot.version != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"snapshot version {snapshot.version} does not match this "
            f"build's snapshot format (version {SNAPSHOT_VERSION}); "
            "re-create the checkpoint with the current code"
        )
    try:
        kernel = pickle.loads(snapshot.payload)
    except Exception as exc:
        raise ConfigurationError(
            f"snapshot payload is corrupt or from an incompatible build: {exc}"
        ) from exc
    protocols = kernel._protocols
    for index, item in enumerate(protocols):
        if isinstance(item, _HookedProtocolState):
            protocol = item.cls.__new__(item.cls)
            protocol.restore_state(item.state)
            protocols[index] = protocol
    return kernel


def retune_protocols(protocols: list, **params: Any) -> dict[str, int]:
    """Apply warm-fork parameter retunes across a resumed run's protocols.

    For each ``name=value``, every protocol exposing ``name`` in its
    ``tunable`` set (searched outermost-first through ``.inner`` wrapper
    chains — crash/tamper behaviours, ``AdaptiveCorruptible``) is
    retuned.  Returns ``{name: protocols retuned}``.

    :raises ConfigurationError: when a parameter matches no protocol at
        all — sweeping an axis nobody honours is a configuration bug,
        not a silent no-op.
    """
    counts = dict.fromkeys(params, 0)
    for protocol in protocols:
        for name, value in params.items():
            target = protocol
            while target is not None:
                if name in getattr(target, "tunable", ()):
                    target.retune(**{name: value})
                    counts[name] += 1
                    break
                target = getattr(target, "inner", None)
    missing = sorted(name for name, count in counts.items() if count == 0)
    if missing:
        raise ConfigurationError(
            f"retune parameter(s) {missing} match no protocol in the "
            "resumed run — no protocol lists them as tunable"
        )
    return counts


# -- file transport --------------------------------------------------------


def save_snapshot(snapshot: KernelSnapshot, path: "str | Path") -> Path:
    """Write a snapshot to ``path`` (parents created); returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))
    return target


def load_snapshot(path: "str | Path") -> KernelSnapshot:
    """Read and validate a snapshot file.

    :raises ConfigurationError: when the file is missing, unreadable,
        not a pickled :class:`KernelSnapshot`, or carries a different
        format version — each with a message naming the valid form, so
        the CLI can map every bad checkpoint to exit 2.
    """
    source = Path(path)
    try:
        raw = source.read_bytes()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read checkpoint file {source}: {exc} — expected a "
            f"file written by save_snapshot / --checkpoint-every"
        ) from exc
    try:
        snapshot = pickle.loads(raw)
    except Exception as exc:
        raise ConfigurationError(
            f"checkpoint file {source} is corrupt (not a pickled "
            f"KernelSnapshot): {exc}"
        ) from exc
    if not isinstance(snapshot, KernelSnapshot):
        raise ConfigurationError(
            f"checkpoint file {source} does not contain a KernelSnapshot "
            f"(got {type(snapshot).__name__})"
        )
    if snapshot.version != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"checkpoint file {source} has snapshot version "
            f"{snapshot.version}, but this build reads version "
            f"{SNAPSHOT_VERSION}; re-create it with the current code"
        )
    return snapshot


# -- process-wide checkpoint policy ---------------------------------------


class CheckpointPolicy:
    """Write a checkpoint every ``every`` ticks into ``directory``.

    Consulted by the kernel's run loop at each tick boundary.  Each
    kernel run the policy sees gets its own file prefix (``run0-``,
    ``run1-``, ...), so workloads that execute several kernels — a key
    distribution phase before the protocol under test — never overwrite
    each other's checkpoints.
    """

    def __init__(self, every: int, directory: "str | Path") -> None:
        if every < 1:
            raise ConfigurationError(
                f"checkpoint interval must be a positive tick count, got {every}"
            )
        self.every = every
        self.directory = Path(directory)
        self._next_run = 0
        self._labels: dict[int, int] = {}
        self.written: list[Path] = []

    def checkpoint(self, kernel: "EventKernel") -> None:
        """Snapshot ``kernel`` now (kernel's tick is a multiple of
        ``every``); file name carries the run index and the tick."""
        label = self._labels.get(id(kernel))
        if label is None:
            label = self._labels[id(kernel)] = self._next_run
            self._next_run += 1
        path = self.directory / f"run{label}-tick{kernel.tick:06d}{SNAPSHOT_SUFFIX}"
        self.written.append(save_snapshot(kernel.snapshot(), path))


_ACTIVE_POLICY: CheckpointPolicy | None = None


def set_checkpoint_policy(every: int, directory: "str | Path") -> CheckpointPolicy:
    """Install a process-wide checkpoint policy (returns it).

    :raises ConfigurationError: for a non-positive interval.
    """
    global _ACTIVE_POLICY
    _ACTIVE_POLICY = CheckpointPolicy(every, directory)
    return _ACTIVE_POLICY


def clear_checkpoint_policy() -> None:
    """Remove the active policy (kernels stop writing checkpoints)."""
    global _ACTIVE_POLICY
    _ACTIVE_POLICY = None


def active_checkpoint_policy() -> CheckpointPolicy | None:
    """The installed policy, or ``None`` — read once per ``run()``."""
    return _ACTIVE_POLICY
