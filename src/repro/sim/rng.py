"""Deterministic per-node randomness derivation.

Every run is driven by one master seed; each node receives an independent
``random.Random`` stream derived by hashing ``(master seed, node id)``.
Two guarantees follow:

* reruns with the same seed reproduce every message bit-for-bit, which the
  regression tests rely on; and
* a node's stream is statistically independent of its peers', so the
  challenge nonces ``r_j`` of the key distribution protocol are
  unpredictable to other nodes *within the simulation's threat model*.
"""

from __future__ import annotations

import hashlib
import random

from ..types import NodeId


def node_rng(master_seed: int | str, node: NodeId, purpose: str = "") -> random.Random:
    """A deterministic ``Random`` for ``node`` under ``master_seed``.

    :param purpose: optional extra domain separator, letting one node hold
        several independent streams (e.g. key generation vs challenges).
    """
    digest = hashlib.sha256(
        f"repro/{master_seed}/{node}/{purpose}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest, "big"))


def instance_rng(
    master_seed: int | str, node: NodeId, instance: int, purpose: str = ""
) -> random.Random:
    """A deterministic ``Random`` for one *protocol instance* at ``node``.

    Namespaced by ``(master_seed, node, instance)``: two instances
    multiplexed at the same node draw statistically independent streams,
    and — the property the sharded executor relies on — an instance's
    stream does not depend on which *other* instances share its run.
    ``instance`` is folded into the :func:`node_rng` purpose separator, so
    instance streams can never collide with a node's plain streams.
    """
    return node_rng(master_seed, node, f"instance/{instance}/{purpose}")
