"""Deterministic per-node randomness derivation.

Every run is driven by one master seed; each node receives an independent
``random.Random`` stream derived by hashing ``(master seed, node id)``.
Two guarantees follow:

* reruns with the same seed reproduce every message bit-for-bit, which the
  regression tests rely on; and
* a node's stream is statistically independent of its peers', so the
  challenge nonces ``r_j`` of the key distribution protocol are
  unpredictable to other nodes *within the simulation's threat model*.
"""

from __future__ import annotations

import hashlib
import random

from ..types import NodeId


def node_rng(master_seed: int | str, node: NodeId, purpose: str = "") -> random.Random:
    """A deterministic ``Random`` for ``node`` under ``master_seed``.

    :param purpose: optional extra domain separator, letting one node hold
        several independent streams (e.g. key generation vs challenges).
    """
    digest = hashlib.sha256(
        f"repro/{master_seed}/{node}/{purpose}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest, "big"))


def instance_rng(
    master_seed: int | str, node: NodeId, instance: int, purpose: str = ""
) -> random.Random:
    """A deterministic ``Random`` for one *protocol instance* at ``node``.

    Namespaced by ``(master_seed, node, instance)``: two instances
    multiplexed at the same node draw statistically independent streams,
    and — the property the sharded executor relies on — an instance's
    stream does not depend on which *other* instances share its run.
    ``instance`` is folded into the :func:`node_rng` purpose separator, so
    instance streams can never collide with a node's plain streams.
    """
    return node_rng(master_seed, node, f"instance/{instance}/{purpose}")


# -- stream state capture (checkpoint/resume) -----------------------------
#
# Snapshot audit: every ``random.Random`` a run consumes must live inside
# the kernel's object graph so :mod:`repro.sim.snapshot` captures its
# position.  The inventory —
#
# * node streams: ``NodeContext.rng`` (one per context, built here);
# * instance streams: created via :func:`instance_rng` and held by the
#   mux's per-instance contexts, which hang off the node protocols;
# * link/fanout streams: the ``_links`` / ``_fanouts`` caches of
#   ``_LinkStreamDelivery`` subclasses in :mod:`repro.sim.network`
#   (instance state of the delivery model, never module globals);
#
# — all reachable from the :class:`~repro.sim.kernel.EventKernel`, so a
# whole-graph pickle carries every stream position and no stream can
# silently desync on resume.  Code introducing a *new* ad-hoc
# ``random.Random`` must park it on an object the kernel reaches.
#
# Two construction sites are deliberately exempt, both outside run state:
# ``repro.crypto.schnorr`` seeds a throwaway stream from the group's bit
# sizes alone (a run-independent constant), and ``repro.crypto.numtheory``
# falls back to an unseeded stream only for primality *witness* selection
# when the caller passes none (the verdict, not the draws, is what's
# consumed).


def capture_state(rng: random.Random) -> tuple:
    """The stream's full position as a picklable value.

    A thin, named wrapper over ``Random.getstate()`` — the explicit
    half of the snapshot contract, used by protocols implementing the
    ``snapshot_state`` hook (:class:`repro.sim.node.Protocol`) for
    streams they manage outside the kernel's object graph.
    """
    return rng.getstate()


def restore_state(rng: random.Random, state: tuple) -> random.Random:
    """Rewind ``rng`` to a :func:`capture_state` position; returns it.

    After restoring, the stream emits exactly the draws the captured
    stream would have emitted — the property the resume-equals-straight-
    run tests pin bit-for-bit.
    """
    rng.setstate(state)
    return rng
