"""Run metrics: message, byte and round accounting.

These counters are the measurement instrument for every experiment in
EXPERIMENTS.md — the paper's claims are claims about *message counts* and
*round counts*, so the simulator counts them exactly (no sampling).

Byte accounting is exact but *lazy*: encoding every payload at send time
dominated sweep wall-clock, so :meth:`Metrics.record` only stashes the
payload reference and the encode happens on first read of
:attr:`Metrics.bytes_total` / :attr:`Metrics.bytes_per_round`.  Two facts
make this sound:

* payloads are wire values, immutable by library discipline, so encoding
  later yields the same bytes as encoding at send time;
* a broadcast hands the same payload object to every recipient, so the
  settle step deduplicates by object identity and encodes it once (the
  references held in the deferred list keep ids stable).

The columnar batch plane (:mod:`repro.sim.batch`) charges a whole
broadcast in one call: deferred entries are ``(round, payload, count)``
triples, and :meth:`Metrics.record_broadcast` /
:meth:`Metrics.record_deliveries` / :meth:`Metrics.record_drops` bump
every counter by the batch size at once — bit-for-bit the totals the
per-envelope methods produce, at O(1) per logical send.

Compressed payloads (the succinct EIG engine's run-length reports) are
charged at their *dense equivalent* size via
:func:`repro.sim.message.wire_byte_size`: the byte counters measure the
protocol's information content, not the engine's representation choice,
so they stay bit-for-bit identical across engines (experiment E9 reports
the dense-vs-compressed gap separately).

The trade is time for memory: until the byte counters are read (or the
Metrics object is released with its run result), the deferred list keeps
every payload alive — the same order of retention as view recording,
and freed wholesale with the :class:`~repro.sim.scheduler.RunResult`.
Callers that accumulate many run results and want the bytes anyway can
simply read ``bytes_total`` to settle and drop the references early.

Per-instance attribution
------------------------
A run hosting multiplexed protocol instances
(:mod:`repro.sim.multiplex`) carries one run-level ``Metrics`` (this
module, owned by the scheduler, charging the mux-wrapped wire payloads)
plus one ``Metrics`` *per instance*, fed by the mux with the instances'
inner envelopes at their dense-equivalent sizes.  :meth:`Metrics.merge`
folds per-instance instruments across nodes — or across shards of a
partitioned run — into run-level aggregates; merging is settled counter
addition, so aggregate values are independent of shard boundaries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..types import NodeId, Round
from .message import Envelope, payload_kind, wire_byte_size


@dataclass
class Metrics:
    """Aggregate counters for one run.

    :ivar messages_total: every envelope handed to the network.
    :ivar rounds_used: number of rounds in which at least one message was
        sent.  This matches the paper's round counting: its key
        distribution protocol "takes 3 rounds" — three communication steps.
    :ivar messages_per_round: round -> messages sent that round.
    :ivar messages_per_sender: node -> messages it sent.
    :ivar messages_per_kind: payload kind tag -> count.

    ``bytes_total`` and ``bytes_per_round`` (canonical-encoding bytes) are
    settled-on-read properties — see the module docstring.
    """

    messages_total: int = 0
    rounds_used: int = 0
    messages_per_round: Counter[Round] = field(default_factory=Counter)
    messages_per_sender: Counter[NodeId] = field(default_factory=Counter)
    messages_per_kind: Counter[str] = field(default_factory=Counter)
    delivered_per_tick: Counter[Round] = field(default_factory=Counter)
    delivery_lag_total: int = 0
    deliveries_total: int = 0
    drops_total: int = 0
    dropped_per_round: Counter[Round] = field(default_factory=Counter)
    dropped_per_sender: Counter[NodeId] = field(default_factory=Counter)
    _settled_bytes: int = 0
    _settled_bytes_per_round: Counter[Round] = field(default_factory=Counter)
    _deferred_payloads: list[tuple[Round, Any, int]] = field(
        default_factory=list, repr=False
    )

    def record(self, envelope: Envelope) -> None:
        """Account one sent envelope (bytes deferred; see module docs).

        All per-round counters key on ``round_sent``, which the network
        stamps at emission — so they stay exact under skewed delivery
        models, where an envelope's *arrival* tick (tracked separately
        by :meth:`record_delivery`) can trail its emission round.
        """
        self.messages_total += 1
        round_sent = envelope.round_sent
        self.messages_per_round[round_sent] += 1
        self.messages_per_sender[envelope.sender] += 1
        self.messages_per_kind[payload_kind(envelope.payload)] += 1
        self._deferred_payloads.append((round_sent, envelope.payload, 1))
        if round_sent >= self.rounds_used:
            self.rounds_used = round_sent + 1

    def record_broadcast(
        self, sender: NodeId, round_sent: Round, payload: Any, count: int
    ) -> None:
        """Account ``count`` copies of one payload in a single charge.

        The bulk mirror of :meth:`record` for the columnar batch plane
        (:mod:`repro.sim.batch`): one logical broadcast of ``payload`` by
        ``sender`` to ``count`` recipients bumps every counter by
        ``count`` at once and defers a single ``(round, payload, count)``
        entry.  Identical totals to ``count`` individual records of the
        same payload object — the object path's identity dedup charges
        ``count * size`` bytes too — at O(1) instead of O(count).
        """
        self.messages_total += count
        self.messages_per_round[round_sent] += count
        self.messages_per_sender[sender] += count
        self.messages_per_kind[payload_kind(payload)] += count
        self._deferred_payloads.append((round_sent, payload, count))
        if round_sent >= self.rounds_used:
            self.rounds_used = round_sent + 1

    def record_delivery(self, envelope: Envelope, tick: Round) -> None:
        """Account one delivered envelope under a non-lock-step model.

        Recorded by the event kernel at arrival time.  ``delivery lag``
        is the arrival's excess over the lock-step bound (``arrival -
        sent - 1``): positive for late bounded-delay arrivals, ``-1``
        for a same-tick rushed delivery, and identically zero under
        synchronous rounds — so the kernel skips the call entirely on
        the lock-step fast path and these counters stay at their
        defaults, keeping lock-step metrics bit-for-bit comparable with
        pre-kernel runs.
        """
        self.delivered_per_tick[tick] += 1
        self.delivery_lag_total += tick - envelope.round_sent - 1
        self.deliveries_total += 1

    def record_drop(self, envelope: Envelope) -> None:
        """Account one envelope the delivery model dropped.

        Recorded by the event kernel when a model's ``arrival_tick``
        returns ``None`` (lossy links, partition boundaries).  The
        envelope is *also* in the send counters — drops measure how much
        of the sent traffic the network ate, keyed (like every per-round
        counter) on the emission round.  Identically zero under reliable
        models, keeping their metrics bit-for-bit comparable with
        pre-drop-support runs.
        """
        self.drops_total += 1
        self.dropped_per_round[envelope.round_sent] += 1
        self.dropped_per_sender[envelope.sender] += 1

    def record_deliveries(
        self, tick: Round, count: int, round_sent: "Round | None" = None
    ) -> None:
        """Account ``count`` deliveries arriving at ``tick`` in bulk.

        The batch plane's mirror of :meth:`record_delivery`.  A batch
        record arrives as one bucket — every envelope it stands for
        shares the same emission round and arrival tick, so its lag
        (``tick - round_sent - 1``) is charged ``count`` times in one
        addition.  ``round_sent=None`` (the legacy next-tick call shape)
        skips the lag accumulator, which is exact only when arrival is
        one tick after emission; the batch plane always passes the
        record's emission round now that jittered calendars batch too.
        """
        self.delivered_per_tick[tick] += count
        self.deliveries_total += count
        if round_sent is not None:
            self.delivery_lag_total += (tick - round_sent - 1) * count

    def record_drops(self, sender: NodeId, round_sent: Round, count: int) -> None:
        """Account ``count`` dropped envelopes from one batch send."""
        self.drops_total += count
        self.dropped_per_round[round_sent] += count
        self.dropped_per_sender[sender] += count

    @property
    def loss_rate(self) -> float:
        """Fraction of sent envelopes the network dropped (0.0 when no
        message was ever sent)."""
        if not self.messages_total:
            return 0.0
        return self.drops_total / self.messages_total

    @property
    def mean_delivery_lag(self) -> float:
        """Mean excess latency (ticks beyond the lock-step bound) per
        delivered envelope — negative when rushed deliveries dominate;
        0.0 when no deliveries were recorded."""
        if not self.deliveries_total:
            return 0.0
        return self.delivery_lag_total / self.deliveries_total

    def settle(self) -> "Metrics":
        """Force byte settlement now; returns ``self`` for chaining.

        Settling is incremental and idempotent — counters only ever grow
        by the deferred batch, so periodic settles (as the instance mux
        does once per round) bound deferred-list retention without
        changing any total.  A settled ``Metrics`` holds no payload
        references, which also makes it cheaply picklable: the sharded
        executor settles before shipping per-instance metrics back to the
        parent process.
        """
        self._settle()
        return self

    def merge(self, other: "Metrics") -> None:
        """Fold another instrument's counts into this one.

        Used for run-level aggregation of per-instance metrics (and for
        merging one instance's per-node metrics across nodes or shards).
        Both sides are settled first, so the merge is pure counter
        addition — commutative and associative, hence deterministic
        regardless of shard boundaries or merge order.
        """
        self._settle()
        other._settle()
        self.messages_total += other.messages_total
        self.rounds_used = max(self.rounds_used, other.rounds_used)
        self.messages_per_round.update(other.messages_per_round)
        self.messages_per_sender.update(other.messages_per_sender)
        self.messages_per_kind.update(other.messages_per_kind)
        self.delivered_per_tick.update(other.delivered_per_tick)
        self.delivery_lag_total += other.delivery_lag_total
        self.deliveries_total += other.deliveries_total
        self.drops_total += other.drops_total
        self.dropped_per_round.update(other.dropped_per_round)
        self.dropped_per_sender.update(other.dropped_per_sender)
        self._settled_bytes += other._settled_bytes
        self._settled_bytes_per_round.update(other._settled_bytes_per_round)

    def _settle(self) -> None:
        """Encode all deferred payloads into the byte counters."""
        if not self._deferred_payloads:
            return
        byte_size = wire_byte_size
        sizes_by_id: dict[int, int] = {}
        per_round = self._settled_bytes_per_round
        total = 0
        for round_sent, payload, count in self._deferred_payloads:
            key = id(payload)
            size = sizes_by_id.get(key)
            if size is None:
                size = byte_size(payload)
                sizes_by_id[key] = size
            charge = size * count
            total += charge
            per_round[round_sent] += charge
        self._settled_bytes += total
        self._deferred_payloads.clear()

    @property
    def bytes_total(self) -> int:
        """Canonical-encoding bytes across all envelopes."""
        self._settle()
        return self._settled_bytes

    @property
    def bytes_per_round(self) -> Counter[Round]:
        """round -> bytes sent that round."""
        self._settle()
        return self._settled_bytes_per_round

    def activity_snapshot(self, n: int) -> tuple[tuple[int, int], ...]:
        """Per-node ``(sent, dropped)`` counts as a hashable snapshot.

        The observation surface for adaptive adversary strategies
        (:mod:`repro.faults.adversary`): a pure value derived from the
        run so far, so a strategy keyed on it stays a deterministic
        function of the master seed plus observed events.
        """
        return tuple(
            (self.messages_per_sender[node], self.dropped_per_sender[node])
            for node in range(n)
        )

    def messages_from(self, nodes: set[NodeId]) -> int:
        """Messages sent by any node in ``nodes``.

        Used to separate correct-node traffic from Byzantine traffic: the
        paper's complexity claims concern failure-free runs, and in faulty
        runs only the correct nodes' counts are meaningfully bounded.
        """
        return sum(self.messages_per_sender[node] for node in nodes)
