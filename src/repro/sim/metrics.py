"""Run metrics: message, byte and round accounting.

These counters are the measurement instrument for every experiment in
EXPERIMENTS.md — the paper's claims are claims about *message counts* and
*round counts*, so the simulator counts them exactly (no sampling).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..types import NodeId, Round
from .message import Envelope, payload_kind


@dataclass
class Metrics:
    """Aggregate counters for one run.

    :ivar messages_total: every envelope handed to the network.
    :ivar bytes_total: canonical-encoding bytes across all envelopes.
    :ivar rounds_used: number of rounds in which at least one message was
        sent.  This matches the paper's round counting: its key
        distribution protocol "takes 3 rounds" — three communication steps.
    :ivar messages_per_round: round -> messages sent that round.
    :ivar messages_per_sender: node -> messages it sent.
    :ivar messages_per_kind: payload kind tag -> count.
    :ivar bytes_per_round: round -> bytes sent that round.
    """

    messages_total: int = 0
    bytes_total: int = 0
    rounds_used: int = 0
    messages_per_round: Counter[Round] = field(default_factory=Counter)
    messages_per_sender: Counter[NodeId] = field(default_factory=Counter)
    messages_per_kind: Counter[str] = field(default_factory=Counter)
    bytes_per_round: Counter[Round] = field(default_factory=Counter)

    def record(self, envelope: Envelope) -> None:
        """Account one sent envelope."""
        size = envelope.byte_size()
        self.messages_total += 1
        self.bytes_total += size
        self.messages_per_round[envelope.round_sent] += 1
        self.messages_per_sender[envelope.sender] += 1
        self.messages_per_kind[payload_kind(envelope.payload)] += 1
        self.bytes_per_round[envelope.round_sent] += size
        self.rounds_used = max(self.rounds_used, envelope.round_sent + 1)

    def messages_from(self, nodes: set[NodeId]) -> int:
        """Messages sent by any node in ``nodes``.

        Used to separate correct-node traffic from Byzantine traffic: the
        paper's complexity claims concern failure-free runs, and in faulty
        runs only the correct nodes' counts are meaningfully bounded.
        """
        return sum(self.messages_per_sender[node] for node in nodes)
