"""Columnar batch execution: structure-of-arrays delivery for mux traffic.

The object-per-envelope pipeline prices every multiplexed send at one
:class:`~repro.sim.message.Envelope` NamedTuple, one ``mux_wrap`` tuple,
one metrics record, one calendar append and one ``mux_unwrap`` on
arrival.  For the agreement-based key-distribution grid that is ~6.2M
envelope objects per ``n=128`` run, and the interpreter overhead of that
plumbing dominates everything the crypto memos and the succinct EIG
engine already removed (PERFORMANCE.md).  This module replaces the
per-envelope chain with *batch records*:

* a :class:`BatchRecord` stands for one logical mux broadcast — K
  recipients share one record instead of K envelopes;
* the :class:`BatchPlane` (owned by the kernel) collects the records
  delivered in a tick into per-``(channel, instance)``
  :class:`ChannelBatch` groups — parallel ``senders[]`` / ``payloads[]``
  / ``targets[]`` arrays that every consuming node *shares* read-only,
  filtering by recipient mask instead of materialising inboxes;
* consumers (an :class:`~repro.sim.multiplex.InstanceMux` running its
  ``"columnar"`` engine) register per channel; traffic addressed to
  non-consumers is materialised back into ordinary wrapped envelopes, so
  plain protocols, Byzantine behaviours and mixed object/columnar runs
  keep exact object-path semantics.

Equivalence contract
--------------------
The plane is an execution-engine choice, never a semantics choice: runs
with and without it are bit-for-bit identical in decisions, per-instance
outcomes and every metrics counter (``tests/sim/test_batch.py``
property-tests this under random Byzantine behaviour, lossy delivery and
adaptive adversaries).  The ingredients:

* **ordering** — each arrival tick's calendar bucket holds records (and
  plain envelopes) in emission order, and groups are filed in bucket
  order, so group arrays replay the object path's per-inbox arrival
  order exactly — even under jittered calendars, where one bucket mixes
  emissions from several earlier ticks.  On the general event path the
  plane also *captures* plain wrapped envelopes addressed to consumers
  (:meth:`BatchPlane.capture`) into the same arrays at their bucket
  position, so mixed plain/batched traffic needs no merge heuristics.
* **timing** — records carry their emission round and arrive in
  per-arrival-tick calendar buckets; the per-entry ``rounds[]`` column
  reproduces every materialised envelope's ``round_sent`` and every
  delivery-lag charge exactly, whatever the jitter.
* **loss/jitter** — :meth:`~repro.sim.network.DeliveryModel.batch_arrivals`
  draws per-recipient latency and drop decisions in the same per-link
  stream order as the object path's per-envelope ``arrival_tick`` calls,
  so the arrival schedule (and every drop counter) reproduces exactly.
* **recording** — the kernel disables the plane whenever views or traces
  are recorded, so observability always sees real envelopes.  Models
  whose arrivals depend on in-flight context (rushing) are not
  ``batch_capable`` and stay on the object path too.

Consumer registration is snapshotted at each tick's delivery drain:
a node that registers mid-tick (the lazy ``PhaseHost`` setup on its
first activation) becomes a group consumer from the *next* drain on,
and any traffic delivered before that was materialised to its plain
inbox — no record is ever both grouped and materialised for one node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..types import NodeId, Round
from .message import Envelope, mux_unwrap

if TYPE_CHECKING:
    from .kernel import EventKernel
    from .metrics import Metrics

#: Shared read-only result for "consumer channel with no traffic yet".
_EMPTY_GROUPS: dict[int, "ChannelBatch"] = {}


class BatchRecord:
    """One logical mux broadcast in flight: the batch unit of delivery.

    ``target`` encodes the recipient set: ``None`` = every node except
    the sender (the broadcast fast path — no per-recipient structure at
    all), an ``int`` = exactly one recipient (single sends, and the
    per-recipient split of explicit recipient lists), or a ``frozenset``
    = the surviving subset of a broadcast under a lossy model.

    ``wrapped`` is the ordinary mux wire tuple for ``payload``, built
    once at enqueue: it is what run-level metrics charge and what gets
    materialised into plain envelopes for non-consumer recipients, so a
    record is observably indistinguishable from the per-envelope sends
    it replaces.
    """

    __slots__ = (
        "channel",
        "instance",
        "sender",
        "payload",
        "wrapped",
        "target",
        "round_sent",
    )

    def __init__(
        self,
        channel: str,
        instance: int,
        sender: NodeId,
        payload: Any,
        wrapped: tuple,
        target: "NodeId | frozenset[NodeId] | None",
        round_sent: Round,
    ) -> None:
        self.channel = channel
        self.instance = instance
        self.sender = sender
        self.payload = payload
        self.wrapped = wrapped
        self.target = target
        self.round_sent = round_sent

    def recipient_count(self, n: int) -> int:
        """How many deliveries this record stands for."""
        target = self.target
        if target is None:
            return n - 1
        if type(target) is int:
            return 1
        return len(target)

    def covers(self, node: NodeId) -> bool:
        """Whether ``node`` is among this record's recipients."""
        target = self.target
        if target is None:
            return node != self.sender
        if type(target) is int:
            return target == node
        return node in target

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"BatchRecord({self.channel}/{self.instance} from {self.sender} "
            f"@{self.round_sent} -> {self.target!r})"
        )


class ChannelBatch:
    """Structure-of-arrays view of one instance's deliveries this tick.

    Parallel arrays in arrival (bucket) order — which is emission order
    within each arrival tick: ``senders[i]`` emitted ``payloads[i]`` at
    round ``rounds[i]`` to the recipient set ``targets[i]`` (encoded as
    in :attr:`BatchRecord.target`).  Under lock-step models every entry
    has ``rounds[i] == tick - 1``; under jittered calendars the column
    is what keeps materialised envelopes and delivery-lag accounting
    exact.  One ``ChannelBatch`` is shared by every consumer of the
    channel — consumers filter by their own id and must never mutate the
    arrays.

    ``shared`` is a scratch dict for cross-consumer memoisation: any
    receiver-independent work (the succinct EIG ingest's report
    validation) can be computed by the first consumer that needs it and
    keyed by entry index for the other ~n-1 consumers to reuse.  It is
    scoped to this tick's batch, so entries can never leak across ticks
    or instances.
    """

    __slots__ = ("senders", "payloads", "targets", "rounds", "shared")

    def __init__(self) -> None:
        self.senders: list[NodeId] = []
        self.payloads: list[Any] = []
        self.targets: list[Any] = []
        self.rounds: list[Round] = []
        self.shared: dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self.senders)


class BatchPlane:
    """The kernel's per-tick batch buffer and consumer registry.

    Created by the kernel only when the delivery model is
    ``batch_capable`` and no views/trace are being recorded; the mux's
    columnar engine probes for it via
    :meth:`~repro.sim.node.NodeContext.register_batch_consumer` and
    falls back to the object path when absent.
    """

    __slots__ = ("_n", "_consumers", "_snapshot", "_outsiders", "_groups", "used")

    def __init__(self, kernel: "EventKernel") -> None:
        self._n = kernel.n
        # channel -> registered consumer node ids (grows only).
        self._consumers: dict[str, set[NodeId]] = {}
        # Per-tick snapshot of the registry, frozen at drain start.
        self._snapshot: dict[str, frozenset[NodeId]] = {}
        # channel -> nodes *not* in the snapshot (materialisation targets).
        self._outsiders: dict[str, list[NodeId]] = {}
        # channel -> instance -> this tick's batch.
        self._groups: dict[str, dict[int, ChannelBatch]] = {}
        #: Whether any consumer ever registered — the kernel's gate for
        #: taking the mixed-item drain loops at all.
        self.used = False

    def register(self, channel: str, node: NodeId) -> None:
        """Declare ``node`` a group consumer for ``channel`` (from the
        next delivery drain on — see the module docstring)."""
        self._consumers.setdefault(channel, set()).add(node)
        self.used = True

    def begin_tick(self) -> None:
        """Reset the per-tick buffer and snapshot the consumer registry."""
        self._groups = {}
        n = self._n
        snapshot = {
            channel: frozenset(nodes)
            for channel, nodes in self._consumers.items()
        }
        self._snapshot = snapshot
        self._outsiders = {
            channel: [node for node in range(n) if node not in members]
            for channel, members in snapshot.items()
        }

    def deliver(
        self,
        record: BatchRecord,
        inboxes: list[list[Envelope]],
        metrics: "Metrics | None",
        tick: Round,
    ) -> None:
        """File one arriving record: group it for consumers, materialise
        plain envelopes for everyone else, account deliveries in bulk.

        ``metrics`` is ``None`` on the lock-step path (where the object
        path records no deliveries either); on the general path the bulk
        charge passes the record's emission round so the delivery-lag
        accumulator stays exact under jittered calendars (the charge is
        zero on next-tick arrivals, matching the pre-jitter counts).
        """
        channel = record.channel
        groups = self._groups.get(channel)
        if groups is None:
            groups = self._groups[channel] = {}
        group = groups.get(record.instance)
        if group is None:
            group = groups[record.instance] = ChannelBatch()
        target = record.target
        sender = record.sender
        group.senders.append(sender)
        group.payloads.append(record.payload)
        group.targets.append(target)
        group.rounds.append(record.round_sent)
        if metrics is not None:
            metrics.record_deliveries(
                tick, record.recipient_count(len(inboxes)), record.round_sent
            )
        outsiders = self._outsiders.get(channel)
        if outsiders is None:
            # No consumer snapshot for this channel yet (records from a
            # mid-tick registration): everyone gets plain envelopes.
            outsiders = range(len(inboxes))
        elif not outsiders:
            return
        wrapped = record.wrapped
        round_sent = record.round_sent
        if type(target) is int:
            snapshot = self._snapshot.get(channel)
            if snapshot is None or target not in snapshot:
                inboxes[target].append(Envelope(sender, target, wrapped, round_sent))
            return
        if target is None:
            for node in outsiders:
                if node != sender:
                    inboxes[node].append(Envelope(sender, node, wrapped, round_sent))
            return
        for node in outsiders:
            if node in target:
                inboxes[node].append(Envelope(sender, node, wrapped, round_sent))

    def capture(
        self,
        envelope: Envelope,
        metrics: "Metrics | None",
        tick: Round,
    ) -> bool:
        """Try to file a plain wrapped envelope into its consumer's group.

        The general event path's answer to mixed plain/batched traffic
        under jittered calendars: an ordinary envelope (a tampering lens
        re-materialising its sends, a Byzantine node writing wire tuples
        by hand) whose recipient is a snapshot consumer and whose payload
        parses as that channel's mux wrapper is appended to the group
        arrays *at its calendar position*, so the consumer sees exactly
        the object path's per-inbox arrival order without any
        sender-sorted merge heuristics (which are only valid lock-step).
        Returns ``False`` — deliver it plain — for non-consumers and
        malformed wrappers; the object-path demux would treat the latter
        as noise for no instance, and an unparsed envelope in a plain
        inbox reproduces that exactly.
        """
        recipient = envelope.recipient
        payload = envelope.payload
        for channel, members in self._snapshot.items():
            if recipient not in members:
                continue
            parsed = mux_unwrap(payload, channel)
            if parsed is None:
                continue
            instance, inner = parsed
            groups = self._groups.get(channel)
            if groups is None:
                groups = self._groups[channel] = {}
            group = groups.get(instance)
            if group is None:
                group = groups[instance] = ChannelBatch()
            group.senders.append(envelope.sender)
            group.payloads.append(inner)
            group.targets.append(recipient)
            group.rounds.append(envelope.round_sent)
            if metrics is not None:
                metrics.record_deliveries(tick, 1, envelope.round_sent)
            return True
        return False

    def groups_for(self, channel: str, node: NodeId) -> "dict[int, ChannelBatch] | None":
        """This tick's groups for a consumer, or ``None`` when ``node``
        is not in the current snapshot (its traffic, if any, went to its
        plain inbox — the caller must read that instead)."""
        snapshot = self._snapshot.get(channel)
        if snapshot is None or node not in snapshot:
            return None
        groups = self._groups.get(channel)
        return groups if groups is not None else _EMPTY_GROUPS
