"""The protocol interface and per-node execution state.

A :class:`Protocol` is the behaviour of one node.  Correct nodes run the
honest protocol implementations from :mod:`repro.auth`, :mod:`repro.fd` and
:mod:`repro.agreement`; Byzantine nodes run behaviours from
:mod:`repro.faults`.  Both use the same :class:`NodeContext` API — Byzantine
power in this model is "send anything to anyone at any round", never
breaking network guarantees N1/N2, which the network enforces regardless of
who is sending.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import ProtocolViolationError
from ..types import NodeId, Round
from .message import Envelope

if TYPE_CHECKING:
    import random

    from .kernel import EventKernel
    from .metrics import Metrics


@dataclass
class NodeState:
    """Externally visible outcome of one node after (or during) a run.

    :ivar decision: the value chosen via :meth:`NodeContext.decide`, if any.
    :ivar decided: whether a decision was made (distinguishes a decision of
        ``None`` from no decision).
    :ivar discovered: failure-discovery reason, or ``None``.  Matches the
        paper's notion: the node noticed its view cannot belong to a
        failure-free run.  The reason string is diagnostic only; the paper
        notes a discoverer need not identify *which* node is faulty.
    :ivar halted: node finished participating.
    :ivar outputs: protocol-specific results (e.g. the key directory built
        by the key distribution protocol).
    """

    node: NodeId
    decision: Any = None
    decided: bool = False
    discovered: str | None = None
    halted: bool = False
    outputs: dict[str, Any] = field(default_factory=dict)

    @property
    def discovered_failure(self) -> bool:
        return self.discovered is not None


class NodeContext:
    """Capabilities handed to a protocol: its window onto the network.

    Created by the runner; one per node per run.  All sends are deferred to
    the end of the current round and delivered at the start of the next —
    the synchronous-rounds semantics of the paper's model.
    """

    def __init__(
        self, runner: "EventKernel", node: NodeId, rng: "random.Random"
    ) -> None:
        self._runner = runner
        self.node = node
        self.rng = rng
        self.state = NodeState(node=node)

    @property
    def n(self) -> int:
        """Network size."""
        return self._runner.n

    @property
    def round(self) -> Round:
        """The current round index (0-based).

        Under lock-step delivery this is literally the synchronous round;
        under a skewed :class:`~repro.sim.network.DeliveryModel` it is the
        kernel tick of the current activation (see :attr:`tick`) — round-
        indexed protocols keep reading it unchanged either way.
        """
        return self._runner.tick

    @property
    def tick(self) -> Round:
        """The kernel tick of the current activation.

        The same value as :attr:`round` — simulated time has one source
        of truth — but named for delivery-model-aware code (timing
        analyses, rushing strategies) to signal that under skewed
        delivery a tick's inbox is not a synchronous round's inbox.
        """
        return self._runner.tick

    @property
    def seed(self) -> int | str:
        """The run's master seed.

        Exposed so composition layers can derive *namespaced* streams —
        :func:`repro.sim.rng.instance_rng` keys per-instance randomness by
        ``(master seed, node, instance)`` — without threading the seed
        through every protocol constructor.  Protocols themselves should
        keep using :attr:`rng`.
        """
        return self._runner.seed

    @property
    def metrics(self) -> "Metrics":
        """The run's live counters (read-only by convention).

        The observation surface for online observers — adaptive
        adversary strategies read per-sender send/drop counts here.
        Protocols implementing the paper's model must not consult it:
        it sees the whole network, not one node's view.
        """
        return self._runner.metrics

    def others(self) -> list[NodeId]:
        """All node ids except this node's, in id order."""
        return [i for i in range(self.n) if i != self.node]

    def send(self, to: NodeId, payload: Any) -> None:
        """Send ``payload`` to node ``to``; delivered next round (N1).

        :raises ProtocolViolationError: on self-send, unknown recipient or
            sending after halt — all of these are implementation bugs, not
            expressible Byzantine behaviours.
        """
        if self.state.halted:
            raise ProtocolViolationError(
                f"node {self.node} sent a message after halting"
            )
        if to == self.node:
            raise ProtocolViolationError(f"node {self.node} sent to itself")
        if not 0 <= to < self.n:
            raise ProtocolViolationError(
                f"node {self.node} sent to invalid recipient {to}"
            )
        self._runner.enqueue(
            Envelope(
                sender=self.node, recipient=to, payload=payload, round_sent=self.round
            ),
        )

    def broadcast(self, payload: Any, to: list[NodeId] | None = None) -> None:
        """Send ``payload`` to every node in ``to`` (default: all others).

        Every copy shares the one payload object, which the metrics' lazy
        byte accounting encodes exactly once.
        """
        for recipient in (self.others() if to is None else to):
            self.send(recipient, payload)

    def send_batch(
        self,
        channel: str,
        instance: int,
        payload: Any,
        to: "list[NodeId] | None" = None,
    ) -> int:
        """One logical mux broadcast as a columnar batch record.

        The batch-plane counterpart of wrapping ``payload`` in the mux
        extension and :meth:`send`-ing it per recipient: same validation,
        same metrics totals, same observable deliveries — one kernel call
        instead of ``len(to)``.  Only call after
        :meth:`register_batch_consumer` returned ``True`` for some node
        of the run's channel (the mux's columnar engine guarantees this).

        :returns: the number of envelopes the send stands for.
        """
        if self.state.halted:
            raise ProtocolViolationError(
                f"node {self.node} sent a message after halting"
            )
        if to is not None:
            n = self.n
            for recipient in to:
                if recipient == self.node:
                    raise ProtocolViolationError(
                        f"node {self.node} sent to itself"
                    )
                if not 0 <= recipient < n:
                    raise ProtocolViolationError(
                        f"node {self.node} sent to invalid recipient {recipient}"
                    )
        return self._runner.enqueue_batch(
            self.node, channel, instance, payload, to
        )

    def register_batch_consumer(self, channel: str) -> bool:
        """Declare this node a batch-group consumer for ``channel``.

        Returns ``False`` when the run has no batch plane (recording on,
        or the delivery model not batch-capable) — the caller must then
        stay on the object path.
        """
        plane = self._runner.batch_plane
        if plane is None:
            return False
        plane.register(channel, self.node)
        return True

    def batch_fallback_reason(self) -> "str | None":
        """Why this run cannot batch, or ``None`` when it can.

        Pairs with :meth:`register_batch_consumer`: when registration
        returns ``False``, this names the cause (recording on, or the
        delivery model not batch-capable) so the mux can record and
        surface the silent-fallback condition instead of just running
        slower.
        """
        return self._runner.batch_fallback_reason

    def batch_groups(self, channel: str):
        """This tick's per-instance batch groups for ``channel``.

        ``None`` when there is no plane, or when this node is not in the
        current tick's consumer snapshot — in both cases any traffic for
        it already arrived in the plain inbox.
        """
        plane = self._runner.batch_plane
        if plane is None:
            return None
        return plane.groups_for(channel, self.node)

    def decide(self, value: Any) -> None:
        """Choose a decision value (FD condition F1's 'chooses a value')."""
        self.state.decision = value
        self.state.decided = True

    def discover_failure(self, reason: str) -> None:
        """Record that this node's view cannot be failure-free.

        Idempotent: the first reason wins, so diagnostics point at the
        earliest deviation.
        """
        if self.state.discovered is None:
            self.state.discovered = reason

    def halt(self) -> None:
        """Stop participating; the runner will no longer invoke this node."""
        self.state.halted = True


class Protocol:
    """Base class for node behaviours.

    Subclasses override :meth:`setup` (pre-round initialisation, no
    sending) and :meth:`on_round` (invoked every round with the messages
    that arrived this round).  A protocol signals completion by calling
    ``ctx.halt()``; the runner ends the run when all nodes have halted.

    Checkpointing (:mod:`repro.sim.snapshot`) captures protocols by
    pickling the whole object by default — sufficient for anything whose
    state is plain data.  A protocol holding state that must not travel
    (an unpicklable cache, a shared handle) opts into the explicit hook
    pair instead, by defining *both*::

        def snapshot_state(self) -> Any: ...      # picklable value
        def restore_state(self, state) -> None: ...  # rebuild from it

    ``restore_state`` runs on an instance created with ``cls.__new__``
    (no ``__init__``), so it must reconstruct every attribute the
    protocol's methods read.  :func:`repro.sim.rng.capture_state` /
    :func:`~repro.sim.rng.restore_state` are the helpers for any rng
    streams such a protocol manages itself.
    """

    #: Whether the protocol can ingest a columnar
    #: :class:`~repro.sim.batch.ChannelBatch` via :meth:`on_round_batch`
    #: instead of a materialised envelope list.  Opt-in: a mux hosting a
    #: protocol without it simply materialises envelopes from the batch,
    #: so every protocol runs under the columnar engine either way.
    supports_batch_inbox = False

    #: Parameter names a warm-started (snapshot-resumed) run may adjust
    #: on this protocol via :meth:`retune`.  Only parameters whose value
    #: the protocol has provably not yet *read* at the resume tick may
    #: be listed — retuning must leave the suffix bit-for-bit identical
    #: to a straight run constructed with the new value (the deadline of
    #: a timeout FD qualifies; anything consulted every round does not).
    tunable: frozenset = frozenset()

    def retune(self, **params: Any) -> None:
        """Adjust post-construction-tunable parameters after a resume.

        The hook behind prefix-shared sweeps: fork a snapshot, retune
        the sweep axis, finish the run.  Subclasses exposing an axis
        list it in :attr:`tunable` and override this; the base rejects
        everything.
        """
        if params:
            raise ProtocolViolationError(
                f"{type(self).__name__} accepts no retune parameters, "
                f"got {sorted(params)}"
            )

    def setup(self, ctx: NodeContext) -> None:
        """One-time initialisation before round 0.  Must not send."""

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        """Handle one synchronous round.

        :param ctx: the node's capabilities.
        :param inbox: messages sent to this node in the previous round,
            sorted by sender id (deterministic order).
        """
        raise NotImplementedError

    def on_activate(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        """Handle one kernel activation (the tick-level API).

        The event kernel activates every live node once per tick with
        the envelopes that *arrived* this tick.  The default is the
        round-adapter: delegate to :meth:`on_round`, so every existing
        round-indexed protocol runs unchanged — under lock-step delivery
        an activation is exactly a synchronous round, and under a skewed
        model the protocol simply sees the skewed inbox in its usual
        shape.  Delivery-model-aware behaviours may override this
        instead of :meth:`on_round`.

        :param inbox: envelopes delivered at this tick, in deterministic
            ``(arrival tick, emission seq)`` order — sender-sorted under
            lock-step delivery, emission-ordered under skew.
        """
        self.on_round(ctx, inbox)

    def on_round_batch(self, ctx: NodeContext, batch) -> None:
        """Handle one round's traffic in columnar form.

        Called (instead of :meth:`on_round`) by a mux running its
        columnar engine, only when :attr:`supports_batch_inbox` is set
        and batched traffic actually arrived.  ``batch`` is a read-only
        :class:`~repro.sim.batch.ChannelBatch`; implementations must
        filter entries by their own recipient mask (``targets[i]`` being
        ``None`` = everyone but ``senders[i]``, an int = that node, a
        frozenset = membership) and must behave identically to
        :meth:`on_round` over the equivalent envelope list.
        """
        raise NotImplementedError
