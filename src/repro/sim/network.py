"""Pluggable delivery models: the network-timing half of the runtime.

The event kernel (:mod:`repro.sim.kernel`) separates *protocol logic*
(what nodes compute and send) from *network timing* (when sends arrive
and in what order nodes act).  This module owns the timing half: a
:class:`DeliveryModel` maps every emitted envelope to its arrival tick
and fixes the per-tick node activation order.  Three models ship:

* :class:`SynchronousRounds` — the paper's model (N1 with the delivery
  bound *known* and equal to one round, lock-step activations).  This is
  the default and is required to be bit-for-bit identical to the
  pre-kernel ``Runner``: same decisions, same round counts, same
  per-kind message/byte counters, across the whole benchmark grid
  (``tests/sim/test_kernel.py`` property-tests the equivalence under
  random Byzantine behaviour).
* :class:`BoundedDelay` — N1 with a *looser* bound: every message
  arrives within ``delay`` ticks, with deterministic seed-derived
  per-link jitter.  Protocols written against lock-step rounds now see
  skewed inboxes; experiment E12 measures where their agreement and
  discovery guarantees start to diverge.
* :class:`AdversarialOrder` — a *rushing* scheduler: the designated
  Byzantine nodes receive honest tick-``r`` traffic in tick ``r``
  itself, before they emit their own tick-``r`` messages (honest nodes
  keep lock-step delivery).  What the rushing nodes *do* with that
  foreknowledge is a pluggable strategy from :mod:`repro.faults` (for
  example :class:`~repro.faults.RushMirrorProtocol`); the model only
  grants the scheduling power.

Determinism: every model is a pure function of the master seed and the
emission sequence — :class:`BoundedDelay` derives its per-link jitter
streams from the kernel's seed via :func:`repro.sim.rng.node_rng`, and
no model consults wall-clock or global state.  Re-running with the same
protocols, seed and model reproduces every arrival bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import ConfigurationError
from ..types import NodeId, Round
from .message import Envelope
from .rng import node_rng

if TYPE_CHECKING:
    from .kernel import EventKernel


class DeliveryModel:
    """Network-timing policy consulted by the event kernel.

    Subclasses override :meth:`arrival_tick` (when does this envelope
    arrive?) and optionally :meth:`activation_order` (in what order do
    nodes act within a tick?).  A model declaring ``lockstep = True``
    promises "every envelope arrives exactly one tick after emission, in
    id-ascending activation order" — the kernel then takes its batched
    fast path, which is what keeps the synchronous special case as fast
    as the pre-kernel runner.

    :ivar name: stable spec name (see :func:`make_delivery`).
    :ivar lockstep: whether the kernel may use the lock-step fast path.
    """

    name = "abstract"
    lockstep = False

    def bind(self, kernel: "EventKernel") -> None:
        """One-time hook before the run starts (seed/size derivation)."""

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round:
        """The tick at which ``envelope`` (emitted at ``tick``) arrives.

        Must be ``>= tick + 1`` for recipients that already acted this
        tick; ``== tick`` is allowed only for recipients the activation
        order places *after* the sender (the rushing case) — the kernel
        enforces causality and raises on violations.
        """
        raise NotImplementedError

    def activation_order(self, n: int) -> Sequence[NodeId]:
        """Node activation order within one tick (default: id order)."""
        return range(n)


class SynchronousRounds(DeliveryModel):
    """The paper's lock-step rounds: every message arrives next tick.

    N1 with the bound known and equal to one round.  ``lockstep = True``
    lets the kernel run its batched fast path — behaviourally identical
    to the general event path (property-tested via a ``BoundedDelay(1)``
    cross-check), just without per-envelope calendar bookkeeping.
    """

    name = "sync"
    lockstep = True

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round:
        return tick + 1


class BoundedDelay(DeliveryModel):
    """Reliable delivery within ``delay`` ticks, seed-derived jitter.

    Keeps N1's *reliability* (never lost, never duplicated) but relaxes
    the *known bound*: each envelope on link ``(sender, recipient)``
    draws its latency uniformly from ``1 .. delay`` from a deterministic
    per-link stream namespaced under the run's master seed.  Messages on
    one link may therefore overtake each other, and a round-indexed
    protocol's inbox for tick ``r`` mixes emissions from several earlier
    ticks — exactly the skew experiment E12 probes.

    ``BoundedDelay(1)`` is semantically synchronous rounds but runs on
    the kernel's general event path, which makes it the reference point
    for proving the event machinery preserves lock-step semantics.
    """

    name = "bounded"

    def __init__(self, delay: int = 2) -> None:
        if delay < 1:
            raise ConfigurationError(f"delay must be >= 1, got {delay}")
        self.delay = delay
        self._seed: int | str = 0
        self._links: dict[tuple[NodeId, NodeId], object] = {}

    def bind(self, kernel: "EventKernel") -> None:
        self._seed = kernel.seed
        self._links = {}

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round:
        if self.delay == 1:
            return tick + 1
        link = (envelope.sender, envelope.recipient)
        rng = self._links.get(link)
        if rng is None:
            rng = self._links[link] = node_rng(
                self._seed,
                envelope.sender,
                purpose=f"link/{envelope.recipient}/delay",
            )
        return tick + 1 + rng.randrange(self.delay)


class AdversarialOrder(DeliveryModel):
    """A rushing scheduler: designated nodes see honest traffic early.

    Honest traffic keeps lock-step delivery *except* towards the rushing
    set: an envelope from an honest sender to a rushing node emitted at
    tick ``r`` is delivered at tick ``r`` itself.  Rushing nodes are
    activated after every honest node within each tick, so by the time a
    rushing node acts it has observed the full honest tick-``r`` traffic
    addressed to it — and everything it emits still arrives at
    ``r + 1``, indistinguishable (to the receivers) from ordinary
    tick-``r`` messages.  This is the classic rushing adversary of the
    distributed-computing literature, impossible to express under
    lock-step rounds.

    The *strategy* — what a rushing node does with its foreknowledge —
    is whatever :class:`~repro.sim.node.Protocol` the node runs,
    typically a behaviour from :mod:`repro.faults`
    (:class:`~repro.faults.RushMirrorProtocol` re-emits observed
    payloads into the same round).  The model itself only reorders.

    :param rushing: the node ids granted rushing power.
    """

    name = "rush"

    def __init__(self, rushing: Iterable[NodeId]) -> None:
        self.rushing = frozenset(int(node) for node in rushing)

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round:
        if (
            envelope.recipient in self.rushing
            and envelope.sender not in self.rushing
        ):
            return tick
        return tick + 1

    def activation_order(self, n: int) -> Sequence[NodeId]:
        honest = [node for node in range(n) if node not in self.rushing]
        return honest + sorted(node for node in self.rushing if node < n)


#: Spec-name -> model class, for :func:`make_delivery` / the CLI.
DELIVERY_MODELS: dict[str, type[DeliveryModel]] = {
    SynchronousRounds.name: SynchronousRounds,
    BoundedDelay.name: BoundedDelay,
    AdversarialOrder.name: AdversarialOrder,
}


def available_deliveries() -> list[str]:
    """Registered delivery-model spec names, sorted."""
    return sorted(DELIVERY_MODELS)


def make_delivery(
    spec: "str | DeliveryModel | None",
    rushing: Iterable[NodeId] = (),
) -> DeliveryModel:
    """Build a delivery model from a primitive spec string.

    Specs are what travels through workload parameters and the CLI's
    ``--delivery`` knob (always picklable):

    * ``"sync"`` — :class:`SynchronousRounds`;
    * ``"bounded"`` / ``"bounded:3"`` — :class:`BoundedDelay` with the
      given bound (default 2);
    * ``"rush"`` / ``"rush:5,6"`` — :class:`AdversarialOrder`; the
      rushing set comes from the spec suffix when given, else from
      ``rushing`` (conventionally the scenario's faulty set).

    A ready :class:`DeliveryModel` instance passes through unchanged;
    ``None`` means the default synchronous model.

    :raises ConfigurationError: for unknown or malformed specs.
    """
    if spec is None:
        return SynchronousRounds()
    if isinstance(spec, DeliveryModel):
        return spec
    head, _, arg = spec.partition(":")
    if head == SynchronousRounds.name:
        if arg:
            raise ConfigurationError(f"sync takes no argument, got {spec!r}")
        return SynchronousRounds()
    if head == BoundedDelay.name:
        try:
            delay = int(arg) if arg else 2
        except ValueError:
            raise ConfigurationError(
                f"bounded delay must be an integer, got {spec!r}"
            ) from None
        return BoundedDelay(delay)
    if head == AdversarialOrder.name:
        if arg:
            try:
                rushing = [int(part) for part in arg.split(",") if part]
            except ValueError:
                raise ConfigurationError(
                    f"rush node list must be integers, got {spec!r}"
                ) from None
        return AdversarialOrder(rushing)
    raise ConfigurationError(
        f"unknown delivery model {spec!r}; "
        f"available: {', '.join(available_deliveries())}"
    )
