"""Pluggable delivery models: the network-timing half of the runtime.

The event kernel (:mod:`repro.sim.kernel`) separates *protocol logic*
(what nodes compute and send) from *network timing* (when sends arrive
and in what order nodes act).  This module owns the timing half: a
:class:`DeliveryModel` maps every emitted envelope to its arrival tick
and fixes the per-tick node activation order.  Three models ship:

* :class:`SynchronousRounds` — the paper's model (N1 with the delivery
  bound *known* and equal to one round, lock-step activations).  This is
  the default and is required to be bit-for-bit identical to the
  pre-kernel ``Runner``: same decisions, same round counts, same
  per-kind message/byte counters, across the whole benchmark grid
  (``tests/sim/test_kernel.py`` property-tests the equivalence under
  random Byzantine behaviour).
* :class:`BoundedDelay` — N1 with a *looser* bound: every message
  arrives within ``delay`` ticks, with deterministic seed-derived
  per-link jitter.  Protocols written against lock-step rounds now see
  skewed inboxes; experiment E12 measures where their agreement and
  discovery guarantees start to diverge.
* :class:`AdversarialOrder` — a *rushing* scheduler: the designated
  Byzantine nodes receive honest tick-``r`` traffic in tick ``r``
  itself, before they emit their own tick-``r`` messages (honest nodes
  keep lock-step delivery).  What the rushing nodes *do* with that
  foreknowledge is a pluggable strategy from :mod:`repro.faults` (for
  example :class:`~repro.faults.RushMirrorProtocol`); the model only
  grants the scheduling power.
* :class:`LossyDelivery` — the first model that breaks N1's
  *reliability*: each envelope is independently dropped with
  probability ``p``, drawn from a deterministic seed-derived per-link
  stream.  Dropped envelopes never reach an inbox; the kernel records
  each drop in the run's metrics and (when tracing) the event log.
* :class:`PartitionedDelivery` — epoch-indexed network partitions:
  a schedule of disjoint node blocks; messages crossing a block
  boundary are dropped, or (in ``defer`` mode) parked until the first
  tick at which sender and recipient are reunited.  Experiment E13
  measures convergence across the heal.

A model signals a drop by returning ``None`` from :meth:`arrival_tick`
— the kernel then accounts the loss instead of scheduling a delivery.

Determinism: every model is a pure function of the master seed and the
emission sequence — :class:`BoundedDelay` and :class:`LossyDelivery`
derive their per-link streams from the kernel's seed via
:func:`repro.sim.rng.node_rng`, :class:`PartitionedDelivery` consults
only its static schedule, and no model reads wall-clock or global
state.  Re-running with the same protocols, seed and model reproduces
every arrival *and every drop* bit-for-bit (property-tested in
``tests/sim/test_network.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import ConfigurationError
from ..types import NodeId, Round
from .message import Envelope
from .rng import node_rng

if TYPE_CHECKING:
    from .kernel import EventKernel


class DeliveryModel:
    """Network-timing policy consulted by the event kernel.

    Subclasses override :meth:`arrival_tick` (when does this envelope
    arrive?) and optionally :meth:`activation_order` (in what order do
    nodes act within a tick?).  A model declaring ``lockstep = True``
    promises "every envelope arrives exactly one tick after emission, in
    id-ascending activation order" — the kernel then takes its batched
    fast path, which is what keeps the synchronous special case as fast
    as the pre-kernel runner.

    :ivar name: stable spec name (see :func:`make_delivery`).
    :ivar lockstep: whether the kernel may use the lock-step fast path.
    :ivar batch_capable: whether the model can price a whole batch send
        in one :meth:`batch_arrivals` call — a *deterministic calendar*
        whose per-recipient latency/drop decisions depend only on the
        master seed and the emission sequence.  Only then may the kernel
        run the columnar batch plane (:mod:`repro.sim.batch`), splitting
        each logical batch send into per-arrival-tick records.  Models
        whose arrivals depend on *who else* is in flight (the rushing
        window of :class:`AdversarialOrder`) must leave it off, and
        recording runs (views/trace) always use the object path.
    :ivar sweep_undelivered: whether envelopes still parked in the
        calendar when the run ends should be swept into the drop
        accounting (metrics ``drops_total`` + trace ``drop`` events).
        Off by default — only models that *park* traffic for later
        (defer-mode partitions) can strand envelopes past the final
        tick; for everything else the calendar drains naturally and the
        flag keeps historical drop counts bit-for-bit unchanged.
    """

    name = "abstract"
    lockstep = False
    batch_capable = False
    sweep_undelivered = False

    def bind(self, kernel: "EventKernel") -> None:
        """One-time hook before the run starts (seed/size derivation)."""

    def batch_arrivals(
        self, sender: NodeId, recipients: Sequence[NodeId], tick: Round
    ) -> "list[Round | None]":
        """Per-recipient arrival ticks for one batch send (``None`` = drop).

        Consulted (on the general event path only) for ``batch_capable``
        models instead of per-envelope :meth:`arrival_tick` calls: one
        entry per recipient, aligned with ``recipients``.  The default is
        reliable next-tick delivery.  Models with jitter or loss must
        draw their per-recipient latency/drop decisions *in recipient
        order* from the same per-link streams ``arrival_tick`` uses —
        recipient order here equals per-envelope emission order there, so
        a batched broadcast reproduces the object path's arrival and drop
        schedule bit-for-bit (the old ``batch_survivors`` contract,
        extended from drop decisions to latencies).  Every non-``None``
        arrival must be ``> tick`` — batch sends have no rushing window.
        """
        return [tick + 1] * len(recipients)

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round | None:
        """The tick at which ``envelope`` (emitted at ``tick``) arrives.

        Must be ``>= tick + 1`` for recipients that already acted this
        tick; ``== tick`` is allowed only for recipients the activation
        order places *after* the sender (the rushing case) — the kernel
        enforces causality and raises on violations.  ``None`` means the
        network *drops* the envelope: it is never delivered, and the
        kernel records the loss (metrics ``drops_total`` / trace
        ``drop`` event) instead of scheduling it.
        """
        raise NotImplementedError

    def activation_order(self, n: int) -> Sequence[NodeId]:
        """Node activation order within one tick (default: id order)."""
        return range(n)


class SynchronousRounds(DeliveryModel):
    """The paper's lock-step rounds: every message arrives next tick.

    N1 with the bound known and equal to one round.  ``lockstep = True``
    lets the kernel run its batched fast path — behaviourally identical
    to the general event path (property-tested via a ``BoundedDelay(1)``
    cross-check), just without per-envelope calendar bookkeeping.
    """

    name = "sync"
    lockstep = True
    batch_capable = True

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round:
        return tick + 1


class _LinkStreamDelivery(DeliveryModel):
    """Shared per-link rng plumbing for seed-derived jitter/loss models.

    :class:`BoundedDelay` and :class:`LossyDelivery` both derive one
    deterministic stream per directed link ``(sender, recipient)`` from
    the kernel's master seed, lazily on first use; this base owns that
    boilerplate (``bind``/``_links``/``_seed``) so both the per-envelope
    :meth:`~DeliveryModel.arrival_tick` path and the columnar
    :meth:`~DeliveryModel.batch_arrivals` path draw from the *same*
    streams.  ``_link_purpose`` is the stream namespace suffix — it is
    part of each model's frozen schedule contract (changing it would
    reshuffle every gated benchmark count), so subclasses pin it.
    """

    _link_purpose = "delay"

    def __init__(self) -> None:
        self._seed: int | str = 0
        self._links: dict[tuple[NodeId, NodeId], object] = {}
        self._fanouts: dict[tuple[NodeId, tuple[NodeId, ...]], list] = {}

    def bind(self, kernel: "EventKernel") -> None:
        self._seed = kernel.seed
        self._links = {}
        self._fanouts = {}

    def _link_rng(self, sender: NodeId, recipient: NodeId):
        link = (sender, recipient)
        rng = self._links.get(link)
        if rng is None:
            rng = self._links[link] = node_rng(
                self._seed,
                sender,
                purpose=f"link/{recipient}/{self._link_purpose}",
            )
        return rng

    def _fanout_rngs(self, sender: NodeId, recipients: Sequence[NodeId]) -> list:
        """The per-link rngs for one recipient fan-out, in recipient order.

        Broadcasts repeat the same fan-out every round, so the batch path
        caches the resolved rng list per ``(sender, recipients)`` instead
        of paying a dict probe per recipient per send.  The rngs are the
        very objects :meth:`_link_rng` hands the per-envelope path —
        draw sequences stay bit-identical."""
        key = (sender, tuple(recipients))
        rngs = self._fanouts.get(key)
        if rngs is None:
            link_rng = self._link_rng
            rngs = self._fanouts[key] = [
                link_rng(sender, recipient) for recipient in recipients
            ]
        return rngs


class BoundedDelay(_LinkStreamDelivery):
    """Reliable delivery within ``delay`` ticks, seed-derived jitter.

    Keeps N1's *reliability* (never lost, never duplicated) but relaxes
    the *known bound*: each envelope on link ``(sender, recipient)``
    draws its latency uniformly from ``1 .. delay`` from a deterministic
    per-link stream namespaced under the run's master seed.  Messages on
    one link may therefore overtake each other, and a round-indexed
    protocol's inbox for tick ``r`` mixes emissions from several earlier
    ticks — exactly the skew experiment E12 probes.

    ``BoundedDelay(1)`` is semantically synchronous rounds but runs on
    the kernel's general event path, which makes it the reference point
    for proving the event machinery preserves lock-step semantics.
    """

    name = "bounded"
    batch_capable = True

    def __init__(self, delay: int = 2) -> None:
        super().__init__()
        if delay < 1:
            raise ConfigurationError(f"delay must be >= 1, got {delay}")
        self.delay = delay

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round:
        if self.delay == 1:
            return tick + 1
        rng = self._link_rng(envelope.sender, envelope.recipient)
        return tick + 1 + rng.randrange(self.delay)

    def batch_arrivals(
        self, sender: NodeId, recipients: Sequence[NodeId], tick: Round
    ) -> "list[Round | None]":
        """One latency draw per recipient, bit-identical to the object
        path's per-envelope draws (same streams, same order)."""
        if self.delay == 1:
            return [tick + 1] * len(recipients)
        delay = self.delay
        base = tick + 1
        return [
            base + rng.randrange(delay)
            for rng in self._fanout_rngs(sender, recipients)
        ]


class AdversarialOrder(DeliveryModel):
    """A rushing scheduler: designated nodes see honest traffic early.

    Honest traffic keeps lock-step delivery *except* towards the rushing
    set: an envelope from an honest sender to a rushing node emitted at
    tick ``r`` is delivered at tick ``r`` itself.  Rushing nodes are
    activated after every honest node within each tick, so by the time a
    rushing node acts it has observed the full honest tick-``r`` traffic
    addressed to it — and everything it emits still arrives at
    ``r + 1``, indistinguishable (to the receivers) from ordinary
    tick-``r`` messages.  This is the classic rushing adversary of the
    distributed-computing literature, impossible to express under
    lock-step rounds.

    The *strategy* — what a rushing node does with its foreknowledge —
    is whatever :class:`~repro.sim.node.Protocol` the node runs,
    typically a behaviour from :mod:`repro.faults`
    (:class:`~repro.faults.RushMirrorProtocol` re-emits observed
    payloads into the same round).  The model itself only reorders.

    :param rushing: the node ids granted rushing power.
    """

    name = "rush"

    def __init__(self, rushing: Iterable[NodeId]) -> None:
        self.rushing = frozenset(int(node) for node in rushing)

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round:
        if (
            envelope.recipient in self.rushing
            and envelope.sender not in self.rushing
        ):
            return tick
        return tick + 1

    def activation_order(self, n: int) -> Sequence[NodeId]:
        honest = [node for node in range(n) if node not in self.rushing]
        return honest + sorted(node for node in self.rushing if node < n)


class LossyDelivery(_LinkStreamDelivery):
    """Unreliable delivery: each envelope dropped iid with probability ``p``.

    The first model that relaxes N1's *reliability* rather than its
    timing: a surviving envelope arrives exactly one tick after emission
    (optionally jittered within ``delay`` like :class:`BoundedDelay`),
    but each envelope on link ``(sender, recipient)`` is independently
    lost with probability ``p``, drawn from a deterministic per-link
    stream namespaced under the run's master seed.  Protocols written
    against reliable rounds (the chain FD's "silence is evidence") now
    face genuine message loss — the axis experiment E13 sweeps, and the
    environment the timeout FD protocol (:mod:`repro.fd.timeout`) is
    designed for.

    Determinism: the drop decision for the k-th envelope on a link is a
    pure function of ``(master seed, link, k)``, so a re-run reproduces
    every drop bit-for-bit.

    :param p: per-envelope drop probability in ``[0, 1)``.
    :param delay: latency bound for surviving envelopes (1 = lock-step
        timing, >1 = additional :class:`BoundedDelay`-style jitter).
    """

    name = "loss"
    batch_capable = True
    _link_purpose = "loss"

    def __init__(self, p: float, delay: int = 1) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(
                f"loss probability must lie in [0, 1), got {p}"
            )
        if delay < 1:
            raise ConfigurationError(f"delay must be >= 1, got {delay}")
        self.p = p
        self.delay = delay

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round | None:
        rng = self._link_rng(envelope.sender, envelope.recipient)
        # At delay == 1 no latency draw is made, so the per-link stream
        # layout (and hence the gated drop schedule) depends on the
        # bound: changing `delay` legitimately reshuffles drops.
        latency = 1 + (rng.randrange(self.delay) if self.delay > 1 else 0)
        if rng.random() < self.p:
            return None
        return tick + latency

    def batch_arrivals(
        self, sender: NodeId, recipients: Sequence[NodeId], tick: Round
    ) -> "list[Round | None]":
        """Latency-then-drop draws per recipient, sharing
        ``arrival_tick``'s per-link streams in the same draw order
        (latency first, then the drop coin — even for envelopes that end
        up dropped), so the k-th send on every link consumes exactly the
        stream prefix the object path would and the arrival *and* drop
        schedules match bit-for-bit."""
        p = self.p
        delay = self.delay
        jitter = delay > 1
        arrivals: "list[Round | None]" = []
        append = arrivals.append
        for rng in self._fanout_rngs(sender, recipients):
            latency = 1 + (rng.randrange(delay) if jitter else 0)
            append(None if rng.random() < p else tick + latency)
        return arrivals


class PartitionedDelivery(DeliveryModel):
    """Epoch-indexed network partitions with an optional healing defer.

    The schedule is a sequence of ``(start_tick, blocks)`` epochs, in
    ascending ``start_tick`` order with the first epoch starting at 0:
    from ``start_tick`` until the next epoch begins, the network is
    split into the given disjoint ``blocks`` of node ids (``None`` =
    fully connected).  A node appearing in no block of a partitioned
    epoch is isolated.  An envelope whose sender and recipient share a
    block (or whose emission tick falls in a healed epoch) is delivered
    next tick; a cross-block envelope is

    * **dropped** (default), or
    * **deferred** (``defer=True``): parked until the first tick at
      which the two nodes are reunited, arriving then — the
      store-and-forward reading, which is what makes partition-heal
      convergence measurable (experiment E13).

    A deferred envelope whose endpoints are never reunited within
    ``horizon`` ticks of emission is dropped.  The model consults no
    randomness at all: arrivals and drops are a pure function of the
    static schedule and the emission sequence.

    :param schedule: ``((start_tick, blocks_or_None), ...)``.
    :param defer: park cross-block traffic until heal instead of
        dropping it.
    :param horizon: search bound for the healing tick in defer mode.
    """

    name = "partition"
    batch_capable = True

    def __init__(
        self,
        schedule: Sequence[tuple[int, "Sequence[Iterable[NodeId]] | None"]],
        defer: bool = False,
        horizon: int = 10_000,
    ) -> None:
        if not schedule:
            raise ConfigurationError("partition schedule must not be empty")
        parsed: list[tuple[int, tuple[frozenset[NodeId], ...] | None]] = []
        for start, blocks in schedule:
            start = int(start)
            if blocks is None:
                parsed.append((start, None))
                continue
            frozen = tuple(frozenset(int(node) for node in block) for block in blocks)
            seen: set[NodeId] = set()
            for block in frozen:
                if seen & block:
                    raise ConfigurationError(
                        f"partition blocks overlap: {sorted(seen & block)}"
                    )
                seen |= block
            parsed.append((start, frozen))
        starts = [start for start, _ in parsed]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ConfigurationError(
                f"partition epochs must have strictly ascending start ticks, got {starts}"
            )
        if parsed[0][0] != 0:
            raise ConfigurationError(
                f"the first partition epoch must start at tick 0, got {parsed[0][0]}"
            )
        self.schedule = tuple(parsed)
        self.defer = defer
        self.horizon = horizon
        # Deferred envelopes can be parked past the run's final tick
        # (a heal landing at or after the last halt); have the kernel
        # sweep them into the drop accounting instead of losing them
        # silently.
        self.sweep_undelivered = defer

    def _connected(self, sender: NodeId, recipient: NodeId, tick: Round) -> bool:
        """Whether the two nodes can talk in the epoch covering ``tick``."""
        blocks: tuple[frozenset[NodeId], ...] | None = None
        for start, epoch_blocks in self.schedule:
            if start > tick:
                break
            blocks = epoch_blocks
        if blocks is None:
            return True
        return any(sender in block and recipient in block for block in blocks)

    def _arrival_for(
        self, sender: NodeId, recipient: NodeId, tick: Round
    ) -> Round | None:
        """Arrival tick for one ``sender -> recipient`` emission at ``tick``.

        Shared by the per-envelope and batch paths — the model consults
        no randomness, so the two trivially agree.
        """
        if self._connected(sender, recipient, tick):
            return tick + 1
        if not self.defer:
            return None
        # Park the envelope until the first tick the endpoints reunite.
        # Connectivity only changes at epoch starts, so the reunion tick
        # (if any) is the first epoch start after the emission whose
        # epoch reconnects the pair — O(schedule), not O(horizon).
        for start, _ in self.schedule:
            if start <= tick:
                continue
            if start > tick + self.horizon:
                break
            if self._connected(sender, recipient, start):
                return start + 1
        return None

    def arrival_tick(self, envelope: Envelope, tick: Round) -> Round | None:
        return self._arrival_for(envelope.sender, envelope.recipient, tick)

    def batch_arrivals(
        self, sender: NodeId, recipients: Sequence[NodeId], tick: Round
    ) -> "list[Round | None]":
        """Defer-until-heal as an arrival *rewrite*: reachable recipients
        get ``tick + 1``, cross-block ones the post-reunion tick (or
        ``None`` — a drop — without defer / past the horizon)."""
        return [
            self._arrival_for(sender, recipient, tick)
            for recipient in recipients
        ]


#: Spec-name -> model class, for :func:`make_delivery` / the CLI.
DELIVERY_MODELS: dict[str, type[DeliveryModel]] = {
    SynchronousRounds.name: SynchronousRounds,
    BoundedDelay.name: BoundedDelay,
    AdversarialOrder.name: AdversarialOrder,
    LossyDelivery.name: LossyDelivery,
    PartitionedDelivery.name: PartitionedDelivery,
}


def available_deliveries() -> list[str]:
    """Registered delivery-model spec names, sorted."""
    return sorted(DELIVERY_MODELS)


def _parse_partition_spec(spec: str, arg: str) -> PartitionedDelivery:
    """``partition:0-3|4-6@8`` (optionally ``/defer``) -> model.

    ``BLOCKS@HEAL``: blocks are ``|``-separated node ranges/lists
    (``0-3`` or ``0,2,5``), partitioned from tick 0 and healed (fully
    connected) from tick ``HEAL`` on; append ``/defer`` to park
    cross-block traffic until the heal instead of dropping it.
    """
    defer = False
    if arg.endswith("/defer"):
        defer = True
        arg = arg[: -len("/defer")]
    blocks_part, sep, heal_part = arg.partition("@")
    if not sep or not blocks_part or not heal_part:
        raise ConfigurationError(
            f"partition spec must look like 'partition:0-3|4-6@8', got {spec!r}"
        )
    try:
        heal = int(heal_part)
        blocks = []
        for block_spec in blocks_part.split("|"):
            block: set[NodeId] = set()
            for item in block_spec.split(","):
                low, dash, high = item.partition("-")
                if dash:
                    block.update(range(int(low), int(high) + 1))
                else:
                    block.add(int(item))
            blocks.append(block)
    except ValueError:
        raise ConfigurationError(
            f"partition spec must use integer node ids and heal tick, got {spec!r}"
        ) from None
    return PartitionedDelivery(
        schedule=((0, tuple(blocks)), (heal, None)), defer=defer
    )


def make_delivery(
    spec: "str | DeliveryModel | None",
    rushing: Iterable[NodeId] = (),
) -> DeliveryModel:
    """Build a delivery model from a primitive spec string.

    Specs are what travels through workload parameters and the CLI's
    ``--delivery`` knob (always picklable):

    * ``"sync"`` — :class:`SynchronousRounds`;
    * ``"bounded"`` / ``"bounded:3"`` — :class:`BoundedDelay` with the
      given bound (default 2);
    * ``"rush"`` / ``"rush:5,6"`` — :class:`AdversarialOrder`; the
      rushing set comes from the spec suffix when given, else from
      ``rushing`` (conventionally the scenario's faulty set);
    * ``"loss:0.2"`` / ``"loss:0.2:3"`` — :class:`LossyDelivery` with
      drop probability 0.2 (and optional latency bound 3);
    * ``"partition:0-3|4-6@8"`` (optionally ``.../defer``) —
      :class:`PartitionedDelivery`: ``|``-separated blocks of node
      ranges, healed from tick 8 on; ``/defer`` parks cross-block
      traffic until the heal instead of dropping it.

    A ready :class:`DeliveryModel` instance passes through unchanged;
    ``None`` means the default synchronous model.

    :raises ConfigurationError: for unknown or malformed specs — the
        error names the valid spec heads.
    """
    if spec is None:
        return SynchronousRounds()
    if isinstance(spec, DeliveryModel):
        return spec
    head, _, arg = spec.partition(":")
    if head == SynchronousRounds.name:
        if arg:
            raise ConfigurationError(f"sync takes no argument, got {spec!r}")
        return SynchronousRounds()
    if head == BoundedDelay.name:
        try:
            delay = int(arg) if arg else 2
        except ValueError:
            raise ConfigurationError(
                f"bounded delay must be an integer, got {spec!r}"
            ) from None
        return BoundedDelay(delay)
    if head == AdversarialOrder.name:
        if arg:
            try:
                rushing = [int(part) for part in arg.split(",") if part]
            except ValueError:
                raise ConfigurationError(
                    f"rush node list must be integers, got {spec!r}"
                ) from None
        return AdversarialOrder(rushing)
    if head == LossyDelivery.name:
        parts = arg.split(":") if arg else []
        try:
            p = float(parts[0]) if parts else 0.1
            delay = int(parts[1]) if len(parts) > 1 else 1
        except (ValueError, IndexError):
            raise ConfigurationError(
                f"loss spec must look like 'loss:0.2' or 'loss:0.2:3', got {spec!r}"
            ) from None
        return LossyDelivery(p, delay=delay)
    if head == PartitionedDelivery.name:
        return _parse_partition_spec(spec, arg)
    raise ConfigurationError(
        f"unknown delivery model {spec!r}; "
        f"available: {', '.join(available_deliveries())}"
    )
