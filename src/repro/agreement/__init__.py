"""Byzantine Agreement substrate: oral, signed, extended, degradable.

* :mod:`repro.agreement.oral` — OM(t)/EIG, the non-authenticated classic
  (needs ``n > 3t``);
* :mod:`repro.agreement.signed` — SM(t), authenticated agreement
  (any ``t <= n - 2``);
* :mod:`repro.agreement.extension` — Failure Discovery extended to full
  BA at FD's failure-free message cost (the Hadzilacos-Halpern property
  the paper leans on);
* :mod:`repro.agreement.degradable` — the Vaidya-Pradhan-flavoured
  future-work direction the paper's summary mentions.
"""

from .degradable import (
    OUTPUT_DEGRADED,
    DegradableSignedAgreement,
    make_degradable_protocols,
)
from .extension import (
    ALARM_BODY,
    ALARM_MSG,
    OUTPUT_FD_DISCOVERY,
    OUTPUT_PATH,
    ExtendedAgreementProtocol,
    make_extended_protocols,
)
from .eigtree import RleReport, SuccinctEigStore
from .oral import (
    DENSE,
    OM_REPORT,
    OM_VALUE,
    SUCCINCT,
    OralAgreementProtocol,
    make_oral_agreement_protocols,
)
from .problem import DEFAULT_VALUE, BAEvaluation, evaluate_ba
from .signed import (
    SM_MSG,
    SignedAgreementProtocol,
    make_signed_agreement_protocols,
)

__all__ = [
    "ALARM_BODY",
    "ALARM_MSG",
    "BAEvaluation",
    "DEFAULT_VALUE",
    "DENSE",
    "DegradableSignedAgreement",
    "ExtendedAgreementProtocol",
    "OM_REPORT",
    "OM_VALUE",
    "RleReport",
    "SUCCINCT",
    "SuccinctEigStore",
    "OUTPUT_DEGRADED",
    "OUTPUT_FD_DISCOVERY",
    "OUTPUT_PATH",
    "OralAgreementProtocol",
    "SM_MSG",
    "SignedAgreementProtocol",
    "evaluate_ba",
    "make_degradable_protocols",
    "make_extended_protocols",
    "make_oral_agreement_protocols",
    "make_signed_agreement_protocols",
]
