"""Degradable agreement (the paper's "further research" pointer).

The paper's summary hopes for "improvements in the area of ... the
parameters of weaker types of agreement, e.g. Degradable Agreement",
citing Vaidya & Pradhan.  Degradable agreement has two fault budgets
``t <= u``: up to ``t`` faults the protocol guarantees full Byzantine
Agreement; between ``t+1`` and ``u`` faults it may *degrade* to a weaker
guarantee instead of failing arbitrarily.

We provide a signed-message instantiation,
:class:`DegradableSignedAgreement`: structurally SM(u) (relay window
``u`` rounds) with the decision rule

* extraction set ``V`` a singleton -> decide the value (full agreement),
* otherwise -> decide the default **and flag degradation**.

With authentic key bindings (global authentication, or local
authentication whose key distribution ran among correct nodes) the
classical SM argument gives full BA for any ``f <= u`` — authentication
is exactly what makes graceful degradation cheap, which is the point of
placing this next to the paper.

The *interesting* degradation in this library's setting is degradation of
**authentication itself**: under local authentication attacked during key
distribution (mixed predicates, cross claims), signature verification is
no longer consistent across correct nodes, the extraction sets diverge,
and runs degrade — some correct nodes decide the value, others the
default, and the ``degraded`` flag records it.  ``tests/agreement`` and
experiment E10 construct that scenario, and contrast it with chain-FD
where the same attack is *discovered* (paper Theorem 4) rather than
silently degrading — precisely why the paper claims local authentication
for Failure Discovery but leaves general agreement as future work.
"""

from __future__ import annotations

from typing import Any

from ..auth.directory import KeyDirectory
from ..crypto.keys import KeyPair
from ..errors import ConfigurationError
from ..sim import NodeContext, Protocol
from ..types import NodeId, validate_fault_budget
from .problem import DEFAULT_VALUE
from .signed import SignedAgreementProtocol

#: Output key: True when the node decided the default because its
#: extraction set was not a singleton (degraded outcome).
OUTPUT_DEGRADED = "degraded"


class DegradableSignedAgreement(SignedAgreementProtocol):
    """SM with split budgets ``(t, u)`` and a degradation flag.

    :param t: the *guaranteed* budget (reported, and used by analyses).
    :param u: the *degradable* budget; the relay window runs ``u`` rounds,
        so the protocol lasts ``u + 2`` rounds total.
    """

    def __init__(
        self,
        n: int,
        t: int,
        u: int,
        keypair: KeyPair,
        directory: KeyDirectory,
        value: Any = None,
        default: Any = DEFAULT_VALUE,
    ) -> None:
        validate_fault_budget(t, n)
        validate_fault_budget(u, n)
        if u < t:
            raise ConfigurationError(f"need u >= t, got t={t}, u={u}")
        # The base class's "t" is its relay window; give it u.
        super().__init__(n, u, keypair, directory, value=value, default=default)
        self.guaranteed_budget = t
        self.degradable_budget = u

    def _decide(self, ctx: NodeContext) -> None:
        degraded = len(self._extracted) != 1
        ctx.state.outputs[OUTPUT_DEGRADED] = degraded
        super()._decide(ctx)


def make_degradable_protocols(
    n: int,
    t: int,
    u: int,
    value: Any,
    keypairs: dict[NodeId, KeyPair],
    directories: dict[NodeId, KeyDirectory],
    adversaries: dict[NodeId, Protocol] | None = None,
    default: Any = DEFAULT_VALUE,
) -> list[Protocol]:
    """Assemble the per-node protocol list for one degradable-BA run."""
    adversaries = adversaries or {}
    protocols: list[Protocol] = []
    for node in range(n):
        if node in adversaries:
            protocols.append(adversaries[node])
            continue
        if node not in keypairs or node not in directories:
            raise ConfigurationError(
                f"honest node {node} is missing keypair or directory"
            )
        protocols.append(
            DegradableSignedAgreement(
                n,
                t,
                u,
                keypairs[node],
                directories[node],
                value=value if node == 0 else None,
                default=default,
            )
        )
    return protocols
