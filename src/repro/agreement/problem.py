"""Byzantine Agreement: the conditions and their checkers.

From the paper (after Lamport, Shostak and Pease):

    "Byzantine Agreement requires all correct nodes in the system to agree
    on the same value, which must be the value of a distinguished sender
    if the sender is correct."

Formally, over a finished run:

* BA-Termination — every correct node decides;
* BA-Agreement — all correct nodes decide the same value;
* BA-Validity — if the sender is correct, that value is its initial one.

Failure Discovery weakens all three with the escape hatch "unless a
failure is discovered"; these checkers are the strong versions used to
validate the agreement substrate and the FD→BA extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..sim import RunResult
from ..types import NodeId

#: The sentinel value correct nodes fall back to when the sender is
#: exposed.  A plain string keeps it wire-encodable and unambiguous (it is
#: compared with ``is``-free equality everywhere).
DEFAULT_VALUE = "⊥-default"


@dataclass(frozen=True)
class BAEvaluation:
    """Verdict of the Byzantine Agreement checkers over one run."""

    termination: bool
    agreement: bool
    validity: bool
    detail: str | None = None

    @property
    def ok(self) -> bool:
        return self.termination and self.agreement and self.validity


def evaluate_ba(
    result: RunResult,
    correct: set[NodeId],
    sender: NodeId,
    sender_value: Any,
) -> BAEvaluation:
    """Check BA-Termination / Agreement / Validity over ``result``."""
    states = [state for state in result.states if state.node in correct]
    undecided = [state.node for state in states if not state.decided]
    decisions = {state.node: state.decision for state in states if state.decided}
    distinct = {repr(value) for value in decisions.values()}
    agreement = len(distinct) <= 1
    validity = True
    if sender in correct and decisions:
        validity = all(value == sender_value for value in decisions.values())
    detail = None
    if undecided:
        detail = f"termination violated: {undecided} did not decide"
    elif not agreement:
        detail = f"agreement violated: decisions {decisions}"
    elif not validity:
        detail = (
            f"validity violated: correct sender {sender} proposed "
            f"{sender_value!r}, decisions {decisions}"
        )
    return BAEvaluation(
        termination=not undecided,
        agreement=agreement,
        validity=validity,
        detail=detail,
    )
