"""SM(t): Byzantine Agreement with signed messages (Lamport-Shostak-Pease).

The classical authenticated agreement protocol, provided as the fallback
for the FD→BA extension and as the cost baseline the paper's Failure
Discovery protocol is measured against (experiment E7):

* round 0 — the sender signs its value and broadcasts ``{v}_{S_0}``;
* round ``r`` (1..t+1) — a node receiving a value under a chain of exactly
  ``r`` distinct signatures beginning with the sender's adds the value to
  its extraction set ``V``; if the value is new and ``r <= t``, the node
  countersigns and relays to every node that has not yet signed;
* after round ``t+1`` — decide ``choice(V)``: the value if ``|V| = 1``,
  otherwise the default (the sender equivocated).

Tolerates any ``t <= n - 2`` — no ``n > 3t`` bound, which is precisely the
advantage of authentication the paper builds on.  Correct nodes relay at
most two distinct values (two suffice to prove sender equivocation to
everyone), the standard message optimisation.

Failure-free cost is ``(n-1) + (n-1)(n-2)`` messages — Θ(n²) — because
every receiver must relay the sender's value once before it can be sure
others saw it.  Contrast: the extension of the chain FD protocol reaches
BA at ``n-1`` failure-free messages (its fallback, this protocol, runs
only when a failure was discovered).

Chain discipline: links name their inner signer (section 4 of the paper),
so this implementation is safe under *local* authentication too — the
same Theorem 4 argument applies, and the tests run it both ways.
"""

from __future__ import annotations

from typing import Any

from ..auth.directory import KeyDirectory
from ..crypto.chain import extend_chain, sign_leaf, verify_chain
from ..crypto.keys import KeyPair
from ..crypto.signing import SignedMessage
from ..errors import ConfigurationError
from ..sim import Envelope, NodeContext, Protocol
from ..types import NodeId, validate_fault_budget
from .problem import DEFAULT_VALUE

SM_MSG = "ba-signed"

#: The distinguished sender is node 0.
SENDER: NodeId = 0

#: Correct nodes relay at most this many distinct values (2 prove a lie).
MAX_RELAYED_VALUES = 2


class SignedAgreementProtocol(Protocol):
    """One node's behaviour in SM(t).

    :param default: decided when the extraction set is not a singleton.
    """

    def __init__(
        self,
        n: int,
        t: int,
        keypair: KeyPair,
        directory: KeyDirectory,
        value: Any = None,
        default: Any = DEFAULT_VALUE,
    ) -> None:
        validate_fault_budget(t, n)
        self._n = n
        self._t = t
        self._keypair = keypair
        self._directory = directory
        self._value = value
        self._default = default
        self._extracted: list[Any] = []
        self._relayed = 0
        # Relay filter: (outer sender, body bytes, signature) triples already
        # processed.  A duplicate from the same immediate sender can never
        # change state: in the same round it reaches the same verdict (the
        # triple fixes every verification input) and extraction is
        # idempotent; in a later round the depth check rejects it anyway.
        self._seen: set[tuple[NodeId, bytes, bytes]] = set()

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.round == 0:
            if ctx.node == SENDER:
                leaf = sign_leaf(self._keypair.secret, self._value)
                ctx.broadcast((SM_MSG, leaf))
                self._extracted.append(self._value)
            return
        if ctx.round <= self._t + 1:
            self._accept_round(ctx, inbox)
        if ctx.round >= self._t + 1:
            self._decide(ctx)

    def _accept_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for env in inbox:
            payload = env.payload
            if not (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == SM_MSG
                and isinstance(payload[1], SignedMessage)
            ):
                continue  # garbage never blocks agreement; just ignore it
            signed = payload[1]
            dedup_key = (env.sender, signed.body_bytes(), signed.signature)
            if dedup_key in self._seen:
                continue
            self._seen.add(dedup_key)
            verdict = verify_chain(
                signed,
                outer_signer=env.sender,
                directory=self._directory,
                expected_depth=ctx.round,
            )
            # The innermost signature must be the sender's (the classical
            # "v:0:..." requirement); verify_chain already enforced signer
            # distinctness and per-layer assignment.
            if not verdict.ok or verdict.signers()[-1] != SENDER:
                continue
            self._extract(ctx, verdict.value, verdict.signers(), signed)

    def _extract(
        self,
        ctx: NodeContext,
        value: Any,
        signers: tuple[NodeId, ...],
        signed: SignedMessage,
    ) -> None:
        if any(value == known for known in self._extracted):
            return
        self._extracted.append(value)
        if ctx.round <= self._t and self._relayed < MAX_RELAYED_VALUES:
            self._relayed += 1
            extended = extend_chain(
                self._keypair.secret, signers[0], signed
            )
            recipients = [
                node
                for node in ctx.others()
                if node not in signers
            ]
            ctx.broadcast((SM_MSG, extended), to=recipients)

    def _decide(self, ctx: NodeContext) -> None:
        if len(self._extracted) == 1:
            ctx.decide(self._extracted[0])
        else:
            ctx.decide(self._default)
        ctx.halt()


def make_signed_agreement_protocols(
    n: int,
    t: int,
    value: Any,
    keypairs: dict[NodeId, KeyPair],
    directories: dict[NodeId, KeyDirectory],
    adversaries: dict[NodeId, Protocol] | None = None,
    default: Any = DEFAULT_VALUE,
) -> list[Protocol]:
    """Assemble the per-node protocol list for one SM(t) run."""
    validate_fault_budget(t, n)
    adversaries = adversaries or {}
    protocols: list[Protocol] = []
    for node in range(n):
        if node in adversaries:
            protocols.append(adversaries[node])
            continue
        if node not in keypairs or node not in directories:
            raise ConfigurationError(
                f"honest node {node} is missing keypair or directory"
            )
        protocols.append(
            SignedAgreementProtocol(
                n,
                t,
                keypairs[node],
                directories[node],
                value=value if node == SENDER else None,
                default=default,
            )
        )
    return protocols
