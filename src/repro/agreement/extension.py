"""FD→BA: extending Failure Discovery to full Byzantine Agreement.

The reason Failure Discovery matters (paper section 4, after Hadzilacos &
Halpern): "a protocol for Failure Discovery can be extended under certain
conditions to a protocol for Byzantine Agreement [whose] failure-free runs
[need] the same number of messages as the underlying Failure Discovery
protocol."  This module reproduces that construction concretely:

Phase 1 — rounds ``0 .. t+1``: the chain FD protocol (paper Fig. 2) runs
    unchanged.  In failure-free runs this is all the traffic there is:
    **n − 1 messages**.

Phase 2 — alarm window, rounds ``t+2 .. 2t+3``: any node that discovered a
    failure broadcasts a signed ALARM at round ``t+2``.  Alarms follow the
    Dolev-Strong discipline: an alarm received ``j`` rounds into the
    window is accepted only if it carries at least ``j`` distinct valid
    signatures; a correct node accepting with ``j <= t`` countersigns and
    rebroadcasts once.  This yields the key all-or-none property: **if any
    correct node accepts an alarm by the end of the window, every correct
    node does** (an alarm accepted at the last slot carries ``t+1``
    distinct signatures, hence one from a correct node, which already
    rebroadcast to everyone).  Failure-free runs send nothing here.

Phase 3 — fallback: nodes that saw no alarm decide their FD value and
    stop; alarmed nodes run SM(t) (:mod:`repro.agreement.signed`) with the
    original sender and decide its outcome.

Why this achieves Byzantine Agreement:

* nobody alarmed → no correct node discovered (a correct discoverer
  always alarms), so FD's F2/F3 give agreement and validity directly;
* someone (correct) alarmed → *all* correct nodes fall back together and
  SM(t) supplies agreement and validity.

The two branches never mix across correct nodes — that is exactly what the
Dolev-Strong rule buys.  Experiment E7 measures the headline consequence:
failure-free BA at FD cost (n−1 messages) versus Θ(n²) for running SM(t)
directly.
"""

from __future__ import annotations

from typing import Any

from ..auth.directory import KeyDirectory
from ..crypto.chain import chain_depth, extend_chain, sign_leaf, verify_chain
from ..crypto.keys import KeyPair
from ..crypto.signing import SignedMessage
from ..errors import ConfigurationError
from ..fd.authenticated import ChainFDProtocol
from ..sim import Envelope, NodeContext, Protocol
from ..sim.compose import PhaseHost
from ..types import NodeId, validate_fault_budget
from .problem import DEFAULT_VALUE
from .signed import SignedAgreementProtocol

ALARM_MSG = "ba-alarm"
ALARM_BODY = "ALARM"

#: The distinguished sender is node 0.
SENDER: NodeId = 0

#: Output keys describing how the node reached its decision.
OUTPUT_PATH = "extension-path"  # "fd" or "fallback"
OUTPUT_FD_DISCOVERY = "extension-fd-discovery"


class ExtendedAgreementProtocol(Protocol):
    """One node's behaviour in the extended (FD + alarms + fallback) BA."""

    def __init__(
        self,
        n: int,
        t: int,
        keypair: KeyPair,
        directory: KeyDirectory,
        value: Any = None,
        default: Any = DEFAULT_VALUE,
    ) -> None:
        validate_fault_budget(t, n)
        self._n = n
        self._t = t
        self._keypair = keypair
        self._directory = directory
        self._value = value
        self._default = default
        # Phase boundaries.
        self._alarm_start = t + 2          # discoverers broadcast here
        self._alarm_end = self._alarm_start + t + 1
        self._fd_host: PhaseHost | None = None
        self._sm_host: PhaseHost | None = None
        self._alarmed = False              # accepted (or raised) an alarm
        self._relayed_alarm = False

    def setup(self, ctx: NodeContext) -> None:
        self._fd_host = PhaseHost(
            ChainFDProtocol(
                self._n,
                self._t,
                self._keypair,
                self._directory,
                value=self._value,
            ),
            offset=0,
        )

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        round_ = ctx.round
        if round_ <= self._t + 1:
            self._fd_host.step(ctx, inbox)
            return
        if round_ < self._alarm_end:
            if round_ == self._alarm_start:
                self._maybe_raise_alarm(ctx)
            if round_ > self._alarm_start:
                self._process_alarms(ctx, inbox, round_)
            return
        if round_ == self._alarm_end:
            self._process_alarms(ctx, inbox, round_)
            self._conclude_or_fall_back(ctx)
        if round_ >= self._alarm_end and self._sm_host is not None:
            self._run_fallback(ctx, inbox)

    # -- phase 2: alarms ---------------------------------------------------

    def _maybe_raise_alarm(self, ctx: NodeContext) -> None:
        if self._fd_host.outcome.discovered_failure:
            alarm = sign_leaf(self._keypair.secret, ALARM_BODY)
            ctx.broadcast((ALARM_MSG, alarm))
            self._alarmed = True
            self._relayed_alarm = True

    def _process_alarms(
        self, ctx: NodeContext, inbox: list[Envelope], round_: int
    ) -> None:
        """Dolev-Strong acceptance: at window slot j, require >= j signers."""
        slot = round_ - self._alarm_start
        for env in inbox:
            payload = env.payload
            if not (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == ALARM_MSG
                and isinstance(payload[1], SignedMessage)
            ):
                # Non-alarm traffic here comes only from faulty nodes and
                # cannot be turned into an accepted alarm in time; ignore.
                continue
            signed = payload[1]
            verdict = verify_chain(
                signed, outer_signer=env.sender, directory=self._directory
            )
            if not verdict.ok or verdict.value != ALARM_BODY:
                continue
            if chain_depth(signed) < slot:
                continue  # too few signatures for this slot
            if not self._alarmed:
                self._alarmed = True
            if (
                not self._relayed_alarm
                and slot <= self._t
                and ctx.node not in verdict.signers()
            ):
                extended = extend_chain(
                    self._keypair.secret, env.sender, signed
                )
                ctx.broadcast((ALARM_MSG, extended))
                self._relayed_alarm = True

    # -- phase 3: decide or fall back ---------------------------------------

    def _conclude_or_fall_back(self, ctx: NodeContext) -> None:
        fd = self._fd_host.outcome
        ctx.state.outputs[OUTPUT_FD_DISCOVERY] = fd.discovered
        if not self._alarmed:
            ctx.state.outputs[OUTPUT_PATH] = "fd"
            if fd.decided:
                ctx.decide(fd.decision)
            else:
                # F1 guarantees decided-or-discovered; an undecided,
                # undiscovering node cannot occur for the honest protocol.
                ctx.decide(self._default)
            ctx.halt()
            return
        ctx.state.outputs[OUTPUT_PATH] = "fallback"
        # The fallback phase shares the wire with straggling alarm (and
        # Byzantine) traffic; the host's kind filter — the same
        # demultiplexing notion the instance mux applies per instance —
        # hands SM(t) only its own tagged payloads.  The FD host above
        # deliberately has no filter: failure discovery treats unexpected
        # traffic as evidence.
        self._sm_host = PhaseHost(
            SignedAgreementProtocol(
                self._n,
                self._t,
                self._keypair,
                self._directory,
                value=self._value,
                default=self._default,
            ),
            offset=self._alarm_end,
            kinds=("ba-signed",),
        )

    def _run_fallback(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self._sm_host.step(ctx, inbox)
        outcome = self._sm_host.outcome
        if outcome.halted:
            ctx.decide(
                outcome.decision if outcome.decided else self._default
            )
            ctx.halt()


def make_extended_protocols(
    n: int,
    t: int,
    value: Any,
    keypairs: dict[NodeId, KeyPair],
    directories: dict[NodeId, KeyDirectory],
    adversaries: dict[NodeId, Protocol] | None = None,
    default: Any = DEFAULT_VALUE,
) -> list[Protocol]:
    """Assemble the per-node protocol list for one extended-BA run."""
    validate_fault_budget(t, n)
    adversaries = adversaries or {}
    protocols: list[Protocol] = []
    for node in range(n):
        if node in adversaries:
            protocols.append(adversaries[node])
            continue
        if node not in keypairs or node not in directories:
            raise ConfigurationError(
                f"honest node {node} is missing keypair or directory"
            )
        protocols.append(
            ExtendedAgreementProtocol(
                n,
                t,
                keypairs[node],
                directories[node],
                value=value if node == SENDER else None,
                default=default,
            )
        )
    return protocols
