"""Succinct EIG tree engine: collapse unanimous subtrees, compress reports.

The dense EIG formulation (:mod:`repro.agreement.oral` with
``engine="dense"``) stores one dict entry per received path and ships one
``(path, value)`` pair per report item — exponential in ``t`` by
construction, which caps oral runs around n=32.  This module provides the
*succinct* representation that makes n=128 feasible:

* **storage** — a node's received values at level ``L`` are a per-relayer
  "uniform" entry (one relayer's whole report was a single value — the
  failure-free case) plus a sparse ``overrides`` dict for paths whose
  value deviates.  A failure-free run stores O(n·t) values per node
  instead of O(n^t).
* **wire form** — reports travel as :class:`RleReport`: run-length
  encoded values over the canonical path order, decoded transparently by
  the receiving engine.  A unanimous report is a single run regardless of
  the level's path count.
* **resolution** — the bottom-up majority walk short-circuits: when every
  stored value agrees with the root value (checked per level against the
  uniform entries, O(n·t) total), the decision is that value without
  touching the exponential leaf level.  Any deviation falls back to the
  level-synchronous sweep over the shared path tables, which is exactly
  the dense engine's algorithm reading values through this store.

Observable equivalence contract
-------------------------------
Decisions, round counts, envelope counts, payload-kind tallies and *byte*
counts are bit-for-bit identical to the dense engine: the metrics layer
accounts an :class:`RleReport` at :meth:`RleReport.dense_byte_size` — the
exact canonical-encoding size of the ``(OM_REPORT, ((path, value), ...))``
payload the dense engine would have sent — computed in O(#runs) from the
additive encoding and the per-level aggregates in
:func:`repro.agreement._paths.level_wire_stats`.
``tests/agreement/test_eigtree.py`` enforces the equivalence property
under random Byzantine behaviour.

Values are grouped into runs by ``repr`` — the same identity the engines'
majority vote uses.  For every wire value shape in this library
(scalars, tuples, registered frozen dataclasses) ``repr`` equality implies
canonical-encoding equality, which keeps the dense-equivalent byte
accounting exact; the property tests cross-check it.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterator

from ..crypto.encoding import byte_size, uvarint_size
from ..types import NodeId
from ._paths import Path, level_wire_stats, path_set, paths_of_length

#: Payload kind shared with the dense wire form — metrics breakdowns must
#: not distinguish the engines (see ``repro.sim.message.payload_kind``).
OM_REPORT = "om-report"

#: Tag of the encodable tuple form (views, diagnostics, E9's compression
#: measurements).  Not a dense-engine payload tag: the dense engine
#: ignores run-length reports entirely, engines are homogeneous per run.
OM_REPORT_RLE = "om-report-rle"

_MISSING = object()

# Encoded size of the constant parts of the dense payload
# ``(OM_REPORT, items)``: the 2-tuple header and the kind tag.
_DENSE_HEADER = 1 + uvarint_size(2) + byte_size(OM_REPORT)
# Per dense item ``(path, value)``: the pair's own 2-tuple header.
_DENSE_ITEM_HEADER = 1 + uvarint_size(2)


def _repr_key(value: Any) -> str:
    """The engines' value identity: how majority votes compare values."""
    return repr(value)


class RleReport:
    """A run-length encoded EIG report: the succinct wire form.

    Semantically identical to the dense payload ``(OM_REPORT, ((path,
    value) for path in paths_of_length(n, sender, level) if exclude not in
    path))`` with the values read off the runs in canonical path order.
    ``exclude`` is the reporting relayer (a node never relays paths
    containing itself).

    Instances are immutable by library discipline (wire value).  They are
    deliberately *not* plain tuples: the dense engine's ingest must treat
    them as unknown noise, not mis-parse them as dense items.

    The dense-equivalent size is computed *at construction* (the honest
    encoder has just built the level aggregates anyway) so that reading
    the byte meters later is a field access: a crafted report with
    absurd ``(n, level)`` fields pays its own enumeration cost in the
    constructing protocol's round, never in the metrics settle of every
    other node's run result.
    """

    __slots__ = ("n", "sender", "level", "exclude", "runs", "_dense_size")

    kind = OM_REPORT  # payload-kind hook for metrics breakdowns

    def __init__(
        self,
        n: int,
        sender: NodeId,
        level: int,
        exclude: NodeId,
        runs: tuple[tuple[int, Any], ...],
    ) -> None:
        if not (0 <= sender < n and 0 <= exclude < n):
            raise ValueError(f"ids out of range: sender={sender}, exclude={exclude}")
        if level < 1:
            raise ValueError(f"level must be >= 1, got {level}")
        if not all(
            type(count) is int and count > 0 for count, _ in runs
        ):
            raise ValueError("run counts must be positive ints")
        self.n = n
        self.sender = sender
        self.level = level
        self.exclude = exclude
        self.runs = tuple((count, value) for count, value in runs)
        self._dense_size = self._compute_dense_size()

    @property
    def item_count(self) -> int:
        """Number of dense ``(path, value)`` items this report stands for."""
        return sum(count for count, _ in self.runs)

    def values(self) -> Iterator[Any]:
        """The dense value sequence, in canonical path order."""
        for count, value in self.runs:
            for _ in range(count):
                yield value

    def dense_byte_size(self) -> int:
        """Canonical-encoding size of the equivalent dense payload.

        Precomputed at construction; this is what the metrics layer
        records, so byte counters match the dense engine exactly.
        """
        return self._dense_size

    def _compute_dense_size(self) -> int:
        """O(#runs): the encoding is additive, so the paths' byte total
        comes from the level aggregates and each run contributes
        ``count * byte_size(value)``."""
        stats = level_wire_stats(self.n, self.sender, self.level)
        count = stats.count_avoiding(self.exclude)
        total = (
            _DENSE_HEADER
            + 1  # items sequence tag
            + uvarint_size(count)
            + count * _DENSE_ITEM_HEADER
            + stats.path_bytes_avoiding(self.exclude)
        )
        for run_count, value in self.runs:
            total += run_count * byte_size(value)
        return total

    def wire_tuple(self) -> tuple:
        """An encodable tuple form (views, E9's compression probes)."""
        return (OM_REPORT_RLE, self.n, self.sender, self.level, self.exclude, self.runs)

    def compressed_byte_size(self) -> int:
        """Actual bytes of the run-length form — what really crossed the
        simulated wire, contrasted with :meth:`dense_byte_size` in E9."""
        return byte_size(self.wire_tuple())

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"RleReport(n={self.n}, sender={self.sender}, level={self.level}, "
            f"exclude={self.exclude}, runs={len(self.runs)}, items={self.item_count})"
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RleReport) and self.wire_tuple() == other.wire_tuple()

    def __hash__(self) -> int:
        return hash((OM_REPORT_RLE, self.n, self.sender, self.level, self.exclude))


class SuccinctEigStore:
    """Per-node succinct EIG tree: uniform-per-relayer entries + overrides.

    The invariant mirrored from the dense dict: a path ``σ + (q,)`` at
    level ``L`` holds the *first* value relayer ``q`` reported for ``σ``
    (``setdefault`` semantics), or nothing.  Lookup order realises that:
    an explicit override (filed earlier or from a partial report) wins
    over the relayer's uniform entry, and a uniform entry, once set,
    blocks later overrides for that relayer.

    Contract: :meth:`get` is only ever asked about structurally valid
    paths that avoid the owning node — the same paths the dense dict
    could contain.
    """

    __slots__ = ("n", "t", "sender", "default", "root", "uniform", "overrides")

    def __init__(self, n: int, t: int, sender: NodeId, default: Any) -> None:
        self.n = n
        self.t = t
        self.sender = sender
        self.default = default
        self.root: Any = _MISSING
        # level -> {relayer: value} / {path: value}, levels 2 .. t+1.
        self.uniform: dict[int, dict[NodeId, Any]] = {
            level: {} for level in range(2, t + 2)
        }
        self.overrides: dict[int, dict[Path, Any]] = {
            level: {} for level in range(2, t + 2)
        }

    # -- filing ---------------------------------------------------------

    def set_root(self, value: Any) -> None:
        """File the round-1 sender value (assignment semantics: last
        write in the round wins, exactly as the dense dict did)."""
        self.root = value

    def file_uniform(self, level: int, relayer: NodeId, value: Any) -> None:
        """File "relayer ``q`` reported ``value`` for every valid path" —
        first uniform report per (level, relayer) wins."""
        self.uniform[level].setdefault(relayer, value)

    def file_override(self, level: int, path: Path, value: Any) -> None:
        """File one path value with the dense ``setdefault`` semantics."""
        if path[-1] in self.uniform[level]:
            return  # every path ending in this relayer is already set
        self.overrides[level].setdefault(path, value)

    # -- lookup ----------------------------------------------------------

    def get(self, path: Path) -> Any:
        """The stored value for ``path``, or the protocol default."""
        if len(path) == 1:
            return self.default if self.root is _MISSING else self.root
        level = len(path)
        value = self.overrides[level].get(path, _MISSING)
        if value is not _MISSING:
            return value
        value = self.uniform[level].get(path[-1], _MISSING)
        return self.default if value is _MISSING else value

    def stored_entries(self) -> int:
        """Number of explicit entries held (diagnostics / memory tests)."""
        return (
            (0 if self.root is _MISSING else 1)
            + sum(len(d) for d in self.uniform.values())
            + sum(len(d) for d in self.overrides.values())
        )

    # -- level summaries ---------------------------------------------------

    def _level_uniform_value(self, level: int, me: NodeId) -> Any:
        """The single value every queried level-``level`` path holds, or
        ``_MISSING`` if the level is not unanimous / not fully covered.

        Queried paths avoid ``me`` and end in any relayer outside
        ``{sender, me}``, so full coverage means a uniform entry for every
        such relayer — exactly the failure-free report pattern.
        """
        if level == 1:
            return self.get((self.sender,))
        if self.overrides[level]:
            return _MISSING
        uniform = self.uniform[level]
        # Protocol-filed uniform keys can only be valid relayers — never
        # the sender (rejected at ingest) and never this node (it cannot
        # receive its own relay) — so full coverage of the n-2 queried
        # relayers reduces to a length check plus two membership probes
        # (guarding hand-filed stores), and unanimity to a sweep over
        # the stored values instead of n keyed lookups.
        if len(uniform) != self.n - 2 or me in uniform or self.sender in uniform:
            return _MISSING
        value = _MISSING
        key = None
        for held in uniform.values():
            if value is _MISSING:
                value, key = held, _repr_key(held)
            elif held is not value and _repr_key(held) != key:
                return _MISSING
        return value

    # -- resolution --------------------------------------------------------

    def resolve(self, me: NodeId) -> Any:
        """The node's decision: majority over the tree rooted at
        ``(sender,)`` with the classical own-value substitution.

        Fast path: if every level (2 .. t+1) is unanimously the root
        value, the whole tree collapses and the decision is that value —
        O(n·t), never touching the leaf level.  Any deviation falls back
        to the dense engine's level-synchronous sweep reading values
        through :meth:`get` (exponential in t, like the dense engine —
        Byzantine runs at large n pay the dense price either way).
        """
        root = self.get((self.sender,))
        root_key = _repr_key(root)
        for level in range(2, self.t + 2):
            value = self._level_uniform_value(level, me)
            if value is _MISSING or (
                value is not root and _repr_key(value) != root_key
            ):
                return self._resolve_sweep(me)
        return root

    def _resolve_sweep(self, me: NodeId) -> Any:
        """Reference bottom-up majority sweep, reading through the store."""
        return resolve_sweep(
            self.n, self.t, self.sender, self.default, self.get, me, (self.sender,)
        )


def resolve_sweep(
    n: int,
    t: int,
    sender: NodeId,
    default: Any,
    lookup: Any,
    me: NodeId,
    path: Path,
) -> Any:
    """Level-synchronous bottom-up majority over the EIG tree: the one
    resolution sweep both engines share (so their slot arithmetic cannot
    drift; the vote itself is :func:`majority_value`).

    ``lookup(path)`` returns the stored value or the default — a dict
    ``get`` closure for the dense engine, :meth:`SuccinctEigStore.get`
    for the succinct one.  Level L+1 of the shared table is generated
    from level L parent-major with child ids ascending, so the children
    of parent index ``i`` occupy the slice ``[i*(n-L), (i+1)*(n-L))`` —
    values align by index, no per-path dict or membership tests needed.
    At each parent not containing ``me``, ``me``'s child slot (its rank
    among the ids not in the parent) is substituted with the parent's own
    stored value — classical EIG's "own value" substitution, needed for
    the n > 3t margin.  Values for paths through ``me`` are computed but
    never consumed, because their parents substitute first.

    Requires ``me not in path`` and ``len(path) <= t + 1`` (the callers'
    degenerate cases fall back to plain recursion before reaching here).
    """
    depth = t + 1
    start = len(path)
    values = [lookup(p) for p in paths_of_length(n, sender, depth)]
    for length in range(depth - 1, start - 1, -1):
        table = paths_of_length(n, sender, length)
        width = n - length
        parent_values = []
        for i, p in enumerate(table):
            children = values[i * width : (i + 1) * width]
            if me not in p:
                slot = me
                for node in p:
                    if node < me:
                        slot -= 1
                children[slot] = lookup(p)
            parent_values.append(majority_value(children, default))
        values = parent_values
    if start == 1:
        return values[0]
    return values[paths_of_length(n, sender, start).index(path)]


def majority_value(children: list[Any], default: Any) -> Any:
    """Strict majority of ``children`` by ``repr``; ties fall to the
    default.  Shared by both engines so their votes cannot drift."""
    reprs = [repr(value) for value in children]
    first = reprs[0]
    total = len(children)
    if reprs.count(first) == total:
        return children[0]
    best, best_count = Counter(reprs).most_common(1)[0]
    if best_count * 2 > total:
        return children[reprs.index(best)]
    return default


# -- wire form: encode -----------------------------------------------------


def encode_report(store: SuccinctEigStore, me: NodeId, level: int) -> RleReport | None:
    """Build the run-length report ``me`` broadcasts about level ``level``.

    Returns ``None`` when there is nothing to report (every path contains
    ``me`` — i.e. ``me`` is the sender), matching the dense engine's
    skipped broadcast.  A fully uniform level emits a single run without
    enumerating paths; otherwise runs are built over the canonical
    filtered order (levels are <= t, polynomially sized).
    """
    n, sender = store.n, store.sender
    stats = level_wire_stats(n, sender, level)
    count = stats.count_avoiding(me)
    if count == 0:
        return None
    value = store._level_uniform_value(level, me)
    if value is not _MISSING:
        return RleReport(n, sender, level, me, ((count, value),))
    runs: list[tuple[int, Any]] = []
    run_value: Any = _MISSING
    run_key = None
    run_count = 0
    for path in paths_of_length(n, sender, level):
        if me in path:
            continue
        held = store.get(path)
        if run_count and (held is run_value or _repr_key(held) == run_key):
            run_count += 1
            continue
        if run_count:
            runs.append((run_count, run_value))
        run_value, run_key, run_count = held, _repr_key(held), 1
    runs.append((run_count, run_value))
    return RleReport(n, sender, level, me, tuple(runs))


# -- wire form: decode / ingest ---------------------------------------------


#: Receiver-independent report verdicts (see :func:`_classify_rle`);
#: ``_RLE_OTHER`` marks batch entries that are not RLE reports at all.
_RLE_INVALID, _RLE_UNIFORM, _RLE_MULTI, _RLE_OTHER = 0, 1, 2, 3


def _classify_rle(
    report: RleReport,
    relayer: NodeId,
    n: int,
    sender: NodeId,
    level: int,
    count_avoiding,
) -> int:
    """Validity verdict for one run-length report — a pure function of
    the report and its relayer, independent of the receiving node, which
    is what lets the columnar ingest compute it once per report and
    share it across every consumer (``ChannelBatch.shared``).

    Validity: the report must describe ``level``, its run counts must
    cover exactly the paths of that level avoiding ``relayer``, and the
    shape fields must match the run's ``(n, sender)``.  The caller has
    already checked the level range.
    """
    if (
        report.level != level
        or report.n != n
        or report.sender != sender
        or report.exclude != relayer
        # Every valid path contains the sender, so a sender relay has
        # nothing to file.
        or relayer == sender
        or report.item_count != count_avoiding(relayer)
    ):
        return _RLE_INVALID
    if len(report.runs) == 1:
        return _RLE_UNIFORM
    return _RLE_MULTI


def _file_runs(
    store: SuccinctEigStore, report: RleReport, relayer: NodeId, me: NodeId, level: int
) -> None:
    """File a valid multi-run report: per-path overrides for the paths
    avoiding ``me``, in canonical order."""
    n, sender = store.n, store.sender
    values = report.values()
    file_override = store.file_override
    for path in paths_of_length(n, sender, level):
        if relayer in path:
            continue
        value = next(values)
        if me not in path:
            file_override(level + 1, path + (relayer,), value)


def ingest_rle(
    store: SuccinctEigStore, report: Any, relayer: NodeId, me: NodeId, round_: int
) -> None:
    """File one received run-length report; malformed reports are
    Byzantine noise and are dropped whole (missing -> default), mirroring
    the dense engine's per-item validation.

    Validity: the report must describe level ``round_ - 1`` (a report
    relayed in round ``round_ - 1`` and received now) — see
    :func:`_classify_rle` for the full check.
    """
    if not isinstance(report, RleReport):
        return
    n, sender = store.n, store.sender
    level = round_ - 1
    if not 1 <= level <= store.t:
        return
    count_avoiding = level_wire_stats(n, sender, level).count_avoiding
    verdict = _classify_rle(report, relayer, n, sender, level, count_avoiding)
    if verdict == _RLE_UNIFORM:
        # Unanimous report: one uniform entry covers the whole level.
        store.file_uniform(level + 1, relayer, report.runs[0][1])
    elif verdict == _RLE_MULTI:
        _file_runs(store, report, relayer, me, level)


def ingest_rle_batch(
    store: SuccinctEigStore,
    senders: list[NodeId],
    payloads: list[Any],
    targets: list[Any],
    me: NodeId,
    round_: int,
    shared: dict,
) -> "list[tuple[NodeId, Any]] | None":
    """Columnar ingest: file every run-length report in one channel batch
    that addresses ``me``, returning the addressed non-RLE leftovers (or
    ``None``) for the caller's generic per-payload filing.

    The batch arrays are one tick's :class:`~repro.sim.batch.ChannelBatch`
    columns (``targets[i]`` encoding the recipient mask: ``None`` = all
    but the sender, int = one node, frozenset = membership).  Two hoists
    make this the columnar engine's payoff at n=128, where this path runs
    ~6M times per run as ~n entries × ~n consumers × t rounds:

    * the per-call level/wire-stats lookups move out of the entry loop;
    * the :func:`_classify_rle` verdicts — receiver-independent — are
      memoised in ``shared`` as one pre-classified column, so each
      report is validated once per *tick* instead of once per
      (report, consumer) pair.

    Filing semantics are exactly per-entry :func:`ingest_rle`, in array
    (= sender-ascending emission) order.
    """
    n, sender = store.n, store.sender
    level = round_ - 1
    in_range = 1 <= level <= store.t
    # First consumer classifies every entry (receiver-independent) and
    # pre-extracts the uniform values; the other ~n-1 consumers reduce
    # each entry to a list index, a verdict compare and one setdefault.
    # Keyed by level so composition layers stepping the same batch from
    # different phase offsets could never share a stale verdict.
    pre = shared.get(("rle", level))
    if pre is None:
        kinds: list[int] = []
        values: list[Any] = []
        if in_range:
            count_avoiding = level_wire_stats(n, sender, level).count_avoiding
            for entry_sender, payload in zip(senders, payloads):
                if isinstance(payload, RleReport):
                    verdict = _classify_rle(
                        payload, entry_sender, n, sender, level, count_avoiding
                    )
                    kinds.append(verdict)
                    values.append(
                        payload.runs[0][1] if verdict == _RLE_UNIFORM else None
                    )
                else:
                    kinds.append(_RLE_OTHER)
                    values.append(None)
        else:
            # Out-of-range rounds drop RLE reports whole.
            for payload in payloads:
                kinds.append(
                    _RLE_INVALID if isinstance(payload, RleReport) else _RLE_OTHER
                )
                values.append(None)
        shared[("rle", level)] = (kinds, values)
    else:
        kinds, values = pre
    uniform_setdefault = store.uniform[level + 1].setdefault if in_range else None
    rest: list[tuple[NodeId, Any]] | None = None
    for i in range(len(senders)):
        target = targets[i]
        entry_sender = senders[i]
        if target is None:
            if entry_sender == me:
                continue
        elif type(target) is int:
            if target != me:
                continue
        elif me not in target:
            continue
        kind = kinds[i]
        if kind == _RLE_UNIFORM:
            uniform_setdefault(entry_sender, values[i])
        elif kind == _RLE_OTHER:
            if rest is None:
                rest = []
            rest.append((entry_sender, payloads[i]))
        elif kind == _RLE_MULTI:
            _file_runs(store, payloads[i], entry_sender, me, level)
    return rest


def ingest_dense_items(
    store: SuccinctEigStore, items: Any, relayer: NodeId, me: NodeId, round_: int
) -> None:
    """File a dense ``(path, value)`` item list (the legacy wire form —
    Byzantine nodes and the dense engine still speak it), with the exact
    per-item validation and ``setdefault`` semantics of the dense ingest."""
    n, sender = store.n, store.sender
    valid_prefixes = path_set(n, sender, round_ - 1)
    file_override = store.file_override
    for item in items:
        if not (isinstance(item, (tuple, list)) and len(item) == 2):
            continue
        raw_path, value = item
        if not isinstance(raw_path, (tuple, list)):
            continue
        path: Path = tuple(raw_path)
        try:
            valid = path in valid_prefixes
        except TypeError:
            continue  # unhashable elements: noise, not filed
        if valid and relayer not in path and me not in path:
            file_override(round_, path + (relayer,), value)
