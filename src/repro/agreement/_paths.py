"""Shared, process-level EIG path tables.

The EIG tree's path sets depend only on ``(n, sender, length)`` — they are
pure combinatorics, identical for every node and every protocol instance.
The seed implementation rebuilt the (exponentially large) path list per
node per round, which dominated oral-agreement wall-clock; this module
hoists the enumeration into one memoized table shared across all
:class:`~repro.agreement.oral.OralAgreementProtocol` instances in the
process.

Determinism invariant: the enumeration order is the canonical order of the
seed code (extend each path by candidate node ids in ascending order), so
every node iterates paths identically and report payloads stay
bit-for-bit reproducible.
"""

from __future__ import annotations

from functools import lru_cache

from ..types import NodeId

Path = tuple[NodeId, ...]


@lru_cache(maxsize=None)
def paths_of_length(n: int, sender: NodeId, length: int) -> tuple[Path, ...]:
    """All structurally valid EIG paths of ``length`` in canonical order.

    A valid path is a sequence of distinct node ids from ``range(n)``
    starting at ``sender``.  Memoized per ``(n, sender, length)``; the
    returned tuple is shared — callers must not mutate derived state into
    it (tuples make that structural).
    """
    if length <= 1:
        return ((sender,),)
    return tuple(
        path + (node,)
        for path in paths_of_length(n, sender, length - 1)
        for node in range(n)
        if node not in path
    )


@lru_cache(maxsize=None)
def path_set(n: int, sender: NodeId, length: int) -> frozenset[Path]:
    """The same paths as :func:`paths_of_length`, as a membership set.

    Used to validate incoming report paths in one hash lookup instead of
    re-checking the structural invariants (distinctness, range, prefix)
    item by item.  Membership is dict-key equality, which intentionally
    matches the seed semantics for Byzantine near-miss paths (for example
    ``True`` compares equal to ``1``, exactly as it did as a tree key).
    """
    return frozenset(paths_of_length(n, sender, length))


def clear_path_tables() -> None:
    """Drop every memoized table (tests / long-lived processes)."""
    paths_of_length.cache_clear()
    path_set.cache_clear()


def path_table_info() -> dict[str, int]:
    """Cache diagnostics: entry count and total paths held."""
    info = paths_of_length.cache_info()
    return {"entries": info.currsize, "hits": info.hits, "misses": info.misses}
