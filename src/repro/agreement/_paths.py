"""Shared, process-level EIG path tables.

The EIG tree's path sets depend only on ``(n, sender, length)`` — they are
pure combinatorics, identical for every node and every protocol instance.
The seed implementation rebuilt the (exponentially large) path list per
node per round, which dominated oral-agreement wall-clock; this module
hoists the enumeration into one memoized table shared across all
:class:`~repro.agreement.oral.OralAgreementProtocol` instances in the
process.

Determinism invariant: the enumeration order is the canonical order of the
seed code (extend each path by candidate node ids in ascending order), so
every node iterates paths identically and report payloads stay
bit-for-bit reproducible.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple

from ..types import NodeId

Path = tuple[NodeId, ...]


@lru_cache(maxsize=None)
def paths_of_length(n: int, sender: NodeId, length: int) -> tuple[Path, ...]:
    """All structurally valid EIG paths of ``length`` in canonical order.

    A valid path is a sequence of distinct node ids from ``range(n)``
    starting at ``sender``.  Memoized per ``(n, sender, length)``; the
    returned tuple is shared — callers must not mutate derived state into
    it (tuples make that structural).
    """
    if length <= 1:
        return ((sender,),)
    return tuple(
        path + (node,)
        for path in paths_of_length(n, sender, length - 1)
        for node in range(n)
        if node not in path
    )


@lru_cache(maxsize=None)
def path_set(n: int, sender: NodeId, length: int) -> frozenset[Path]:
    """The same paths as :func:`paths_of_length`, as a membership set.

    Used to validate incoming report paths in one hash lookup instead of
    re-checking the structural invariants (distinctness, range, prefix)
    item by item.  Membership is dict-key equality, which intentionally
    matches the seed semantics for Byzantine near-miss paths (for example
    ``True`` compares equal to ``1``, exactly as it did as a tree key).
    """
    return frozenset(paths_of_length(n, sender, length))


class LevelWireStats(NamedTuple):
    """Aggregate canonical-encoding statistics for one path level.

    Lets the succinct engine account a run-length report at its *dense
    equivalent* byte size in O(#runs), without materializing the dense
    item list: the encoding is additive (tag + varint length + item
    encodings), so the byte total of "every level-``length`` path not
    containing ``q``" is ``path_bytes - path_bytes_with[q]``.

    :ivar count: number of paths at this level.
    :ivar path_bytes: sum of ``byte_size(path)`` over all of them.
    :ivar count_with: per node id, how many paths contain it.
    :ivar path_bytes_with: per node id, the byte sum of paths containing it.
    """

    count: int
    path_bytes: int
    count_with: tuple[int, ...]
    path_bytes_with: tuple[int, ...]

    def count_avoiding(self, node: NodeId) -> int:
        """How many paths at this level do not contain ``node``."""
        return self.count - self.count_with[node]

    def path_bytes_avoiding(self, node: NodeId) -> int:
        """Byte sum of the paths at this level not containing ``node``."""
        return self.path_bytes - self.path_bytes_with[node]


@lru_cache(maxsize=None)
def level_wire_stats(n: int, sender: NodeId, length: int) -> LevelWireStats:
    """Wire-size aggregates for ``paths_of_length(n, sender, length)``.

    Enumerates the level exactly once per process.  Only report levels
    (length <= t) ever need these; the exponential leaf level ``t + 1`` is
    never passed here by the engine.
    """
    from ..crypto.encoding import byte_size, uvarint_size

    # The canonical encoding is additive (container = tag + varint length
    # + item encodings), so a path's size is the tuple header plus its
    # ids' scalar sizes — n scalar encodes total instead of one full
    # tuple encode per path, which matters at n=128 where the report
    # levels hold ~16k paths per sender.
    id_size = [byte_size(node) for node in range(n)]
    header = 1 + uvarint_size(length)
    count_with = [0] * n
    path_bytes_with = [0] * n
    total = 0
    paths = paths_of_length(n, sender, length)
    for path in paths:
        size = header
        for node in path:
            size += id_size[node]
        total += size
        for node in path:
            count_with[node] += 1
            path_bytes_with[node] += size
    return LevelWireStats(
        count=len(paths),
        path_bytes=total,
        count_with=tuple(count_with),
        path_bytes_with=tuple(path_bytes_with),
    )


def clear_path_tables() -> None:
    """Drop every memoized table (tests / long-lived processes)."""
    paths_of_length.cache_clear()
    path_set.cache_clear()
    level_wire_stats.cache_clear()


def path_table_info() -> dict[str, int]:
    """Cache diagnostics: entry count and total paths held."""
    info = paths_of_length.cache_info()
    return {"entries": info.currsize, "hits": info.hits, "misses": info.misses}
