"""OM(t): non-authenticated Byzantine Agreement via an EIG tree.

The paper's complexity comparison rests on the classical gap between
authenticated and oral-message agreement.  This module provides the oral
side: the Exponential Information Gathering formulation of Lamport,
Shostak and Pease's OM(t), which requires **n > 3t** and t+1 rounds.

Protocol
--------
Nodes maintain a tree of *paths* — sequences of distinct node ids starting
with the sender.  ``tree[(0,)]`` is the value received from the sender in
round 1; in each later round every node reports, to everyone, the values
it holds for all paths that do not contain itself, and a receiver files a
report relayed by ``q`` about path ``σ`` under ``σ + (q,)``.  After
``t + 1`` rounds each node resolves the tree bottom-up by recursive
majority (missing values become the default) and decides ``resolve((0,))``.

Engines
-------
Two interchangeable engines realise the tree (``engine=`` parameter):

* ``"succinct"`` (default) — :mod:`repro.agreement.eigtree`: unanimous
  subtrees collapse to per-relayer uniform entries, reports travel
  run-length encoded, and resolution short-circuits the failure-free
  case.  This is what makes n=128 oral runs feasible.
* ``"dense"`` — the reference dict-of-paths engine (the seed semantics),
  kept as the oracle the property tests compare against.

Every observable is engine-independent: decisions, round counts, envelope
counts, payload kinds and byte counts are bit-for-bit identical (the
metrics layer accounts compressed reports at their dense-equivalent
size).  Engines are homogeneous per run — the dense ingest treats
run-length payloads as unknown Byzantine noise.

Message accounting
------------------
The simulator counts *envelopes*: one per (sender, recipient, round), with
all of a round's path reports batched inside.  The classical "message"
count of OM(t) refers to individual path reports, which grow as
``(n-1)(n-2)...(n-k)``; :func:`repro.analysis.complexity.om_reports`
gives that closed form, and the metrics' byte counters show the blow-up
empirically (the envelope payloads grow exponentially with ``t``) —
:func:`repro.analysis.complexity.om_collapsed_reports` gives the
run-length count the succinct engine actually ships in unanimous runs.

This protocol is the "may not work because of too many faulty nodes"
option for key distribution the paper mentions: to authentically agree on
n public keys without signatures one would run n instances of this — and
only if ``n > 3t`` holds at all.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError
from ..sim import Envelope, NodeContext, Protocol
from ..types import NodeId, validate_fault_budget
from . import eigtree
from ._paths import Path, path_set, paths_of_length
from .eigtree import RleReport, SuccinctEigStore
from .problem import DEFAULT_VALUE

OM_VALUE = "om-value"
OM_REPORT = "om-report"

#: The distinguished sender is node 0.
SENDER: NodeId = 0

#: Engine names (see module docstring).
SUCCINCT = "succinct"
DENSE = "dense"
DEFAULT_ENGINE = SUCCINCT


class OralAgreementProtocol(Protocol):
    """One node's behaviour in OM(t) / EIG.

    :param engine: ``"succinct"`` (default; collapsed tree, run-length
        reports) or ``"dense"`` (reference dict-of-paths engine).

    :raises ConfigurationError: if ``n <= 3t`` (the oral bound) — this is
        the impossibility the paper leans on when it says agreement-based
        key distribution "may not be feasible because of an insufficient
        number of correct nodes" — or for an unknown engine.
    """

    def __init__(
        self,
        n: int,
        t: int,
        value: Any = None,
        default: Any = DEFAULT_VALUE,
        sender: NodeId = SENDER,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        validate_fault_budget(t, n)
        if n <= 3 * t:
            raise ConfigurationError(
                f"oral agreement requires n > 3t, got n={n}, t={t}"
            )
        if engine not in (SUCCINCT, DENSE):
            raise ConfigurationError(
                f"unknown EIG engine {engine!r}; expected {SUCCINCT!r} or {DENSE!r}"
            )
        self._n = n
        self._t = t
        self._value = value
        self._default = default
        self._sender = sender
        self._engine = engine
        self._tree: dict[Path, Any] = {}
        self._store = (
            SuccinctEigStore(n, t, sender, default) if engine == SUCCINCT else None
        )

    supports_batch_inbox = True

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        round_ = ctx.round
        if round_ == 0:
            if ctx.node == self._sender:
                ctx.broadcast((OM_VALUE, self._value))
                if self._store is not None:
                    self._store.set_root(self._value)
                else:
                    self._tree[(self._sender,)] = self._value
            return

        self._ingest(ctx, inbox, round_)
        self._round_tail(ctx, round_)

    def on_round_batch(self, ctx: NodeContext, batch) -> None:
        """Columnar ingest: file one channel batch instead of an inbox.

        The succinct engine hands the whole batch to
        :func:`repro.agreement.eigtree.ingest_rle_batch`, which hoists
        the per-report validation out of the per-receiver loop and memos
        receiver-independent verdicts in ``batch.shared`` — the win that
        pays for the whole columnar layer at n=128.  Everything else
        (round-1 values, dense reports, Byzantine noise) flows through
        the same per-payload filing as :meth:`on_round`.
        """
        round_ = ctx.round
        if round_ == 0:
            self.on_round(ctx, [])
            return
        me = ctx.node
        store = self._store
        if store is not None and round_ >= 2:
            rest = eigtree.ingest_rle_batch(
                store,
                batch.senders,
                batch.payloads,
                batch.targets,
                me,
                round_,
                batch.shared,
            )
            if rest is not None:
                for sender, payload in rest:
                    self._ingest_one(me, sender, payload, round_, None)
        else:
            valid_prefixes = (
                path_set(self._n, self._sender, round_ - 1)
                if round_ >= 2
                else None
            )
            senders = batch.senders
            payloads = batch.payloads
            targets = batch.targets
            for i in range(len(senders)):
                target = targets[i]
                sender = senders[i]
                if target is None:
                    if sender == me:
                        continue
                elif type(target) is int:
                    if target != me:
                        continue
                elif me not in target:
                    continue
                self._ingest_one(me, sender, payloads[i], round_, valid_prefixes)
        self._round_tail(ctx, round_)

    def _round_tail(self, ctx: NodeContext, round_: int) -> None:
        """Post-ingest phase logic shared by both inbox shapes."""
        if round_ <= self._t:
            self._report(ctx, round_)
        if round_ >= self._t + 1:
            if ctx.node == self._sender:
                # The sender knows its value; every tree path contains its
                # own id, so it does not gather and simply decides.
                ctx.decide(self._value)
            else:
                ctx.decide(self._resolve((self._sender,), ctx.node))
            ctx.halt()

    def _ingest(self, ctx: NodeContext, inbox: list[Envelope], round_: int) -> None:
        """File this round's values/reports into the EIG tree."""
        me = ctx.node
        store = self._store
        # Valid reports extend a length-(round-1) path by the relayer, with
        # all ids distinct and starting at the sender; anything else is
        # Byzantine noise and is simply not filed (missing -> default).
        # Structural validity is one membership probe in the shared path
        # set rather than per-item distinctness/range re-checks.
        valid_prefixes = (
            path_set(self._n, self._sender, round_ - 1)
            if round_ >= 2 and store is None
            else None
        )
        for env in inbox:
            payload = env.payload
            if store is not None and round_ >= 2 and isinstance(payload, RleReport):
                eigtree.ingest_rle(store, payload, env.sender, me, round_)
            else:
                self._ingest_one(me, env.sender, payload, round_, valid_prefixes)

    def _ingest_one(
        self,
        me: NodeId,
        sender: NodeId,
        payload: Any,
        round_: int,
        valid_prefixes,
    ) -> None:
        """File one payload from ``sender`` (any shape but an RLE report,
        which the callers fast-path)."""
        store = self._store
        if (
            round_ == 1
            and sender == self._sender
            and isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == OM_VALUE
        ):
            if store is not None:
                store.set_root(payload[1])
            else:
                self._tree[(self._sender,)] = payload[1]
        elif (
            round_ >= 2
            and isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == OM_REPORT
            and isinstance(payload[1], (tuple, list))
        ):
            relayer = sender
            if store is not None:
                eigtree.ingest_dense_items(store, payload[1], relayer, me, round_)
                return
            tree = self._tree
            for item in payload[1]:
                if not (isinstance(item, (tuple, list)) and len(item) == 2):
                    continue
                raw_path, value = item
                if not isinstance(raw_path, (tuple, list)):
                    continue
                path: Path = tuple(raw_path)
                try:
                    valid = path in valid_prefixes
                except TypeError:
                    # Unhashable elements can never form a valid path;
                    # Byzantine noise, not filed.
                    continue
                if valid and relayer not in path and me not in path:
                    tree.setdefault(path + (relayer,), value)

    def _report(self, ctx: NodeContext, round_: int) -> None:
        """Relay every known path of length ``round_`` not containing us."""
        me = ctx.node
        if self._store is not None:
            report = eigtree.encode_report(self._store, me, round_)
            if report is not None:
                ctx.broadcast(report)
            return
        tree = self._tree
        default = self._default
        items = [
            (path, tree.get(path, default))
            for path in paths_of_length(self._n, self._sender, round_)
            if me not in path
        ]
        if items:
            ctx.broadcast((OM_REPORT, tuple(items)))

    def _paths_of_length(self, length: int) -> list[Path]:
        """All structurally valid paths of the given length, in canonical
        order (deterministic across nodes).  Delegates to the shared
        process-level table in :mod:`repro.agreement._paths`."""
        return list(paths_of_length(self._n, self._sender, length))

    def _resolve(self, path: Path, me: NodeId) -> Any:
        """Majority over the EIG subtree rooted at ``path``.

        A node holds no stored values for paths containing itself (it never
        receives its own relays), so the subtree through ``me`` is replaced
        by the value ``me`` itself relayed about ``path`` (classical EIG's
        "own value" substitution, needed for the n > 3t margin).

        Succinct engine: delegated to
        :meth:`repro.agreement.eigtree.SuccinctEigStore.resolve` — a
        failure-free run short-circuits in O(n·t).  Dense engine (and
        succinct non-root calls): the shared level-synchronous sweep
        :func:`repro.agreement.eigtree.resolve_sweep`, reading values
        through this engine's :meth:`_lookup` — leaves (length t+1)
        first, then each shorter length from the values computed for the
        one below; no per-path recursion, each path's value computed
        exactly once.
        """
        if self._store is not None and path == (self._sender,) and me not in path:
            return self._store.resolve(me)
        if me in path or len(path) > self._t + 1:
            # Degenerate calls (never made by the protocol itself): the
            # substitution rule cannot apply, fall back to plain recursion.
            return self._resolve_recursive(path, me)
        lookup = self._lookup()
        return eigtree.resolve_sweep(
            self._n, self._t, self._sender, self._default, lookup, me, path
        )

    def _lookup(self):
        """The engine's (path -> stored value or default) reader."""
        if self._store is not None:
            return self._store.get
        tree, default = self._tree, self._default
        return lambda p: tree.get(p, default)

    def _resolve_recursive(self, path: Path, me: NodeId) -> Any:
        """Reference recursion (the seed semantics), used for roots that
        already contain ``me``."""
        lookup = self._lookup()
        if len(path) == self._t + 1:
            return lookup(path)
        children = []
        for node in range(self._n):
            if node in path:
                continue
            if node == me:
                children.append(lookup(path))
            else:
                children.append(self._resolve_recursive(path + (node,), me))
        return self._majority(path, children)

    def _majority(self, path: Path, children: list[Any]) -> Any:
        """Strict majority of ``children``; ties and pluralities fall to
        the default (values compared by ``repr``, which tolerates
        unhashable payloads).  The vote itself is
        :func:`repro.agreement.eigtree.majority_value` — one shared
        implementation, so the engines cannot drift."""
        if not children:
            if self._store is not None:
                return self._store.get(path)
            return self._tree.get(path, self._default)
        return eigtree.majority_value(children, self._default)


def make_oral_agreement_protocols(
    n: int,
    t: int,
    value: Any,
    adversaries: dict[NodeId, Protocol] | None = None,
    default: Any = DEFAULT_VALUE,
    engine: str = DEFAULT_ENGINE,
) -> list[Protocol]:
    """Assemble the per-node protocol list for one OM(t) run."""
    adversaries = adversaries or {}
    return [
        adversaries.get(
            node,
            OralAgreementProtocol(
                n,
                t,
                value=value if node == SENDER else None,
                default=default,
                engine=engine,
            ),
        )
        for node in range(n)
    ]
