"""OM(t): non-authenticated Byzantine Agreement via an EIG tree.

The paper's complexity comparison rests on the classical gap between
authenticated and oral-message agreement.  This module provides the oral
side: the Exponential Information Gathering formulation of Lamport,
Shostak and Pease's OM(t), which requires **n > 3t** and t+1 rounds.

Protocol
--------
Nodes maintain a tree of *paths* — sequences of distinct node ids starting
with the sender.  ``tree[(0,)]`` is the value received from the sender in
round 1; in each later round every node reports, to everyone, the values
it holds for all paths that do not contain itself, and a receiver files a
report relayed by ``q`` about path ``σ`` under ``σ + (q,)``.  After
``t + 1`` rounds each node resolves the tree bottom-up by recursive
majority (missing values become the default) and decides ``resolve((0,))``.

Message accounting
------------------
The simulator counts *envelopes*: one per (sender, recipient, round), with
all of a round's path reports batched inside.  The classical "message"
count of OM(t) refers to individual path reports, which grow as
``(n-1)(n-2)...(n-k)``; :func:`repro.analysis.complexity.om_reports`
gives that closed form, and the metrics' byte counters show the blow-up
empirically (the envelope payloads grow exponentially with ``t``).

This protocol is the "may not work because of too many faulty nodes"
option for key distribution the paper mentions: to authentically agree on
n public keys without signatures one would run n instances of this — and
only if ``n > 3t`` holds at all.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from ..errors import ConfigurationError
from ..sim import Envelope, NodeContext, Protocol
from ..types import NodeId, validate_fault_budget
from .problem import DEFAULT_VALUE

OM_VALUE = "om-value"
OM_REPORT = "om-report"

#: The distinguished sender is node 0.
SENDER: NodeId = 0

Path = tuple[NodeId, ...]


class OralAgreementProtocol(Protocol):
    """One node's behaviour in OM(t) / EIG.

    :raises ConfigurationError: if ``n <= 3t`` (the oral bound) — this is
        the impossibility the paper leans on when it says agreement-based
        key distribution "may not be feasible because of an insufficient
        number of correct nodes".
    """

    def __init__(
        self,
        n: int,
        t: int,
        value: Any = None,
        default: Any = DEFAULT_VALUE,
        sender: NodeId = SENDER,
    ) -> None:
        validate_fault_budget(t, n)
        if n <= 3 * t:
            raise ConfigurationError(
                f"oral agreement requires n > 3t, got n={n}, t={t}"
            )
        self._n = n
        self._t = t
        self._value = value
        self._default = default
        self._sender = sender
        self._tree: dict[Path, Any] = {}

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        round_ = ctx.round
        if round_ == 0:
            if ctx.node == self._sender:
                ctx.broadcast((OM_VALUE, self._value))
                self._tree[(self._sender,)] = self._value
            return

        self._ingest(ctx, inbox, round_)

        if round_ <= self._t:
            self._report(ctx, round_)
        if round_ >= self._t + 1:
            if ctx.node == self._sender:
                # The sender knows its value; every tree path contains its
                # own id, so it does not gather and simply decides.
                ctx.decide(self._value)
            else:
                ctx.decide(self._resolve((self._sender,), ctx.node))
            ctx.halt()

    def _ingest(self, ctx: NodeContext, inbox: list[Envelope], round_: int) -> None:
        """File this round's values/reports into the EIG tree."""
        for env in inbox:
            payload = env.payload
            if (
                round_ == 1
                and env.sender == self._sender
                and isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == OM_VALUE
            ):
                self._tree[(self._sender,)] = payload[1]
            elif (
                round_ >= 2
                and isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == OM_REPORT
                and isinstance(payload[1], (tuple, list))
            ):
                for item in payload[1]:
                    self._file_report(ctx, env.sender, item, round_)

    def _file_report(
        self, ctx: NodeContext, relayer: NodeId, item: Any, round_: int
    ) -> None:
        if not (isinstance(item, (tuple, list)) and len(item) == 2):
            return
        raw_path, value = item
        if not isinstance(raw_path, (tuple, list)):
            return
        path: Path = tuple(raw_path)
        # Valid reports extend a length-(round-1) path by the relayer, with
        # all ids distinct and starting at the sender; anything else is
        # Byzantine noise and is simply not filed (missing -> default).
        if (
            len(path) == round_ - 1
            and path
            and path[0] == self._sender
            and relayer not in path
            and ctx.node not in path
            and len(set(path)) == len(path)
            and all(isinstance(p, int) and 0 <= p < self._n for p in path)
        ):
            self._tree.setdefault(path + (relayer,), value)

    def _report(self, ctx: NodeContext, round_: int) -> None:
        """Relay every known path of length ``round_`` not containing us."""
        items = [
            (path, self._tree.get(path, self._default))
            for path in self._paths_of_length(round_)
            if ctx.node not in path
        ]
        if items:
            ctx.broadcast((OM_REPORT, tuple(items)))

    def _paths_of_length(self, length: int) -> list[Path]:
        """All structurally valid paths of the given length, in canonical
        order (deterministic across nodes)."""
        paths: list[Path] = [(self._sender,)]
        for _ in range(length - 1):
            paths = [
                path + (node,)
                for path in paths
                for node in range(self._n)
                if node not in path
            ]
        return paths

    def _resolve(self, path: Path, me: NodeId) -> Any:
        """Recursive majority over the EIG subtree rooted at ``path``.

        A node holds no stored values for paths containing itself (it never
        receives its own relays), so the subtree through ``me`` is replaced
        by the value ``me`` itself relayed about ``path``.
        """
        if len(path) == self._t + 1:
            return self._tree.get(path, self._default)
        children = []
        for node in range(self._n):
            if node in path:
                continue
            if node == me:
                # The subtree through myself echoes what I relayed about
                # ``path`` — I know that value directly (classical EIG's
                # "own value" substitution, needed for the n > 3t margin).
                children.append(self._tree.get(path, self._default))
            else:
                children.append(self._resolve(path + (node,), me))
        if not children:
            return self._tree.get(path, self._default)
        counts = Counter(repr(value) for value in children)
        best, best_count = counts.most_common(1)[0]
        # Strict majority decides; ties and pluralities fall to default.
        if best_count * 2 > len(children):
            for value in children:
                if repr(value) == best:
                    return value
        return self._default


def make_oral_agreement_protocols(
    n: int,
    t: int,
    value: Any,
    adversaries: dict[NodeId, Protocol] | None = None,
    default: Any = DEFAULT_VALUE,
) -> list[Protocol]:
    """Assemble the per-node protocol list for one OM(t) run."""
    adversaries = adversaries or {}
    return [
        adversaries.get(
            node,
            OralAgreementProtocol(
                n, t, value=value if node == SENDER else None, default=default
            ),
        )
        for node in range(n)
    ]
