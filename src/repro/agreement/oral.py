"""OM(t): non-authenticated Byzantine Agreement via an EIG tree.

The paper's complexity comparison rests on the classical gap between
authenticated and oral-message agreement.  This module provides the oral
side: the Exponential Information Gathering formulation of Lamport,
Shostak and Pease's OM(t), which requires **n > 3t** and t+1 rounds.

Protocol
--------
Nodes maintain a tree of *paths* — sequences of distinct node ids starting
with the sender.  ``tree[(0,)]`` is the value received from the sender in
round 1; in each later round every node reports, to everyone, the values
it holds for all paths that do not contain itself, and a receiver files a
report relayed by ``q`` about path ``σ`` under ``σ + (q,)``.  After
``t + 1`` rounds each node resolves the tree bottom-up by recursive
majority (missing values become the default) and decides ``resolve((0,))``.

Message accounting
------------------
The simulator counts *envelopes*: one per (sender, recipient, round), with
all of a round's path reports batched inside.  The classical "message"
count of OM(t) refers to individual path reports, which grow as
``(n-1)(n-2)...(n-k)``; :func:`repro.analysis.complexity.om_reports`
gives that closed form, and the metrics' byte counters show the blow-up
empirically (the envelope payloads grow exponentially with ``t``).

This protocol is the "may not work because of too many faulty nodes"
option for key distribution the paper mentions: to authentically agree on
n public keys without signatures one would run n instances of this — and
only if ``n > 3t`` holds at all.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from ..errors import ConfigurationError
from ..sim import Envelope, NodeContext, Protocol
from ..types import NodeId, validate_fault_budget
from ._paths import Path, path_set, paths_of_length
from .problem import DEFAULT_VALUE

OM_VALUE = "om-value"
OM_REPORT = "om-report"

#: The distinguished sender is node 0.
SENDER: NodeId = 0


class OralAgreementProtocol(Protocol):
    """One node's behaviour in OM(t) / EIG.

    :raises ConfigurationError: if ``n <= 3t`` (the oral bound) — this is
        the impossibility the paper leans on when it says agreement-based
        key distribution "may not be feasible because of an insufficient
        number of correct nodes".
    """

    def __init__(
        self,
        n: int,
        t: int,
        value: Any = None,
        default: Any = DEFAULT_VALUE,
        sender: NodeId = SENDER,
    ) -> None:
        validate_fault_budget(t, n)
        if n <= 3 * t:
            raise ConfigurationError(
                f"oral agreement requires n > 3t, got n={n}, t={t}"
            )
        self._n = n
        self._t = t
        self._value = value
        self._default = default
        self._sender = sender
        self._tree: dict[Path, Any] = {}

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        round_ = ctx.round
        if round_ == 0:
            if ctx.node == self._sender:
                ctx.broadcast((OM_VALUE, self._value))
                self._tree[(self._sender,)] = self._value
            return

        self._ingest(ctx, inbox, round_)

        if round_ <= self._t:
            self._report(ctx, round_)
        if round_ >= self._t + 1:
            if ctx.node == self._sender:
                # The sender knows its value; every tree path contains its
                # own id, so it does not gather and simply decides.
                ctx.decide(self._value)
            else:
                ctx.decide(self._resolve((self._sender,), ctx.node))
            ctx.halt()

    def _ingest(self, ctx: NodeContext, inbox: list[Envelope], round_: int) -> None:
        """File this round's values/reports into the EIG tree."""
        me = ctx.node
        tree = self._tree
        # Valid reports extend a length-(round-1) path by the relayer, with
        # all ids distinct and starting at the sender; anything else is
        # Byzantine noise and is simply not filed (missing -> default).
        # Structural validity is one membership probe in the shared path
        # set rather than per-item distinctness/range re-checks.
        valid_prefixes = (
            path_set(self._n, self._sender, round_ - 1) if round_ >= 2 else None
        )
        for env in inbox:
            payload = env.payload
            if (
                round_ == 1
                and env.sender == self._sender
                and isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == OM_VALUE
            ):
                tree[(self._sender,)] = payload[1]
            elif (
                round_ >= 2
                and isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == OM_REPORT
                and isinstance(payload[1], (tuple, list))
            ):
                relayer = env.sender
                for item in payload[1]:
                    if not (isinstance(item, (tuple, list)) and len(item) == 2):
                        continue
                    raw_path, value = item
                    if not isinstance(raw_path, (tuple, list)):
                        continue
                    path: Path = tuple(raw_path)
                    try:
                        valid = path in valid_prefixes
                    except TypeError:
                        # Unhashable elements can never form a valid path;
                        # Byzantine noise, not filed.
                        continue
                    if valid and relayer not in path and me not in path:
                        tree.setdefault(path + (relayer,), value)

    def _report(self, ctx: NodeContext, round_: int) -> None:
        """Relay every known path of length ``round_`` not containing us."""
        me = ctx.node
        tree = self._tree
        default = self._default
        items = [
            (path, tree.get(path, default))
            for path in paths_of_length(self._n, self._sender, round_)
            if me not in path
        ]
        if items:
            ctx.broadcast((OM_REPORT, tuple(items)))

    def _paths_of_length(self, length: int) -> list[Path]:
        """All structurally valid paths of the given length, in canonical
        order (deterministic across nodes).  Delegates to the shared
        process-level table in :mod:`repro.agreement._paths`."""
        return list(paths_of_length(self._n, self._sender, length))

    def _resolve(self, path: Path, me: NodeId) -> Any:
        """Majority over the EIG subtree rooted at ``path``.

        A node holds no stored values for paths containing itself (it never
        receives its own relays), so the subtree through ``me`` is replaced
        by the value ``me`` itself relayed about ``path`` (classical EIG's
        "own value" substitution, needed for the n > 3t margin).

        Resolution runs iteratively, bottom-up over the shared path table:
        leaves (length t+1) first, then each shorter length from the values
        computed for the one below — no per-path recursion, and each path's
        value is computed exactly once.
        """
        if me in path or len(path) > self._t + 1:
            # Degenerate calls (never made by the protocol itself): the
            # substitution rule cannot apply, fall back to plain recursion.
            return self._resolve_recursive(path, me)

        n, sender, default = self._n, self._sender, self._default
        tree = self._tree
        depth = self._t + 1
        start = len(path)

        # Level-synchronous sweep over the shared tables.  Level L+1 is
        # generated from level L parent-major with child ids ascending, so
        # the children of parent index ``i`` at level L occupy the slice
        # ``[i*(n-L), (i+1)*(n-L))`` of level L+1 — values align by index,
        # no per-path dict or membership tests needed.  Values are computed
        # for every path (even those through ``me``); the ones through
        # ``me`` are never consumed because their parents substitute first.
        values = [tree.get(p, default) for p in paths_of_length(n, sender, depth)]
        for length in range(depth - 1, start - 1, -1):
            table = paths_of_length(n, sender, length)
            width = n - length
            parent_values = []
            for i, p in enumerate(table):
                children = values[i * width : (i + 1) * width]
                if me not in p:
                    # The subtree through myself echoes what I relayed
                    # about ``p`` — I know that value directly (classical
                    # EIG's "own value" substitution, needed for the
                    # n > 3t margin).  ``me``'s child slot is its rank
                    # among the ids not in ``p``.
                    slot = me
                    for node in p:
                        if node < me:
                            slot -= 1
                    children[slot] = tree.get(p, default)
                parent_values.append(self._majority(p, children))
            values = parent_values
        return values[paths_of_length(n, sender, start).index(path)]

    def _resolve_recursive(self, path: Path, me: NodeId) -> Any:
        """Reference recursion (the seed semantics), used for roots that
        already contain ``me``."""
        if len(path) == self._t + 1:
            return self._tree.get(path, self._default)
        children = []
        for node in range(self._n):
            if node in path:
                continue
            if node == me:
                children.append(self._tree.get(path, self._default))
            else:
                children.append(self._resolve_recursive(path + (node,), me))
        return self._majority(path, children)

    def _majority(self, path: Path, children: list[Any]) -> Any:
        """Strict majority of ``children``; ties and pluralities fall to
        the default (values compared by ``repr``, which tolerates
        unhashable payloads)."""
        if not children:
            return self._tree.get(path, self._default)
        reprs = [repr(value) for value in children]
        first = reprs[0]
        total = len(children)
        # Failure-free fast path: unanimous children, no counting needed.
        if reprs.count(first) == total:
            return children[0]
        best, best_count = Counter(reprs).most_common(1)[0]
        if best_count * 2 > total:
            return children[reprs.index(best)]
        return self._default


def make_oral_agreement_protocols(
    n: int,
    t: int,
    value: Any,
    adversaries: dict[NodeId, Protocol] | None = None,
    default: Any = DEFAULT_VALUE,
) -> list[Protocol]:
    """Assemble the per-node protocol list for one OM(t) run."""
    adversaries = adversaries or {}
    return [
        adversaries.get(
            node,
            OralAgreementProtocol(
                n, t, value=value if node == SENDER else None, default=default
            ),
        )
        for node in range(n)
    ]
