"""Failure Discovery: the problem (F1-F3) and three protocol families.

* :mod:`repro.fd.authenticated` — the paper's Fig. 2 chain protocol,
  ``n - 1`` messages, works under global *or* local authentication;
* :mod:`repro.fd.nonauth` — the unauthenticated ``O(n·t)`` echo baseline;
* :mod:`repro.fd.smallrange` — "assign values to missing messages"
  variants for a known binary domain;
* :mod:`repro.fd.timeout` — heartbeat/timeout FD with retransmission,
  designed for the unreliable delivery models (experiment E13);
* :mod:`repro.fd.adaptive` — adaptive-timeout FD estimating per-link
  delay bounds online (Chen/Jacobson-style), the defence side of the
  E14 arms race.
"""

from .adaptive import (
    ADAPTIVE_ACK,
    ADAPTIVE_VALUE,
    AdaptiveTimeoutFDProtocol,
    default_max_timeout,
    make_adaptive_fd_protocols,
)
from .authenticated import (
    CHAIN_MSG,
    SENDER,
    ChainFDProtocol,
    expected_signers_at,
    make_chain_fd_protocols,
)
from .nonauth import (
    ECHO_FD_ROUNDS,
    ECHO_MSG,
    VALUE_MSG,
    EchoFDProtocol,
    make_echo_fd_protocols,
)
from .oracle import (
    OracleVerdict,
    certify_protocol,
    judge_run,
    reference_views,
)
from .problem import (
    FDEvaluation,
    check_weak_agreement,
    check_weak_termination,
    check_weak_validity,
    evaluate_fd,
)
from .smallrange import (
    BINARY_DOMAIN,
    DEFAULT_VALUE,
    OptimisticBinaryChainProtocol,
    SilentZeroBroadcastProtocol,
    make_small_range_protocols,
)
from .timeout import (
    HEARTBEAT,
    TIMEOUT_VALUE,
    TimeoutFDProtocol,
    default_timeout,
    make_timeout_fd_protocols,
)

__all__ = [
    "ADAPTIVE_ACK",
    "ADAPTIVE_VALUE",
    "AdaptiveTimeoutFDProtocol",
    "BINARY_DOMAIN",
    "CHAIN_MSG",
    "DEFAULT_VALUE",
    "ECHO_FD_ROUNDS",
    "ECHO_MSG",
    "HEARTBEAT",
    "SENDER",
    "TIMEOUT_VALUE",
    "VALUE_MSG",
    "ChainFDProtocol",
    "EchoFDProtocol",
    "FDEvaluation",
    "OracleVerdict",
    "OptimisticBinaryChainProtocol",
    "SilentZeroBroadcastProtocol",
    "TimeoutFDProtocol",
    "certify_protocol",
    "check_weak_agreement",
    "check_weak_termination",
    "check_weak_validity",
    "default_max_timeout",
    "default_timeout",
    "evaluate_fd",
    "expected_signers_at",
    "judge_run",
    "make_adaptive_fd_protocols",
    "make_chain_fd_protocols",
    "make_echo_fd_protocols",
    "make_small_range_protocols",
    "make_timeout_fd_protocols",
    "reference_views",
]
