"""Small-value-range variants: assigning values to missing messages.

The paper (section 5) notes that when the value range is known a priori
and small, "solutions with fewer messages are possible by assigning values
to missing messages", citing Hadzilacos & Halpern's message-optimal
protocols.  We do not have that construction, so this module provides two
reconstructions of the *technique* — silence decodes to a default value —
with their soundness boundaries made explicit and test-enforced:

:class:`SilentZeroBroadcastProtocol` (sound for ``t = 0``)
    Binary domain.  The sender broadcasts a signed ``1``; for ``0`` it
    stays silent and everyone decides the default at the deadline.
    Failure-free cost: ``n - 1`` messages for value 1, **zero** for value
    0.  With ``t = 0`` the conditions F1-F3 only bind in failure-free
    runs, so silence-decoding is sound.

:class:`OptimisticBinaryChainProtocol` (general ``t`` — optimistic)
    The Fig. 2 chain, but traversed only for value 1; total silence
    decodes to 0.  Failure-free cost: ``n - 1`` for value 1, zero for
    value 0.  **This protocol is not a correct FD protocol for t >= 1**:
    a faulty node that holds a valid 1-chain and selectively withholds it
    makes its successors decide 0 while its predecessors decided 1, and no
    correct node's view deviates from a failure-free (value 0) run — F2 is
    violated without discovery.  ``tests/fd/test_smallrange.py`` constructs
    that attack explicitly.

Reproduction note (recorded in DESIGN.md): our analysis indicates that
*receiver-side* silence-decoding cannot be made sound for ``t >= 1``
without extra corroboration traffic that erases the saving, because a
single faulty link can always forge the all-silent view for a suffix of
the nodes while the prefix is already committed.  Whatever construction
[Hadzilacos & Halpern 1995] used must avoid that pattern; lacking the
text, we reproduce the claim's *shape* (fewer messages for a known small
range, here for the default value) in the regime where it is provably
sound, and document the boundary.
"""

from __future__ import annotations

from ..auth.directory import KeyDirectory
from ..crypto.chain import extend_chain, sign_leaf, verify_chain
from ..crypto.keys import KeyPair
from ..errors import ConfigurationError
from ..sim import Envelope, NodeContext, Protocol
from ..types import NodeId, validate_fault_budget
from .authenticated import CHAIN_MSG, SENDER, expected_signers_at

#: The binary domain these protocols operate over.
BINARY_DOMAIN = (0, 1)

#: Value that silence decodes to.
DEFAULT_VALUE = 0


def _validate_binary(value: int | None, node: NodeId) -> None:
    if node == SENDER and value not in BINARY_DOMAIN:
        raise ConfigurationError(
            f"small-range protocols need a value in {BINARY_DOMAIN}, got {value!r}"
        )


class SilentZeroBroadcastProtocol(Protocol):
    """Binary FD for ``t = 0``: broadcast 1, silence means 0.

    :param n: network size.
    :param keypair: the node's keys (only the sender signs).
    :param directory: accepted predicates (receivers verify the leaf).
    :param value: sender's initial value, 0 or 1.
    """

    def __init__(
        self,
        n: int,
        keypair: KeyPair,
        directory: KeyDirectory,
        value: int | None = None,
    ) -> None:
        self._n = n
        self._keypair = keypair
        self._directory = directory
        self._value = value

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.round == 0:
            _validate_binary(self._value, ctx.node)
            if ctx.node == SENDER:
                if self._value == 1:
                    ctx.broadcast((CHAIN_MSG, sign_leaf(self._keypair.secret, 1)))
                ctx.decide(self._value)
                ctx.halt()
            return
        # Round 1: receivers decode.
        if not inbox:
            ctx.decide(DEFAULT_VALUE)
            ctx.halt()
            return
        if len(inbox) != 1 or inbox[0].sender != SENDER:
            ctx.discover_failure("unexpected traffic in the decode round")
            ctx.halt()
            return
        payload = inbox[0].payload
        if not (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == CHAIN_MSG
        ):
            ctx.discover_failure("malformed sender message")
            ctx.halt()
            return
        verdict = verify_chain(
            payload[1],
            outer_signer=SENDER,
            directory=self._directory,
            expected_depth=1,
            expected_signers=(SENDER,),
        )
        if verdict.ok and verdict.value == 1:
            ctx.decide(1)
        else:
            ctx.discover_failure(f"invalid broadcast: {verdict.reason or 'value'}")
        ctx.halt()


class OptimisticBinaryChainProtocol(Protocol):
    """Binary chain FD where silence decodes to 0 — optimistic for t >= 1.

    Structure and checks are those of
    :class:`repro.fd.authenticated.ChainFDProtocol`, except a node whose
    designated round passes in total silence decides ``0`` instead of
    discovering a missing message.  See the module docstring for the
    soundness boundary this buys the zero-message value-0 run.
    """

    def __init__(
        self,
        n: int,
        t: int,
        keypair: KeyPair,
        directory: KeyDirectory,
        value: int | None = None,
    ) -> None:
        validate_fault_budget(t, n)
        self._n = n
        self._t = t
        self._keypair = keypair
        self._directory = directory
        self._value = value
        self._deadline = t + 1

    def _is_chain_node(self, node: NodeId) -> bool:
        return 1 <= node <= self._t

    def _expected_round(self, node: NodeId) -> int | None:
        if node == SENDER:
            return None
        return node if self._is_chain_node(node) else self._t + 1

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.round == 0 and ctx.node == SENDER:
            _validate_binary(self._value, ctx.node)
            if self._value == 1:
                leaf = sign_leaf(self._keypair.secret, 1)
                if self._t == 0:
                    ctx.broadcast((CHAIN_MSG, leaf))
                else:
                    ctx.send(1, (CHAIN_MSG, leaf))
            ctx.decide(self._value)

        expected = self._expected_round(ctx.node)
        if expected is not None and ctx.round == expected:
            self._decode_round(ctx, inbox)
        elif inbox:
            ctx.discover_failure(
                f"unexpected message(s) in round {ctx.round}"
            )
            ctx.halt()
            return

        if ctx.round >= self._deadline and not ctx.state.halted:
            ctx.halt()

    def _decode_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        node = ctx.node
        if not inbox:
            # The "assign a value to the missing message" step.
            ctx.decide(DEFAULT_VALUE)
            return
        predecessor = node - 1 if self._is_chain_node(node) else self._t
        depth = node if self._is_chain_node(node) else self._t + 1
        payload = inbox[0].payload
        well_formed = (
            len(inbox) == 1
            and inbox[0].sender == predecessor
            and isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == CHAIN_MSG
        )
        if not well_formed:
            ctx.discover_failure("malformed or misdirected chain message")
            ctx.halt()
            return
        verdict = verify_chain(
            payload[1],
            outer_signer=predecessor,
            directory=self._directory,
            expected_depth=depth,
            expected_signers=expected_signers_at(depth),
        )
        if not verdict.ok or verdict.value != 1:
            ctx.discover_failure(
                f"invalid 1-chain: {verdict.reason or 'wrong value'}"
            )
            ctx.halt()
            return
        ctx.decide(1)
        if self._is_chain_node(node):
            extended = extend_chain(self._keypair.secret, predecessor, payload[1])
            if node < self._t:
                ctx.send(node + 1, (CHAIN_MSG, extended))
            else:
                ctx.broadcast(
                    (CHAIN_MSG, extended), to=list(range(self._t + 1, self._n))
                )


def make_small_range_protocols(
    n: int,
    t: int,
    value: int,
    keypairs: dict[NodeId, KeyPair],
    directories: dict[NodeId, KeyDirectory],
    adversaries: dict[NodeId, Protocol] | None = None,
    optimistic: bool = False,
) -> list[Protocol]:
    """Assemble a small-range FD run.

    :param optimistic: if True use :class:`OptimisticBinaryChainProtocol`
        (any ``t``, unsound against in-chain withholding); otherwise the
        sound ``t = 0`` broadcast protocol (requires ``t == 0``).
    :raises ConfigurationError: for ``t != 0`` without ``optimistic``.
    """
    adversaries = adversaries or {}
    if not optimistic and t != 0:
        raise ConfigurationError(
            "SilentZeroBroadcastProtocol is only sound for t=0; "
            "pass optimistic=True to opt into the optimistic chain variant"
        )
    protocols: list[Protocol] = []
    for node in range(n):
        if node in adversaries:
            protocols.append(adversaries[node])
            continue
        if node not in keypairs or node not in directories:
            raise ConfigurationError(
                f"honest node {node} is missing keypair or directory"
            )
        node_value = value if node == SENDER else None
        if optimistic:
            protocols.append(
                OptimisticBinaryChainProtocol(
                    n, t, keypairs[node], directories[node], value=node_value
                )
            )
        else:
            protocols.append(
                SilentZeroBroadcastProtocol(
                    n, keypairs[node], directories[node], value=node_value
                )
            )
    return protocols
